# Empty compiler generated dependencies file for wan_fft.
# This may be replaced when dependencies are built.
