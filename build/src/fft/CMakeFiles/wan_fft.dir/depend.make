# Empty dependencies file for wan_fft.
# This may be replaced when dependencies are built.
