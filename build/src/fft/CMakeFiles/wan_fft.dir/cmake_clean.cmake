file(REMOVE_RECURSE
  "CMakeFiles/wan_fft.dir/fft.cpp.o"
  "CMakeFiles/wan_fft.dir/fft.cpp.o.d"
  "CMakeFiles/wan_fft.dir/periodogram.cpp.o"
  "CMakeFiles/wan_fft.dir/periodogram.cpp.o.d"
  "libwan_fft.a"
  "libwan_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
