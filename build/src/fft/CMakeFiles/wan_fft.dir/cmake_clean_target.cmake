file(REMOVE_RECURSE
  "libwan_fft.a"
)
