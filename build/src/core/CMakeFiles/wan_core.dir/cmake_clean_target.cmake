file(REMOVE_RECURSE
  "libwan_core.a"
)
