# Empty compiler generated dependencies file for wan_core.
# This may be replaced when dependencies are built.
