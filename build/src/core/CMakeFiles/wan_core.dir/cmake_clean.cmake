file(REMOVE_RECURSE
  "CMakeFiles/wan_core.dir/models.cpp.o"
  "CMakeFiles/wan_core.dir/models.cpp.o.d"
  "CMakeFiles/wan_core.dir/poisson_report.cpp.o"
  "CMakeFiles/wan_core.dir/poisson_report.cpp.o.d"
  "CMakeFiles/wan_core.dir/vt_comparison.cpp.o"
  "CMakeFiles/wan_core.dir/vt_comparison.cpp.o.d"
  "libwan_core.a"
  "libwan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
