# Empty dependencies file for wan_core.
# This may be replaced when dependencies are built.
