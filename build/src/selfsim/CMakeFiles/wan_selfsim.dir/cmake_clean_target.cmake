file(REMOVE_RECURSE
  "libwan_selfsim.a"
)
