file(REMOVE_RECURSE
  "CMakeFiles/wan_selfsim.dir/farima.cpp.o"
  "CMakeFiles/wan_selfsim.dir/farima.cpp.o.d"
  "CMakeFiles/wan_selfsim.dir/fgn.cpp.o"
  "CMakeFiles/wan_selfsim.dir/fgn.cpp.o.d"
  "CMakeFiles/wan_selfsim.dir/hurst_report.cpp.o"
  "CMakeFiles/wan_selfsim.dir/hurst_report.cpp.o.d"
  "CMakeFiles/wan_selfsim.dir/mginf.cpp.o"
  "CMakeFiles/wan_selfsim.dir/mginf.cpp.o.d"
  "CMakeFiles/wan_selfsim.dir/onoff.cpp.o"
  "CMakeFiles/wan_selfsim.dir/onoff.cpp.o.d"
  "CMakeFiles/wan_selfsim.dir/pareto_renewal.cpp.o"
  "CMakeFiles/wan_selfsim.dir/pareto_renewal.cpp.o.d"
  "libwan_selfsim.a"
  "libwan_selfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_selfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
