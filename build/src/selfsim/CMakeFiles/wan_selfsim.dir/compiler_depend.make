# Empty compiler generated dependencies file for wan_selfsim.
# This may be replaced when dependencies are built.
