
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfsim/farima.cpp" "src/selfsim/CMakeFiles/wan_selfsim.dir/farima.cpp.o" "gcc" "src/selfsim/CMakeFiles/wan_selfsim.dir/farima.cpp.o.d"
  "/root/repo/src/selfsim/fgn.cpp" "src/selfsim/CMakeFiles/wan_selfsim.dir/fgn.cpp.o" "gcc" "src/selfsim/CMakeFiles/wan_selfsim.dir/fgn.cpp.o.d"
  "/root/repo/src/selfsim/hurst_report.cpp" "src/selfsim/CMakeFiles/wan_selfsim.dir/hurst_report.cpp.o" "gcc" "src/selfsim/CMakeFiles/wan_selfsim.dir/hurst_report.cpp.o.d"
  "/root/repo/src/selfsim/mginf.cpp" "src/selfsim/CMakeFiles/wan_selfsim.dir/mginf.cpp.o" "gcc" "src/selfsim/CMakeFiles/wan_selfsim.dir/mginf.cpp.o.d"
  "/root/repo/src/selfsim/onoff.cpp" "src/selfsim/CMakeFiles/wan_selfsim.dir/onoff.cpp.o" "gcc" "src/selfsim/CMakeFiles/wan_selfsim.dir/onoff.cpp.o.d"
  "/root/repo/src/selfsim/pareto_renewal.cpp" "src/selfsim/CMakeFiles/wan_selfsim.dir/pareto_renewal.cpp.o" "gcc" "src/selfsim/CMakeFiles/wan_selfsim.dir/pareto_renewal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/wan_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/wan_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wan_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
