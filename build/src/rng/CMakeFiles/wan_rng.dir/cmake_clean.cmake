file(REMOVE_RECURSE
  "CMakeFiles/wan_rng.dir/rng.cpp.o"
  "CMakeFiles/wan_rng.dir/rng.cpp.o.d"
  "CMakeFiles/wan_rng.dir/splitmix64.cpp.o"
  "CMakeFiles/wan_rng.dir/splitmix64.cpp.o.d"
  "CMakeFiles/wan_rng.dir/xoshiro256.cpp.o"
  "CMakeFiles/wan_rng.dir/xoshiro256.cpp.o.d"
  "libwan_rng.a"
  "libwan_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
