# Empty compiler generated dependencies file for wan_rng.
# This may be replaced when dependencies are built.
