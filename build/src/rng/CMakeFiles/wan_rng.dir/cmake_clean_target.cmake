file(REMOVE_RECURSE
  "libwan_rng.a"
)
