# Empty dependencies file for wan_dist.
# This may be replaced when dependencies are built.
