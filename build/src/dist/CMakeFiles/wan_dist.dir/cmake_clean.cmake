file(REMOVE_RECURSE
  "CMakeFiles/wan_dist.dir/distribution.cpp.o"
  "CMakeFiles/wan_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/wan_dist.dir/empirical.cpp.o"
  "CMakeFiles/wan_dist.dir/empirical.cpp.o.d"
  "CMakeFiles/wan_dist.dir/exponential.cpp.o"
  "CMakeFiles/wan_dist.dir/exponential.cpp.o.d"
  "CMakeFiles/wan_dist.dir/logextreme.cpp.o"
  "CMakeFiles/wan_dist.dir/logextreme.cpp.o.d"
  "CMakeFiles/wan_dist.dir/loglogistic.cpp.o"
  "CMakeFiles/wan_dist.dir/loglogistic.cpp.o.d"
  "CMakeFiles/wan_dist.dir/lognormal.cpp.o"
  "CMakeFiles/wan_dist.dir/lognormal.cpp.o.d"
  "CMakeFiles/wan_dist.dir/normal.cpp.o"
  "CMakeFiles/wan_dist.dir/normal.cpp.o.d"
  "CMakeFiles/wan_dist.dir/pareto.cpp.o"
  "CMakeFiles/wan_dist.dir/pareto.cpp.o.d"
  "CMakeFiles/wan_dist.dir/special.cpp.o"
  "CMakeFiles/wan_dist.dir/special.cpp.o.d"
  "CMakeFiles/wan_dist.dir/tcplib.cpp.o"
  "CMakeFiles/wan_dist.dir/tcplib.cpp.o.d"
  "CMakeFiles/wan_dist.dir/uniform_dist.cpp.o"
  "CMakeFiles/wan_dist.dir/uniform_dist.cpp.o.d"
  "CMakeFiles/wan_dist.dir/weibull.cpp.o"
  "CMakeFiles/wan_dist.dir/weibull.cpp.o.d"
  "CMakeFiles/wan_dist.dir/zipf.cpp.o"
  "CMakeFiles/wan_dist.dir/zipf.cpp.o.d"
  "libwan_dist.a"
  "libwan_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
