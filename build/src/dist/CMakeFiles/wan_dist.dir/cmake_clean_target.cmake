file(REMOVE_RECURSE
  "libwan_dist.a"
)
