# Empty compiler generated dependencies file for wan_dist.
# This may be replaced when dependencies are built.
