
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/wan_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/empirical.cpp" "src/dist/CMakeFiles/wan_dist.dir/empirical.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/empirical.cpp.o.d"
  "/root/repo/src/dist/exponential.cpp" "src/dist/CMakeFiles/wan_dist.dir/exponential.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/exponential.cpp.o.d"
  "/root/repo/src/dist/logextreme.cpp" "src/dist/CMakeFiles/wan_dist.dir/logextreme.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/logextreme.cpp.o.d"
  "/root/repo/src/dist/loglogistic.cpp" "src/dist/CMakeFiles/wan_dist.dir/loglogistic.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/loglogistic.cpp.o.d"
  "/root/repo/src/dist/lognormal.cpp" "src/dist/CMakeFiles/wan_dist.dir/lognormal.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/lognormal.cpp.o.d"
  "/root/repo/src/dist/normal.cpp" "src/dist/CMakeFiles/wan_dist.dir/normal.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/normal.cpp.o.d"
  "/root/repo/src/dist/pareto.cpp" "src/dist/CMakeFiles/wan_dist.dir/pareto.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/pareto.cpp.o.d"
  "/root/repo/src/dist/special.cpp" "src/dist/CMakeFiles/wan_dist.dir/special.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/special.cpp.o.d"
  "/root/repo/src/dist/tcplib.cpp" "src/dist/CMakeFiles/wan_dist.dir/tcplib.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/tcplib.cpp.o.d"
  "/root/repo/src/dist/uniform_dist.cpp" "src/dist/CMakeFiles/wan_dist.dir/uniform_dist.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/uniform_dist.cpp.o.d"
  "/root/repo/src/dist/weibull.cpp" "src/dist/CMakeFiles/wan_dist.dir/weibull.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/weibull.cpp.o.d"
  "/root/repo/src/dist/zipf.cpp" "src/dist/CMakeFiles/wan_dist.dir/zipf.cpp.o" "gcc" "src/dist/CMakeFiles/wan_dist.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
