
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/arrivals.cpp" "src/synth/CMakeFiles/wan_synth.dir/arrivals.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/arrivals.cpp.o.d"
  "/root/repo/src/synth/diurnal.cpp" "src/synth/CMakeFiles/wan_synth.dir/diurnal.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/diurnal.cpp.o.d"
  "/root/repo/src/synth/ftp_source.cpp" "src/synth/CMakeFiles/wan_synth.dir/ftp_source.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/ftp_source.cpp.o.d"
  "/root/repo/src/synth/host_model.cpp" "src/synth/CMakeFiles/wan_synth.dir/host_model.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/host_model.cpp.o.d"
  "/root/repo/src/synth/machine_sources.cpp" "src/synth/CMakeFiles/wan_synth.dir/machine_sources.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/machine_sources.cpp.o.d"
  "/root/repo/src/synth/mmpp.cpp" "src/synth/CMakeFiles/wan_synth.dir/mmpp.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/mmpp.cpp.o.d"
  "/root/repo/src/synth/packet_fill.cpp" "src/synth/CMakeFiles/wan_synth.dir/packet_fill.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/packet_fill.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/synth/CMakeFiles/wan_synth.dir/synthesizer.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/synthesizer.cpp.o.d"
  "/root/repo/src/synth/telnet_source.cpp" "src/synth/CMakeFiles/wan_synth.dir/telnet_source.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/telnet_source.cpp.o.d"
  "/root/repo/src/synth/weathermap.cpp" "src/synth/CMakeFiles/wan_synth.dir/weathermap.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/weathermap.cpp.o.d"
  "/root/repo/src/synth/www_source.cpp" "src/synth/CMakeFiles/wan_synth.dir/www_source.cpp.o" "gcc" "src/synth/CMakeFiles/wan_synth.dir/www_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wan_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/wan_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wan_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/wan_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
