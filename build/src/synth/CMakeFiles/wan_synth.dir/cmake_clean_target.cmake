file(REMOVE_RECURSE
  "libwan_synth.a"
)
