file(REMOVE_RECURSE
  "CMakeFiles/wan_synth.dir/arrivals.cpp.o"
  "CMakeFiles/wan_synth.dir/arrivals.cpp.o.d"
  "CMakeFiles/wan_synth.dir/diurnal.cpp.o"
  "CMakeFiles/wan_synth.dir/diurnal.cpp.o.d"
  "CMakeFiles/wan_synth.dir/ftp_source.cpp.o"
  "CMakeFiles/wan_synth.dir/ftp_source.cpp.o.d"
  "CMakeFiles/wan_synth.dir/host_model.cpp.o"
  "CMakeFiles/wan_synth.dir/host_model.cpp.o.d"
  "CMakeFiles/wan_synth.dir/machine_sources.cpp.o"
  "CMakeFiles/wan_synth.dir/machine_sources.cpp.o.d"
  "CMakeFiles/wan_synth.dir/mmpp.cpp.o"
  "CMakeFiles/wan_synth.dir/mmpp.cpp.o.d"
  "CMakeFiles/wan_synth.dir/packet_fill.cpp.o"
  "CMakeFiles/wan_synth.dir/packet_fill.cpp.o.d"
  "CMakeFiles/wan_synth.dir/synthesizer.cpp.o"
  "CMakeFiles/wan_synth.dir/synthesizer.cpp.o.d"
  "CMakeFiles/wan_synth.dir/telnet_source.cpp.o"
  "CMakeFiles/wan_synth.dir/telnet_source.cpp.o.d"
  "CMakeFiles/wan_synth.dir/weathermap.cpp.o"
  "CMakeFiles/wan_synth.dir/weathermap.cpp.o.d"
  "CMakeFiles/wan_synth.dir/www_source.cpp.o"
  "CMakeFiles/wan_synth.dir/www_source.cpp.o.d"
  "libwan_synth.a"
  "libwan_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
