# Empty dependencies file for wan_synth.
# This may be replaced when dependencies are built.
