
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/admission.cpp" "src/sim/CMakeFiles/wan_sim.dir/admission.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/admission.cpp.o.d"
  "/root/repo/src/sim/fifo.cpp" "src/sim/CMakeFiles/wan_sim.dir/fifo.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/fifo.cpp.o.d"
  "/root/repo/src/sim/priority.cpp" "src/sim/CMakeFiles/wan_sim.dir/priority.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/priority.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/wan_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/tcp.cpp" "src/sim/CMakeFiles/wan_sim.dir/tcp.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/wan_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wan_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/wan_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
