file(REMOVE_RECURSE
  "CMakeFiles/wan_sim.dir/admission.cpp.o"
  "CMakeFiles/wan_sim.dir/admission.cpp.o.d"
  "CMakeFiles/wan_sim.dir/fifo.cpp.o"
  "CMakeFiles/wan_sim.dir/fifo.cpp.o.d"
  "CMakeFiles/wan_sim.dir/priority.cpp.o"
  "CMakeFiles/wan_sim.dir/priority.cpp.o.d"
  "CMakeFiles/wan_sim.dir/simulator.cpp.o"
  "CMakeFiles/wan_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wan_sim.dir/tcp.cpp.o"
  "CMakeFiles/wan_sim.dir/tcp.cpp.o.d"
  "libwan_sim.a"
  "libwan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
