file(REMOVE_RECURSE
  "libwan_stats.a"
)
