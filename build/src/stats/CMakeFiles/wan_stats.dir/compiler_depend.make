# Empty compiler generated dependencies file for wan_stats.
# This may be replaced when dependencies are built.
