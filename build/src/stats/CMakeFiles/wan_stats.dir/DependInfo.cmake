
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anderson_darling.cpp" "src/stats/CMakeFiles/wan_stats.dir/anderson_darling.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/anderson_darling.cpp.o.d"
  "/root/repo/src/stats/autocorr.cpp" "src/stats/CMakeFiles/wan_stats.dir/autocorr.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/autocorr.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/wan_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/beran.cpp" "src/stats/CMakeFiles/wan_stats.dir/beran.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/beran.cpp.o.d"
  "/root/repo/src/stats/binomial.cpp" "src/stats/CMakeFiles/wan_stats.dir/binomial.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/binomial.cpp.o.d"
  "/root/repo/src/stats/counting.cpp" "src/stats/CMakeFiles/wan_stats.dir/counting.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/counting.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/wan_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/dispersion.cpp" "src/stats/CMakeFiles/wan_stats.dir/dispersion.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/dispersion.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/wan_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/fitting.cpp" "src/stats/CMakeFiles/wan_stats.dir/fitting.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/fitting.cpp.o.d"
  "/root/repo/src/stats/gph.cpp" "src/stats/CMakeFiles/wan_stats.dir/gph.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/gph.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/wan_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/poisson_test.cpp" "src/stats/CMakeFiles/wan_stats.dir/poisson_test.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/poisson_test.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/wan_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/rs_analysis.cpp" "src/stats/CMakeFiles/wan_stats.dir/rs_analysis.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/rs_analysis.cpp.o.d"
  "/root/repo/src/stats/tail_fit.cpp" "src/stats/CMakeFiles/wan_stats.dir/tail_fit.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/tail_fit.cpp.o.d"
  "/root/repo/src/stats/variance_time.cpp" "src/stats/CMakeFiles/wan_stats.dir/variance_time.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/variance_time.cpp.o.d"
  "/root/repo/src/stats/whittle.cpp" "src/stats/CMakeFiles/wan_stats.dir/whittle.cpp.o" "gcc" "src/stats/CMakeFiles/wan_stats.dir/whittle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/wan_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/wan_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
