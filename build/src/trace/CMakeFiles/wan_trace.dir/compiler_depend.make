# Empty compiler generated dependencies file for wan_trace.
# This may be replaced when dependencies are built.
