file(REMOVE_RECURSE
  "libwan_trace.a"
)
