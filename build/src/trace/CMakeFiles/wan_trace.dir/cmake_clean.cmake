file(REMOVE_RECURSE
  "CMakeFiles/wan_trace.dir/binary_io.cpp.o"
  "CMakeFiles/wan_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/wan_trace.dir/burst.cpp.o"
  "CMakeFiles/wan_trace.dir/burst.cpp.o.d"
  "CMakeFiles/wan_trace.dir/conn_trace.cpp.o"
  "CMakeFiles/wan_trace.dir/conn_trace.cpp.o.d"
  "CMakeFiles/wan_trace.dir/csv_io.cpp.o"
  "CMakeFiles/wan_trace.dir/csv_io.cpp.o.d"
  "CMakeFiles/wan_trace.dir/packet_trace.cpp.o"
  "CMakeFiles/wan_trace.dir/packet_trace.cpp.o.d"
  "CMakeFiles/wan_trace.dir/periodic.cpp.o"
  "CMakeFiles/wan_trace.dir/periodic.cpp.o.d"
  "CMakeFiles/wan_trace.dir/protocol.cpp.o"
  "CMakeFiles/wan_trace.dir/protocol.cpp.o.d"
  "libwan_trace.a"
  "libwan_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
