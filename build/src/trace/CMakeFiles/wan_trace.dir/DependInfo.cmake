
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary_io.cpp" "src/trace/CMakeFiles/wan_trace.dir/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/trace/burst.cpp" "src/trace/CMakeFiles/wan_trace.dir/burst.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/burst.cpp.o.d"
  "/root/repo/src/trace/conn_trace.cpp" "src/trace/CMakeFiles/wan_trace.dir/conn_trace.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/conn_trace.cpp.o.d"
  "/root/repo/src/trace/csv_io.cpp" "src/trace/CMakeFiles/wan_trace.dir/csv_io.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/csv_io.cpp.o.d"
  "/root/repo/src/trace/packet_trace.cpp" "src/trace/CMakeFiles/wan_trace.dir/packet_trace.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/packet_trace.cpp.o.d"
  "/root/repo/src/trace/periodic.cpp" "src/trace/CMakeFiles/wan_trace.dir/periodic.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/periodic.cpp.o.d"
  "/root/repo/src/trace/protocol.cpp" "src/trace/CMakeFiles/wan_trace.dir/protocol.cpp.o" "gcc" "src/trace/CMakeFiles/wan_trace.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/wan_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/wan_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/wan_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
