file(REMOVE_RECURSE
  "libwan_plot.a"
)
