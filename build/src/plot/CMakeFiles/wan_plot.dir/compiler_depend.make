# Empty compiler generated dependencies file for wan_plot.
# This may be replaced when dependencies are built.
