file(REMOVE_RECURSE
  "CMakeFiles/wan_plot.dir/ascii_plot.cpp.o"
  "CMakeFiles/wan_plot.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/wan_plot.dir/series_io.cpp.o"
  "CMakeFiles/wan_plot.dir/series_io.cpp.o.d"
  "libwan_plot.a"
  "libwan_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
