# Empty dependencies file for example_selfsimilarity_explorer.
# This may be replaced when dependencies are built.
