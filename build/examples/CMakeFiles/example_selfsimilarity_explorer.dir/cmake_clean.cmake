file(REMOVE_RECURSE
  "CMakeFiles/example_selfsimilarity_explorer.dir/selfsimilarity_explorer.cpp.o"
  "CMakeFiles/example_selfsimilarity_explorer.dir/selfsimilarity_explorer.cpp.o.d"
  "example_selfsimilarity_explorer"
  "example_selfsimilarity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_selfsimilarity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
