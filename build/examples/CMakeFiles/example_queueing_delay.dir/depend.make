# Empty dependencies file for example_queueing_delay.
# This may be replaced when dependencies are built.
