file(REMOVE_RECURSE
  "CMakeFiles/example_queueing_delay.dir/queueing_delay.cpp.o"
  "CMakeFiles/example_queueing_delay.dir/queueing_delay.cpp.o.d"
  "example_queueing_delay"
  "example_queueing_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_queueing_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
