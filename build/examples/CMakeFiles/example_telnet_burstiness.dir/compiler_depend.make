# Empty compiler generated dependencies file for example_telnet_burstiness.
# This may be replaced when dependencies are built.
