file(REMOVE_RECURSE
  "CMakeFiles/example_telnet_burstiness.dir/telnet_burstiness.cpp.o"
  "CMakeFiles/example_telnet_burstiness.dir/telnet_burstiness.cpp.o.d"
  "example_telnet_burstiness"
  "example_telnet_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_telnet_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
