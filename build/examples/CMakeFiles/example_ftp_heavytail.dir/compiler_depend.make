# Empty compiler generated dependencies file for example_ftp_heavytail.
# This may be replaced when dependencies are built.
