file(REMOVE_RECURSE
  "CMakeFiles/example_ftp_heavytail.dir/ftp_heavytail.cpp.o"
  "CMakeFiles/example_ftp_heavytail.dir/ftp_heavytail.cpp.o.d"
  "example_ftp_heavytail"
  "example_ftp_heavytail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ftp_heavytail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
