file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_burst_dominance.dir/bench_fig10_11_burst_dominance.cpp.o"
  "CMakeFiles/bench_fig10_11_burst_dominance.dir/bench_fig10_11_burst_dominance.cpp.o.d"
  "bench_fig10_11_burst_dominance"
  "bench_fig10_11_burst_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_burst_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
