# Empty compiler generated dependencies file for bench_fig10_11_burst_dominance.
# This may be replaced when dependencies are built.
