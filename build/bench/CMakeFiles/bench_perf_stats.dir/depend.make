# Empty dependencies file for bench_perf_stats.
# This may be replaced when dependencies are built.
