file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pkt_traces.dir/bench_table2_pkt_traces.cpp.o"
  "CMakeFiles/bench_table2_pkt_traces.dir/bench_table2_pkt_traces.cpp.o.d"
  "bench_table2_pkt_traces"
  "bench_table2_pkt_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pkt_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
