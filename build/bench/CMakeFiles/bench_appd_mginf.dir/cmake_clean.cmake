file(REMOVE_RECURSE
  "CMakeFiles/bench_appd_mginf.dir/bench_appd_mginf.cpp.o"
  "CMakeFiles/bench_appd_mginf.dir/bench_appd_mginf.cpp.o.d"
  "bench_appd_mginf"
  "bench_appd_mginf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appd_mginf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
