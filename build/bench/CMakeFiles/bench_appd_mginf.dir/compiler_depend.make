# Empty compiler generated dependencies file for bench_appd_mginf.
# This may be replaced when dependencies are built.
