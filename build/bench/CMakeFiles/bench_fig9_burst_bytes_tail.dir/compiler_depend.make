# Empty compiler generated dependencies file for bench_fig9_burst_bytes_tail.
# This may be replaced when dependencies are built.
