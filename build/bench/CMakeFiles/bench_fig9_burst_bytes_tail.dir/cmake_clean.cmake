file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_burst_bytes_tail.dir/bench_fig9_burst_bytes_tail.cpp.o"
  "CMakeFiles/bench_fig9_burst_bytes_tail.dir/bench_fig9_burst_bytes_tail.cpp.o.d"
  "bench_fig9_burst_bytes_tail"
  "bench_fig9_burst_bytes_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_burst_bytes_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
