file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vtp_fulltel.dir/bench_fig7_vtp_fulltel.cpp.o"
  "CMakeFiles/bench_fig7_vtp_fulltel.dir/bench_fig7_vtp_fulltel.cpp.o.d"
  "bench_fig7_vtp_fulltel"
  "bench_fig7_vtp_fulltel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vtp_fulltel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
