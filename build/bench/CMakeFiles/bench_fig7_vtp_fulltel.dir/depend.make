# Empty dependencies file for bench_fig7_vtp_fulltel.
# This may be replaced when dependencies are built.
