# Empty dependencies file for bench_sec4_queueing_delay.
# This may be replaced when dependencies are built.
