file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_queueing_delay.dir/bench_sec4_queueing_delay.cpp.o"
  "CMakeFiles/bench_sec4_queueing_delay.dir/bench_sec4_queueing_delay.cpp.o.d"
  "bench_sec4_queueing_delay"
  "bench_sec4_queueing_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_queueing_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
