# Empty dependencies file for bench_fig8_ftp_spacing.
# This may be replaced when dependencies are built.
