file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ftp_spacing.dir/bench_fig8_ftp_spacing.cpp.o"
  "CMakeFiles/bench_fig8_ftp_spacing.dir/bench_fig8_ftp_spacing.cpp.o.d"
  "bench_fig8_ftp_spacing"
  "bench_fig8_ftp_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ftp_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
