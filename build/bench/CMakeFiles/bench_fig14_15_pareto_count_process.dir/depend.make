# Empty dependencies file for bench_fig14_15_pareto_count_process.
# This may be replaced when dependencies are built.
