file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_pareto_count_process.dir/bench_fig14_15_pareto_count_process.cpp.o"
  "CMakeFiles/bench_fig14_15_pareto_count_process.dir/bench_fig14_15_pareto_count_process.cpp.o.d"
  "bench_fig14_15_pareto_count_process"
  "bench_fig14_15_pareto_count_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_pareto_count_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
