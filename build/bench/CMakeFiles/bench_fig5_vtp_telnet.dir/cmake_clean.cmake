file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vtp_telnet.dir/bench_fig5_vtp_telnet.cpp.o"
  "CMakeFiles/bench_fig5_vtp_telnet.dir/bench_fig5_vtp_telnet.cpp.o.d"
  "bench_fig5_vtp_telnet"
  "bench_fig5_vtp_telnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vtp_telnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
