# Empty dependencies file for bench_fig5_vtp_telnet.
# This may be replaced when dependencies are built.
