file(REMOVE_RECURSE
  "CMakeFiles/bench_appc_burst_lull.dir/bench_appc_burst_lull.cpp.o"
  "CMakeFiles/bench_appc_burst_lull.dir/bench_appc_burst_lull.cpp.o.d"
  "bench_appc_burst_lull"
  "bench_appc_burst_lull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appc_burst_lull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
