# Empty dependencies file for bench_appc_burst_lull.
# This may be replaced when dependencies are built.
