# Empty dependencies file for bench_sec8_priority.
# This may be replaced when dependencies are built.
