file(REMOVE_RECURSE
  "CMakeFiles/bench_sec8_priority.dir/bench_sec8_priority.cpp.o"
  "CMakeFiles/bench_sec8_priority.dir/bench_sec8_priority.cpp.o.d"
  "bench_sec8_priority"
  "bench_sec8_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
