# Empty compiler generated dependencies file for bench_fig2_poisson_tests.
# This may be replaced when dependencies are built.
