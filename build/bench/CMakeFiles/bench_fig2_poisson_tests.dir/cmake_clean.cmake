file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_poisson_tests.dir/bench_fig2_poisson_tests.cpp.o"
  "CMakeFiles/bench_fig2_poisson_tests.dir/bench_fig2_poisson_tests.cpp.o.d"
  "bench_fig2_poisson_tests"
  "bench_fig2_poisson_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_poisson_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
