file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_multiplexing.dir/bench_sec4_multiplexing.cpp.o"
  "CMakeFiles/bench_sec4_multiplexing.dir/bench_sec4_multiplexing.cpp.o.d"
  "bench_sec4_multiplexing"
  "bench_sec4_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
