file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_counts_5s.dir/bench_fig6_counts_5s.cpp.o"
  "CMakeFiles/bench_fig6_counts_5s.dir/bench_fig6_counts_5s.cpp.o.d"
  "bench_fig6_counts_5s"
  "bench_fig6_counts_5s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_counts_5s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
