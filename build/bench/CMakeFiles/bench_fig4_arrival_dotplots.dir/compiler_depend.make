# Empty compiler generated dependencies file for bench_fig4_arrival_dotplots.
# This may be replaced when dependencies are built.
