file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_arrival_dotplots.dir/bench_fig4_arrival_dotplots.cpp.o"
  "CMakeFiles/bench_fig4_arrival_dotplots.dir/bench_fig4_arrival_dotplots.cpp.o.d"
  "bench_fig4_arrival_dotplots"
  "bench_fig4_arrival_dotplots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_arrival_dotplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
