# Empty dependencies file for bench_sec8_admission.
# This may be replaced when dependencies are built.
