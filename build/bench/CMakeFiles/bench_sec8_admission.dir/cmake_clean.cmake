file(REMOVE_RECURSE
  "CMakeFiles/bench_sec8_admission.dir/bench_sec8_admission.cpp.o"
  "CMakeFiles/bench_sec8_admission.dir/bench_sec8_admission.cpp.o.d"
  "bench_sec8_admission"
  "bench_sec8_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
