# Empty compiler generated dependencies file for bench_fig1_hourly_rates.
# This may be replaced when dependencies are built.
