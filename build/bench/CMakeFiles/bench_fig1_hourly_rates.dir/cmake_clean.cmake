file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hourly_rates.dir/bench_fig1_hourly_rates.cpp.o"
  "CMakeFiles/bench_fig1_hourly_rates.dir/bench_fig1_hourly_rates.cpp.o.d"
  "bench_fig1_hourly_rates"
  "bench_fig1_hourly_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hourly_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
