file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_whittle.dir/bench_sec7_whittle.cpp.o"
  "CMakeFiles/bench_sec7_whittle.dir/bench_sec7_whittle.cpp.o.d"
  "bench_sec7_whittle"
  "bench_sec7_whittle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_whittle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
