# Empty compiler generated dependencies file for test_dist_pareto.
# This may be replaced when dependencies are built.
