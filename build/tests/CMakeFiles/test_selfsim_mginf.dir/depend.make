# Empty dependencies file for test_selfsim_mginf.
# This may be replaced when dependencies are built.
