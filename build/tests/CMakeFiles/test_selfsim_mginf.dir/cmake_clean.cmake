file(REMOVE_RECURSE
  "CMakeFiles/test_selfsim_mginf.dir/test_selfsim_mginf.cpp.o"
  "CMakeFiles/test_selfsim_mginf.dir/test_selfsim_mginf.cpp.o.d"
  "test_selfsim_mginf"
  "test_selfsim_mginf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfsim_mginf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
