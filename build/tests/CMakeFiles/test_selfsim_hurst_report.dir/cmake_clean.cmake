file(REMOVE_RECURSE
  "CMakeFiles/test_selfsim_hurst_report.dir/test_selfsim_hurst_report.cpp.o"
  "CMakeFiles/test_selfsim_hurst_report.dir/test_selfsim_hurst_report.cpp.o.d"
  "test_selfsim_hurst_report"
  "test_selfsim_hurst_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfsim_hurst_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
