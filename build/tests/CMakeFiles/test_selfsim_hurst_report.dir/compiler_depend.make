# Empty compiler generated dependencies file for test_selfsim_hurst_report.
# This may be replaced when dependencies are built.
