# Empty dependencies file for test_selfsim_fgn.
# This may be replaced when dependencies are built.
