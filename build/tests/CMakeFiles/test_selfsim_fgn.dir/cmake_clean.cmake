file(REMOVE_RECURSE
  "CMakeFiles/test_selfsim_fgn.dir/test_selfsim_fgn.cpp.o"
  "CMakeFiles/test_selfsim_fgn.dir/test_selfsim_fgn.cpp.o.d"
  "test_selfsim_fgn"
  "test_selfsim_fgn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfsim_fgn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
