file(REMOVE_RECURSE
  "CMakeFiles/test_dist_empirical_zipf.dir/test_dist_empirical_zipf.cpp.o"
  "CMakeFiles/test_dist_empirical_zipf.dir/test_dist_empirical_zipf.cpp.o.d"
  "test_dist_empirical_zipf"
  "test_dist_empirical_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_empirical_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
