# Empty compiler generated dependencies file for test_dist_empirical_zipf.
# This may be replaced when dependencies are built.
