# Empty compiler generated dependencies file for test_synth_machine_www.
# This may be replaced when dependencies are built.
