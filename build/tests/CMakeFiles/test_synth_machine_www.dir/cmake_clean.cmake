file(REMOVE_RECURSE
  "CMakeFiles/test_synth_machine_www.dir/test_synth_machine_www.cpp.o"
  "CMakeFiles/test_synth_machine_www.dir/test_synth_machine_www.cpp.o.d"
  "test_synth_machine_www"
  "test_synth_machine_www.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_machine_www.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
