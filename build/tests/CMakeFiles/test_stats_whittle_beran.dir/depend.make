# Empty dependencies file for test_stats_whittle_beran.
# This may be replaced when dependencies are built.
