file(REMOVE_RECURSE
  "CMakeFiles/test_stats_whittle_beran.dir/test_stats_whittle_beran.cpp.o"
  "CMakeFiles/test_stats_whittle_beran.dir/test_stats_whittle_beran.cpp.o.d"
  "test_stats_whittle_beran"
  "test_stats_whittle_beran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_whittle_beran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
