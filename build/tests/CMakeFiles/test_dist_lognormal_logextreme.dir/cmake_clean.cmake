file(REMOVE_RECURSE
  "CMakeFiles/test_dist_lognormal_logextreme.dir/test_dist_lognormal_logextreme.cpp.o"
  "CMakeFiles/test_dist_lognormal_logextreme.dir/test_dist_lognormal_logextreme.cpp.o.d"
  "test_dist_lognormal_logextreme"
  "test_dist_lognormal_logextreme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_lognormal_logextreme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
