# Empty compiler generated dependencies file for test_dist_lognormal_logextreme.
# This may be replaced when dependencies are built.
