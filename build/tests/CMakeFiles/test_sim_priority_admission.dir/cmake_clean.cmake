file(REMOVE_RECURSE
  "CMakeFiles/test_sim_priority_admission.dir/test_sim_priority_admission.cpp.o"
  "CMakeFiles/test_sim_priority_admission.dir/test_sim_priority_admission.cpp.o.d"
  "test_sim_priority_admission"
  "test_sim_priority_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_priority_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
