# Empty dependencies file for test_sim_priority_admission.
# This may be replaced when dependencies are built.
