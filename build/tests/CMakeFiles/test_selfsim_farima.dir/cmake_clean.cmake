file(REMOVE_RECURSE
  "CMakeFiles/test_selfsim_farima.dir/test_selfsim_farima.cpp.o"
  "CMakeFiles/test_selfsim_farima.dir/test_selfsim_farima.cpp.o.d"
  "test_selfsim_farima"
  "test_selfsim_farima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfsim_farima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
