# Empty compiler generated dependencies file for test_selfsim_farima.
# This may be replaced when dependencies are built.
