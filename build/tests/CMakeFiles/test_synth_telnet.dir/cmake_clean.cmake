file(REMOVE_RECURSE
  "CMakeFiles/test_synth_telnet.dir/test_synth_telnet.cpp.o"
  "CMakeFiles/test_synth_telnet.dir/test_synth_telnet.cpp.o.d"
  "test_synth_telnet"
  "test_synth_telnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_telnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
