# Empty compiler generated dependencies file for test_synth_telnet.
# This may be replaced when dependencies are built.
