# Empty compiler generated dependencies file for test_synth_ftp.
# This may be replaced when dependencies are built.
