file(REMOVE_RECURSE
  "CMakeFiles/test_synth_ftp.dir/test_synth_ftp.cpp.o"
  "CMakeFiles/test_synth_ftp.dir/test_synth_ftp.cpp.o.d"
  "test_synth_ftp"
  "test_synth_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
