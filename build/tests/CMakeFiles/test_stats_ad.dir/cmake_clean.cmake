file(REMOVE_RECURSE
  "CMakeFiles/test_stats_ad.dir/test_stats_ad.cpp.o"
  "CMakeFiles/test_stats_ad.dir/test_stats_ad.cpp.o.d"
  "test_stats_ad"
  "test_stats_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
