# Empty compiler generated dependencies file for test_stats_ad.
# This may be replaced when dependencies are built.
