# Empty dependencies file for test_selfsim_onoff_renewal.
# This may be replaced when dependencies are built.
