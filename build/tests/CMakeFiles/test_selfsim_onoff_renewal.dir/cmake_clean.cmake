file(REMOVE_RECURSE
  "CMakeFiles/test_selfsim_onoff_renewal.dir/test_selfsim_onoff_renewal.cpp.o"
  "CMakeFiles/test_selfsim_onoff_renewal.dir/test_selfsim_onoff_renewal.cpp.o.d"
  "test_selfsim_onoff_renewal"
  "test_selfsim_onoff_renewal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfsim_onoff_renewal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
