file(REMOVE_RECURSE
  "CMakeFiles/test_synth_synthesizer.dir/test_synth_synthesizer.cpp.o"
  "CMakeFiles/test_synth_synthesizer.dir/test_synth_synthesizer.cpp.o.d"
  "test_synth_synthesizer"
  "test_synth_synthesizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_synthesizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
