# Empty compiler generated dependencies file for test_synth_synthesizer.
# This may be replaced when dependencies are built.
