file(REMOVE_RECURSE
  "CMakeFiles/test_dist_tcplib.dir/test_dist_tcplib.cpp.o"
  "CMakeFiles/test_dist_tcplib.dir/test_dist_tcplib.cpp.o.d"
  "test_dist_tcplib"
  "test_dist_tcplib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_tcplib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
