# Empty dependencies file for test_dist_tcplib.
# This may be replaced when dependencies are built.
