file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fifo.dir/test_sim_fifo.cpp.o"
  "CMakeFiles/test_sim_fifo.dir/test_sim_fifo.cpp.o.d"
  "test_sim_fifo"
  "test_sim_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
