# Empty dependencies file for test_sim_fifo.
# This may be replaced when dependencies are built.
