# Empty dependencies file for test_core_reports.
# This may be replaced when dependencies are built.
