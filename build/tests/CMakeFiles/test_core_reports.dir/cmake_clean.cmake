file(REMOVE_RECURSE
  "CMakeFiles/test_core_reports.dir/test_core_reports.cpp.o"
  "CMakeFiles/test_core_reports.dir/test_core_reports.cpp.o.d"
  "test_core_reports"
  "test_core_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
