# Empty dependencies file for test_stats_tail_fit.
# This may be replaced when dependencies are built.
