file(REMOVE_RECURSE
  "CMakeFiles/test_stats_tail_fit.dir/test_stats_tail_fit.cpp.o"
  "CMakeFiles/test_stats_tail_fit.dir/test_stats_tail_fit.cpp.o.d"
  "test_stats_tail_fit"
  "test_stats_tail_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_tail_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
