# Empty compiler generated dependencies file for test_synth_weathermap_responder.
# This may be replaced when dependencies are built.
