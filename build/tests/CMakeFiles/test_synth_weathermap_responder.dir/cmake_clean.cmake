file(REMOVE_RECURSE
  "CMakeFiles/test_synth_weathermap_responder.dir/test_synth_weathermap_responder.cpp.o"
  "CMakeFiles/test_synth_weathermap_responder.dir/test_synth_weathermap_responder.cpp.o.d"
  "test_synth_weathermap_responder"
  "test_synth_weathermap_responder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_weathermap_responder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
