# Empty compiler generated dependencies file for test_synth_diurnal_arrivals.
# This may be replaced when dependencies are built.
