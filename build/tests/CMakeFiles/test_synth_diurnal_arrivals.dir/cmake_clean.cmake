file(REMOVE_RECURSE
  "CMakeFiles/test_synth_diurnal_arrivals.dir/test_synth_diurnal_arrivals.cpp.o"
  "CMakeFiles/test_synth_diurnal_arrivals.dir/test_synth_diurnal_arrivals.cpp.o.d"
  "test_synth_diurnal_arrivals"
  "test_synth_diurnal_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_diurnal_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
