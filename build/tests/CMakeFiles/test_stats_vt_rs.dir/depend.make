# Empty dependencies file for test_stats_vt_rs.
# This may be replaced when dependencies are built.
