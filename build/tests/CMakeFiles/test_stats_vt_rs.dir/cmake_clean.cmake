file(REMOVE_RECURSE
  "CMakeFiles/test_stats_vt_rs.dir/test_stats_vt_rs.cpp.o"
  "CMakeFiles/test_stats_vt_rs.dir/test_stats_vt_rs.cpp.o.d"
  "test_stats_vt_rs"
  "test_stats_vt_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_vt_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
