# Empty dependencies file for test_property_sampling.
# This may be replaced when dependencies are built.
