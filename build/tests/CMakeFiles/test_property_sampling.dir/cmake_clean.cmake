file(REMOVE_RECURSE
  "CMakeFiles/test_property_sampling.dir/test_property_sampling.cpp.o"
  "CMakeFiles/test_property_sampling.dir/test_property_sampling.cpp.o.d"
  "test_property_sampling"
  "test_property_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
