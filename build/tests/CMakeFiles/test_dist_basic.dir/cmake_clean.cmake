file(REMOVE_RECURSE
  "CMakeFiles/test_dist_basic.dir/test_dist_basic.cpp.o"
  "CMakeFiles/test_dist_basic.dir/test_dist_basic.cpp.o.d"
  "test_dist_basic"
  "test_dist_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
