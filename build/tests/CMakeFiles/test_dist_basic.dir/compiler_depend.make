# Empty compiler generated dependencies file for test_dist_basic.
# This may be replaced when dependencies are built.
