file(REMOVE_RECURSE
  "CMakeFiles/test_stats_poisson_test.dir/test_stats_poisson_test.cpp.o"
  "CMakeFiles/test_stats_poisson_test.dir/test_stats_poisson_test.cpp.o.d"
  "test_stats_poisson_test"
  "test_stats_poisson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_poisson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
