file(REMOVE_RECURSE
  "CMakeFiles/test_stats_dispersion_mmpp.dir/test_stats_dispersion_mmpp.cpp.o"
  "CMakeFiles/test_stats_dispersion_mmpp.dir/test_stats_dispersion_mmpp.cpp.o.d"
  "test_stats_dispersion_mmpp"
  "test_stats_dispersion_mmpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_dispersion_mmpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
