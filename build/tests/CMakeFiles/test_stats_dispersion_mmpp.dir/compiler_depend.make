# Empty compiler generated dependencies file for test_stats_dispersion_mmpp.
# This may be replaced when dependencies are built.
