file(REMOVE_RECURSE
  "CMakeFiles/test_stats_fitting.dir/test_stats_fitting.cpp.o"
  "CMakeFiles/test_stats_fitting.dir/test_stats_fitting.cpp.o.d"
  "test_stats_fitting"
  "test_stats_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
