
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_plot.cpp" "tests/CMakeFiles/test_plot.dir/test_plot.cpp.o" "gcc" "tests/CMakeFiles/test_plot.dir/test_plot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/wan_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/selfsim/CMakeFiles/wan_selfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wan_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wan_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/wan_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/wan_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wan_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/plot/CMakeFiles/wan_plot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
