# Empty compiler generated dependencies file for test_stats_hypothesis.
# This may be replaced when dependencies are built.
