file(REMOVE_RECURSE
  "CMakeFiles/test_stats_hypothesis.dir/test_stats_hypothesis.cpp.o"
  "CMakeFiles/test_stats_hypothesis.dir/test_stats_hypothesis.cpp.o.d"
  "test_stats_hypothesis"
  "test_stats_hypothesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_hypothesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
