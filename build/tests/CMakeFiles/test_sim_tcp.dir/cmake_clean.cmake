file(REMOVE_RECURSE
  "CMakeFiles/test_sim_tcp.dir/test_sim_tcp.cpp.o"
  "CMakeFiles/test_sim_tcp.dir/test_sim_tcp.cpp.o.d"
  "test_sim_tcp"
  "test_sim_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
