# Empty dependencies file for test_sim_tcp.
# This may be replaced when dependencies are built.
