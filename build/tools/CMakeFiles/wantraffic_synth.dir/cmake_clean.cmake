file(REMOVE_RECURSE
  "CMakeFiles/wantraffic_synth.dir/wantraffic_synth.cpp.o"
  "CMakeFiles/wantraffic_synth.dir/wantraffic_synth.cpp.o.d"
  "wantraffic_synth"
  "wantraffic_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wantraffic_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
