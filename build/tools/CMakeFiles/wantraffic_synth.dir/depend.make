# Empty dependencies file for wantraffic_synth.
# This may be replaced when dependencies are built.
