file(REMOVE_RECURSE
  "CMakeFiles/wantraffic_analyze.dir/wantraffic_analyze.cpp.o"
  "CMakeFiles/wantraffic_analyze.dir/wantraffic_analyze.cpp.o.d"
  "wantraffic_analyze"
  "wantraffic_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wantraffic_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
