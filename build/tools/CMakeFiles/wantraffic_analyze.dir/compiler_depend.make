# Empty compiler generated dependencies file for wantraffic_analyze.
# This may be replaced when dependencies are built.
