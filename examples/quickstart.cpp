// Quickstart: the library in ~60 lines.
//
//  1. Model user sessions the one way the paper endorses — Poisson with
//     fixed hourly rates — and verify with the Appendix-A test.
//  2. Generate TELNET packet traffic with FULL-TEL and see why
//     exponential packet gaps are the wrong model (variance-time).
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/example_quickstart
#include <cstdio>

#include "src/core/models.hpp"
#include "src/core/vt_comparison.hpp"
#include "src/stats/counting.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/poisson_test.hpp"

using namespace wan;

int main() {
  rng::Rng rng(42);

  // --- 1. Session arrivals: Poisson-with-hourly-rates is VALID here. ---
  core::SessionArrivalModel sessions(synth::DiurnalProfile::telnet(),
                                     /*sessions_per_day=*/5000.0);
  const auto starts =
      sessions.sample_arrivals(rng, 8.0 * 3600.0, 20.0 * 3600.0);
  std::printf("generated %zu TELNET session arrivals (8 AM - 8 PM)\n",
              starts.size());

  stats::PoissonTestConfig cfg;
  cfg.interval_length = 3600.0;
  const auto verdict = stats::test_poisson_arrivals(
      starts, cfg, 8.0 * 3600.0, 20.0 * 3600.0);
  std::printf("Appendix-A test: %s\n\n", stats::to_string(verdict).c_str());

  // --- 2. Packet arrivals: Poisson is NOT valid. ---
  core::FullTelnetModel telnet(/*conns_per_hour=*/140.0);
  const auto tcplib_trace = telnet.generate(rng, 0.0, 3600.0);
  const auto exp_trace = telnet.generate(
      rng, 0.0, 3600.0, synth::InterarrivalScheme::kExponential);

  const auto burstiness = [](const trace::PacketTrace& tr) {
    const auto counts =
        stats::bin_counts(tr.packet_times(), tr.t_begin(), tr.t_end(), 1.0);
    return stats::variance(counts) / stats::mean(counts);
  };
  std::printf("packets: tcplib %zu, exponential %zu\n", tcplib_trace.size(),
              exp_trace.size());
  std::printf("burstiness (1 s count variance / mean):\n");
  std::printf("  Tcplib gaps      %.2f\n", burstiness(tcplib_trace));
  std::printf("  exponential gaps %.2f   <- the Poisson straw man\n",
              burstiness(exp_trace));
  std::printf("\nsame load, very different traffic. That is the paper.\n");
  return 0;
}
