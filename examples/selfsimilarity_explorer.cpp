// Example: generating and detecting self-similar traffic — the Section
// VII toolkit as an application. Generates processes from each of the
// paper's three constructions (ON/OFF with heavy tails, M/G/inf with
// Pareto lifetimes, i.i.d.-Pareto pseudo-self-similar renewal), plus
// exact fGn, and pushes each through the full estimator battery.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/dist/exponential.hpp"
#include "src/dist/pareto.hpp"
#include "src/plot/ascii_plot.hpp"
#include "src/rng/rng.hpp"
#include "src/selfsim/fgn.hpp"
#include "src/selfsim/mginf.hpp"
#include "src/selfsim/onoff.hpp"
#include "src/selfsim/pareto_renewal.hpp"
#include "src/stats/beran.hpp"
#include "src/stats/counting.hpp"
#include "src/stats/rs_analysis.hpp"
#include "src/stats/variance_time.hpp"

using namespace wan;

namespace {

void battery(const char* name, const std::vector<double>& counts,
             std::vector<std::vector<std::string>>* rows) {
  const auto vt = stats::variance_time_plot(counts);
  std::vector<double> series = counts;
  while (series.size() > 8192) series = stats::aggregate_mean(series, 2);
  const auto rs = stats::rs_analysis(series);
  const auto beran = stats::beran_fgn_test(series);
  rows->push_back({name, plot::fmt(vt.hurst(4, 2000), 3),
                   plot::fmt(rs.hurst(), 3),
                   plot::fmt(beran.whittle.hurst, 3),
                   beran.consistent ? "yes" : "no"});
}

}  // namespace

int main(int argc, char** argv) {
  rng::Rng rng(argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                        : 2718);
  const std::size_t n = 1 << 15;
  std::vector<std::vector<std::string>> rows;

  {  // Exact fGn: the reference self-similar process.
    rng::Rng r = rng.child("fgn");
    battery("fGn H=0.8 (exact)", selfsim::generate_fgn(r, n, 0.8), &rows);
  }
  {  // ON/OFF with Pareto periods, the [28] construction.
    rng::Rng r = rng.child("onoff");
    const dist::Pareto on(1.0, 1.4), off(1.0, 1.4);
    selfsim::OnOffConfig cfg;
    cfg.n_sources = 40;
    battery("ON/OFF Pareto(1.4)",
            selfsim::onoff_aggregate_counts(r, on, off, n, cfg), &rows);
  }
  {  // M/G/inf with Pareto lifetimes (Appendix D).
    rng::Rng r = rng.child("mginf");
    const dist::Pareto life(1.0, 1.4);
    selfsim::MgInfConfig cfg;
    cfg.arrival_rate = 4.0;
    cfg.warmup = 40000.0;
    battery("M/G/inf Pareto(1.4)",
            selfsim::mginf_count_process(r, life, n, cfg), &rows);
  }
  {  // Pseudo-self-similar renewal counts (Appendix C).
    rng::Rng r = rng.child("renewal");
    selfsim::ParetoRenewalConfig cfg;
    cfg.shape = 1.0;
    cfg.bin_width = 1e3;
    battery("iid Pareto(1.0) renewal",
            selfsim::pareto_renewal_counts(r, n, cfg), &rows);
  }
  {  // Poisson control.
    rng::Rng r = rng.child("poisson");
    const dist::Exponential life(2.0);
    selfsim::MgInfConfig cfg;
    cfg.arrival_rate = 4.0;
    cfg.warmup = 100.0;
    battery("M/G/inf exponential (control)",
            selfsim::mginf_count_process(r, life, n, cfg), &rows);
  }

  std::printf("=== self-similarity estimator battery (n = %zu) ===\n\n", n);
  std::printf("%s\n",
              plot::render_table({"process", "VT H", "R/S H", "Whittle H",
                                  "fGn-consistent?"},
                                 rows)
                  .c_str());
  std::printf(
      "expected: fGn detected at H~0.8 and consistent; ON/OFF and M/G/inf "
      "heavy-tailed\nconstructions show H well above 1/2; the pseudo-self-"
      "similar renewal process shows\nelevated H over finite scales even "
      "though it is NOT truly LRD (Appendix C);\nthe exponential control "
      "sits at H ~ 1/2.\n");
  return 0;
}
