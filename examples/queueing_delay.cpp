// Example: what Poisson modeling costs you in capacity planning.
// Feeds a FIFO bottleneck with (a) measured-like Tcplib TELNET traffic
// and (b) the Poisson model of the same load, then reports the buffer
// size needed to hold packet loss under 0.1% at increasing utilization.
// The Poisson model recommends buffers that the real traffic overflows.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/plot/ascii_plot.hpp"
#include "src/rng/rng.hpp"
#include "src/sim/fifo.hpp"
#include "src/synth/telnet_source.hpp"

using namespace wan;

namespace {

std::vector<double> multiplexed(const synth::TelnetSource& src,
                                synth::InterarrivalScheme scheme,
                                std::uint64_t seed, int n_conns) {
  rng::Rng rng(seed);
  std::vector<double> times;
  for (int c = 0; c < n_conns; ++c) {
    const auto t = src.generate_packet_times(rng, 0.0, 2000, scheme);
    for (double v : t)
      if (v < 1200.0) times.push_back(v);
  }
  std::sort(times.begin(), times.end());
  return times;
}

// Smallest buffer (in packets) holding drop rate under `target`.
std::size_t buffer_for_loss(const std::vector<double>& arrivals,
                            double service, double target) {
  for (std::size_t buf : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u,
                          1024u, 4096u}) {
    const auto s = sim::simulate_fifo_const(arrivals, service, buf);
    const double loss = static_cast<double>(s.dropped) /
                        std::max<double>(1.0, double(s.arrived));
    if (loss <= target) return buf;
  }
  return 8192;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_conns = argc > 1 ? std::atoi(argv[1]) : 100;
  synth::TelnetConfig tc;
  tc.profile = synth::DiurnalProfile::flat();
  const synth::TelnetSource src(tc);

  const auto real =
      multiplexed(src, synth::InterarrivalScheme::kTcplib, 31, n_conns);
  const auto model =
      multiplexed(src, synth::InterarrivalScheme::kExponential, 32, n_conns);
  const double rate_r = static_cast<double>(real.size()) / 1200.0;
  const double rate_m = static_cast<double>(model.size()) / 1200.0;

  std::printf("provisioning a bottleneck for %d multiplexed TELNET "
              "connections (20 min)\n\n",
              n_conns);
  std::vector<std::vector<std::string>> rows;
  for (double rho : {0.6, 0.75, 0.9}) {
    const auto buf_model = buffer_for_loss(model, rho / rate_m, 1e-3);
    const auto buf_real = buffer_for_loss(real, rho / rate_r, 1e-3);
    // What actually happens if you provision by the model?
    const auto s =
        sim::simulate_fifo_const(real, rho / rate_r, buf_model);
    const double realized_loss = static_cast<double>(s.dropped) /
                                 std::max<double>(1.0, double(s.arrived));
    rows.push_back({plot::fmt(rho, 2), std::to_string(buf_model),
                    std::to_string(buf_real),
                    plot::fmt(100.0 * realized_loss, 3) + "%"});
  }
  std::printf(
      "%s\n",
      plot::render_table({"utilization", "buffer (Poisson model)",
                          "buffer (real traffic)", "loss if model-sized"},
                         rows)
          .c_str());
  std::printf("the Poisson model's buffer recommendation under-provisions; "
              "\"traffic spikes ride on\nripples riding on swells\" [18] — "
              "burstiness lives at every scale.\n");
  return 0;
}
