// Example: exploring TELNET burstiness across time scales with
// variance-time plots — the Section IV/V workflow as an application.
// Generates a reference trace, re-synthesizes it under all three
// interarrival schemes, prints the variance-time table, and runs the
// Hurst estimators on the result.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/vt_comparison.hpp"
#include "src/plot/ascii_plot.hpp"
#include "src/stats/counting.hpp"
#include "src/stats/rs_analysis.hpp"
#include "src/stats/whittle.hpp"

using namespace wan;

int main(int argc, char** argv) {
  core::VtComparisonConfig cfg;
  cfg.conns_per_hour = argc > 1 ? std::atof(argv[1]) : 136.5;
  cfg.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;
  std::printf("TELNET variance-time explorer: %.1f conns/hour, seed %llu\n\n",
              cfg.conns_per_hour,
              static_cast<unsigned long long>(cfg.seed));

  const auto cmp = core::run_vt_comparison(cfg);
  std::printf("synthesized %zu connections over two hours\n\n",
              cmp.n_connections);

  std::vector<std::vector<std::string>> rows;
  for (const auto& p : cmp.vt.at("TRACE").points) {
    const auto near = [&](const std::string& k) {
      for (const auto& q : cmp.vt.at(k).points) {
        if (q.m == p.m) return q.normalized;
      }
      return 0.0;
    };
    rows.push_back({std::to_string(p.m), plot::fmt(p.normalized, 4),
                    plot::fmt(near("TCPLIB"), 4), plot::fmt(near("EXP"), 4),
                    plot::fmt(near("VAR-EXP"), 4)});
  }
  std::printf("%s\n",
              plot::render_table(
                  {"M", "trace", "TCPLIB", "EXP", "VAR-EXP"}, rows)
                  .c_str());

  for (const auto& [name, vt] : cmp.vt) {
    const auto fit = vt.fit_slope(1, 300);
    std::printf("%-8s: VT slope %+6.3f -> H %.3f", name.c_str(), fit.slope,
                1.0 + fit.slope / 2.0);
    // Cross-check with Whittle on an aggregated version of the counts.
    auto agg = cmp.counts.at(name);
    while (agg.size() > 4096) agg = stats::aggregate_mean(agg, 2);
    const auto w = stats::whittle_fgn(agg);
    std::printf("   Whittle H %.3f +- %.3f\n", w.hurst, w.stderr_hurst);
  }
  std::printf("\nreading: TRACE/TCPLIB shallow (long-range correlated); "
              "EXP/VAR-EXP near slope -1 (Poisson-like).\n");
  return 0;
}
