// Example: the FTP heavy-tail workflow of Section VI as an application.
// Generates a day of FTP traffic, identifies FTPDATA bursts with the 4 s
// rule, fits the burst-byte tail, and shows why "modeling small FTP
// sessions is irrelevant; all that matters is the behavior of a few huge
// bursts".
#include <cstdio>
#include <cstdlib>

#include "src/core/models.hpp"
#include "src/plot/ascii_plot.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/poisson_test.hpp"
#include "src/stats/tail_fit.hpp"
#include "src/trace/burst.hpp"

using namespace wan;

int main(int argc, char** argv) {
  const double sessions_per_hour = argc > 1 ? std::atof(argv[1]) : 300.0;
  rng::Rng rng(argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                        : 1994);

  core::FtpModel ftp(sessions_per_hour);
  const auto tr = ftp.generate(rng, 0.0, 24.0 * 3600.0);
  std::printf("one synthetic day of FTP: %zu records\n", tr.size());

  // Session arrivals: the Poisson part.
  stats::PoissonTestConfig cfg;
  cfg.interval_length = 3600.0;
  const auto sessions = stats::test_poisson_arrivals(
      tr.arrival_times(trace::Protocol::kFtpCtrl), cfg, 0.0, 86400.0);
  std::printf("FTP session arrivals:  %s\n", to_string(sessions).c_str());
  const auto data = stats::test_poisson_arrivals(
      tr.arrival_times(trace::Protocol::kFtpData), cfg, 0.0, 86400.0);
  std::printf("FTPDATA conn arrivals: %s\n\n", to_string(data).c_str());

  // Bursts and their bytes.
  const auto bursts = trace::find_ftp_bursts(tr, 4.0);
  const auto bytes = trace::burst_bytes(bursts);
  std::printf("%zu FTPDATA bursts identified (gap <= 4 s)\n", bursts.size());
  const auto summary = stats::summarize(bytes);
  std::printf("burst bytes: median %.0f, mean %.0f, max %.3g\n",
              summary.median, summary.mean, summary.max);

  const auto fit = stats::ccdf_tail_fit(bytes, 0.05);
  std::printf("upper-5%% tail Pareto shape: beta = %.2f (paper: 0.9-1.4)\n",
              fit.beta);
  std::printf("mass in largest bursts: top 0.5%% -> %.0f%%, top 2%% -> "
              "%.0f%%, top 10%% -> %.0f%%\n\n",
              100.0 * stats::mass_in_top_fraction(bytes, 0.005),
              100.0 * stats::mass_in_top_fraction(bytes, 0.02),
              100.0 * stats::mass_in_top_fraction(bytes, 0.10));

  // The engineering moral.
  std::printf("moral: at any moment FTP traffic is likely dominated by a "
              "single huge burst;\nprovisioning from mean rates (as "
              "Poisson theory invites) misses exactly that.\n");
  return 0;
}
