// Example: an end-to-end trace pipeline — synthesize a site's day of
// connections, write it to CSV (the library's interchange format), read
// it back, and run the full Fig. 2 analysis on the loaded copy. This is
// the workflow for analyzing YOUR traces: put them in the CSV schema and
// everything downstream applies.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/poisson_report.hpp"
#include "src/synth/synthesizer.hpp"
#include "src/trace/csv_io.hpp"

using namespace wan;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "example_site_trace.csv";

  // 1. Synthesize and persist.
  auto cfg = synth::lbl_conn_preset("EXAMPLE-SITE", 1.0, 777);
  const auto tr = synth::synthesize_conn_trace(cfg);
  trace::write_csv_file(tr, path);
  std::printf("wrote %zu connection records to %s\n", tr.size(),
              path.c_str());

  // 2. Load (as one would load a real SYN/FIN trace in this schema).
  const auto loaded = trace::read_conn_csv_file(path);
  std::printf("read back %zu records (t in [%.0f, %.0f))\n\n", loaded.size(),
              loaded.t_begin(), loaded.t_end());

  // 3. Summarize.
  std::printf("per-protocol volumes:\n");
  for (const auto& row : loaded.summary()) {
    std::printf("  %-8s %7zu conns %12.3f MB\n",
                std::string(trace::to_string(row.protocol)).c_str(),
                row.connections, static_cast<double>(row.bytes) / 1e6);
  }
  std::printf("\n");

  // 4. Run the Appendix-A battery at both interval lengths.
  for (double interval : {3600.0, 600.0}) {
    core::PoissonReportConfig rc;
    rc.interval_length = interval;
    const auto rows = core::poisson_report(loaded, rc);
    std::printf("--- Poisson verdicts, %.0f-second intervals ---\n",
                interval);
    std::printf("%s\n", core::render_poisson_report(rows).c_str());
  }
  return 0;
}
