#include "src/stream/window_analyzer.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "src/stats/counting.hpp"
#include "src/stream/columnar_filters.hpp"

namespace wan::stream {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Variance-time H of one window's counts, or NaN when the window is
/// too sparse to fit (fewer than two levels with nonzero variance —
/// e.g. a tracked protocol that went quiet under a running monitor).
/// A full-trace analysis still throws through variance_time_plot
/// directly; per-window sparsity must degrade, not kill the stream.
double vt_hurst_or_nan(std::span<const double> counts) {
  try {
    return stats::variance_time_plot(counts).hurst();
  } catch (const std::invalid_argument&) {
    return std::numeric_limits<double>::quiet_NaN();
  }
}

/// num / den as a whole positive count, to the relative tolerance that
/// separates "user meant a multiple" from "user picked misaligned
/// spans". Throws with both operands in the message otherwise.
std::size_t exact_ratio(double num, double den, const char* num_name,
                        const char* den_name) {
  const double r = num / den;
  const double rounded = std::round(r);
  if (!(rounded >= 1.0) || std::abs(r - rounded) > 1e-6 * rounded) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "windowed analysis: %s (%g s) must be a whole positive "
                  "multiple of %s (%g s); got ratio %g",
                  num_name, num, den_name, den, r);
    throw std::invalid_argument(buf);
  }
  return static_cast<std::size_t>(rounded);
}

[[noreturn]] void fail(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  throw std::invalid_argument(buf);
}

}  // namespace

WindowGeometry window_geometry(const WindowedOptions& options) {
  if (!(options.bin > 0.0))
    fail("windowed analysis: bin width must be > 0 (got %g)", options.bin);
  if (!(options.window > 0.0))
    fail("windowed analysis: --window must be set to a positive span "
         "in seconds (got %g)",
         options.window);
  const double slide = options.slide == 0.0 ? options.window : options.slide;
  if (!(slide > 0.0))
    fail("windowed analysis: --slide must be > 0 (got %g)", slide);

  WindowGeometry g;
  g.window_bins = exact_ratio(options.window, options.bin, "--window", "--bin");
  g.slide_bins = exact_ratio(slide, options.bin, "--slide", "--bin");
  if (g.slide_bins > g.window_bins || g.window_bins % g.slide_bins != 0)
    fail("windowed analysis: --slide (%zu bins) must divide --window "
         "(%zu bins) so every window starts on a slide boundary",
         g.slide_bins, g.window_bins);
  if (g.window_bins < 16)
    fail("windowed analysis: --window spans only %zu bins of --bin; the "
         "estimators need at least 16 (widen the window or narrow the bin)",
         g.window_bins);

  const std::size_t align = std::size_t{1} << options.sweep_levels;
  if (g.slide_bins % align != 0)
    fail("windowed analysis: --slide (%zu bins) must be divisible by "
         "2^sweep_levels (%zu) so every aggregation level advances by "
         "whole samples per slide",
         g.slide_bins, align);
  const std::size_t seg =
      options.segment_bins != 0 ? options.segment_bins : g.slide_bins / align;
  if (seg < 4 || seg % 2 != 0) {
    if (options.segment_bins != 0)
      fail("windowed analysis: --segment-bins must be even and >= 4 "
           "(got %zu) — the periodogram frequency grid needs an even "
           "segment length",
           seg);
    fail("windowed analysis: derived segment length %zu bins "
         "(slide / 2^sweep_levels) is not even and >= 4; pass "
         "--segment-bins explicitly or widen --slide",
         seg);
  }
  if (g.slide_bins % (seg * align) != 0)
    fail("windowed analysis: segment length x 2^sweep_levels (%zu x %zu "
         "bins) must divide --slide (%zu bins) so each slide completes "
         "whole segments at every level",
         seg, align, g.slide_bins);
  g.segment_bins = seg;
  g.segments_per_window = g.window_bins / seg;

  if (options.poisson_interval < 0.0)
    fail("windowed analysis: --poisson-interval must be >= 0 (got %g)",
         options.poisson_interval);
  if (options.poisson_interval > 0.0) {
    g.intervals_per_slide = exact_ratio(slide, options.poisson_interval,
                                        "--slide", "--poisson-interval");
    g.window_intervals = exact_ratio(options.window, options.poisson_interval,
                                     "--window", "--poisson-interval");
  }
  return g;
}

WindowedAnalyzer::WindowedAnalyzer(const WindowedOptions& options,
                                   double t_begin,
                                   std::function<void(const WindowReport&)> sink)
    : options_(options),
      geometry_(window_geometry(options)),
      t_begin_(t_begin),
      sink_(std::move(sink)),
      counts_(t_begin, options.bin, geometry_.window_bins),
      spectrum_(geometry_.segment_bins, geometry_.segments_per_window,
                options.sweep_levels),
      moments_(geometry_.slide_bins, geometry_.window_bins / geometry_.slide_bins),
      burst_(geometry_.slide_bins, geometry_.window_bins / geometry_.slide_bins) {
  if (options_.poisson_interval > 0.0) {
    stats::PoissonTestConfig config;
    config.interval_length = options_.poisson_interval;
    poisson_ = std::make_unique<stats::WindowedPoissonTest>(
        config, t_begin, geometry_.window_intervals);
  }
  counts_.set_bin_observer([this](double count) { on_bin_complete(count); });
}

WindowedAnalyzer::~WindowedAnalyzer() = default;

void WindowedAnalyzer::push_times(std::span<const double> times) {
  for (double t : times) {
    // counts_ first: a slide-boundary report fires from inside add()
    // BEFORE the event reaches the Poisson ring, so the report's
    // interval window cannot be advanced past the count window by an
    // event that belongs to the next slide.
    counts_.add(t);
    if (poisson_) poisson_->push(t);
  }
}

void WindowedAnalyzer::finish(double t_end) {
  // Complete every whole bin the stream span covers. The +1e-9 bin
  // tolerance keeps a t_end sitting a rounding error below a bin edge
  // from dropping the final bin (and with it the final report).
  const double whole = (t_end - t_begin_) / options_.bin + 1e-9;
  if (whole < 0.0) return;
  const auto idx = static_cast<std::uint64_t>(whole);
  // Midpoint of bin idx: advance_to completes bins [0, idx) and cannot
  // itself fall foul of edge rounding.
  counts_.advance_to(t_begin_ +
                     (static_cast<double>(idx) + 0.5) * options_.bin);
}

void WindowedAnalyzer::on_bin_complete(double count) {
  spectrum_.push_samples(std::span<const double>(&count, 1));
  moments_.push(count);
  burst_.push(count);
  ++bins_done_;
  if (bins_done_ >= geometry_.window_bins &&
      bins_done_ % geometry_.slide_bins == 0)
    emit_report();
}

void WindowedAnalyzer::emit_report() {
  WindowReport report;
  report.t1 = t_begin_ + static_cast<double>(bins_done_) * options_.bin;
  report.t0 =
      t_begin_ +
      static_cast<double>(bins_done_ - geometry_.window_bins) * options_.bin;

  counts_.window_counts(scratch_counts_);
  double total = 0.0;
  for (double c : scratch_counts_) total += c;  // exact: small-integer adds
  report.packets = static_cast<std::uint64_t>(std::llround(total));

  const stats::MomentAccumulator moments = moments_.merged();
  report.mean_count = moments.mean();
  report.var_count = moments.variance_population();
  const stats::BurstLull bl = burst_.merged().finish();
  report.mean_burst_bins = bl.mean_burst_bins();
  report.mean_lull_bins = bl.mean_lull_bins();
  report.vt_hurst = vt_hurst_or_nan(scratch_counts_);

  const fft::Periodogram base = spectrum_.ring(0).finish();
  if (!refitter_)
    refitter_ = std::make_unique<stats::WhittleRefitter>(base.frequency);

  stats::WhittleOptions whittle_options;
  if (last_hurst_) {
    whittle_options.hurst_hint = *last_hurst_;
    report.whittle_warm = true;
  }
  report.whittle = refitter_->fit(base, whittle_options);
  last_hurst_ = report.whittle.hurst;

  if (options_.sweep_levels > 0) {
    report.sweep_hurst.reserve(options_.sweep_levels + 1);
    report.sweep_hurst.push_back(report.whittle.hurst);
    double hint = report.whittle.hurst;
    for (std::size_t level = 1; level <= options_.sweep_levels; ++level) {
      stats::WhittleOptions level_options;
      level_options.hurst_hint = hint;
      const stats::WhittleResult fit =
          refitter_->fit(spectrum_.ring(level).finish(), level_options);
      report.sweep_hurst.push_back(fit.hurst);
      hint = fit.hurst;
    }
  }

  if (poisson_) {
    // Interval index the window ends on — exact integer arithmetic, so
    // the advance cannot land on the wrong side of an interval edge.
    const std::uint64_t target =
        (bins_done_ / geometry_.slide_bins) * geometry_.intervals_per_slide;
    poisson_->advance_to(t_begin_ + (static_cast<double>(target) + 0.5) *
                                        options_.poisson_interval);
    report.poisson = poisson_->result();
  }

  ++reports_;
  sink_(report);
}

std::vector<WindowReport> analyze_windowed(PacketColumnSource& source,
                                           const WindowedOptions& options) {
  PacketColumnSource* src = &source;
  std::optional<ColumnFilterSource> filter;
  if (options.protocol || options.orig_data_only) {
    filter.emplace(*src, options.protocol, options.orig_data_only);
    src = &*filter;
  }

  const StreamInfo info = src->info();
  const WindowGeometry geometry = window_geometry(options);
  const double whole = (info.t_end - info.t_begin) / options.bin + 1e-9;
  const auto stream_bins =
      whole < 0.0 ? std::uint64_t{0} : static_cast<std::uint64_t>(whole);
  if (stream_bins < geometry.window_bins) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "windowed analysis: stream spans %llu whole bins but one "
                  "window needs %zu — shorten --window or analyze a longer "
                  "stream",
                  static_cast<unsigned long long>(stream_bins),
                  geometry.window_bins);
    throw std::invalid_argument(buf);
  }

  std::vector<WindowReport> reports;
  WindowedAnalyzer engine(
      options, info.t_begin,
      [&reports](const WindowReport& r) { reports.push_back(r); });
  PacketColumns chunk;
  while (src->next(chunk))
    engine.push_times(std::span<const double>(chunk.time));
  engine.finish(info.t_end);
  return reports;
}

std::vector<WindowReport> analyze_windowed(PacketChunkSource& source,
                                           const WindowedOptions& options) {
  ColumnsFromRows columns(source);
  return analyze_windowed(columns, options);
}

WindowReport analyze_window_counts(std::span<const double> counts, double t0,
                                   const WindowedOptions& options,
                                   std::uint64_t packets) {
  const WindowGeometry geometry = window_geometry(options);
  if (counts.size() != geometry.window_bins) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "analyze_window_counts: got %zu bins, geometry says a "
                  "window is %zu",
                  counts.size(), geometry.window_bins);
    throw std::invalid_argument(buf);
  }

  WindowReport report;
  report.t0 = t0;
  report.t1 = t0 + options.window;
  report.packets = packets;

  stats::MomentAccumulator moments;
  moments.push(counts);
  report.mean_count = moments.mean();
  report.var_count = moments.variance_population();
  const stats::BurstLull bl = stats::burst_lull_structure(counts);
  report.mean_burst_bins = bl.mean_burst_bins();
  report.mean_lull_bins = bl.mean_lull_bins();
  report.vt_hurst = vt_hurst_or_nan(counts);

  // Cold Whittle fits per level; the level series descends by repeated
  // pairwise means — the arithmetic the rolling cascade replicates
  // bit for bit (NOT one aggregate_mean(counts, 2^l), whose block sums
  // group the additions differently).
  std::vector<double> series(counts.begin(), counts.end());
  for (std::size_t level = 0; level <= options.sweep_levels; ++level) {
    if (level > 0) series = stats::aggregate_mean(series, 2);
    fft::AveragedPeriodogram averaged(geometry.segment_bins);
    for (std::size_t s = 0; s + geometry.segment_bins <= series.size();
         s += geometry.segment_bins)
      averaged.push(std::span<const double>(series).subspan(
          s, geometry.segment_bins));
    const stats::WhittleResult fit =
        stats::whittle_fgn_from_periodogram(averaged.finish());
    if (level == 0) report.whittle = fit;
    if (options.sweep_levels > 0) report.sweep_hurst.push_back(fit.hurst);
  }
  return report;
}

WindowReport analyze_window_batch(std::span<const double> times, double t0,
                                  const WindowedOptions& options) {
  const WindowGeometry geometry = window_geometry(options);
  std::vector<double> counts(geometry.window_bins, 0.0);
  std::uint64_t packets = 0;
  for (double t : times) {
    if (t < t0) continue;
    const auto idx = static_cast<std::size_t>((t - t0) / options.bin);
    if (idx >= counts.size()) continue;
    counts[idx] += 1.0;
    ++packets;
  }
  WindowReport report = analyze_window_counts(counts, t0, options, packets);
  if (options.poisson_interval > 0.0) {
    stats::PoissonTestConfig config;
    config.interval_length = options.poisson_interval;
    report.poisson = stats::test_poisson_arrivals(times, config, t0,
                                                  t0 + options.window);
  }
  return report;
}

std::string to_string(const WindowReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[%10.2f, %10.2f) pkts=%llu mean=%.4g var=%.4g "
                "burst=%.3g lull=%.3g H_vt=%.4f H_w=%.4f+-%.4f%s",
                report.t0, report.t1,
                static_cast<unsigned long long>(report.packets),
                report.mean_count, report.var_count, report.mean_burst_bins,
                report.mean_lull_bins, report.vt_hurst, report.whittle.hurst,
                report.whittle.stderr_hurst,
                report.whittle_warm ? " (warm)" : "");
  std::string out = buf;
  if (!report.sweep_hurst.empty()) {
    out += " sweep=";
    for (std::size_t i = 0; i < report.sweep_hurst.size(); ++i) {
      if (i > 0) out += '/';
      std::snprintf(buf, sizeof(buf), "%.3f", report.sweep_hurst[i]);
      out += buf;
    }
  }
  if (report.poisson) {
    out += " | ";
    out += to_string(*report.poisson);
  }
  return out;
}

std::string window_csv_header() {
  return "t0,t1,packets,mean_count,var_count,mean_burst_bins,mean_lull_bins,"
         "vt_hurst,whittle_hurst,whittle_stderr,whittle_warm,sweep_hurst,"
         "poisson_frac_exp,poisson_frac_indep,poisson_verdict\n";
}

std::string window_csv_row(const WindowReport& report) {
  std::string out = fmt_double(report.t0) + ',' + fmt_double(report.t1) + ',' +
                    std::to_string(report.packets) + ',' +
                    fmt_double(report.mean_count) + ',' +
                    fmt_double(report.var_count) + ',' +
                    fmt_double(report.mean_burst_bins) + ',' +
                    fmt_double(report.mean_lull_bins) + ',' +
                    fmt_double(report.vt_hurst) + ',' +
                    fmt_double(report.whittle.hurst) + ',' +
                    fmt_double(report.whittle.stderr_hurst) + ',' +
                    (report.whittle_warm ? "1" : "0") + ',';
  for (std::size_t i = 0; i < report.sweep_hurst.size(); ++i) {
    if (i > 0) out += ';';
    out += fmt_double(report.sweep_hurst[i]);
  }
  out += ',';
  if (report.poisson) {
    out += fmt_double(report.poisson->frac_pass_exponential) + ',' +
           fmt_double(report.poisson->frac_pass_independence) + ',' +
           (report.poisson->poisson ? "poisson" : "not-poisson");
  } else {
    out += ",,";
  }
  out += '\n';
  return out;
}

}  // namespace wan::stream
