#include "src/stream/csv_chunk.hpp"

#include <stdexcept>

#include "src/trace/csv_io.hpp"

namespace wan::stream {

ChunkedCsvWriter::ChunkedCsvWriter(const std::string& path,
                                   const StreamInfo& info)
    : os_(path) {
  if (!os_)
    throw std::runtime_error("csv_chunk: cannot open for write: " + path);
  trace::write_packet_csv_header(os_, info.name, info.t_begin, info.t_end);
}

void ChunkedCsvWriter::write(const trace::PacketRecord& r) {
  trace::write_packet_csv_row(os_, r);
  ++count_;
}

void ChunkedCsvWriter::write(std::span<const trace::PacketRecord> records) {
  for (const trace::PacketRecord& r : records) write(r);
}

void ChunkedCsvWriter::close() {
  os_.flush();
  if (!os_) throw std::runtime_error("csv_chunk: write failed on close");
  os_.close();
}

CsvChunkSource::CsvChunkSource(const std::string& path,
                               std::size_t chunk_size)
    : is_(path), chunk_size_(chunk_size) {
  if (!is_)
    throw std::runtime_error("csv_chunk: cannot open for read: " + path);
  const auto [t_begin, t_end] = trace::read_packet_csv_header(is_);
  if (t_end <= t_begin)
    throw std::runtime_error(
        "csv_chunk: file lacks t_begin/t_end metadata; a single forward "
        "pass cannot recover the trace window: " + path);
  info_ = {path, t_begin, t_end};
  data_offset_ = is_.tellg();
  line_no_ = 2;  // metadata + column header consumed
}

bool CsvChunkSource::next(std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  std::string line;
  while (chunk.size() < chunk_size_ && std::getline(is_, line)) {
    ++line_no_;
    if (line.empty()) continue;
    chunk.push_back(trace::parse_packet_csv_row(line, line_no_));
  }
  return !chunk.empty();
}

void CsvChunkSource::reset() {
  is_.clear();
  is_.seekg(data_offset_);
  if (!is_) throw std::runtime_error("csv_chunk: reset seek failed");
  line_no_ = 2;
}

}  // namespace wan::stream
