// Chunked access to the packet-CSV format, built on the row helpers in
// src/trace/csv_io.hpp so a streamed file is byte-identical to one
// produced by write_csv_file.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>

#include "src/stream/chunk.hpp"

namespace wan::stream {

class ChunkedCsvWriter {
 public:
  /// Opens `path` and writes the metadata + column header immediately.
  /// Throws std::runtime_error if the file cannot be opened.
  ChunkedCsvWriter(const std::string& path, const StreamInfo& info);

  void write(const trace::PacketRecord& r);
  void write(std::span<const trace::PacketRecord> records);

  std::uint64_t count() const { return count_; }

  /// Flushes; throws on I/O failure.
  void close();

 private:
  std::ofstream os_;
  std::uint64_t count_ = 0;
};

/// Streams a packet-CSV file chunk by chunk. Unlike read_packet_csv,
/// which can recover t_end from the maximum record time, a single
/// forward pass cannot — so the file must carry the metadata comment
/// with t_end > t_begin (every file this repo writes does).
class CsvChunkSource final : public PacketChunkSource {
 public:
  /// Throws std::runtime_error on open failure, a missing/degenerate
  /// metadata line, or (lazily, from next()) a malformed row.
  explicit CsvChunkSource(const std::string& path,
                          std::size_t chunk_size = kDefaultChunkSize);

  const StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

 private:
  std::ifstream is_;
  StreamInfo info_;
  std::streampos data_offset_;
  std::size_t line_no_ = 0;
  std::size_t chunk_size_;
};

}  // namespace wan::stream
