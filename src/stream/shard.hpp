// Shard-by-flow-hash parallelism for the streaming pipeline.
//
// A trace is partitioned by connection: every packet of a connection
// lands in the shard selected by a fixed mix of its conn id, so
// per-connection computations (the bulk-outlier detector, flow state)
// stay shard-local while per-bin computations (count accumulation) are
// exact integer adds that merge across shards bit-for-bit. The shard
// assignment is a pure function of the record and the shard count —
// never of the thread count, queue sizing, or scheduling — which is the
// first half of the determinism story. The second half is that merged
// accumulator state is reduced in fixed shard order (0 <- 1 <- 2 ...),
// so a sharded run at ANY thread count emits the same bytes as the
// serial path.
//
// ShardRouter moves the chunks: one pump (the calling thread) drains
// the upstream source, splits each chunk into per-shard sub-chunks with
// the selection/gather kernels, and pushes them onto one bounded queue
// per shard; per-shard consumers run on the src/par pool and drain
// their queue in order. The queues bound memory (backpressure: the pump
// blocks while a queue is full, so the generator runs ahead by at most
// queue_chunks chunks per shard) and serialize each shard's sub-chunks
// in upstream order. At par::thread_count() == 1 the router runs the
// identical partition inline, invoking consumers synchronously in shard
// order — no queues, no threads, same per-shard chunk sequences.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "src/stream/chunk.hpp"
#include "src/stream/columnar.hpp"
#include "src/stream/conn_chunk.hpp"
#include "src/stream/pipeline.hpp"

namespace wan::stream {

/// splitmix64 finalizer: the bit mix shard assignment runs on keys.
/// Decorrelates shard choice from conn-id assignment order, so dense
/// sequential ids spread evenly at any shard count.
inline std::uint64_t shard_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shard of a packet: a pure function of (conn_id, n_shards).
inline std::size_t shard_of(std::uint32_t conn_id,
                            std::size_t n_shards) noexcept {
  return static_cast<std::size_t>(shard_mix(conn_id) %
                                  static_cast<std::uint64_t>(n_shards));
}

/// Shard of a connection record: a pure function of the unordered host
/// pair, so both directions — and every connection of one host pair,
/// e.g. an FTP session's control and data connections — land together.
inline std::size_t shard_of_hosts(std::uint32_t a, std::uint32_t b,
                                  std::size_t n_shards) noexcept {
  const std::uint32_t lo = a < b ? a : b;
  const std::uint32_t hi = a < b ? b : a;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  return static_cast<std::size_t>(shard_mix(key) %
                                  static_cast<std::uint64_t>(n_shards));
}

/// Splits `in` into per-shard sub-chunks appended-nowhere: out[s] is
/// cleared and receives in's rows with shard_of(conn_id) == s, in row
/// order. out.size() must equal n_shards.
void partition_packets(const PacketColumns& in, std::size_t n_shards,
                       std::vector<PacketColumns>& out);

/// Conn twin of partition_packets, keyed by shard_of_hosts.
void partition_conns(const ConnColumns& in, std::size_t n_shards,
                     std::vector<ConnColumns>& out);

/// Bounded MPSC chunk queue: push blocks while full (backpressure on
/// the producer), pop blocks while empty and returns false once the
/// queue is closed and drained.
template <class Chunk>
class BoundedChunkQueue {
 public:
  explicit BoundedChunkQueue(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  void push(Chunk&& c) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return;  // consumer gave up; drop to unblock the producer
    q_.push_back(std::move(c));
    lock.unlock();
    not_empty_.notify_one();
  }

  bool pop(Chunk& out) {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// After close: push drops, pop drains the backlog then returns false.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Chunk> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Routing configuration. queue_chunks bounds the per-shard queue, so
/// routed memory is at most n_shards * queue_chunks * chunk bytes ahead
/// of the consumers.
struct ShardRouterOptions {
  std::size_t n_shards = 1;
  std::size_t queue_chunks = 4;
};

/// Splits a chunk source into per-shard sub-streams. consume(s, chunk)
/// receives shard s's sub-chunks in upstream order; calls for one shard
/// never overlap (they run on one consumer), different shards run
/// concurrently when par::thread_count() > 1. The per-shard sub-chunk
/// sequences are identical at every thread count.
class ShardRouter {
 public:
  /// Throws std::invalid_argument unless 1 <= n_shards <= kMaxShards.
  explicit ShardRouter(ShardRouterOptions options);

  std::size_t n_shards() const { return options_.n_shards; }

  /// Drains `source` once (no reset), routing rows by shard_of(conn_id).
  void route(PacketColumnSource& source,
             const std::function<void(std::size_t, const PacketColumns&)>&
                 consume);

  /// Conn twin, routing rows by shard_of_hosts(src_host, dst_host).
  void route(ConnColumnSource& source,
             const std::function<void(std::size_t, const ConnColumns&)>&
                 consume);

  /// Row-source conveniences: adapt through ColumnsFromRows (same rows,
  /// same order) and route the columnar stream.
  void route(PacketChunkSource& source,
             const std::function<void(std::size_t, const PacketColumns&)>&
                 consume);
  void route(ConnChunkSource& source,
             const std::function<void(std::size_t, const ConnColumns&)>&
                 consume);

  static constexpr std::size_t kMaxShards = 1024;

 private:
  ShardRouterOptions options_;
};

/// Sharded twin of analyze_columns: partitions the stream across
/// n_shards, accumulates bin counts (and, when options.remove_outliers
/// is set, runs the two-pass bulk-outlier scan per shard — outlier
/// decisions are per-connection, and a connection is shard-local),
/// merges shard state in shard order, and finishes the variance-time /
/// burst-lull / moment analyses on the merged count series. The result
/// is byte-identical to analyze_columns(source, options) at every
/// (shard count, thread count): bin-count merge is exact, and
/// everything downstream of the merged counts is the serial code.
///
/// With remove_outliers the source is drained twice (reset() between
/// passes), exactly like ColumnBulkOutlierSource.
PipelineResult analyze_sharded(PacketColumnSource& source,
                               const PipelineOptions& options,
                               ShardRouterOptions shard_options);

/// Row-source convenience, like analyze_stream vs analyze_columns.
PipelineResult analyze_stream_sharded(PacketChunkSource& source,
                                      const PipelineOptions& options,
                                      ShardRouterOptions shard_options);

/// Per-shard-source form: shard s pulls from its own source instead of
/// routing one shared stream through queues — the shape per-shard
/// synthesis wants, where each shard regenerates exactly its own
/// connections. make_shard(s) must return a source whose records are
/// exactly the serial stream's records with shard_of(conn_id, n_shards)
/// == s (per connection, in time order), and whose info matches the
/// serial source's — which StreamingPacketSynthesizer's SynthShard
/// guarantees. make_shard may be called concurrently from pool
/// threads. Shards run concurrently via par::parallel_for (each
/// doing its own outlier two-pass locally — outlier decisions are
/// per-connection, hence shard-local); merged output is byte-identical
/// to the serial analysis, same argument as analyze_sharded.
PipelineResult analyze_sharded_sources(
    const std::function<std::unique_ptr<PacketChunkSource>(std::size_t)>&
        make_shard,
    std::size_t n_shards, const PipelineOptions& options);

}  // namespace wan::stream
