// Columnar (struct-of-arrays) twin of the row chunk contract: a
// PacketColumns/ConnColumns chunk holds each record field as its own
// contiguous column, so an analysis pass that reads one or two fields
// (binning reads times, protocol filtering reads protocol bytes) walks
// only those bytes — no full-record cache lines, no per-record padding,
// and the per-column loops auto-vectorize.
//
// The source contract mirrors chunk.hpp exactly: next() clears then
// fills up to the chunk size, false means exhausted, rows arrive in the
// order a batch construction would hold them, reset() rewinds to an
// identical sequence. Row-oriented readers (binary/CSV files, the
// streaming synthesizer, ingest) feed this path unchanged through the
// ColumnsFromRows adapter; RowsFromColumns is the reverse bridge, which
// is how the parity tests compare the two layouts record for record.
//
// Memory: a PacketRecord is 24 bytes after padding; its columns sum to
// 16 bytes per row (a ConnRecord is 56 vs 49). kPacketRowBytes /
// kPacketColumnBytes make the win checkable in benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/stream/chunk.hpp"
#include "src/stream/conn_chunk.hpp"
#include "src/trace/packet_trace.hpp"
#include "src/trace/records.hpp"

namespace wan::stream {

/// Column-per-field layout of a PacketRecord sequence. Row i is
/// (time[i], protocol[i], conn_id[i], from_originator[i],
/// payload_bytes[i]); all columns always have equal length.
struct PacketColumns {
  std::vector<double> time;
  std::vector<trace::Protocol> protocol;
  std::vector<std::uint32_t> conn_id;
  /// 0/1 instead of bool: std::vector<bool> is a bitset whose proxy
  /// iterators block auto-vectorization of selection loops.
  std::vector<std::uint8_t> from_originator;
  std::vector<std::uint16_t> payload_bytes;

  std::size_t size() const { return time.size(); }
  bool empty() const { return time.empty(); }
  void clear();
  void reserve(std::size_t n);

  /// Inline: this is the fused ingest path's per-packet append, and the
  /// five capacity checks predict perfectly after a reserve().
  void push_back(const trace::PacketRecord& r) {
    time.push_back(r.time);
    protocol.push_back(r.protocol);
    conn_id.push_back(r.conn_id);
    from_originator.push_back(r.from_originator ? 1 : 0);
    payload_bytes.push_back(r.payload_bytes);
  }
  void append_rows(std::span<const trace::PacketRecord> rows);

  /// Row i reassembled as a record (the AoS view of one row).
  trace::PacketRecord row(std::size_t i) const;
  /// Appends every row, in order, to out.
  void to_rows(std::vector<trace::PacketRecord>& out) const;

  /// Heap bytes of the column payloads at the current size — the
  /// padding-free footprint benches compare against rows.
  std::size_t byte_size() const { return size() * kPacketColumnBytes; }

  static constexpr std::size_t kPacketRowBytes = sizeof(trace::PacketRecord);
  static constexpr std::size_t kPacketColumnBytes =
      sizeof(double) + sizeof(trace::Protocol) + sizeof(std::uint32_t) +
      sizeof(std::uint8_t) + sizeof(std::uint16_t);
};

/// Column-per-field layout of a ConnRecord sequence.
struct ConnColumns {
  std::vector<double> start;
  std::vector<double> duration;
  std::vector<trace::Protocol> protocol;
  std::vector<std::uint32_t> src_host;
  std::vector<std::uint32_t> dst_host;
  std::vector<std::uint64_t> bytes_orig;
  std::vector<std::uint64_t> bytes_resp;
  std::vector<std::uint64_t> session_id;

  std::size_t size() const { return start.size(); }
  bool empty() const { return start.empty(); }
  void clear();
  void reserve(std::size_t n);

  void push_back(const trace::ConnRecord& r);
  void append_rows(std::span<const trace::ConnRecord> rows);

  trace::ConnRecord row(std::size_t i) const;
  void to_rows(std::vector<trace::ConnRecord>& out) const;

  std::size_t byte_size() const { return size() * kConnColumnBytes; }

  static constexpr std::size_t kConnRowBytes = sizeof(trace::ConnRecord);
  static constexpr std::size_t kConnColumnBytes =
      2 * sizeof(double) + sizeof(trace::Protocol) +
      2 * sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t);
};

/// Whole-sequence transposes (AoS -> SoA).
PacketColumns to_columns(std::span<const trace::PacketRecord> rows);
ConnColumns to_conn_columns(std::span<const trace::ConnRecord> rows);

/// Pull source of packet rows in columnar chunks; the contract of
/// PacketChunkSource::next / reset, chunk type aside.
class PacketColumnSource {
 public:
  virtual ~PacketColumnSource() = default;

  virtual const StreamInfo& info() const = 0;

  /// Chunk contract of PacketChunkSource::next, for PacketColumns.
  virtual bool next(PacketColumns& chunk) = 0;

  /// Rewinds to the first row.
  virtual void reset() = 0;
};

/// Columnar twin of ConnChunkSource.
class ConnColumnSource {
 public:
  virtual ~ConnColumnSource() = default;

  virtual const StreamInfo& info() const = 0;
  virtual bool next(ConnColumns& chunk) = 0;
  virtual void reset() = 0;
};

/// AoS -> SoA adapter: any row-oriented reader (file sources, the
/// streaming synthesizer, ingest) becomes a columnar source. One row
/// chunk transposes into one column chunk, so chunk sizing and ordering
/// are exactly the upstream's. Non-owning, like the filter sources.
class ColumnsFromRows final : public PacketColumnSource {
 public:
  explicit ColumnsFromRows(PacketChunkSource& inner) : inner_(&inner) {}

  const StreamInfo& info() const override { return inner_->info(); }
  bool next(PacketColumns& chunk) override;
  void reset() override { inner_->reset(); }

 private:
  PacketChunkSource* inner_;
  std::vector<trace::PacketRecord> buf_;
};

/// SoA -> AoS adapter: a columnar source viewed through the row
/// contract, so row-oriented consumers (collect, the retained row
/// analysis path, parity tests) can drain columnar pipelines.
class RowsFromColumns final : public PacketChunkSource {
 public:
  explicit RowsFromColumns(PacketColumnSource& inner) : inner_(&inner) {}

  const StreamInfo& info() const override { return inner_->info(); }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override { inner_->reset(); }

 private:
  PacketColumnSource* inner_;
  PacketColumns buf_;
};

/// Conn twins of the two adapters above.
class ConnColumnsFromRows final : public ConnColumnSource {
 public:
  explicit ConnColumnsFromRows(ConnChunkSource& inner) : inner_(&inner) {}

  const StreamInfo& info() const override { return inner_->info(); }
  bool next(ConnColumns& chunk) override;
  void reset() override { inner_->reset(); }

 private:
  ConnChunkSource* inner_;
  std::vector<trace::ConnRecord> buf_;
};

class ConnRowsFromColumns final : public ConnChunkSource {
 public:
  explicit ConnRowsFromColumns(ConnColumnSource& inner) : inner_(&inner) {}

  const StreamInfo& info() const override { return inner_->info(); }
  bool next(std::vector<trace::ConnRecord>& chunk) override;
  void reset() override { inner_->reset(); }

 private:
  ConnColumnSource* inner_;
  ConnColumns buf_;
};

/// Native columnar store source: serves chunk-size slices of an
/// in-memory column table (non-owning, like TraceChunkSource). This is
/// the "columnar trace store" end state — data that already lives as
/// columns streams into analysis with zero transposition.
class ColumnTableSource final : public PacketColumnSource {
 public:
  ColumnTableSource(const PacketColumns& table, StreamInfo info,
                    std::size_t chunk_size = kDefaultChunkSize)
      : table_(&table), info_(std::move(info)), chunk_size_(chunk_size) {}

  const StreamInfo& info() const override { return info_; }
  bool next(PacketColumns& chunk) override;
  void reset() override { pos_ = 0; }

 private:
  const PacketColumns* table_;
  StreamInfo info_;
  std::size_t pos_ = 0;
  std::size_t chunk_size_;
};

/// Drains a columnar source into one PacketColumns table.
PacketColumns collect_columns(PacketColumnSource& source);

// --- Selection-vector kernels -------------------------------------------
//
// Filtering a columnar chunk is a two-phase pass: a tight loop over one
// (or two) columns appends matching row indices to a selection vector,
// then gather() copies the selected rows column by column. Both loops
// touch only contiguous primitive arrays, so they vectorize — there is
// no per-record predicate call anywhere.

/// Appends to sel the indices i (offset not applied) where col[i] == value.
void select_equal(std::span<const trace::Protocol> col, trace::Protocol value,
                  std::vector<std::uint32_t>& sel);

/// Appends the indices of originator-side rows carrying user data —
/// the Section-IV originator_data_packets predicate, columnar.
void select_orig_data(const PacketColumns& cols,
                      std::vector<std::uint32_t>& sel);

/// Appends the indices matching protocol == value AND the
/// originator-data predicate, in one compaction pass over the three
/// narrow columns — the fused form of select_equal + refine_orig_data
/// for the common stacked-filter case.
void select_protocol_orig_data(const PacketColumns& cols,
                               trace::Protocol value,
                               std::vector<std::uint32_t>& sel);

/// Compacts sel in place to the selected rows that also carry
/// originator user data. Predicates compose on the selection vector —
/// stacked filters refine one sel and gather once, instead of
/// materializing an intermediate chunk per filter.
void refine_orig_data(const PacketColumns& cols,
                      std::vector<std::uint32_t>& sel);

/// Copies the selected rows of `in` into `out` (cleared first), column
/// by column. Indices must be < in.size().
void gather(const PacketColumns& in, std::span<const std::uint32_t> sel,
            PacketColumns& out);

}  // namespace wan::stream
