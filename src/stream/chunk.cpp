#include "src/stream/chunk.hpp"

#include <algorithm>

namespace wan::stream {

bool TraceChunkSource::next(std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  const auto& records = trace_->records();
  if (pos_ >= records.size()) return false;
  const std::size_t n = std::min(chunk_size_, records.size() - pos_);
  chunk.assign(records.begin() + static_cast<std::ptrdiff_t>(pos_),
               records.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return true;
}

trace::PacketTrace collect(PacketChunkSource& source) {
  const StreamInfo& info = source.info();
  trace::PacketTrace out(info.name, info.t_begin, info.t_end);
  for_each_packet(source, [&](const trace::PacketRecord& r) { out.add(r); });
  return out;
}

}  // namespace wan::stream
