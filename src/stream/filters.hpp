// Streaming forms of the Section-IV preprocessing filters. Each wraps
// an upstream PacketChunkSource (non-owning — the caller keeps the
// stages alive, typically on the stack) and uses the same predicates /
// name suffixes as the batch PacketTrace methods, so collect(filtered
// stream) equals the batch-filtered trace record for record.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "src/stream/chunk.hpp"

namespace wan::stream {

/// Stateless record filter: keeps records matching the predicate. next()
/// keeps pulling upstream chunks until it has at least one record, so
/// false still means exhausted even when the filter is very selective.
class FilterSource final : public PacketChunkSource {
 public:
  using Predicate = std::function<bool(const trace::PacketRecord&)>;

  /// `name_suffix` is appended to the upstream name, mirroring the batch
  /// filters' derived-trace names.
  FilterSource(PacketChunkSource& inner, std::string name_suffix,
               Predicate pred);

  const StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override { inner_->reset(); }

 private:
  PacketChunkSource* inner_;
  StreamInfo info_;
  Predicate pred_;
  std::vector<trace::PacketRecord> buf_;
};

/// Streaming PacketTrace::filter(protocol): name gains "/<protocol>".
FilterSource protocol_filter(PacketChunkSource& inner,
                             trace::Protocol protocol);

/// Streaming PacketTrace::originator_data_packets(): originator-side
/// packets carrying user data; name gains "/orig-data".
FilterSource originator_data_filter(PacketChunkSource& inner);

/// Streaming PacketTrace::remove_bulk_outliers(). The outlier rule needs
/// a connection's total bytes before deciding, so this is an explicit
/// two-pass source: the first next() drains the upstream once through a
/// BulkOutlierDetector (O(#connections) state), resets it, then streams
/// the filtered second pass. Name gains "/no-outliers".
class BulkOutlierSource final : public PacketChunkSource {
 public:
  BulkOutlierSource(PacketChunkSource& inner, double max_bytes = 1024.0,
                    double max_rate = 8.0);

  const StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

 private:
  void scan_outliers();

  PacketChunkSource* inner_;
  StreamInfo info_;
  double max_bytes_;
  double max_rate_;
  bool scanned_ = false;
  std::set<std::uint32_t> outliers_;
  std::vector<trace::PacketRecord> buf_;
};

}  // namespace wan::stream
