#include "src/stream/pipeline.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "src/stream/columnar_filters.hpp"
#include "src/stream/filters.hpp"

namespace wan::stream {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::size_t expected_bins(const StreamInfo& info, double bin) {
  if (bin <= 0.0 || info.t_end <= info.t_begin) return 0;
  return static_cast<std::size_t>(
      std::ceil((info.t_end - info.t_begin) / bin));
}

}  // namespace

PipelineResult analyze_stream(PacketChunkSource& source,
                              const PipelineOptions& options) {
  ColumnsFromRows columns(source);
  return analyze_columns(columns, options);
}

PipelineResult analyze_columns(PacketColumnSource& source,
                               const PipelineOptions& options) {
  // Filter stages live on this frame. The protocol and originator-data
  // predicates fuse into one ColumnFilterSource (same record sequence
  // and derived name as stacking them; one selection pass + one gather).
  PacketColumnSource* src = &source;
  std::optional<ColumnFilterSource> filter;
  if (options.protocol || options.orig_data_only) {
    filter.emplace(*src, options.protocol, options.orig_data_only);
    src = &*filter;
  }
  std::optional<ColumnBulkOutlierSource> no_outliers;
  if (options.remove_outliers) {
    no_outliers.emplace(*src, options.outlier_max_bytes,
                        options.outlier_max_rate);
    src = &*no_outliers;
  }

  const StreamInfo info = src->info();
  if (expected_bins(info, options.bin) < 16)
    throw std::invalid_argument("analyze_stream: series too short");

  stats::BinCountsAccumulator bins(info.t_begin, info.t_end, options.bin);
  std::uint64_t packets = 0;
  PacketColumns chunk;
  while (src->next(chunk)) {
    packets += chunk.size();
    bins.add(std::span<const double>(chunk.time));
  }

  PipelineResult result;
  result.info = info;
  result.bin = options.bin;
  result.packets = packets;
  result.counts = bins.take();
  stats::VtAccumulator vt(
      stats::default_aggregation_levels(result.counts.size()));
  stats::BurstLullAccumulator bl;
  stats::MomentAccumulator moments;
  // Counts are already one contiguous column; interleaving the three
  // accumulators per element lets their independent update chains
  // overlap (fastest measured orientation, and the row path's exact
  // order).
  for (double c : result.counts) {
    vt.push(c);
    bl.push(c);
    moments.push(c);
  }
  result.vt = vt.finish();
  result.burst_lull = bl.finish();
  result.count_moments = moments;
  return result;
}

PipelineResult analyze_stream_rows(PacketChunkSource& source,
                                   const PipelineOptions& options) {
  PacketChunkSource* src = &source;
  std::optional<FilterSource> by_protocol;
  if (options.protocol) {
    by_protocol.emplace(protocol_filter(*src, *options.protocol));
    src = &*by_protocol;
  }
  std::optional<FilterSource> orig_data;
  if (options.orig_data_only) {
    orig_data.emplace(originator_data_filter(*src));
    src = &*orig_data;
  }
  std::optional<BulkOutlierSource> no_outliers;
  if (options.remove_outliers) {
    no_outliers.emplace(*src, options.outlier_max_bytes,
                        options.outlier_max_rate);
    src = &*no_outliers;
  }

  const StreamInfo info = src->info();
  if (expected_bins(info, options.bin) < 16)
    throw std::invalid_argument("analyze_stream: series too short");

  stats::BinCountsAccumulator bins(info.t_begin, info.t_end, options.bin);
  std::uint64_t packets = 0;
  stats::VtAccumulator vt(
      stats::default_aggregation_levels(bins.bins()));
  stats::BurstLullAccumulator bl;
  stats::MomentAccumulator moments;
  for_each_packet(*src, [&](const trace::PacketRecord& r) {
    ++packets;
    bins.add(r.time);
  });

  PipelineResult result;
  result.info = info;
  result.bin = options.bin;
  result.packets = packets;
  result.counts = bins.take();
  for (double c : result.counts) {
    vt.push(c);
    bl.push(c);
    moments.push(c);
  }
  result.vt = vt.finish();
  result.burst_lull = bl.finish();
  result.count_moments = moments;
  return result;
}

PipelineResult analyze_batch(const trace::PacketTrace& trace,
                             const PipelineOptions& options) {
  const trace::PacketTrace* t = &trace;
  trace::PacketTrace filtered;
  if (options.protocol) {
    filtered = t->filter(*options.protocol);
    t = &filtered;
  }
  if (options.orig_data_only) {
    filtered = t->originator_data_packets();
    t = &filtered;
  }
  if (options.remove_outliers) {
    filtered = t->remove_bulk_outliers(options.outlier_max_bytes,
                                       options.outlier_max_rate);
    t = &filtered;
  }

  // The genuinely batch implementations (span statistics over the full
  // materialized series) — NOT the streaming accumulators — so the
  // parity tests compare two independent code paths end to end.
  PipelineResult result;
  result.info = {t->name(), t->t_begin(), t->t_end()};
  result.bin = options.bin;
  result.packets = t->size();
  const std::vector<double> times = t->packet_times();
  result.counts = stats::bin_counts(times, result.info.t_begin,
                                    result.info.t_end, options.bin);
  result.vt = stats::variance_time_plot(result.counts);
  result.burst_lull = stats::burst_lull_structure(result.counts);
  for (double c : result.counts) result.count_moments.push(c);
  return result;
}

std::string vt_csv(const PipelineResult& result) {
  std::string out = "# variance-time name=" + result.info.name +
                    " bin=" + fmt_double(result.bin) +
                    " packets=" + std::to_string(result.packets) +
                    " base_mean=" + fmt_double(result.vt.base_mean) + "\n";
  out += "m,variance,normalized,n_blocks\n";
  for (const stats::VtPoint& p : result.vt.points) {
    out += std::to_string(p.m) + ',' + fmt_double(p.variance) + ',' +
           fmt_double(p.normalized) + ',' + std::to_string(p.n_blocks) + '\n';
  }
  return out;
}

}  // namespace wan::stream
