#include "src/stream/columnar_filters.hpp"

#include <utility>

namespace wan::stream {

namespace {

std::string filter_suffix(const std::optional<trace::Protocol>& protocol,
                          bool orig_data) {
  // The suffixes the row filters would stack, in their stacking order.
  std::string s;
  if (protocol) s += "/" + std::string(trace::to_string(*protocol));
  if (orig_data) s += "/orig-data";
  return s;
}

}  // namespace

ColumnFilterSource::ColumnFilterSource(PacketColumnSource& inner,
                                       std::optional<trace::Protocol> protocol,
                                       bool orig_data)
    : inner_(&inner),
      info_{inner.info().name + filter_suffix(protocol, orig_data),
            inner.info().t_begin, inner.info().t_end},
      protocol_(protocol),
      orig_data_(orig_data) {}

bool ColumnFilterSource::next(PacketColumns& chunk) {
  chunk.clear();
  while (chunk.empty()) {
    if (!inner_->next(buf_)) return false;
    sel_.clear();
    if (protocol_ && orig_data_) {
      select_protocol_orig_data(buf_, *protocol_, sel_);
    } else if (protocol_) {
      select_equal(buf_.protocol, *protocol_, sel_);
    } else if (orig_data_) {
      select_orig_data(buf_, sel_);
    } else {
      // No predicate configured: pass through.
      chunk = std::move(buf_);
      buf_.clear();
      return true;
    }
    if (sel_.size() == buf_.size()) {
      // Everything survived: move the chunk through instead of gathering.
      chunk = std::move(buf_);
      buf_.clear();
      return true;
    }
    gather(buf_, sel_, chunk);
  }
  return true;
}

ColumnFilterSource protocol_filter_columns(PacketColumnSource& inner,
                                           trace::Protocol protocol) {
  return ColumnFilterSource(inner, protocol, /*orig_data=*/false);
}

ColumnFilterSource originator_data_filter_columns(PacketColumnSource& inner) {
  return ColumnFilterSource(inner, std::nullopt, /*orig_data=*/true);
}

ColumnBulkOutlierSource::ColumnBulkOutlierSource(PacketColumnSource& inner,
                                                 double max_bytes,
                                                 double max_rate)
    : inner_(&inner),
      info_{inner.info().name + "/no-outliers", inner.info().t_begin,
            inner.info().t_end},
      max_bytes_(max_bytes),
      max_rate_(max_rate) {}

void ColumnBulkOutlierSource::scan_outliers() {
  trace::BulkOutlierDetector det(max_bytes_, max_rate_);
  while (inner_->next(buf_)) {
    // The detector aggregates per connection from (time, conn, orig,
    // payload); rows are observed in order, as the row path does.
    for (std::size_t i = 0; i < buf_.size(); ++i) det.observe(buf_.row(i));
  }
  outliers_ = det.outliers();
  inner_->reset();
  scanned_ = true;
}

bool ColumnBulkOutlierSource::next(PacketColumns& chunk) {
  if (!scanned_) scan_outliers();
  chunk.clear();
  while (chunk.empty()) {
    if (!inner_->next(buf_)) return false;
    if (outliers_.empty()) {
      chunk = std::move(buf_);
      buf_.clear();
      return true;
    }
    sel_.clear();
    sel_.resize(buf_.size());
    std::size_t k = 0;
    const std::uint32_t* conn = buf_.conn_id.data();
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      sel_[k] = static_cast<std::uint32_t>(i);
      k += outliers_.contains(conn[i]) ? 0 : 1;
    }
    sel_.resize(k);
    if (sel_.size() == buf_.size()) {
      chunk = std::move(buf_);
      buf_.clear();
      return true;
    }
    gather(buf_, sel_, chunk);
  }
  return true;
}

void ColumnBulkOutlierSource::reset() {
  // The outlier set is a function of the (replayable) upstream, so a
  // second pass reuses it rather than rescanning.
  inner_->reset();
}

}  // namespace wan::stream
