// End-to-end count-process analysis over a packet stream: Section-IV
// filters → binned counts → variance-time / moments / burst-lull, all
// single-pass (the outlier filter's second pass excepted).
//
// analyze_stream and analyze_batch are the two implementations of the
// same analysis — the streamed one in bounded memory, the batch one on
// an in-memory PacketTrace via the span-based statistics. Both feed the
// identical accumulator arithmetic (VtLevelAccumulator, BinCounts,
// BurstLull), so their results — and the figure CSVs rendered from them
// — are byte-identical. The `stream`-labeled tests pin this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/stats/counting.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/variance_time.hpp"
#include "src/stream/chunk.hpp"
#include "src/stream/columnar.hpp"

namespace wan::stream {

struct PipelineOptions {
  double bin = 0.1;  ///< count-process bin width, seconds

  // Filters, applied in this order (matching the batch path).
  std::optional<trace::Protocol> protocol;
  bool orig_data_only = false;
  bool remove_outliers = false;
  double outlier_max_bytes = 1024.0;
  double outlier_max_rate = 8.0;

  std::size_t chunk_size = kDefaultChunkSize;
};

struct PipelineResult {
  StreamInfo info;  ///< after filters (name carries the filter suffixes)
  double bin = 0.1;
  std::uint64_t packets = 0;  ///< records surviving the filters
  std::vector<double> counts;
  stats::VarianceTimePlot vt;
  stats::BurstLull burst_lull;
  stats::MomentAccumulator count_moments;
};

/// Streams the source through the configured filters and accumulators.
/// Throws std::invalid_argument if the count series would be shorter
/// than 16 bins (same limit as variance_time_plot).
///
/// Since the columnar refactor this is a thin wrapper: the row source is
/// adapted through ColumnsFromRows and analyzed by analyze_columns. The
/// result is byte-identical to the retained row implementation
/// (analyze_stream_rows) — the `columnar`-labeled tests pin this.
PipelineResult analyze_stream(PacketChunkSource& source,
                              const PipelineOptions& options = {});

/// The columnar analysis path: filters are selection-vector passes
/// (columnar_filters.hpp) and the accumulators consume whole columns
/// (BinCountsAccumulator::add(span) etc.). Same filter order, same
/// arithmetic per element, so same bytes out as the row path — several
/// times faster on in-memory data.
PipelineResult analyze_columns(PacketColumnSource& source,
                               const PipelineOptions& options = {});

/// The pre-refactor row implementation, retained as the per-record
/// reference the benches measure the columnar path against.
PipelineResult analyze_stream_rows(PacketChunkSource& source,
                                   const PipelineOptions& options = {});

/// The batch reference: same analysis via PacketTrace filters and the
/// span-based statistics.
PipelineResult analyze_batch(const trace::PacketTrace& trace,
                             const PipelineOptions& options = {});

/// Renders the variance-time plot as a figure CSV. Doubles print with
/// %.17g (round-trip exact), so byte-equal CSVs mean bit-equal plots.
std::string vt_csv(const PipelineResult& result);

}  // namespace wan::stream
