// The streaming layer's core contract: a PacketChunkSource is a pull
// source of packet records delivered in fixed-size chunks, so a whole
// synthesis → filter → analysis pipeline runs in memory bounded by the
// chunk size (plus per-stage state), never by the trace length.
//
// Contract for next():
//   * the chunk is cleared, then filled with up to the source's chunk
//     size records;
//   * returns true iff it produced at least one record; false means the
//     source is exhausted (and the chunk is empty);
//   * records arrive in the same order a batch construction of the
//     trace would hold them, which is what lets streaming consumers
//     reproduce batch results exactly.
// reset() rewinds to the beginning; a second pass yields the identical
// record sequence (sources that re-derive RNG state guarantee this).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/trace/packet_trace.hpp"
#include "src/trace/records.hpp"

namespace wan::stream {

/// Default records per chunk (64Ki records == 1.5 MiB of PacketRecord).
inline constexpr std::size_t kDefaultChunkSize = std::size_t{1} << 16;

/// Trace-level metadata a source knows before any records flow — the
/// same fields PacketTrace carries besides the records themselves.
struct StreamInfo {
  std::string name;
  double t_begin = 0.0;
  double t_end = 0.0;
};

class PacketChunkSource {
 public:
  virtual ~PacketChunkSource() = default;

  virtual const StreamInfo& info() const = 0;

  /// See the file comment for the chunk contract.
  virtual bool next(std::vector<trace::PacketRecord>& chunk) = 0;

  /// Rewinds to the first record.
  virtual void reset() = 0;
};

/// Adapts an in-memory PacketTrace to the chunk contract (the batch →
/// streaming bridge; also how tests drive filters with known input).
class TraceChunkSource final : public PacketChunkSource {
 public:
  explicit TraceChunkSource(const trace::PacketTrace& trace,
                            std::size_t chunk_size = kDefaultChunkSize)
      : trace_(&trace),
        info_{trace.name(), trace.t_begin(), trace.t_end()},
        chunk_size_(chunk_size) {}

  const StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override { pos_ = 0; }

 private:
  const trace::PacketTrace* trace_;
  StreamInfo info_;
  std::size_t pos_ = 0;
  std::size_t chunk_size_;
};

/// Drains the source into an in-memory trace (the streaming → batch
/// bridge; parity tests compare this against batch construction).
trace::PacketTrace collect(PacketChunkSource& source);

/// Feeds every record of the source, in order, to fn(const PacketRecord&).
template <typename Fn>
void for_each_packet(PacketChunkSource& source, Fn&& fn) {
  std::vector<trace::PacketRecord> chunk;
  while (source.next(chunk)) {
    for (const trace::PacketRecord& r : chunk) fn(r);
  }
}

}  // namespace wan::stream
