#include "src/stream/conn_chunk.hpp"

namespace wan::stream {

trace::ConnTrace collect_conns(ConnChunkSource& source) {
  const StreamInfo& info = source.info();
  trace::ConnTrace tr(info.name, info.t_begin, info.t_end);
  std::vector<trace::ConnRecord> chunk;
  while (source.next(chunk)) {
    for (const trace::ConnRecord& r : chunk) tr.add(r);
  }
  return tr;
}

}  // namespace wan::stream
