// Columnar forms of the Section-IV preprocessing filters: the same
// predicates and derived-trace name suffixes as filters.hpp, applied as
// selection-vector passes over column chunks instead of a per-record
// predicate call. A filtered chunk is built in two vectorizable loops
// (select indices, then gather columns); the record sequence each
// source emits is identical to its row twin's, which is what keeps the
// columnar analysis path byte-compatible with the row path.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "src/stream/columnar.hpp"

namespace wan::stream {

/// Stateless columnar row filter: by protocol (if set), then
/// originator-data (if requested) — the same predicates, order and
/// derived-name suffixes as stacking the row filters, but the
/// predicates compose on one selection vector and a single gather
/// materializes the surviving rows (no intermediate chunk per
/// predicate). next() keeps pulling upstream chunks until at least one
/// row survives, so false still means exhausted — the FilterSource
/// contract.
class ColumnFilterSource final : public PacketColumnSource {
 public:
  ColumnFilterSource(PacketColumnSource& inner,
                     std::optional<trace::Protocol> protocol, bool orig_data);

  const StreamInfo& info() const override { return info_; }
  bool next(PacketColumns& chunk) override;
  void reset() override { inner_->reset(); }

 private:
  PacketColumnSource* inner_;
  StreamInfo info_;
  std::optional<trace::Protocol> protocol_;
  bool orig_data_;
  PacketColumns buf_;
  std::vector<std::uint32_t> sel_;
};

/// Columnar PacketTrace::filter(protocol): name gains "/<protocol>".
ColumnFilterSource protocol_filter_columns(PacketColumnSource& inner,
                                           trace::Protocol protocol);

/// Columnar PacketTrace::originator_data_packets(): name gains
/// "/orig-data".
ColumnFilterSource originator_data_filter_columns(PacketColumnSource& inner);

/// Columnar PacketTrace::remove_bulk_outliers(): the same explicit
/// two-pass shape as BulkOutlierSource — the first next() drains the
/// upstream through trace::BulkOutlierDetector (observing rows in
/// order, so the outlier set is identical to the row path's), resets
/// it, then streams the second pass dropping the flagged connections
/// via a selection pass over the conn-id column. Name gains
/// "/no-outliers".
class ColumnBulkOutlierSource final : public PacketColumnSource {
 public:
  ColumnBulkOutlierSource(PacketColumnSource& inner,
                          double max_bytes = 1024.0, double max_rate = 8.0);

  const StreamInfo& info() const override { return info_; }
  bool next(PacketColumns& chunk) override;
  void reset() override;

 private:
  void scan_outliers();

  PacketColumnSource* inner_;
  StreamInfo info_;
  double max_bytes_;
  double max_rate_;
  bool scanned_ = false;
  std::set<std::uint32_t> outliers_;
  PacketColumns buf_;
  std::vector<std::uint32_t> sel_;
};

}  // namespace wan::stream
