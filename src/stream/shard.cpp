#include "src/stream/shard.hpp"

#include <cmath>
#include <exception>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "src/par/parallel.hpp"
#include "src/par/thread_pool.hpp"
#include "src/stream/columnar_filters.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::stream {

void partition_packets(const PacketColumns& in, std::size_t n_shards,
                       std::vector<PacketColumns>& out) {
  out.resize(n_shards);
  for (PacketColumns& o : out) o.clear();
  if (n_shards == 1) {
    out[0] = in;
    return;
  }
  // Shard ids once (one mix per row), then one select+gather per shard —
  // the same two-phase selection idiom as the columnar filters.
  std::vector<std::uint32_t> ids(in.size());
  const std::uint32_t* conn = in.conn_id.data();
  for (std::size_t i = 0; i < in.size(); ++i)
    ids[i] = static_cast<std::uint32_t>(shard_of(conn[i], n_shards));
  std::vector<std::uint32_t> sel;
  for (std::size_t s = 0; s < n_shards; ++s) {
    sel.clear();
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (ids[i] == s) sel.push_back(static_cast<std::uint32_t>(i));
    if (sel.empty()) continue;
    gather(in, sel, out[s]);
  }
}

void partition_conns(const ConnColumns& in, std::size_t n_shards,
                     std::vector<ConnColumns>& out) {
  out.resize(n_shards);
  for (ConnColumns& o : out) o.clear();
  if (n_shards == 1) {
    out[0] = in;
    return;
  }
  for (std::size_t i = 0; i < in.size(); ++i)
    out[shard_of_hosts(in.src_host[i], in.dst_host[i], n_shards)].push_back(
        in.row(i));
}

namespace {

// One route over any chunk source: inline when a single worker (or a
// single shard) makes queues pointless, bounded queues + pool consumers
// otherwise. The per-shard sub-chunk sequences are identical either way:
// partition is deterministic and each shard's queue preserves order.
template <class Source, class Chunk>
void route_impl(Source& source, const ShardRouterOptions& options,
                const std::function<void(std::size_t, const Chunk&)>& consume,
                void (*partition)(const Chunk&, std::size_t,
                                  std::vector<Chunk>&)) {
  const std::size_t n = options.n_shards;
  if (n == 1) {
    Chunk chunk;
    while (source.next(chunk))
      if (!chunk.empty()) consume(0, chunk);
    return;
  }

  if (par::thread_count() == 1) {
    Chunk chunk;
    std::vector<Chunk> parts;
    while (source.next(chunk)) {
      partition(chunk, n, parts);
      for (std::size_t s = 0; s < n; ++s)
        if (!parts[s].empty()) consume(s, parts[s]);
    }
    return;
  }

  std::vector<std::unique_ptr<BoundedChunkQueue<Chunk>>> queues;
  queues.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    queues.push_back(
        std::make_unique<BoundedChunkQueue<Chunk>>(options.queue_chunks));

  // One long-lived consumer per shard. The pool must hold at least n
  // workers or a parked consumer task would never start while the pump
  // blocks on its full queue.
  par::global_pool().grow(n);
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::future<void>> done;
  done.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    done.push_back(par::global_pool().submit([&, s] {
      Chunk c;
      try {
        while (queues[s]->pop(c)) consume(s, c);
      } catch (...) {
        errors[s] = std::current_exception();
        // Keep draining (close makes push a drop) so the pump never
        // blocks on a queue nobody reads.
        queues[s]->close();
        while (queues[s]->pop(c)) {
        }
      }
    }));
  }

  Chunk chunk;
  std::vector<Chunk> parts;
  try {
    while (source.next(chunk)) {
      partition(chunk, n, parts);
      for (std::size_t s = 0; s < n; ++s)
        if (!parts[s].empty()) queues[s]->push(std::move(parts[s]));
    }
  } catch (...) {
    for (auto& q : queues) q->close();
    for (auto& f : done) f.wait();
    throw;
  }
  for (auto& q : queues) q->close();
  for (auto& f : done) f.get();
  for (std::size_t s = 0; s < n; ++s)
    if (errors[s]) std::rethrow_exception(errors[s]);
}

}  // namespace

ShardRouter::ShardRouter(ShardRouterOptions options) : options_(options) {
  if (options_.n_shards == 0 || options_.n_shards > kMaxShards)
    throw std::invalid_argument("ShardRouter: n_shards must be in [1, " +
                                std::to_string(kMaxShards) + "]");
}

void ShardRouter::route(
    PacketColumnSource& source,
    const std::function<void(std::size_t, const PacketColumns&)>& consume) {
  route_impl<PacketColumnSource, PacketColumns>(source, options_, consume,
                                                &partition_packets);
}

void ShardRouter::route(
    ConnColumnSource& source,
    const std::function<void(std::size_t, const ConnColumns&)>& consume) {
  route_impl<ConnColumnSource, ConnColumns>(source, options_, consume,
                                            &partition_conns);
}

void ShardRouter::route(
    PacketChunkSource& source,
    const std::function<void(std::size_t, const PacketColumns&)>& consume) {
  ColumnsFromRows columns(source);
  route(columns, consume);
}

void ShardRouter::route(
    ConnChunkSource& source,
    const std::function<void(std::size_t, const ConnColumns&)>& consume) {
  ConnColumnsFromRows columns(source);
  route(columns, consume);
}

namespace {

std::size_t expected_bins(const StreamInfo& info, double bin) {
  if (bin <= 0.0 || info.t_end <= info.t_begin) return 0;
  return static_cast<std::size_t>(
      std::ceil((info.t_end - info.t_begin) / bin));
}

// The name suffixes the serial filter chain would stack, in its order.
std::string options_suffix(const PipelineOptions& o) {
  std::string s;
  if (o.protocol) s += "/" + std::string(trace::to_string(*o.protocol));
  if (o.orig_data_only) s += "/orig-data";
  if (o.remove_outliers) s += "/no-outliers";
  return s;
}

// Applies the protocol/orig-data predicates to one sub-chunk — the same
// kernel choices as ColumnFilterSource::next — returning either `in`
// untouched or `scratch` holding the gathered survivors.
const PacketColumns& filter_chunk(const PacketColumns& in,
                                  const PipelineOptions& o,
                                  std::vector<std::uint32_t>& sel,
                                  PacketColumns& scratch) {
  if (!o.protocol && !o.orig_data_only) return in;
  sel.clear();
  if (o.protocol && o.orig_data_only) {
    select_protocol_orig_data(in, *o.protocol, sel);
  } else if (o.protocol) {
    select_equal(in.protocol, *o.protocol, sel);
  } else {
    select_orig_data(in, sel);
  }
  if (sel.size() == in.size()) return in;
  gather(in, sel, scratch);
  return scratch;
}

// Drops rows of flagged connections — ColumnBulkOutlierSource's second
// pass, on one sub-chunk.
const PacketColumns& drop_outliers(const PacketColumns& in,
                                   const std::set<std::uint32_t>& outliers,
                                   std::vector<std::uint32_t>& sel,
                                   PacketColumns& scratch) {
  if (outliers.empty()) return in;
  sel.clear();
  sel.resize(in.size());
  std::size_t k = 0;
  const std::uint32_t* conn = in.conn_id.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    sel[k] = static_cast<std::uint32_t>(i);
    k += outliers.contains(conn[i]) ? 0 : 1;
  }
  sel.resize(k);
  if (sel.size() == in.size()) return in;
  gather(in, sel, scratch);
  return scratch;
}

// Consumer-local scratch; index s is touched only by shard s's consumer.
struct ShardScratch {
  std::vector<std::uint32_t> sel;
  PacketColumns filtered;
  PacketColumns kept;
};

}  // namespace

PipelineResult analyze_sharded(PacketColumnSource& source,
                               const PipelineOptions& options,
                               ShardRouterOptions shard_options) {
  ShardRouter router(shard_options);
  const std::size_t n = router.n_shards();
  if (n == 1) return analyze_columns(source, options);

  StreamInfo info = source.info();
  info.name += options_suffix(options);
  if (expected_bins(info, options.bin) < 16)
    throw std::invalid_argument("analyze_stream: series too short");

  std::vector<ShardScratch> scratch(n);

  // Pass 1 (outlier filter only): per-shard detectors over the filtered
  // sub-streams. A connection's rows all land in its shard, in stream
  // order, so the union of the per-shard outlier sets equals the serial
  // detector's set exactly.
  std::vector<std::set<std::uint32_t>> outliers(n);
  if (options.remove_outliers) {
    std::vector<trace::BulkOutlierDetector> detectors;
    detectors.reserve(n);
    for (std::size_t s = 0; s < n; ++s)
      detectors.emplace_back(options.outlier_max_bytes,
                             options.outlier_max_rate);
    router.route(source,
                 [&](std::size_t s, const PacketColumns& chunk) {
                   const PacketColumns& f = filter_chunk(
                       chunk, options, scratch[s].sel, scratch[s].filtered);
                   for (std::size_t i = 0; i < f.size(); ++i)
                     detectors[s].observe(f.row(i));
                 });
    for (std::size_t s = 0; s < n; ++s) outliers[s] = detectors[s].outliers();
    source.reset();
  }

  // Pass 2: per-shard bin-count accumulation. Bin increments are exact
  // integer adds into identical grids, so the shard-ordered merge below
  // reproduces the serial accumulator's bits regardless of how rows
  // were split.
  std::vector<stats::BinCountsAccumulator> bins;
  bins.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    bins.emplace_back(info.t_begin, info.t_end, options.bin);
  std::vector<std::uint64_t> packets(n, 0);
  router.route(source, [&](std::size_t s, const PacketColumns& chunk) {
    const PacketColumns& f =
        filter_chunk(chunk, options, scratch[s].sel, scratch[s].filtered);
    const PacketColumns& kept =
        drop_outliers(f, outliers[s], scratch[s].sel, scratch[s].kept);
    packets[s] += kept.size();
    bins[s].add(std::span<const double>(kept.time));
  });

  for (std::size_t s = 1; s < n; ++s) {
    bins[0].merge(bins[s]);
    packets[0] += packets[s];
  }

  // Downstream of the merged counts this is analyze_columns' code,
  // byte for byte.
  PipelineResult result;
  result.info = info;
  result.bin = options.bin;
  result.packets = packets[0];
  result.counts = bins[0].take();
  stats::VtAccumulator vt(
      stats::default_aggregation_levels(result.counts.size()));
  stats::BurstLullAccumulator bl;
  stats::MomentAccumulator moments;
  for (double c : result.counts) {
    vt.push(c);
    bl.push(c);
    moments.push(c);
  }
  result.vt = vt.finish();
  result.burst_lull = bl.finish();
  result.count_moments = moments;
  return result;
}

PipelineResult analyze_stream_sharded(PacketChunkSource& source,
                                      const PipelineOptions& options,
                                      ShardRouterOptions shard_options) {
  ColumnsFromRows columns(source);
  return analyze_sharded(columns, options, shard_options);
}

PipelineResult analyze_sharded_sources(
    const std::function<std::unique_ptr<PacketChunkSource>(std::size_t)>&
        make_shard,
    std::size_t n_shards, const PipelineOptions& options) {
  if (n_shards == 0 || n_shards > ShardRouter::kMaxShards)
    throw std::invalid_argument(
        "analyze_sharded_sources: n_shards must be in [1, " +
        std::to_string(ShardRouter::kMaxShards) + "]");
  if (n_shards == 1) {
    auto source = make_shard(0);
    return analyze_stream(*source, options);
  }

  // Shard 0's info IS the serial info (the factory contract), so the
  // bin grid and the derived name are fixed before any shard runs.
  auto first = make_shard(0);
  StreamInfo info = first->info();
  info.name += options_suffix(options);
  if (expected_bins(info, options.bin) < 16)
    throw std::invalid_argument("analyze_stream: series too short");

  std::vector<stats::BinCountsAccumulator> bins;
  bins.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s)
    bins.emplace_back(info.t_begin, info.t_end, options.bin);
  std::vector<std::uint64_t> packets(n_shards, 0);

  // Each shard is fully independent — its own source, its own filter
  // chain (including the outlier two-pass: the chain resets only this
  // shard's source) — so a flat parallel_for over shards is enough.
  // Grain 1: shards are the unit of work.
  par::parallel_for(0, n_shards, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t s = b; s < e; ++s) {
      auto source = s == 0 ? std::move(first) : make_shard(s);
      PacketColumnSource* src = nullptr;
      ColumnsFromRows columns(*source);
      std::optional<ColumnFilterSource> filter;
      std::optional<ColumnBulkOutlierSource> no_outliers;
      src = &columns;
      if (options.protocol || options.orig_data_only) {
        filter.emplace(*src, options.protocol, options.orig_data_only);
        src = &*filter;
      }
      if (options.remove_outliers) {
        no_outliers.emplace(*src, options.outlier_max_bytes,
                            options.outlier_max_rate);
        src = &*no_outliers;
      }
      PacketColumns chunk;
      while (src->next(chunk)) {
        packets[s] += chunk.size();
        bins[s].add(std::span<const double>(chunk.time));
      }
    }
  });

  for (std::size_t s = 1; s < n_shards; ++s) {
    bins[0].merge(bins[s]);
    packets[0] += packets[s];
  }

  PipelineResult result;
  result.info = info;
  result.bin = options.bin;
  result.packets = packets[0];
  result.counts = bins[0].take();
  stats::VtAccumulator vt(
      stats::default_aggregation_levels(result.counts.size()));
  stats::BurstLullAccumulator bl;
  stats::MomentAccumulator moments;
  for (double c : result.counts) {
    vt.push(c);
    bl.push(c);
    moments.push(c);
  }
  result.vt = vt.finish();
  result.burst_lull = bl.finish();
  result.count_moments = moments;
  return result;
}

}  // namespace wan::stream
