// Sliding-window incremental estimation over a packet stream — the
// algorithmic core of the planned wantraffic_monitor daemon.
//
// WindowedAnalyzer consumes a time-ordered packet stream (any
// PacketChunkSource or PacketColumnSource, filters included) and emits
// one WindowReport per slide: count moments, burst/lull structure,
// variance-time H, a Whittle H fit on a rolling averaged periodogram,
// an optional aggregation-stability sweep, and an optional windowed
// Appendix-A Poisson verdict. Every hot estimator updates
// incrementally:
//   * binning touches only the new events (WindowedBinCounts ring);
//   * the spectral state advances by ONE segment FFT per completed
//     segment (fft::SegmentRing / SegmentRingCascade), never a
//     window-wide recompute;
//   * the Whittle refit is a block update: the frequency grid never
//     changes, so a WhittleRefitter built at the first report holds
//     precomputed density tables over an H lattice, and each refit is
//     a hint-windowed lattice scan plus one exact density pass —
//     microseconds-to-a-millisecond instead of a from-scratch search
//     (the previous window's H is still the warm-start hint);
//   * burst/lull state is a bucket ring merged in O(window/slide);
//   * Appendix-A outcomes ride a ring, each interval tested once.
// The only O(window) terms per slide are the materialization of the
// window's count series and the variance-time/moment pass over it —
// linear in BINS, not packets or FFT size.
//
// analyze_window_batch is the from-scratch reference: it recomputes a
// single window with the batch primitives (bin_counts,
// AveragedPeriodogram, variance_time_plot, burst_lull_structure,
// test_poisson_arrivals). The rolling and batch paths are pinned
// against each other: periodogram ordinates bit-identical (the
// SegmentRing sums in batch push order), counts/burst/VT exact,
// moments and the warm-started Whittle H equal to rounding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/fft/rolling_periodogram.hpp"
#include "src/stats/poisson_test.hpp"
#include "src/stats/variance_time.hpp"
#include "src/stats/whittle.hpp"
#include "src/stats/window.hpp"
#include "src/stream/chunk.hpp"
#include "src/stream/columnar.hpp"

namespace wan::stream {

struct WindowedOptions {
  double bin = 1.0;     ///< count-process bin width, seconds
  double window = 0.0;  ///< sliding-window span, seconds (required)
  double slide = 0.0;   ///< report cadence, seconds; 0 means == window

  /// Welch segment length for the rolling periodogram, in bins; 0
  /// derives slide_bins >> sweep_levels (one new segment per level-0
  /// slide). Must be even, >= 4, and divide the slide so windows hold
  /// whole segments.
  std::size_t segment_bins = 0;

  /// Extra 2x aggregation levels for the windowed Whittle
  /// aggregation-stability sweep (0 = level 0 only).
  std::size_t sweep_levels = 0;

  /// Appendix-A interval length I, seconds; 0 disables the windowed
  /// Poisson test. Must divide both slide and window when set.
  double poisson_interval = 0.0;

  // Filters, applied in this order (matching analyze_columns).
  std::optional<trace::Protocol> protocol;
  bool orig_data_only = false;
};

/// One report row, emitted at each slide boundary once the first full
/// window has been observed. The window is [t0, t1), t1 - t0 == window.
struct WindowReport {
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint64_t packets = 0;     ///< events in the window (post-filter)
  double mean_count = 0.0;       ///< per-bin count moments
  double var_count = 0.0;        ///< population variance
  double mean_burst_bins = 0.0;
  double mean_lull_bins = 0.0;
  double vt_hurst = 0.5;
  stats::WhittleResult whittle;  ///< fGn fit on the rolling periodogram
  bool whittle_warm = false;     ///< warm-started from the previous window
  /// Whittle H per aggregation level (entry 0 == whittle.hurst); empty
  /// when sweep_levels == 0.
  std::vector<double> sweep_hurst;
  std::optional<stats::PoissonTestResult> poisson;
};

/// Validated/derived integer geometry of a windowed run — exposed so
/// tools, tests and benches agree on one set of rules.
struct WindowGeometry {
  std::size_t window_bins = 0;
  std::size_t slide_bins = 0;
  std::size_t segment_bins = 0;
  std::size_t segments_per_window = 0;  ///< level-0 ring capacity
  std::size_t window_intervals = 0;     ///< 0 when poisson disabled
  std::size_t intervals_per_slide = 0;  ///< 0 when poisson disabled
};

/// Checks and derives the window geometry; throws std::invalid_argument
/// with a reasoned message on any misalignment (window/slide not
/// multiples of bin, slide not dividing window, segment length not
/// tiling the slide, sweep levels that cannot align, Poisson interval
/// not dividing the slide).
WindowGeometry window_geometry(const WindowedOptions& options);

/// Push-driven incremental engine. Feed nondecreasing (post-filter)
/// event times; each completed slide boundary past the first full
/// window invokes the sink with that window's report. The engine keeps
/// O(window_bins + segments * segment_bins) state — bounded for an
/// unbounded stream, which is what makes a multi-day monitor feasible.
class WindowedAnalyzer {
 public:
  WindowedAnalyzer(const WindowedOptions& options, double t_begin,
                   std::function<void(const WindowReport&)> sink);
  ~WindowedAnalyzer();

  WindowedAnalyzer(WindowedAnalyzer&&) = delete;

  void push_times(std::span<const double> times);

  /// Completes bins/intervals through t_end (emitting any boundary
  /// reports). Call once at end of stream.
  void finish(double t_end);

  const WindowGeometry& geometry() const { return geometry_; }
  std::uint64_t reports_emitted() const { return reports_; }

 private:
  void on_bin_complete(double count);
  void emit_report();

  WindowedOptions options_;
  WindowGeometry geometry_;
  double t_begin_ = 0.0;
  std::function<void(const WindowReport&)> sink_;

  stats::WindowedBinCounts counts_;
  fft::SegmentRingCascade spectrum_;
  stats::WindowedMoments moments_;
  stats::WindowedBurstLull burst_;
  std::unique_ptr<stats::WindowedPoissonTest> poisson_;
  /// Built lazily at the first report (it needs the frequency grid);
  /// one refitter serves every cascade level — same segment length,
  /// same grid.
  std::unique_ptr<stats::WhittleRefitter> refitter_;
  std::optional<double> last_hurst_;  ///< warm-start hint
  std::uint64_t bins_done_ = 0;
  std::uint64_t reports_ = 0;
  std::vector<double> scratch_counts_;
};

/// Drains the (column) source through the configured filters and the
/// incremental engine; returns every report in slide order. Throws
/// std::invalid_argument when the stream is shorter than one window.
std::vector<WindowReport> analyze_windowed(PacketColumnSource& source,
                                           const WindowedOptions& options);

/// Row-source convenience: adapts through ColumnsFromRows — the
/// windowed path is columnar-only, like the sharded one.
std::vector<WindowReport> analyze_windowed(PacketChunkSource& source,
                                           const WindowedOptions& options);

/// From-scratch reference for ONE window: `times` are the post-filter
/// events in [t0, t0 + window), in time order. Bins, then runs the
/// batch estimators (AveragedPeriodogram segment loop, cold Whittle,
/// variance_time_plot, burst_lull_structure, serial moments,
/// test_poisson_arrivals). This is what the rolling engine is pinned
/// against in tests and measured against in bench_perf_window.
WindowReport analyze_window_batch(std::span<const double> times, double t0,
                                  const WindowedOptions& options);

/// Counts-form of the reference, for callers that already hold the
/// window's count series (shard-merge tests). poisson is skipped
/// (counts cannot reproduce arrival times).
WindowReport analyze_window_counts(std::span<const double> counts, double t0,
                                   const WindowedOptions& options,
                                   std::uint64_t packets);

/// One-line human rendering of a report row.
std::string to_string(const WindowReport& report);

/// Figure-CSV rendering: header + one row per report, doubles at %.17g
/// (round-trip exact) like vt_csv.
std::string window_csv_header();
std::string window_csv_row(const WindowReport& report);

}  // namespace wan::stream
