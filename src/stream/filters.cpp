#include "src/stream/filters.hpp"

#include <utility>

namespace wan::stream {

FilterSource::FilterSource(PacketChunkSource& inner, std::string name_suffix,
                           Predicate pred)
    : inner_(&inner),
      info_{inner.info().name + std::move(name_suffix), inner.info().t_begin,
            inner.info().t_end},
      pred_(std::move(pred)) {}

bool FilterSource::next(std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  while (chunk.empty()) {
    if (!inner_->next(buf_)) return false;
    for (const trace::PacketRecord& r : buf_) {
      if (pred_(r)) chunk.push_back(r);
    }
  }
  return true;
}

FilterSource protocol_filter(PacketChunkSource& inner,
                             trace::Protocol protocol) {
  return FilterSource(inner, "/" + std::string(trace::to_string(protocol)),
                      [protocol](const trace::PacketRecord& r) {
                        return r.protocol == protocol;
                      });
}

FilterSource originator_data_filter(PacketChunkSource& inner) {
  return FilterSource(inner, "/orig-data", [](const trace::PacketRecord& r) {
    return r.from_originator && r.payload_bytes > 0;
  });
}

BulkOutlierSource::BulkOutlierSource(PacketChunkSource& inner,
                                     double max_bytes, double max_rate)
    : inner_(&inner),
      info_{inner.info().name + "/no-outliers", inner.info().t_begin,
            inner.info().t_end},
      max_bytes_(max_bytes),
      max_rate_(max_rate) {}

void BulkOutlierSource::scan_outliers() {
  trace::BulkOutlierDetector det(max_bytes_, max_rate_);
  while (inner_->next(buf_)) {
    for (const trace::PacketRecord& r : buf_) det.observe(r);
  }
  outliers_ = det.outliers();
  inner_->reset();
  scanned_ = true;
}

bool BulkOutlierSource::next(std::vector<trace::PacketRecord>& chunk) {
  if (!scanned_) scan_outliers();
  chunk.clear();
  while (chunk.empty()) {
    if (!inner_->next(buf_)) return false;
    for (const trace::PacketRecord& r : buf_) {
      if (!outliers_.contains(r.conn_id)) chunk.push_back(r);
    }
  }
  return true;
}

void BulkOutlierSource::reset() {
  // The outlier set is a function of the (replayable) upstream, so a
  // second pass reuses it rather than rescanning.
  inner_->reset();
}

}  // namespace wan::stream
