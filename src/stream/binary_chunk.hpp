// Chunked access to the binary trace format, built on the format
// primitives in src/trace/binary_io.hpp so a file written record by
// record is byte-identical to one written by write_binary_file.
//
// The writer does not know the record count up front (a streaming
// synthesizer doesn't either), so it writes the header with count 0 and
// patches the count field in place on close().
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>

#include "src/stream/chunk.hpp"

namespace wan::stream {

class ChunkedBinaryWriter {
 public:
  /// Opens `path` and writes the header immediately (count 0).
  /// Throws std::runtime_error if the file cannot be opened.
  ChunkedBinaryWriter(const std::string& path, const StreamInfo& info);
  ~ChunkedBinaryWriter();

  ChunkedBinaryWriter(const ChunkedBinaryWriter&) = delete;
  ChunkedBinaryWriter& operator=(const ChunkedBinaryWriter&) = delete;

  void write(const trace::PacketRecord& r);
  void write(std::span<const trace::PacketRecord> records);

  std::uint64_t count() const { return count_; }

  /// Patches the record count into the header and flushes. Throws on
  /// I/O failure; the destructor closes silently if not already closed.
  void close();

 private:
  std::ofstream os_;
  std::uint64_t count_offset_ = 0;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// Streams a binary trace file chunk by chunk; peak memory is one chunk
/// regardless of file size. reset() seeks back to the first record.
class BinaryChunkSource final : public PacketChunkSource {
 public:
  /// Opens the file and reads the header. Throws std::runtime_error on
  /// open failure or a malformed header.
  explicit BinaryChunkSource(const std::string& path,
                             std::size_t chunk_size = kDefaultChunkSize);

  const StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

 private:
  std::ifstream is_;
  StreamInfo info_;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
  std::streampos data_offset_;
  std::size_t chunk_size_;
};

}  // namespace wan::stream
