#include "src/stream/columnar.hpp"

#include <algorithm>

namespace wan::stream {

void PacketColumns::clear() {
  time.clear();
  protocol.clear();
  conn_id.clear();
  from_originator.clear();
  payload_bytes.clear();
}

void PacketColumns::reserve(std::size_t n) {
  time.reserve(n);
  protocol.reserve(n);
  conn_id.reserve(n);
  from_originator.reserve(n);
  payload_bytes.reserve(n);
}

void PacketColumns::append_rows(std::span<const trace::PacketRecord> rows) {
  const std::size_t base = size();
  const std::size_t n = rows.size();
  time.resize(base + n);
  protocol.resize(base + n);
  conn_id.resize(base + n);
  from_originator.resize(base + n);
  payload_bytes.resize(base + n);
  // One output column per loop: each pass reads the row array once and
  // writes one contiguous column.
  for (std::size_t i = 0; i < n; ++i) time[base + i] = rows[i].time;
  for (std::size_t i = 0; i < n; ++i) protocol[base + i] = rows[i].protocol;
  for (std::size_t i = 0; i < n; ++i) conn_id[base + i] = rows[i].conn_id;
  for (std::size_t i = 0; i < n; ++i)
    from_originator[base + i] = rows[i].from_originator ? 1 : 0;
  for (std::size_t i = 0; i < n; ++i)
    payload_bytes[base + i] = rows[i].payload_bytes;
}

trace::PacketRecord PacketColumns::row(std::size_t i) const {
  trace::PacketRecord r;
  r.time = time[i];
  r.protocol = protocol[i];
  r.conn_id = conn_id[i];
  r.from_originator = from_originator[i] != 0;
  r.payload_bytes = payload_bytes[i];
  return r;
}

void PacketColumns::to_rows(std::vector<trace::PacketRecord>& out) const {
  const std::size_t base = out.size();
  out.resize(base + size());
  for (std::size_t i = 0; i < size(); ++i) out[base + i] = row(i);
}

void ConnColumns::clear() {
  start.clear();
  duration.clear();
  protocol.clear();
  src_host.clear();
  dst_host.clear();
  bytes_orig.clear();
  bytes_resp.clear();
  session_id.clear();
}

void ConnColumns::reserve(std::size_t n) {
  start.reserve(n);
  duration.reserve(n);
  protocol.reserve(n);
  src_host.reserve(n);
  dst_host.reserve(n);
  bytes_orig.reserve(n);
  bytes_resp.reserve(n);
  session_id.reserve(n);
}

void ConnColumns::push_back(const trace::ConnRecord& r) {
  start.push_back(r.start);
  duration.push_back(r.duration);
  protocol.push_back(r.protocol);
  src_host.push_back(r.src_host);
  dst_host.push_back(r.dst_host);
  bytes_orig.push_back(r.bytes_orig);
  bytes_resp.push_back(r.bytes_resp);
  session_id.push_back(r.session_id);
}

void ConnColumns::append_rows(std::span<const trace::ConnRecord> rows) {
  const std::size_t base = size();
  const std::size_t n = rows.size();
  start.resize(base + n);
  duration.resize(base + n);
  protocol.resize(base + n);
  src_host.resize(base + n);
  dst_host.resize(base + n);
  bytes_orig.resize(base + n);
  bytes_resp.resize(base + n);
  session_id.resize(base + n);
  for (std::size_t i = 0; i < n; ++i) start[base + i] = rows[i].start;
  for (std::size_t i = 0; i < n; ++i) duration[base + i] = rows[i].duration;
  for (std::size_t i = 0; i < n; ++i) protocol[base + i] = rows[i].protocol;
  for (std::size_t i = 0; i < n; ++i) src_host[base + i] = rows[i].src_host;
  for (std::size_t i = 0; i < n; ++i) dst_host[base + i] = rows[i].dst_host;
  for (std::size_t i = 0; i < n; ++i)
    bytes_orig[base + i] = rows[i].bytes_orig;
  for (std::size_t i = 0; i < n; ++i)
    bytes_resp[base + i] = rows[i].bytes_resp;
  for (std::size_t i = 0; i < n; ++i)
    session_id[base + i] = rows[i].session_id;
}

trace::ConnRecord ConnColumns::row(std::size_t i) const {
  trace::ConnRecord r;
  r.start = start[i];
  r.duration = duration[i];
  r.protocol = protocol[i];
  r.src_host = src_host[i];
  r.dst_host = dst_host[i];
  r.bytes_orig = bytes_orig[i];
  r.bytes_resp = bytes_resp[i];
  r.session_id = session_id[i];
  return r;
}

void ConnColumns::to_rows(std::vector<trace::ConnRecord>& out) const {
  const std::size_t base = out.size();
  out.resize(base + size());
  for (std::size_t i = 0; i < size(); ++i) out[base + i] = row(i);
}

PacketColumns to_columns(std::span<const trace::PacketRecord> rows) {
  PacketColumns cols;
  cols.append_rows(rows);
  return cols;
}

ConnColumns to_conn_columns(std::span<const trace::ConnRecord> rows) {
  ConnColumns cols;
  cols.append_rows(rows);
  return cols;
}

bool ColumnsFromRows::next(PacketColumns& chunk) {
  chunk.clear();
  if (!inner_->next(buf_)) return false;
  chunk.append_rows(buf_);
  return true;
}

bool RowsFromColumns::next(std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  if (!inner_->next(buf_)) return false;
  buf_.to_rows(chunk);
  return true;
}

bool ConnColumnsFromRows::next(ConnColumns& chunk) {
  chunk.clear();
  if (!inner_->next(buf_)) return false;
  chunk.append_rows(buf_);
  return true;
}

bool ConnRowsFromColumns::next(std::vector<trace::ConnRecord>& chunk) {
  chunk.clear();
  if (!inner_->next(buf_)) return false;
  buf_.to_rows(chunk);
  return true;
}

bool ColumnTableSource::next(PacketColumns& chunk) {
  chunk.clear();
  const std::size_t n = table_->size();
  if (pos_ >= n) return false;
  const std::size_t take = std::min(chunk_size_, n - pos_);
  const std::size_t end = pos_ + take;
  chunk.time.assign(table_->time.begin() + pos_, table_->time.begin() + end);
  chunk.protocol.assign(table_->protocol.begin() + pos_,
                        table_->protocol.begin() + end);
  chunk.conn_id.assign(table_->conn_id.begin() + pos_,
                       table_->conn_id.begin() + end);
  chunk.from_originator.assign(table_->from_originator.begin() + pos_,
                               table_->from_originator.begin() + end);
  chunk.payload_bytes.assign(table_->payload_bytes.begin() + pos_,
                             table_->payload_bytes.begin() + end);
  pos_ = end;
  return true;
}

PacketColumns collect_columns(PacketColumnSource& source) {
  PacketColumns all;
  PacketColumns chunk;
  while (source.next(chunk)) {
    all.time.insert(all.time.end(), chunk.time.begin(), chunk.time.end());
    all.protocol.insert(all.protocol.end(), chunk.protocol.begin(),
                        chunk.protocol.end());
    all.conn_id.insert(all.conn_id.end(), chunk.conn_id.begin(),
                       chunk.conn_id.end());
    all.from_originator.insert(all.from_originator.end(),
                               chunk.from_originator.begin(),
                               chunk.from_originator.end());
    all.payload_bytes.insert(all.payload_bytes.end(),
                             chunk.payload_bytes.begin(),
                             chunk.payload_bytes.end());
  }
  return all;
}

namespace {

// Scratch for the two-phase selects below. Thread-local so concurrent
// sources never share it; it holds one byte per row of the largest
// chunk seen on this thread.
std::vector<std::uint8_t>& match_scratch(std::size_t n) {
  static thread_local std::vector<std::uint8_t> m;
  m.resize(n);
  return m;
}

// Phase 2 of every select: branchless compaction of the 0/1 match
// bytes into row indices. The cursor carries a loop dependency, so this
// part cannot vectorize — which is exactly why the predicate evaluation
// is split out into its own (vectorizable) pass over the columns.
void compact_matches(const std::uint8_t* m, std::size_t n,
                     std::vector<std::uint32_t>& sel) {
  const std::size_t base = sel.size();
  sel.resize(base + n);
  std::uint32_t* s = sel.data();
  std::size_t k = base;
  for (std::size_t i = 0; i < n; ++i) {
    s[k] = static_cast<std::uint32_t>(i);
    k += m[i];
  }
  sel.resize(k);
}

}  // namespace

void select_equal(std::span<const trace::Protocol> col, trace::Protocol value,
                  std::vector<std::uint32_t>& sel) {
  const std::size_t n = col.size();
  std::uint8_t* m = match_scratch(n).data();
  for (std::size_t i = 0; i < n; ++i) m[i] = col[i] == value;
  compact_matches(m, n, sel);
}

void select_orig_data(const PacketColumns& cols,
                      std::vector<std::uint32_t>& sel) {
  const std::size_t n = cols.size();
  const std::uint8_t* orig = cols.from_originator.data();
  const std::uint16_t* payload = cols.payload_bytes.data();
  std::uint8_t* m = match_scratch(n).data();
  for (std::size_t i = 0; i < n; ++i)
    m[i] = (orig[i] != 0) & (payload[i] > 0);
  compact_matches(m, n, sel);
}

void select_protocol_orig_data(const PacketColumns& cols,
                               trace::Protocol value,
                               std::vector<std::uint32_t>& sel) {
  const std::size_t n = cols.size();
  const trace::Protocol* proto = cols.protocol.data();
  const std::uint8_t* orig = cols.from_originator.data();
  const std::uint16_t* payload = cols.payload_bytes.data();
  std::uint8_t* m = match_scratch(n).data();
  // The conjunction of select_equal and the originator-data predicate
  // in one pass over the three narrow columns, without writing and
  // re-reading an intermediate selection.
  for (std::size_t i = 0; i < n; ++i)
    m[i] = (proto[i] == value) & (orig[i] != 0) & (payload[i] > 0);
  compact_matches(m, n, sel);
}

void refine_orig_data(const PacketColumns& cols,
                      std::vector<std::uint32_t>& sel) {
  const std::uint8_t* orig = cols.from_originator.data();
  const std::uint16_t* payload = cols.payload_bytes.data();
  std::size_t k = 0;
  for (std::size_t j = 0; j < sel.size(); ++j) {
    const std::uint32_t i = sel[j];
    sel[k] = i;
    k += (orig[i] != 0) & (payload[i] > 0) ? 1 : 0;
  }
  sel.resize(k);
}

namespace {

// Gathers one column: out[j] = in[sel[j]].
template <typename T>
void gather_column(const std::vector<T>& in,
                   std::span<const std::uint32_t> sel, std::vector<T>& out) {
  out.resize(sel.size());
  for (std::size_t j = 0; j < sel.size(); ++j) out[j] = in[sel[j]];
}

}  // namespace

void gather(const PacketColumns& in, std::span<const std::uint32_t> sel,
            PacketColumns& out) {
  gather_column(in.time, sel, out.time);
  gather_column(in.protocol, sel, out.protocol);
  gather_column(in.conn_id, sel, out.conn_id);
  gather_column(in.from_originator, sel, out.from_originator);
  gather_column(in.payload_bytes, sel, out.payload_bytes);
}

}  // namespace wan::stream
