#include "src/stream/binary_chunk.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/trace/binary_io.hpp"

namespace wan::stream {

ChunkedBinaryWriter::ChunkedBinaryWriter(const std::string& path,
                                         const StreamInfo& info)
    : os_(path, std::ios::binary) {
  if (!os_)
    throw std::runtime_error("binary_chunk: cannot open for write: " + path);
  count_offset_ = trace::write_packet_header(
      os_, {info.name, info.t_begin, info.t_end, 0});
}

ChunkedBinaryWriter::~ChunkedBinaryWriter() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructor must not throw; an explicit close() surfaces errors.
    }
  }
}

void ChunkedBinaryWriter::write(const trace::PacketRecord& r) {
  trace::write_packet_record(os_, r);
  ++count_;
}

void ChunkedBinaryWriter::write(std::span<const trace::PacketRecord> records) {
  for (const trace::PacketRecord& r : records) write(r);
}

void ChunkedBinaryWriter::close() {
  if (closed_) return;
  closed_ = true;
  os_.seekp(static_cast<std::streamoff>(count_offset_));
  os_.write(reinterpret_cast<const char*>(&count_), sizeof(count_));
  os_.flush();
  if (!os_) throw std::runtime_error("binary_chunk: write failed on close");
  os_.close();
}

BinaryChunkSource::BinaryChunkSource(const std::string& path,
                                     std::size_t chunk_size)
    : is_(path, std::ios::binary), chunk_size_(chunk_size) {
  if (!is_)
    throw std::runtime_error("binary_chunk: cannot open for read: " + path);
  trace::PacketFileHeader h = trace::read_packet_header(is_);
  info_ = {std::move(h.name), h.t_begin, h.t_end};
  total_ = h.count;
  data_offset_ = is_.tellg();
}

bool BinaryChunkSource::next(std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  if (read_ >= total_) return false;
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_size_, total_ - read_));
  chunk.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    chunk.push_back(trace::read_packet_record(is_));
  read_ += n;
  return true;
}

void BinaryChunkSource::reset() {
  is_.clear();
  is_.seekg(data_offset_);
  if (!is_) throw std::runtime_error("binary_chunk: reset seek failed");
  read_ = 0;
}

}  // namespace wan::stream
