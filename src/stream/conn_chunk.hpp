// Connection-level twin of the packet chunk contract (chunk.hpp): a
// ConnChunkSource pulls ConnRecords in fixed-size chunks so
// connection-log ingestion (src/ingest) streams week-scale SYN/FIN logs
// in bounded memory. The contract is identical — next() clears then
// fills, false means exhausted, records arrive in batch order, reset()
// rewinds to an identical sequence.
#pragma once

#include <cstddef>
#include <vector>

#include "src/stream/chunk.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/records.hpp"

namespace wan::stream {

class ConnChunkSource {
 public:
  virtual ~ConnChunkSource() = default;

  virtual const StreamInfo& info() const = 0;

  /// Chunk contract of PacketChunkSource::next, for ConnRecords.
  virtual bool next(std::vector<trace::ConnRecord>& chunk) = 0;

  /// Rewinds to the first record.
  virtual void reset() = 0;
};

/// Drains the source into an in-memory ConnTrace (the streaming → batch
/// bridge). The Section-III analyses (poisson_report, find_ftp_bursts)
/// are whole-trace algorithms, so connection analysis lands here; the
/// value of the chunk contract is that ingestion and filtering upstream
/// never hold more than a chunk.
trace::ConnTrace collect_conns(ConnChunkSource& source);

/// Feeds every record of the source, in order, to fn(const ConnRecord&).
template <typename Fn>
void for_each_conn(ConnChunkSource& source, Fn&& fn) {
  std::vector<trace::ConnRecord> chunk;
  while (source.next(chunk)) {
    for (const trace::ConnRecord& r : chunk) fn(r);
  }
}

}  // namespace wan::stream
