// Log-logistic distribution. Section VI notes the upper tail of
// intra-session FTPDATA connection spacing is "better approximated using a
// log-normal or log-logistic distribution" than an exponential.
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// LogLogistic(scale, shape): F(x) = 1 / (1 + (x/scale)^-shape).
/// Heavier-than-exponential upper tail: P[X > x] ~ (x/scale)^-shape.
class LogLogistic final : public Distribution {
 public:
  LogLogistic(double scale, double shape);

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;      // +inf for shape <= 1
  double variance() const override;  // +inf for shape <= 2
  std::string name() const override;

  double scale() const { return scale_; }
  double shape() const { return shape_; }

 private:
  double scale_;
  double shape_;
};

}  // namespace wan::dist
