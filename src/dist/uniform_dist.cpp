#include "src/dist/uniform_dist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::dist {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Uniform: requires lo < hi");
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::cmex(double x) const {
  if (x >= hi_) return 0.0;
  const double lo = std::max(x, lo_);
  // Conditional on X > x, X is uniform on (lo, hi): mean (lo+hi)/2.
  return 0.5 * (lo + hi_) - x;
}

std::string Uniform::name() const {
  return "Uniform(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

LogUniform::LogUniform(double lo, double hi)
    : lo_(lo), hi_(hi), log_lo_(std::log(lo)), log_hi_(std::log(hi)) {
  if (!(lo > 0.0 && lo < hi))
    throw std::invalid_argument("LogUniform: requires 0 < lo < hi");
}

double LogUniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (std::log(x) - log_lo_) / (log_hi_ - log_lo_);
}

double LogUniform::quantile(double p) const {
  return std::exp(log_lo_ + p * (log_hi_ - log_lo_));
}

double LogUniform::mean() const { return (hi_ - lo_) / (log_hi_ - log_lo_); }

double LogUniform::variance() const {
  const double m = mean();
  const double ex2 = (hi_ * hi_ - lo_ * lo_) / (2.0 * (log_hi_ - log_lo_));
  return ex2 - m * m;
}

std::string LogUniform::name() const {
  return "LogUniform(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

}  // namespace wan::dist
