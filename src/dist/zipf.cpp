#include "src/dist/zipf.hpp"

#include <cmath>

namespace wan::dist {

double DiscretePareto::pmf(std::uint64_t n) {
  const double nn = static_cast<double>(n);
  return 1.0 / ((nn + 1.0) * (nn + 2.0));
}

double DiscretePareto::cdf(std::uint64_t n) {
  // Telescoping sum: sum_{k=0}^{n} [1/(k+1) - 1/(k+2)] = 1 - 1/(n+2).
  return 1.0 - 1.0 / (static_cast<double>(n) + 2.0);
}

std::uint64_t DiscretePareto::quantile(double p) {
  // cdf(n) >= p  <=>  n >= 1/(1-p) - 2. The epsilon guards float noise
  // pushing an exact boundary (e.g. p = 0.9 -> n = 8) up a step.
  if (p <= 0.0) return 0;
  const double n = std::ceil(1.0 / (1.0 - p) - 2.0 - 1e-9);
  return n <= 0.0 ? 0 : static_cast<std::uint64_t>(n);
}

std::uint64_t DiscretePareto::sample(rng::Rng& rng) const {
  return quantile(rng.uniform01());
}

}  // namespace wan::dist
