#include "src/dist/normal.hpp"

#include <stdexcept>

#include "src/dist/special.hpp"

namespace wan::dist {

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("Normal: sigma must be > 0");
}

double Normal::cdf(double x) const {
  return normal_cdf((x - mu_) / sigma_);
}

double Normal::quantile(double p) const {
  return mu_ + sigma_ * normal_quantile(p);
}

std::string Normal::name() const {
  return "Normal(mu=" + std::to_string(mu_) +
         ",sigma=" + std::to_string(sigma_) + ")";
}

double standard_normal(rng::Rng& rng) {
  return normal_quantile(rng.uniform01_open_below());
}

}  // namespace wan::dist
