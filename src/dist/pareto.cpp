#include "src/dist/pareto.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wan::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Pareto::Pareto(double location, double shape) : a_(location), beta_(shape) {
  if (!(location > 0.0)) throw std::invalid_argument("Pareto: location must be > 0");
  if (!(shape > 0.0)) throw std::invalid_argument("Pareto: shape must be > 0");
}

double Pareto::cdf(double x) const {
  if (x <= a_) return 0.0;
  return 1.0 - std::pow(a_ / x, beta_);
}

double Pareto::tail(double x) const {
  if (x <= a_) return 1.0;
  return std::pow(a_ / x, beta_);
}

double Pareto::quantile(double p) const {
  return a_ * std::pow(1.0 - p, -1.0 / beta_);
}

double Pareto::mean() const {
  if (beta_ <= 1.0) return kInf;
  return beta_ * a_ / (beta_ - 1.0);
}

double Pareto::variance() const {
  if (beta_ <= 2.0) return kInf;
  const double b1 = beta_ - 1.0;
  return a_ * a_ * beta_ / (b1 * b1 * (beta_ - 2.0));
}

double Pareto::cmex(double x) const {
  if (beta_ <= 1.0) return kInf;
  if (x < a_) {
    // E[X] - x for x below the support.
    return mean() - x;
  }
  return x / (beta_ - 1.0);
}

std::string Pareto::name() const {
  return "Pareto(a=" + std::to_string(a_) + ",beta=" + std::to_string(beta_) +
         ")";
}

TruncatedPareto::TruncatedPareto(double location, double shape, double upper)
    : a_(location), beta_(shape), upper_(upper) {
  if (!(location > 0.0))
    throw std::invalid_argument("TruncatedPareto: location must be > 0");
  if (!(shape > 0.0))
    throw std::invalid_argument("TruncatedPareto: shape must be > 0");
  if (!(upper > location))
    throw std::invalid_argument("TruncatedPareto: upper must be > location");
  norm_ = 1.0 - std::pow(a_ / upper_, beta_);
}

double TruncatedPareto::cdf(double x) const {
  if (x <= a_) return 0.0;
  if (x >= upper_) return 1.0;
  return (1.0 - std::pow(a_ / x, beta_)) / norm_;
}

double TruncatedPareto::quantile(double p) const {
  return a_ * std::pow(1.0 - p * norm_, -1.0 / beta_);
}

double TruncatedPareto::moment(double k) const {
  // E[X^k] = Integral a..U of k-th power against density
  //        = beta a^beta / norm * Integral a..U x^{k-beta-1} dx.
  const double c = beta_ * std::pow(a_, beta_) / norm_;
  if (std::abs(k - beta_) < 1e-12) {
    return c * std::log(upper_ / a_);
  }
  const double e = k - beta_;
  return c * (std::pow(upper_, e) - std::pow(a_, e)) / e;
}

double TruncatedPareto::mean() const { return moment(1.0); }

double TruncatedPareto::variance() const {
  const double m = mean();
  return moment(2.0) - m * m;
}

std::string TruncatedPareto::name() const {
  return "TruncatedPareto(a=" + std::to_string(a_) +
         ",beta=" + std::to_string(beta_) + ",U=" + std::to_string(upper_) +
         ")";
}

}  // namespace wan::dist
