// Uniform distribution on [lo, hi] — Appendix B's example of a
// light-tailed law (CMEX decreasing in x).
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// Uniform(lo, hi), lo < hi.
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  double cdf(double x) const override;
  double quantile(double p) const override { return lo_ + p * (hi_ - lo_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  double cmex(double x) const override;
  std::string name() const override;

 private:
  double lo_;
  double hi_;
};

/// Log-uniform on [lo, hi]: log X ~ Uniform. Used for the sub-8 ms
/// "network dynamics" region of the Tcplib reconstruction, where the
/// paper's Fig. 3 CDF is nearly linear in log time.
class LogUniform final : public Distribution {
 public:
  /// Requires 0 < lo < hi.
  LogUniform(double lo, double hi);

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;  // (hi - lo) / ln(hi/lo)
  double variance() const override;
  std::string name() const override;

 private:
  double lo_;
  double hi_;
  double log_lo_;
  double log_hi_;
};

}  // namespace wan::dist
