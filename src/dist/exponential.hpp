// Exponential distribution — the interarrival law of a homogeneous
// Poisson process, and the paper's straw-man model for packet
// interarrivals ("EXP" and "VAR-EXP" schemes in Section IV).
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// Exponential(mean). The memoryless distribution: CMEX is constant.
class Exponential final : public Distribution {
 public:
  /// mean must be > 0.
  explicit Exponential(double mean);

  /// Named constructor from rate lambda = 1/mean.
  static Exponential from_rate(double rate) { return Exponential(1.0 / rate); }

  double cdf(double x) const override;
  double tail(double x) const override;  // exact exp(-x/mean)
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  double variance() const override { return mean_ * mean_; }
  double cmex(double /*x*/) const override { return mean_; }
  std::string name() const override;

  double rate() const { return 1.0 / mean_; }

 private:
  double mean_;
};

}  // namespace wan::dist
