// Log-normal distribution. The paper models TELNET connection sizes in
// packets as log2-normal with log2-mean log2(100) and log2-sd 2.24
// (Section V), and proves in Appendix E that the log-normal is long-tailed
// (subexponential) but NOT heavy-tailed in the power-law sense, so
// M/G/inf with log-normal lifetimes is not long-range dependent.
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// LogNormal: ln X ~ N(mu, sigma^2).
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  /// The paper's parameterization: log2 X ~ N(mean_log2, sd_log2^2).
  /// FULL-TEL uses from_log2(log2(100), 2.24) for packets per connection.
  static LogNormal from_log2(double mean_log2, double sd_log2);

  double cdf(double x) const override;
  /// Cancellation-free far tail via erfc (Appendix E's tail analysis
  /// needs values far below 1e-16).
  double tail(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string name() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace wan::dist
