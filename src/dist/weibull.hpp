// Weibull distribution — heavy-tailed in the paper's asymptotic sense
// when shape < 1 (Appendix B cites [13]); used here for ON/OFF period
// models and as an alternative lifetime law in M/G/inf ablations.
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// Weibull(scale, shape): F(x) = 1 - exp(-(x/scale)^shape).
class Weibull final : public Distribution {
 public:
  Weibull(double scale, double shape);

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string name() const override;

  double scale() const { return scale_; }
  double shape() const { return shape_; }

 private:
  double scale_;
  double shape_;
};

}  // namespace wan::dist
