// Reconstruction of the Tcplib empirical TELNET packet-interarrival
// distribution (Danzig & Jamin [11,12]) from the facts Paxson & Floyd
// publish about it in Section IV and Appendix C:
//
//   * support from ~1 ms out to minutes (Fig. 3 spans log10 seconds
//     from -3 to ~2);
//   * fewer than 2% of interarrivals are below 8 ms;
//   * more than 15% of interarrivals exceed 1 s;
//   * the main body fits a Pareto with shape beta = 0.9, the upper 3%
//     tail a Pareto with beta ~ 0.95;
//   * the arithmetic mean is near 1.1 s (the paper's matched exponential
//     uses mean 1.1 s "to give roughly the same number of packets").
//
// We splice: a log-linear CDF through the sub-300 ms region (where
// Fig. 3 is nearly straight on the log axis and network dynamics
// dominate), a Pareto(beta_body) segment covering the body up to the
// 97th percentile, and a Pareto(beta_tail) upper-3% tail truncated at
// max_interarrival so moments exist.
#pragma once

#include <string>
#include <vector>

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// Tunable parameters of the reconstruction (ablation surface).
struct TcplibParams {
  double min_interarrival = 0.001;  ///< 1 ms floor (paper plots from 1 ms)
  double p_below_8ms = 0.015;       ///< "under 2% were less than 8 ms apart"
  double p_below_100ms = 0.30;      ///< read off Fig. 3's log-linear rise
  double body_start = 0.3;          ///< where the Pareto body takes over
  double p_below_body_start = 0.55; ///< calibrated so P[X > 1 s] ~ 0.15
  double beta_body = 0.9;           ///< paper: body Pareto shape 0.9
  double beta_tail = 0.95;          ///< paper: upper-3% Pareto shape 0.95
  double tail_mass = 0.03;          ///< "upper 3% tail"
  double max_interarrival = 360.0;  ///< truncation; keeps mean ~1.2 s

  /// The parameterization used throughout the paper reproduction.
  static TcplibParams paper() { return TcplibParams{}; }
};

/// The spliced Tcplib TELNET interarrival law. Closed-form CDF/quantile;
/// exact mean/variance by per-segment integration.
class TcplibTelnetInterarrival final : public Distribution {
 public:
  explicit TcplibTelnetInterarrival(TcplibParams params = TcplibParams::paper());

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string name() const override;

  const TcplibParams& params() const { return params_; }

  /// Value below which lies exactly `1 - params.tail_mass` of the mass
  /// (start of the beta_tail Pareto segment).
  double tail_start() const;

 private:
  // One contiguous piece of the spliced CDF.
  struct Segment {
    double lo, hi;    // support
    double p_lo, p_hi;  // CDF values at lo/hi
    bool pareto;        // log-uniform if false
    double beta;        // Pareto shape (ignored if !pareto)
  };

  double segment_cdf(const Segment& s, double x) const;
  double segment_quantile(const Segment& s, double p) const;
  double segment_mean(const Segment& s) const;
  double segment_moment2(const Segment& s) const;

  TcplibParams params_;
  std::vector<Segment> segments_;
};

}  // namespace wan::dist
