#include "src/dist/loglogistic.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wan::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LogLogistic::LogLogistic(double scale, double shape)
    : scale_(scale), shape_(shape) {
  if (!(scale > 0.0))
    throw std::invalid_argument("LogLogistic: scale must be > 0");
  if (!(shape > 0.0))
    throw std::invalid_argument("LogLogistic: shape must be > 0");
}

double LogLogistic::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double r = std::pow(x / scale_, -shape_);
  return 1.0 / (1.0 + r);
}

double LogLogistic::quantile(double p) const {
  return scale_ * std::pow(p / (1.0 - p), 1.0 / shape_);
}

double LogLogistic::mean() const {
  if (shape_ <= 1.0) return kInf;
  const double b = M_PI / shape_;
  return scale_ * b / std::sin(b);
}

double LogLogistic::variance() const {
  if (shape_ <= 2.0) return kInf;
  const double b = M_PI / shape_;
  const double m = scale_ * b / std::sin(b);
  const double ex2 = scale_ * scale_ * 2.0 * b / std::sin(2.0 * b);
  return ex2 - m * m;
}

std::string LogLogistic::name() const {
  return "LogLogistic(scale=" + std::to_string(scale_) +
         ",shape=" + std::to_string(shape_) + ")";
}

}  // namespace wan::dist
