#include "src/dist/weibull.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::dist {

Weibull::Weibull(double scale, double shape) : scale_(scale), shape_(shape) {
  if (!(scale > 0.0)) throw std::invalid_argument("Weibull: scale must be > 0");
  if (!(shape > 0.0)) throw std::invalid_argument("Weibull: shape must be > 0");
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::name() const {
  return "Weibull(scale=" + std::to_string(scale_) +
         ",shape=" + std::to_string(shape_) + ")";
}

}  // namespace wan::dist
