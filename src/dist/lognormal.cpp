#include "src/dist/lognormal.hpp"

#include <cmath>
#include <stdexcept>

#include "src/dist/special.hpp"

namespace wan::dist {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("LogNormal: sigma must be > 0");
}

LogNormal LogNormal::from_log2(double mean_log2, double sd_log2) {
  static const double kLn2 = std::log(2.0);
  return LogNormal(mean_log2 * kLn2, sd_log2 * kLn2);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::tail(double x) const {
  if (x <= 0.0) return 1.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

double LogNormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormal::name() const {
  return "LogNormal(mu=" + std::to_string(mu_) +
         ",sigma=" + std::to_string(sigma_) + ")";
}

}  // namespace wan::dist
