// Log-extreme distribution: a Gumbel (extreme-value) law applied to
// log2 of the variate. Paxson [34] models the number of bytes sent by a
// TELNET originator as log-extreme with location alpha = log2(100) and
// scale beta = log2(3.5); Section V of this paper keeps that model for
// bytes while preferring log-normal for packets.
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// LogExtreme: log2 X ~ Gumbel(alpha, beta), i.e.
///   F(x) = exp(-exp(-(log2 x - alpha) / beta)).
class LogExtreme final : public Distribution {
 public:
  /// alpha: location of log2 X; beta: scale of log2 X (> 0).
  LogExtreme(double alpha, double beta);

  double cdf(double x) const override;
  double quantile(double p) const override;
  /// E[X] = 2^alpha * Gamma(1 - beta*ln2) when beta*ln2 < 1, else +inf.
  /// With the paper's beta = log2(3.5), beta*ln2 = ln(3.5) > 1, so the
  /// modeled byte count has infinite mean — already a heavy-tail signal.
  double mean() const override;
  double variance() const override;
  std::string name() const override;

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

}  // namespace wan::dist
