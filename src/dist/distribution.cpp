#include "src/dist/distribution.hpp"

#include <cmath>

namespace wan::dist {

double Distribution::sample(rng::Rng& rng) const {
  return quantile(rng.uniform01_open_below());
}

double Distribution::quantile(double p) const {
  double lo = support_lo();
  double hi = support_hi();
  // 200 bisection steps resolve any bracket to ~2^-200 of its width,
  // i.e. far below double precision.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-15 * (1.0 + std::abs(lo))) break;
  }
  return 0.5 * (lo + hi);
}

double Distribution::cmex(double x) const {
  // E[X - x | X > x] = (1/P[X>x]) * Integral_x^inf P[X>t] dt.
  // Integrate the tail with an adaptive-ish geometric grid: fine near x,
  // coarse far out; stop when the remaining tail is negligible.
  const double px = tail(x);
  if (px <= 0.0) return 0.0;
  double integral = 0.0;
  double t = x;
  double step = std::max(1e-6, 1e-3 * (std::abs(x) + 1.0));
  for (int i = 0; i < 20000; ++i) {
    const double t2 = t + step;
    const double f1 = tail(t);
    const double f2 = tail(t2);
    integral += 0.5 * (f1 + f2) * step;
    t = t2;
    step *= 1.01;  // geometric growth: reaches huge t quickly
    if (f2 < 1e-12 * px) break;
  }
  return integral / px;
}

}  // namespace wan::dist
