#include "src/dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::dist {

EmpiricalCdf::EmpiricalCdf(std::vector<double> xs, std::vector<double> ps,
                           Interp interp)
    : xs_(std::move(xs)), ps_(std::move(ps)), interp_(interp) {
  if (xs_.size() != ps_.size() || xs_.size() < 2)
    throw std::invalid_argument("EmpiricalCdf: need >= 2 matching knots");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (!(xs_[i] > xs_[i - 1]))
      throw std::invalid_argument("EmpiricalCdf: x knots must increase");
    if (!(ps_[i] >= ps_[i - 1]))
      throw std::invalid_argument("EmpiricalCdf: p knots must be nondecreasing");
  }
  if (ps_.front() != 0.0 || std::abs(ps_.back() - 1.0) > 1e-12)
    throw std::invalid_argument("EmpiricalCdf: p must span [0, 1]");
  ps_.back() = 1.0;
  if (interp_ == Interp::kLogX && xs_.front() <= 0.0)
    throw std::invalid_argument("EmpiricalCdf: log-x interp needs x > 0");
}

EmpiricalCdf EmpiricalCdf::from_samples(std::span<const double> samples,
                                        Interp interp) {
  if (samples.size() < 2)
    throw std::invalid_argument("EmpiricalCdf: need >= 2 samples");
  std::vector<double> xs(samples.begin(), samples.end());
  std::sort(xs.begin(), xs.end());
  // Collapse duplicate order statistics, keeping the highest probability
  // assigned to each distinct value.
  std::vector<double> ux, up;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double p = static_cast<double>(i + 1) / n;
    if (!ux.empty() && xs[i] == ux.back()) {
      up.back() = p;
    } else {
      ux.push_back(xs[i]);
      up.push_back(p);
    }
  }
  if (ux.size() < 2)
    throw std::invalid_argument("EmpiricalCdf: all samples identical");
  // Anchor the CDF at the minimum with probability 0 (shift first knot).
  up.front() = 0.0;
  return EmpiricalCdf(std::move(ux), std::move(up), interp);
}

double EmpiricalCdf::knot_coord(double x) const {
  return interp_ == Interp::kLogX ? std::log(x) : x;
}

double EmpiricalCdf::inv_knot_coord(double c) const {
  return interp_ == Interp::kLogX ? std::exp(c) : c;
}

double EmpiricalCdf::cdf(double x) const {
  if (x <= xs_.front()) return 0.0;
  if (x >= xs_.back()) return 1.0;
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - xs_.begin()) - 1;
  const double c0 = knot_coord(xs_[i]);
  const double c1 = knot_coord(xs_[i + 1]);
  const double f = (knot_coord(x) - c0) / (c1 - c0);
  return ps_[i] + f * (ps_[i + 1] - ps_[i]);
}

double EmpiricalCdf::quantile(double p) const {
  if (p <= 0.0) return xs_.front();
  if (p >= 1.0) return xs_.back();
  const auto it = std::upper_bound(ps_.begin(), ps_.end(), p);
  std::size_t i = static_cast<std::size_t>(it - ps_.begin());
  if (i == 0) return xs_.front();
  --i;
  // Skip zero-width probability plateaus.
  while (i + 1 < ps_.size() && ps_[i + 1] == ps_[i]) ++i;
  if (i + 1 >= ps_.size()) return xs_.back();
  const double f = (p - ps_[i]) / (ps_[i + 1] - ps_[i]);
  const double c0 = knot_coord(xs_[i]);
  const double c1 = knot_coord(xs_[i + 1]);
  return inv_knot_coord(c0 + f * (c1 - c0));
}

double EmpiricalCdf::segment_mean(std::size_t i) const {
  const double x = xs_[i];
  const double y = xs_[i + 1];
  if (interp_ == Interp::kLogX) {
    // X | segment is log-uniform on [x, y].
    return (y - x) / std::log(y / x);
  }
  return 0.5 * (x + y);
}

double EmpiricalCdf::segment_moment2(std::size_t i) const {
  const double x = xs_[i];
  const double y = xs_[i + 1];
  if (interp_ == Interp::kLogX) {
    return (y * y - x * x) / (2.0 * std::log(y / x));
  }
  return (x * x + x * y + y * y) / 3.0;
}

double EmpiricalCdf::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
    m += (ps_[i + 1] - ps_[i]) * segment_mean(i);
  }
  return m;
}

double EmpiricalCdf::variance() const {
  double m2 = 0.0;
  for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
    m2 += (ps_[i + 1] - ps_[i]) * segment_moment2(i);
  }
  const double m = mean();
  return m2 - m * m;
}

std::string EmpiricalCdf::name() const {
  return "EmpiricalCdf(" + std::to_string(xs_.size()) + " knots)";
}

}  // namespace wan::dist
