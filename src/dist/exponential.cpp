#include "src/dist/exponential.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::dist {

Exponential::Exponential(double mean) : mean_(mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("Exponential: mean must be > 0");
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-x / mean_);
}

double Exponential::tail(double x) const {
  if (x <= 0.0) return 1.0;
  return std::exp(-x / mean_);
}

double Exponential::quantile(double p) const {
  return -mean_ * std::log1p(-p);
}

std::string Exponential::name() const {
  return "Exponential(mean=" + std::to_string(mean_) + ")";
}

}  // namespace wan::dist
