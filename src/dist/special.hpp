// Special functions needed by the distribution library: the standard
// normal CDF/quantile used by the log-normal distribution and by
// confidence intervals in wan::stats.
#pragma once

namespace wan::dist {

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x) noexcept;

/// Inverse of normal_cdf. Acklam's rational approximation with one
/// Halley refinement step; |relative error| < 1e-9 over (0,1).
/// p must lie in (0,1).
double normal_quantile(double p) noexcept;

/// Standard normal density phi(x).
double normal_pdf(double x) noexcept;

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// a > 0, x >= 0. Series for x < a + 1, continued fraction otherwise
/// (Numerical-Recipes style); |error| < 1e-12 over the tested range.
double regularized_gamma_p(double a, double x);

/// Chi-square CDF with k degrees of freedom: P(k/2, x/2).
double chi_square_cdf(double x, double k);

/// Upper tail of the chi-square distribution.
double chi_square_sf(double x, double k);

}  // namespace wan::dist
