// Pareto distributions — the heavy-tailed workhorse of the paper
// (Appendix B): TELNET packet interarrivals (beta ~ 0.9-0.95), FTPDATA
// burst bytes (0.9 <= beta <= 1.4), connections per burst, and the
// lifetimes that make M/G/inf asymptotically self-similar (Appendix D).
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// Classical Pareto with location a > 0 and shape beta > 0:
///   F(x) = 1 - (a/x)^beta for x >= a.
/// Infinite variance when beta <= 2, infinite mean when beta <= 1.
/// Scale-invariant, and "invariant under truncation from below":
/// X | X > x0 is again Pareto(x0, beta) — Appendix B eq. (2).
class Pareto final : public Distribution {
 public:
  Pareto(double location, double shape);

  double cdf(double x) const override;
  double tail(double x) const override;  // exact (a/x)^beta, no cancellation
  double quantile(double p) const override;
  double mean() const override;      // +inf for beta <= 1
  double variance() const override;  // +inf for beta <= 2
  /// CMEX_x = x / (beta - 1) for beta > 1 (linear!); +inf for beta <= 1.
  double cmex(double x) const override;
  std::string name() const override;

  double location() const { return a_; }
  double shape() const { return beta_; }

 private:
  double a_;
  double beta_;
};

/// Pareto truncated to [a, upper]: F(x) = (1-(a/x)^beta) / (1-(a/upper)^beta).
/// Gives finite moments for any beta; used whenever a simulation needs a
/// heavy-tailed law with a physically-bounded maximum (e.g. burst bytes
/// bounded by trace duration times link rate).
class TruncatedPareto final : public Distribution {
 public:
  TruncatedPareto(double location, double shape, double upper);

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string name() const override;

  double location() const { return a_; }
  double shape() const { return beta_; }
  double upper() const { return upper_; }

 private:
  double moment(double k) const;  // E[X^k]

  double a_;
  double beta_;
  double upper_;
  double norm_;  // 1 - (a/upper)^beta
};

}  // namespace wan::dist
