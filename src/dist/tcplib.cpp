#include "src/dist/tcplib.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::dist {

TcplibTelnetInterarrival::TcplibTelnetInterarrival(TcplibParams params)
    : params_(params) {
  const TcplibParams& q = params_;
  if (!(q.min_interarrival > 0.0 && q.min_interarrival < 0.008 &&
        0.008 < 0.1 && 0.1 < q.body_start &&
        q.body_start < q.max_interarrival))
    throw std::invalid_argument("TcplibParams: inconsistent support knots");
  if (!(0.0 < q.p_below_8ms && q.p_below_8ms < q.p_below_100ms &&
        q.p_below_100ms < q.p_below_body_start &&
        q.p_below_body_start < 1.0 - q.tail_mass))
    throw std::invalid_argument("TcplibParams: inconsistent probabilities");

  // Low region: log-linear CDF through (min,0) (8ms, p8) (100ms, p100)
  // (body_start, p_body).
  segments_.push_back({q.min_interarrival, 0.008, 0.0, q.p_below_8ms,
                       /*pareto=*/false, 0.0});
  segments_.push_back({0.008, 0.1, q.p_below_8ms, q.p_below_100ms,
                       /*pareto=*/false, 0.0});
  segments_.push_back({0.1, q.body_start, q.p_below_100ms,
                       q.p_below_body_start, /*pareto=*/false, 0.0});

  // Body: Pareto(body_start, beta_body) out to the (1 - tail_mass)
  // quantile of the *unconditioned* Pareto continuation, i.e. x97 solving
  //   (1 - p_body) * (body_start / x97)^beta = tail_mass.
  const double body_mass = 1.0 - q.p_below_body_start - q.tail_mass;
  const double x97 =
      q.body_start *
      std::pow((1.0 - q.p_below_body_start) / q.tail_mass, 1.0 / q.beta_body);
  if (!(x97 < q.max_interarrival))
    throw std::invalid_argument("TcplibParams: max_interarrival below tail start");
  segments_.push_back({q.body_start, x97, q.p_below_body_start,
                       q.p_below_body_start + body_mass, /*pareto=*/true,
                       q.beta_body});

  // Upper tail: Pareto(x97, beta_tail), truncated at max_interarrival.
  segments_.push_back({x97, q.max_interarrival, 1.0 - q.tail_mass, 1.0,
                       /*pareto=*/true, q.beta_tail});
}

double TcplibTelnetInterarrival::tail_start() const {
  return segments_.back().lo;
}

double TcplibTelnetInterarrival::segment_cdf(const Segment& s,
                                             double x) const {
  double f;  // conditional CDF within the segment, in [0,1]
  if (s.pareto) {
    const double norm = 1.0 - std::pow(s.lo / s.hi, s.beta);
    f = (1.0 - std::pow(s.lo / x, s.beta)) / norm;
  } else {
    f = std::log(x / s.lo) / std::log(s.hi / s.lo);
  }
  return s.p_lo + f * (s.p_hi - s.p_lo);
}

double TcplibTelnetInterarrival::segment_quantile(const Segment& s,
                                                  double p) const {
  const double f = (p - s.p_lo) / (s.p_hi - s.p_lo);
  if (s.pareto) {
    const double norm = 1.0 - std::pow(s.lo / s.hi, s.beta);
    return s.lo * std::pow(1.0 - f * norm, -1.0 / s.beta);
  }
  return s.lo * std::exp(f * std::log(s.hi / s.lo));
}

double TcplibTelnetInterarrival::cdf(double x) const {
  if (x <= segments_.front().lo) return 0.0;
  if (x >= segments_.back().hi) return 1.0;
  for (const Segment& s : segments_) {
    if (x <= s.hi) return segment_cdf(s, x);
  }
  return 1.0;
}

double TcplibTelnetInterarrival::quantile(double p) const {
  if (p <= 0.0) return segments_.front().lo;
  if (p >= 1.0) return segments_.back().hi;
  for (const Segment& s : segments_) {
    if (p <= s.p_hi) return segment_quantile(s, p);
  }
  return segments_.back().hi;
}

double TcplibTelnetInterarrival::segment_mean(const Segment& s) const {
  if (!s.pareto) {
    return (s.hi - s.lo) / std::log(s.hi / s.lo);
  }
  const double norm = 1.0 - std::pow(s.lo / s.hi, s.beta);
  const double c = s.beta * std::pow(s.lo, s.beta) / norm;
  const double e = 1.0 - s.beta;
  if (std::abs(e) < 1e-12) return c * std::log(s.hi / s.lo);
  return c * (std::pow(s.hi, e) - std::pow(s.lo, e)) / e;
}

double TcplibTelnetInterarrival::segment_moment2(const Segment& s) const {
  if (!s.pareto) {
    return (s.hi * s.hi - s.lo * s.lo) / (2.0 * std::log(s.hi / s.lo));
  }
  const double norm = 1.0 - std::pow(s.lo / s.hi, s.beta);
  const double c = s.beta * std::pow(s.lo, s.beta) / norm;
  const double e = 2.0 - s.beta;
  if (std::abs(e) < 1e-12) return c * std::log(s.hi / s.lo);
  return c * (std::pow(s.hi, e) - std::pow(s.lo, e)) / e;
}

double TcplibTelnetInterarrival::mean() const {
  double m = 0.0;
  for (const Segment& s : segments_) m += (s.p_hi - s.p_lo) * segment_mean(s);
  return m;
}

double TcplibTelnetInterarrival::variance() const {
  double m2 = 0.0;
  for (const Segment& s : segments_)
    m2 += (s.p_hi - s.p_lo) * segment_moment2(s);
  const double m = mean();
  return m2 - m * m;
}

std::string TcplibTelnetInterarrival::name() const {
  return "TcplibTelnetInterarrival(beta_body=" +
         std::to_string(params_.beta_body) +
         ",beta_tail=" + std::to_string(params_.beta_tail) + ")";
}

}  // namespace wan::dist
