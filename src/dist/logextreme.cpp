#include "src/dist/logextreme.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wan::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
const double kLn2 = 0.6931471805599453;
}  // namespace

LogExtreme::LogExtreme(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  if (!(beta > 0.0)) throw std::invalid_argument("LogExtreme: beta must be > 0");
}

double LogExtreme::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log2(x) - alpha_) / beta_;
  return std::exp(-std::exp(-z));
}

double LogExtreme::quantile(double p) const {
  // Invert: log2 x = alpha - beta * ln(-ln p).
  const double g = -std::log(-std::log(p));
  return std::exp2(alpha_ + beta_ * g);
}

double LogExtreme::mean() const {
  const double t = beta_ * kLn2;
  if (t >= 1.0) return kInf;
  return std::exp2(alpha_) * std::tgamma(1.0 - t);
}

double LogExtreme::variance() const {
  const double t = beta_ * kLn2;
  if (2.0 * t >= 1.0) return kInf;
  const double m = mean();
  const double ex2 = std::exp2(2.0 * alpha_) * std::tgamma(1.0 - 2.0 * t);
  return ex2 - m * m;
}

std::string LogExtreme::name() const {
  return "LogExtreme(alpha=" + std::to_string(alpha_) +
         ",beta=" + std::to_string(beta_) + ")";
}

}  // namespace wan::dist
