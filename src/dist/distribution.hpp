// Distribution: the sampling/analysis interface shared by every
// continuous law used in the paper (Appendix B).
//
// Each concrete distribution provides its CDF and quantile in closed form
// where possible; sample() defaults to inverse-transform sampling so one
// uniform variate maps monotonically to one output (which keeps paired
// experiments with common random numbers well-defined).
#pragma once

#include <memory>
#include <string>

#include "src/rng/rng.hpp"

namespace wan::dist {

/// Interface for a one-dimensional continuous distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate.
  virtual double sample(rng::Rng& rng) const;

  /// F(x) = P[X <= x].
  virtual double cdf(double x) const = 0;

  /// F^{-1}(p) for p in (0,1). The default implementation bisects cdf()
  /// and is correct for any continuous strictly-increasing CDF; concrete
  /// classes override it with closed forms.
  virtual double quantile(double p) const;

  /// Survival (tail) function P[X > x]. The default 1 - cdf(x) loses all
  /// precision below ~1e-16; distributions with analytically available
  /// tails override it, which matters when comparing far tails (the
  /// business of this library).
  virtual double tail(double x) const { return 1.0 - cdf(x); }

  /// E[X]; may be +infinity (e.g. Pareto with shape <= 1).
  virtual double mean() const = 0;

  /// Var[X]; may be +infinity.
  virtual double variance() const = 0;

  /// Conditional mean exceedance E[X - x | X > x] (Appendix B's CMEX),
  /// evaluated numerically from the tail function by default. Increasing
  /// CMEX is the paper's second definition of "heavy-tailed".
  virtual double cmex(double x) const;

  /// Human-readable name with parameters, e.g. "Pareto(a=1, beta=0.9)".
  virtual std::string name() const = 0;

 protected:
  /// Bisection bracket for the default quantile(); override when support
  /// is not contained in [lo, hi] = [0, 1e12].
  virtual double support_lo() const { return 0.0; }
  virtual double support_hi() const { return 1e12; }
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace wan::dist
