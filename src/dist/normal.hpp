// Normal distribution — substrate for fractional Gaussian noise
// generation and for the log-normal's underlying law.
#pragma once

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// Normal(mu, sigma). Samples by inverse transform (monotone in the
/// driving uniform, which keeps common-random-number experiments paired).
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }
  std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

/// One standard normal variate (inverse transform).
double standard_normal(rng::Rng& rng);

}  // namespace wan::dist
