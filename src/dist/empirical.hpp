// Empirical distributions built from samples or from (value, probability)
// knots — the mechanism behind Tcplib-style trace-derived laws. Sampling
// is by inverse transform with linear (or log-linear) interpolation
// between knots, matching how tcplib itself interpolates its tables.
#pragma once

#include <span>
#include <vector>

#include "src/dist/distribution.hpp"

namespace wan::dist {

/// A continuous distribution specified as a piecewise-linear CDF through
/// knots (x_i, p_i) with x and p strictly increasing, p_first = 0,
/// p_last = 1. Interpolation between knots is linear either in x or in
/// log x (the latter fits laws that look linear on a log axis, like the
/// paper's Fig. 3).
class EmpiricalCdf final : public Distribution {
 public:
  enum class Interp { kLinear, kLogX };

  EmpiricalCdf(std::vector<double> xs, std::vector<double> ps,
               Interp interp = Interp::kLinear);

  /// Builds the usual ECDF-based distribution from raw samples: knots at
  /// the order statistics, probabilities i/n. Samples need not be sorted.
  static EmpiricalCdf from_samples(std::span<const double> samples,
                                   Interp interp = Interp::kLinear);

  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string name() const override;

  const std::vector<double>& knots_x() const { return xs_; }
  const std::vector<double>& knots_p() const { return ps_; }

 private:
  double knot_coord(double x) const;     // x or log x per interp mode
  double inv_knot_coord(double c) const; // inverse of the above
  double segment_mean(std::size_t i) const;
  double segment_moment2(std::size_t i) const;

  std::vector<double> xs_;
  std::vector<double> ps_;
  Interp interp_;
};

}  // namespace wan::dist
