// The paper's discrete Pareto (Zipf) law, Appendix B:
//   P[r = n] = 1 / ((n+1)(n+2)), n >= 0,
// which arises for platoon lengths of cars on an infinite road — the
// analogy Paxson & Floyd note is "suggestively analogous to computer
// network traffic". Infinite mean.
#pragma once

#include <cstdint>
#include <string>

#include "src/rng/rng.hpp"

namespace wan::dist {

/// Discrete Pareto (Zipf) distribution over n = 0, 1, 2, ...
class DiscretePareto {
 public:
  DiscretePareto() = default;

  /// P[r = n].
  static double pmf(std::uint64_t n);

  /// P[r <= n] = 1 - 1/(n+2).
  static double cdf(std::uint64_t n);

  /// Smallest n with cdf(n) >= p.
  static std::uint64_t quantile(double p);

  /// Draws one variate by inverse transform.
  std::uint64_t sample(rng::Rng& rng) const;

  static std::string name() { return "DiscretePareto"; }
};

}  // namespace wan::dist
