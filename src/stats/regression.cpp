#include "src/stats/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("linear_fit: need matching sizes >= 2");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) throw std::invalid_argument("linear_fit: x is constant");

  LinearFit f;
  f.n = x.size();
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += e * e;
  }
  f.r2 = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;
  if (x.size() > 2) {
    const double mse = ss_res / (n - 2.0);
    f.slope_stderr = std::sqrt(mse / sxx);
  }
  return f;
}

}  // namespace wan::stats
