#include "src/stats/poisson_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/stats/anderson_darling.hpp"
#include "src/stats/autocorr.hpp"
#include "src/stats/binomial.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::stats {

IntervalOutcome test_poisson_interval(std::span<const double> sorted_times,
                                      double start,
                                      const PoissonTestConfig& config) {
  IntervalOutcome oc;
  oc.start = start;
  if (sorted_times.size() > 1) {
    std::vector<double> gaps;
    gaps.reserve(sorted_times.size() - 1);
    for (std::size_t i = 1; i < sorted_times.size(); ++i)
      gaps.push_back(sorted_times[i] - sorted_times[i - 1]);
    oc.n_interarrivals = gaps.size();
    if (gaps.size() >= config.min_interarrivals && mean(gaps) > 0.0) {
      oc.tested = true;
      const AdResult ad = ad_test_exponential(gaps, config.significance);
      oc.a2_modified = ad.a2_modified;
      oc.pass_exponential = ad.pass;
      oc.lag1 = lag1_autocorrelation(gaps);
      // Center on the i.i.d. small-sample bias E[r(1)] = -1/n so both
      // the magnitude and the sign test are calibrated.
      const double centered = oc.lag1 - lag1_bias(gaps.size());
      oc.pass_independence =
          std::abs(centered) <= lag1_threshold(gaps.size());
    }
  }
  return oc;
}

PoissonTestResult aggregate_poisson_intervals(
    std::vector<IntervalOutcome> intervals, const PoissonTestConfig& config) {
  PoissonTestResult result;
  for (const IntervalOutcome& oc : intervals) {
    if (!oc.tested) continue;
    ++result.n_intervals;
    if (oc.pass_exponential) ++result.n_pass_exponential;
    if (oc.pass_independence) ++result.n_pass_independence;
    if (oc.lag1 - lag1_bias(oc.n_interarrivals) > 0.0)
      ++result.n_positive_lag1;
  }
  result.intervals = std::move(intervals);
  if (result.n_intervals == 0) return result;

  const double n = static_cast<double>(result.n_intervals);
  result.frac_pass_exponential =
      static_cast<double>(result.n_pass_exponential) / n;
  result.frac_pass_independence =
      static_cast<double>(result.n_pass_independence) / n;
  const double p_pass = 1.0 - config.significance;
  result.consistent_exponential = binomial_consistent(
      result.n_intervals, result.n_pass_exponential, p_pass,
      config.aggregate_alpha);
  result.consistent_independence = binomial_consistent(
      result.n_intervals, result.n_pass_independence, p_pass,
      config.aggregate_alpha);
  result.poisson =
      result.consistent_exponential && result.consistent_independence;
  result.lag1_sign_bias =
      sign_bias(result.n_intervals, result.n_positive_lag1,
                config.aggregate_alpha);
  return result;
}

PoissonTestResult test_poisson_arrivals(std::span<const double> arrival_times,
                                        const PoissonTestConfig& config,
                                        double t_begin, double t_end) {
  if (!(config.interval_length > 0.0))
    throw std::invalid_argument("PoissonTestConfig: interval_length must be > 0");
  std::vector<double> times(arrival_times.begin(), arrival_times.end());
  std::sort(times.begin(), times.end());

  if (times.empty()) return PoissonTestResult{};

  if (!(t_end > t_begin)) {
    t_begin = times.front();
    t_end = times.back() + 1e-9;
  }

  const double I = config.interval_length;
  const auto n_slots =
      static_cast<std::size_t>(std::ceil((t_end - t_begin) / I));

  std::vector<IntervalOutcome> intervals;
  intervals.reserve(n_slots);
  std::size_t lo = 0;
  for (std::size_t slot = 0; slot < n_slots; ++slot) {
    const double s0 = t_begin + static_cast<double>(slot) * I;
    const double s1 = s0 + I;
    // Advance [lo, hi) to the arrivals inside [s0, s1).
    while (lo < times.size() && times[lo] < s0) ++lo;
    std::size_t hi = lo;
    while (hi < times.size() && times[hi] < s1) ++hi;
    intervals.push_back(test_poisson_interval(
        std::span<const double>(times).subspan(lo, hi - lo), s0, config));
    lo = hi;
  }
  return aggregate_poisson_intervals(std::move(intervals), config);
}

std::string to_string(const PoissonTestResult& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "exp %3.0f%% indep %3.0f%% (%zu ivls)%s%s",
                100.0 * r.frac_pass_exponential,
                100.0 * r.frac_pass_independence, r.n_intervals,
                r.poisson ? " [POISSON]" : "",
                r.lag1_sign_bias > 0 ? " (+)"
                                     : (r.lag1_sign_bias < 0 ? " (-)" : ""));
  return buf;
}

}  // namespace wan::stats
