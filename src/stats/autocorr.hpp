// Sample autocorrelation — the independence half of Appendix A's Poisson
// test (lag-1 checks) and the correlation structure behind Section VII.
#pragma once

#include <span>
#include <vector>

namespace wan::stats {

/// Sample autocorrelation r(k) for k = 0..max_lag, with the standard
/// biased normalization r(k) = c(k)/c(0),
/// c(k) = (1/n) sum_{t} (x_t - mean)(x_{t+k} - mean).
/// Uses the FFT for long series.
std::vector<double> autocorrelation(std::span<const double> x,
                                    std::size_t max_lag);

/// Just r(1); returns 0 for series shorter than 2 or with zero variance.
double lag1_autocorrelation(std::span<const double> x);

/// Appendix A's magnitude criterion: for an i.i.d. (white) series of
/// length n, |r(1)| exceeds 1.96/sqrt(n) with probability ~5%. Returns
/// true if the series *passes* (no significant lag-1 correlation).
bool passes_lag1_independence(std::span<const double> x);

/// The asymptotic 5% threshold itself.
double lag1_threshold(std::size_t n);

/// Small-sample bias of the sample autocorrelation of an i.i.d. series:
/// E[r(1)] ~ -1/n. Sign tests must compare r(1) against this, not 0,
/// or truly-independent data drifts toward a spurious "-" verdict.
double lag1_bias(std::size_t n);

}  // namespace wan::stats
