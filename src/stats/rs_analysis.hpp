// Rescaled-range (R/S) analysis — the classical Hurst estimator, offered
// alongside variance-time and Whittle as an independent cross-check of
// the long-range dependence conclusions in Section VII.
#pragma once

#include <span>
#include <vector>

#include "src/stats/regression.hpp"

namespace wan::stats {

struct RsPoint {
  std::size_t window = 0;
  double mean_rs = 0.0;  ///< E[R/S] over window positions
};

struct RsAnalysis {
  std::vector<RsPoint> points;
  /// OLS slope of log10 E[R/S] against log10 window = Hurst estimate.
  double hurst() const;
  LinearFit fit() const;
};

/// Computes R/S over log-spaced window sizes (>= 8). For each window size
/// w the series is cut into non-overlapping windows; within each the
/// rescaled range of the mean-adjusted cumulative sum is computed and the
/// results averaged.
RsAnalysis rs_analysis(std::span<const double> x);

}  // namespace wan::stats
