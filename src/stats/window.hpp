// Evictable sliding-window twins of the streaming accumulators.
//
// The PR-2 accumulators (BinCounts, Moment, BurstLull, the Appendix-A
// tester) only ever grow: they answer "what does the WHOLE stream look
// like". A monitor instead asks "what do the most recent W
// observations look like", re-asked every slide — and re-feeding the
// window from scratch costs O(W) per slide. The windowed twins here
// share one shape: a ring of sub-accumulators ("buckets"), each
// covering a fixed span of the stream. Pushing stays O(1) amortized
// (the open bucket absorbs observations; a full bucket closes into the
// ring, evicting the oldest by overwrite), and the window's state is
// the in-order merge of the resident buckets — exactly the merge
// contract PR-7 built for sharding, reused along the time axis instead
// of the flow-hash axis.
//
// Exactness: bin counts and burst/lull runs merge by exact integer
// arithmetic, so a windowed snapshot whose edges align with bucket
// boundaries is bit-identical to a batch accumulator fed only the
// window's observations. Moment buckets combine by Chan's formula —
// deterministic for a fixed bucket partition, equal to the serial pass
// to rounding (like every Welford merge). The Appendix-A ring stores
// per-interval outcomes, which are pure functions of each interval's
// own arrivals, so the windowed verdict is bit-identical to the batch
// test over the window whenever the window edges align to the
// interval grid.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/stats/counting.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/poisson_test.hpp"

namespace wan::stats {

/// Ring of sub-accumulators over the most recent observations: the
/// open bucket absorbs pushes; every `bucket_size` observations it
/// closes into the ring, which keeps the newest `n_buckets` closed
/// buckets (older ones are overwritten — eviction is O(1), no state is
/// ever rebuilt). merged() folds the resident buckets oldest-first
/// into a fresh accumulator, so for accumulators whose merge() means
/// "as if pushed here next" (BurstLullAccumulator) the result is
/// bit-identical to a batch accumulator over the window; for Welford
/// merges (MomentAccumulator) it is deterministic and equal to
/// rounding.
///
/// Acc must be default-constructible with push(double) and
/// merge(const Acc&).
template <class Acc>
class BucketRing {
 public:
  /// Throws std::invalid_argument unless bucket_size and n_buckets >= 1.
  BucketRing(std::size_t bucket_size, std::size_t n_buckets)
      : bucket_size_(bucket_size), ring_(n_buckets) {
    if (bucket_size == 0 || n_buckets == 0)
      throw std::invalid_argument(
          "BucketRing: bucket_size and n_buckets must be >= 1");
  }

  void push(double x) {
    open_.push(x);
    if (++in_open_ == bucket_size_) {
      ring_[head_] = std::move(open_);
      head_ = (head_ + 1) % ring_.size();
      ++closed_;
      open_ = Acc{};
      in_open_ = 0;
    }
  }

  void push(std::span<const double> xs) {
    for (double x : xs) push(x);
  }

  std::size_t bucket_size() const { return bucket_size_; }
  std::size_t n_buckets() const { return ring_.size(); }
  /// Closed buckets resident in the ring (<= n_buckets()).
  std::size_t closed_buckets() const {
    return closed_ < ring_.size() ? static_cast<std::size_t>(closed_)
                                  : ring_.size();
  }
  /// Observations in the open (not yet closed) bucket.
  std::size_t open_observations() const { return in_open_; }
  /// Observations currently covered by merged(): the resident closed
  /// buckets plus the open bucket.
  std::uint64_t window_observations() const {
    return static_cast<std::uint64_t>(closed_buckets()) * bucket_size_ +
           in_open_;
  }

  /// Window state: resident closed buckets merged oldest-first, then
  /// the open bucket. Call on a bucket boundary (open empty) for the
  /// exact trailing-window semantics.
  Acc merged() const {
    Acc out;
    const std::size_t n = closed_buckets();
    const std::size_t start = closed_ < ring_.size() ? 0 : head_;
    for (std::size_t k = 0; k < n; ++k)
      out.merge(ring_[(start + k) % ring_.size()]);
    if (in_open_ > 0) out.merge(open_);
    return out;
  }

  /// Appends the other ring's observation stream after this one's, as
  /// if its pushes had happened here next. Requires equal bucket_size
  /// and this ring's open bucket empty (the only state in which the
  /// splice is a whole-bucket concatenation); throws std::logic_error
  /// otherwise.
  void merge(const BucketRing& other) {
    if (bucket_size_ != other.bucket_size_)
      throw std::logic_error("BucketRing::merge: bucket_size mismatch");
    if (in_open_ != 0)
      throw std::logic_error(
          "BucketRing::merge: open bucket not on a boundary");
    const std::size_t n = other.closed_buckets();
    const std::size_t start =
        other.closed_ < other.ring_.size() ? 0 : other.head_;
    for (std::size_t k = 0; k < n; ++k) {
      ring_[head_] = other.ring_[(start + k) % other.ring_.size()];
      head_ = (head_ + 1) % ring_.size();
      ++closed_;
    }
    open_ = other.open_;
    in_open_ = other.in_open_;
  }

 private:
  std::size_t bucket_size_ = 1;
  std::vector<Acc> ring_;
  std::size_t head_ = 0;      ///< next slot to (over)write
  std::uint64_t closed_ = 0;  ///< buckets ever closed
  Acc open_{};
  std::size_t in_open_ = 0;
};

/// Windowed moments: Welford buckets, Chan-combined at merged().
using WindowedMoments = BucketRing<MomentAccumulator>;

/// Windowed burst/lull runs: concatenation-merged buckets, so merged()
/// is bit-identical to a batch BurstLullAccumulator over the window.
using WindowedBurstLull = BucketRing<BurstLullAccumulator>;

/// Sliding-window twin of BinCountsAccumulator: a ring of per-bin
/// counts covering the most recent `window_bins` COMPLETED bins of a
/// fixed absolute grid anchored at t0, plus the open (current) bin.
/// Event times must be nondecreasing across bin boundaries (the
/// streaming contract; within one bin order is free). A bin completes
/// when time first advances past its right edge — via a later event or
/// advance_to() — at which point the observer (if set) sees its count,
/// in grid order, exactly once; completed bins older than the window
/// are evicted by overwrite.
///
/// Counts are exact small-integer adds, so window_counts()/snapshot()
/// over aligned edges reproduce stats::bin_counts of the window's
/// events bit-for-bit, and merge() (same grid, same current bin) is
/// exact in any order — the windowed form of the sharding anchor.
class WindowedBinCounts {
 public:
  /// Throws std::invalid_argument unless bin > 0 and window_bins >= 1.
  WindowedBinCounts(double t0, double bin, std::size_t window_bins);

  /// Called with each completed bin's count, in grid order, before the
  /// bin can be evicted. The analyzer chains its per-bin accumulators
  /// (segment ring, bucket rings, slide logic) off this hook.
  void set_bin_observer(std::function<void(double)> observer) {
    observer_ = std::move(observer);
  }

  /// Counts the event into its bin; throws std::invalid_argument when
  /// t precedes t0 or an already-completed bin.
  void add(double t);
  void add(std::span<const double> times) {
    for (double t : times) add(t);
  }

  /// Completes every bin whose right edge is <= t without adding an
  /// event (zero-count bins included). The bin containing t becomes
  /// the open bin.
  void advance_to(double t);

  double t0() const { return t0_; }
  double bin() const { return bin_; }
  std::size_t window_bins() const { return ring_.size(); }
  std::uint64_t events() const { return events_; }
  /// Bins completed so far; the open bin is completed_bins().
  std::uint64_t completed_bins() const { return completed_; }
  /// Count so far in the open bin.
  double open_count() const { return open_; }

  /// The resident window: the newest min(completed_bins, window_bins)
  /// completed bins, oldest first. out is cleared.
  void window_counts(std::vector<double>& out) const;

  /// The window as a BinCountsSnapshot on the absolute grid
  /// ([t1 - k*bin, t1) with t1 the open bin's left edge), so it loads
  /// straight into BinCountsAccumulator::from_snapshot.
  BinCountsSnapshot snapshot() const;

  /// Adds the other window's counts bin by bin — the shard merge.
  /// Requires the identical grid AND the identical current bin (advance
  /// both to a common time first); throws std::logic_error otherwise.
  /// Integer adds, so merge order cannot matter.
  void merge(const WindowedBinCounts& other);

 private:
  void complete_bins_through(std::uint64_t bin_index);

  double t0_ = 0.0;
  double bin_ = 1.0;
  std::vector<double> ring_;    ///< completed-bin counts, slot = index % size
  std::uint64_t completed_ = 0; ///< == index of the open bin
  double open_ = 0.0;           ///< count in the open bin
  std::uint64_t events_ = 0;
  std::function<void(double)> observer_;
};

/// Sliding-window Appendix-A tester: a ring of per-interval outcomes
/// over the most recent `window_intervals` completed intervals of the
/// absolute grid [t0 + k*I, t0 + (k+1)*I). Arrivals are pushed in time
/// order; an interval is tested exactly once, when time first advances
/// past its right edge, and its outcome — a pure function of its own
/// arrivals (test_poisson_interval) — rides the ring until evicted.
/// result() aggregates the resident outcomes, bit-identical to
/// test_poisson_arrivals over the window's arrivals when the window
/// edges align to the interval grid.
class WindowedPoissonTest {
 public:
  /// Throws std::invalid_argument unless config.interval_length > 0
  /// and window_intervals >= 1.
  WindowedPoissonTest(const PoissonTestConfig& config, double t0,
                      std::size_t window_intervals);

  /// Throws std::invalid_argument when t goes backwards across an
  /// already-completed interval.
  void push(double t);
  void push(std::span<const double> times) {
    for (double t : times) push(t);
  }

  /// Completes every interval whose right edge is <= t.
  void advance_to(double t);

  std::uint64_t completed_intervals() const { return completed_; }
  /// Verdict over the resident completed intervals (oldest first).
  PoissonTestResult result() const;

 private:
  void complete_through(std::uint64_t interval_index);

  PoissonTestConfig config_;
  double t0_ = 0.0;
  std::vector<IntervalOutcome> ring_;
  std::uint64_t completed_ = 0;  ///< == index of the open interval
  std::vector<double> open_times_;
};

}  // namespace wan::stats
