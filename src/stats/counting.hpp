// Count-process helpers: turning event (arrival) time sequences into the
// binned count series that variance-time plots, Whittle estimation and
// Appendix C analyses operate on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wan::stats {

/// Number of events in each bin of width `bin` covering [t0, t1).
/// Events outside [t0, t1) are ignored. times need not be sorted.
std::vector<double> bin_counts(std::span<const double> times, double t0,
                               double t1, double bin);

/// Aggregates a count series by non-overlapping blocks of m, *averaging*
/// within each block (the paper's "smoothed" process of aggregation
/// level M). A trailing partial block is dropped.
std::vector<double> aggregate_mean(std::span<const double> x, std::size_t m);

/// Same but summing within blocks (the count view at coarser resolution).
std::vector<double> aggregate_sum(std::span<const double> x, std::size_t m);

/// Burst/lull structure of a count series in the sense of Appendix C:
/// a bin is "occupied" if its count exceeds zero; a burst is a maximal
/// run of occupied bins and a lull a maximal run of empty bins.
struct BurstLull {
  std::vector<std::size_t> burst_lengths;  ///< in bins
  std::vector<std::size_t> lull_lengths;   ///< in bins
  double mean_burst_bins() const;
  double mean_lull_bins() const;
};

BurstLull burst_lull_structure(std::span<const double> counts);

}  // namespace wan::stats
