// Count-process helpers: turning event (arrival) time sequences into the
// binned count series that variance-time plots, Whittle estimation and
// Appendix C analyses operate on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wan::stats {

/// Number of events in each bin of width `bin` covering [t0, t1).
/// Events outside [t0, t1) are ignored. times need not be sorted.
std::vector<double> bin_counts(std::span<const double> times, double t0,
                               double t1, double bin);

/// Streaming sink form of bin_counts: feed event times chunk by chunk
/// (any order) and take the finished count series. Memory is bounded by
/// the number of bins — duration/bin — never by the number of events,
/// and the result is identical to bin_counts on the concatenated times
/// (bin increments are exact integer adds, so order cannot matter).
class BinCountsAccumulator {
 public:
  /// Throws std::invalid_argument unless bin > 0 and t1 > t0.
  BinCountsAccumulator(double t0, double t1, double bin);

  void add(double t);

  /// Column form: identical counts to calling add(t) per element (bin
  /// increments are exact integer adds), but the bin-index computation
  /// runs as a tight two-phase loop over the contiguous time column —
  /// compute indices (vectorizes: compare, subtract, divide, convert),
  /// then scatter the increments — instead of a branchy divide per call.
  void add(std::span<const double> times);

  std::size_t bins() const { return counts_.size(); }
  const std::vector<double>& counts() const { return counts_; }
  /// Moves the counts out; the accumulator is empty afterwards.
  std::vector<double> take() { return std::move(counts_); }

 private:
  double t0_ = 0.0;
  double t1_ = 0.0;
  double bin_ = 1.0;
  std::vector<double> counts_;
  std::vector<std::int32_t> idx_scratch_;  ///< add(span) phase-1 output
};

/// Aggregates a count series by non-overlapping blocks of m, *averaging*
/// within each block (the paper's "smoothed" process of aggregation
/// level M). A trailing partial block is dropped.
std::vector<double> aggregate_mean(std::span<const double> x, std::size_t m);

/// Same but summing within blocks (the count view at coarser resolution).
std::vector<double> aggregate_sum(std::span<const double> x, std::size_t m);

/// Burst/lull structure of a count series in the sense of Appendix C:
/// a bin is "occupied" if its count exceeds zero; a burst is a maximal
/// run of occupied bins and a lull a maximal run of empty bins.
struct BurstLull {
  std::vector<std::size_t> burst_lengths;  ///< in bins
  std::vector<std::size_t> lull_lengths;   ///< in bins
  double mean_burst_bins() const;
  double mean_lull_bins() const;
};

BurstLull burst_lull_structure(std::span<const double> counts);

/// Online form of burst_lull_structure: push bin counts one at a time;
/// finish() closes the open run. State between pushes is O(1); the
/// result holds one length per run. burst_lull_structure delegates here,
/// so streamed and in-memory analyses agree exactly.
class BurstLullAccumulator {
 public:
  void push(double count);
  /// Column form: same run-length results as push(count) per element,
  /// as one sequential scan of the contiguous count series.
  void push(std::span<const double> counts) {
    for (double c : counts) push(c);
  }
  /// Snapshot including the currently open run; push() may continue
  /// afterwards (finish does not mutate).
  BurstLull finish() const;

 private:
  BurstLull closed_;
  std::size_t run_ = 0;
  bool occupied_ = false;
};

}  // namespace wan::stats
