// Count-process helpers: turning event (arrival) time sequences into the
// binned count series that variance-time plots, Whittle estimation and
// Appendix C analyses operate on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wan::stats {

/// Number of events in each bin of width `bin` covering [t0, t1).
/// Events outside [t0, t1) are ignored. times need not be sorted.
std::vector<double> bin_counts(std::span<const double> times, double t0,
                               double t1, double bin);

/// Serializable state of a BinCountsAccumulator: its bin grid plus the
/// counts so far. Counts are exact small integers stored as doubles, so
/// the snapshot round-trips bit-exactly.
struct BinCountsSnapshot {
  double t0 = 0.0;
  double t1 = 0.0;
  double bin = 1.0;
  std::vector<double> counts;
};

/// Streaming sink form of bin_counts: feed event times chunk by chunk
/// (any order) and take the finished count series. Memory is bounded by
/// the number of bins — duration/bin — never by the number of events,
/// and the result is identical to bin_counts on the concatenated times
/// (bin increments are exact integer adds, so order cannot matter).
class BinCountsAccumulator {
 public:
  /// Throws std::invalid_argument unless bin > 0 and t1 > t0.
  BinCountsAccumulator(double t0, double t1, double bin);

  void add(double t);

  /// Column form: identical counts to calling add(t) per element (bin
  /// increments are exact integer adds), but the bin-index computation
  /// runs as a tight two-phase loop over the contiguous time column —
  /// compute indices (vectorizes: compare, subtract, divide, convert),
  /// then scatter the increments — instead of a branchy divide per call.
  void add(std::span<const double> times);

  std::size_t bins() const { return counts_.size(); }
  const std::vector<double>& counts() const { return counts_; }
  /// Moves the counts out; the accumulator is empty afterwards.
  std::vector<double> take() { return std::move(counts_); }

  double t0() const { return t0_; }
  double t1() const { return t1_; }
  double bin() const { return bin_; }

  /// Adds the other accumulator's counts bin by bin. Both must cover the
  /// identical [t0, t1)/bin grid (throws std::invalid_argument
  /// otherwise). Counts are exact integer adds, so merging per-shard
  /// accumulators in ANY order or tree shape yields the same bits as one
  /// accumulator fed every event — this is the exactness anchor the
  /// sharded pipeline's byte-identity rests on.
  void merge(const BinCountsAccumulator& other);

  BinCountsSnapshot snapshot() const { return {t0_, t1_, bin_, counts_}; }
  static BinCountsAccumulator from_snapshot(const BinCountsSnapshot& s);

 private:
  double t0_ = 0.0;
  double t1_ = 0.0;
  double bin_ = 1.0;
  std::vector<double> counts_;
  std::vector<std::int32_t> idx_scratch_;  ///< add(span) phase-1 output
};

/// BinCountsAccumulator for a grid whose END is not known yet: same t0,
/// same bin width, same per-element quotient arithmetic, but the count
/// vector grows as later events arrive instead of being sized from a
/// known t1. The single-pass ingest path speculates that the stream is
/// in time order (so t0 = the first event) and bins as it goes; once
/// the true end is known, finish(t1) either returns counts identical —
/// bin for bin, bit for bit — to what BinCountsAccumulator(t0, t1, bin)
/// fed the same events would hold, or returns nullopt when it cannot
/// prove that (an event before t0, or a floating-point grid edge where
/// the fixed accumulator would have dropped or clamped an event this
/// one binned). nullopt means "redo the two-pass way", never "wrong".
class SpeculativeBinCounts {
 public:
  /// Throws std::invalid_argument unless bin > 0 (t1 is not needed).
  SpeculativeBinCounts(double t0, double bin);

  /// Bins every event, growing the vector to reach the latest one. An
  /// event below t0 — possible only for out-of-order input, which the
  /// caller's speculation already rules out — poisons the speculation:
  /// finish() will return nullopt.
  void add(std::span<const double> times);

  /// The counts, iff they are bit-identical to the fixed-grid
  /// accumulator's over [t0, t1). The object is spent afterwards.
  std::optional<std::vector<double>> finish(double t1);

 private:
  double t0_ = 0.0;
  double bin_ = 1.0;
  bool poisoned_ = false;  ///< saw an event the fixed grid treats differently
  std::vector<double> counts_;
  std::vector<std::int32_t> idx_scratch_;
};

/// Aggregates a count series by non-overlapping blocks of m, *averaging*
/// within each block (the paper's "smoothed" process of aggregation
/// level M). A trailing partial block is dropped.
std::vector<double> aggregate_mean(std::span<const double> x, std::size_t m);

/// Same but summing within blocks (the count view at coarser resolution).
std::vector<double> aggregate_sum(std::span<const double> x, std::size_t m);

/// Burst/lull structure of a count series in the sense of Appendix C:
/// a bin is "occupied" if its count exceeds zero; a burst is a maximal
/// run of occupied bins and a lull a maximal run of empty bins.
struct BurstLull {
  std::vector<std::size_t> burst_lengths;  ///< in bins
  std::vector<std::size_t> lull_lengths;   ///< in bins
  double mean_burst_bins() const;
  double mean_lull_bins() const;
};

BurstLull burst_lull_structure(std::span<const double> counts);

/// Serializable state of a BurstLullAccumulator: the closed runs in
/// series order plus the open trailing run. Runs alternate occupancy by
/// construction, which is what makes concatenation-merge exact.
struct BurstLullSnapshot {
  struct Run {
    std::uint64_t length = 0;
    bool occupied = false;
  };
  std::vector<Run> runs;          ///< closed runs, series order
  std::uint64_t open_length = 0;  ///< 0 means no observation yet
  bool open_occupied = false;
};

/// Online form of burst_lull_structure: push bin counts one at a time;
/// finish() closes the open run. State between pushes is O(1); the
/// result holds one length per run (kept in series order so that two
/// accumulators over adjacent sub-series merge by concatenation, the
/// boundary runs fusing when their occupancy matches).
/// burst_lull_structure delegates here, so streamed and in-memory
/// analyses agree exactly.
class BurstLullAccumulator {
 public:
  void push(double count);
  /// Column form: same run-length results as push(count) per element,
  /// as one sequential scan of the contiguous count series.
  void push(std::span<const double> counts) {
    for (double c : counts) push(c);
  }
  /// Snapshot including the currently open run; push() may continue
  /// afterwards (finish does not mutate).
  BurstLull finish() const;

  /// Appends the other accumulator's run sequence to this one, as if its
  /// observations had been pushed here next. Run lengths are exact
  /// integer adds and the splice is pure concatenation (the boundary
  /// pair fusing when occupancy matches), so merge is truly associative:
  /// any merge tree over an ordered shard partition of the series gives
  /// the same bits as one serial pass — but only when each operand saw a
  /// contiguous slice and operands arrive in series order.
  void merge(const BurstLullAccumulator& other);

  BurstLullSnapshot snapshot() const;
  static BurstLullAccumulator from_snapshot(const BurstLullSnapshot& s);

 private:
  struct Run {
    std::size_t length = 0;
    bool occupied = false;
  };
  std::vector<Run> runs_;   ///< closed runs, series order
  std::size_t run_ = 0;     ///< open run length; 0 iff nothing pushed
  bool occupied_ = false;   ///< open run occupancy
};

}  // namespace wan::stats
