// Anderson-Darling (A^2) goodness-of-fit test — the exponentiality test
// at the heart of Appendix A. Stephens (in D'Agostino & Stephens,
// "Goodness-of-Fit Techniques", 1986) recommends A^2 over
// Kolmogorov-Smirnov and chi-square; it weights the tails heavily, which
// is exactly where heavy-tailed interarrivals betray themselves.
//
// Two cases are provided:
//  * fully-specified null CDF ("case 0"),
//  * exponential with mean estimated from the data — the situation in
//    Appendix A, which changes the significance points (D'Agostino &
//    Stephens Table 4.14) and requires the small-sample modification
//    A^2 * (1 + 0.6/n).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

namespace wan::stats {

/// Raw A^2 statistic for sorted-or-not samples against a fully specified
/// continuous CDF (callable double -> double).
template <typename Cdf>
double anderson_darling_statistic(std::span<const double> x, Cdf&& cdf);

/// A^2 statistic against the uniform [0,1] law (z values must already be
/// probability-transformed, need not be sorted).
double anderson_darling_uniform(std::span<const double> z);

/// Result of an A^2 test.
struct AdResult {
  double a2 = 0.0;          ///< raw statistic
  double a2_modified = 0.0; ///< small-sample modified statistic
  bool pass = false;        ///< null not rejected at the chosen level
  double critical = 0.0;    ///< the critical value used
};

/// Tests whether x is exponential with *unknown* mean (estimated from the
/// sample), at significance `alpha` in {0.25, 0.15, 0.10, 0.05, 0.025,
/// 0.01}. This is the Appendix A exponentiality test.
AdResult ad_test_exponential(std::span<const double> x, double alpha = 0.05);

/// Tests z (probability-transformed data) against uniformity with a fully
/// specified null ("case 0"), at significance alpha in {0.15, 0.10, 0.05,
/// 0.025, 0.01}.
AdResult ad_test_uniform(std::span<const double> z, double alpha = 0.05);

/// Critical value lookup (exposed for tests).
double ad_critical_exponential(double alpha);
double ad_critical_case0(double alpha);

// ---- implementation of the template ----

double anderson_darling_from_sorted_probs(std::span<const double> p_sorted);

template <typename Cdf>
double anderson_darling_statistic(std::span<const double> x, Cdf&& cdf) {
  std::vector<double> p(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) p[i] = cdf(x[i]);
  std::sort(p.begin(), p.end());
  return anderson_darling_from_sorted_probs(p);
}

}  // namespace wan::stats
