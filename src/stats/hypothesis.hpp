// Additional hypothesis tests complementing Appendix A's A^2 machinery:
//
//  * Ljung-Box — a portmanteau independence test over the first L lags,
//    generalizing the paper's lag-1-only autocorrelation checks;
//  * one-sample Kolmogorov-Smirnov — the better-known (and, per Stephens,
//    less powerful) alternative to A^2 the paper name-checks;
//  * chi-square goodness of fit — the binned test A^2 was chosen over.
// Having all three lets the benches reproduce Appendix A's *choice*:
// A^2 catches heavy-tailed deviations these tests miss at equal n.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace wan::stats {

struct LjungBoxResult {
  double statistic = 0.0;  ///< Q = n(n+2) sum_k r_k^2 / (n-k)
  double p_value = 1.0;    ///< chi-square tail with `lags` dof
  std::size_t lags = 0;
  bool pass = false;       ///< independence not rejected at alpha
};

/// Ljung-Box test of no autocorrelation through `lags` lags, at level
/// alpha. Requires x.size() > lags + 1.
LjungBoxResult ljung_box_test(std::span<const double> x, std::size_t lags,
                              double alpha = 0.05);

struct KsResult {
  double statistic = 0.0;  ///< D_n
  double p_value = 1.0;    ///< asymptotic Kolmogorov distribution
  bool pass = false;
};

/// One-sample KS test against a fully specified CDF (callable).
/// Uses the asymptotic Kolmogorov tail with the Stephens small-sample
/// correction factor (sqrt(n) + 0.12 + 0.11/sqrt(n)).
template <typename Cdf>
KsResult ks_test(std::span<const double> x, Cdf&& cdf, double alpha = 0.05);

/// Kolmogorov distribution tail Q(t) = 2 sum_{j>=1} (-1)^{j-1} e^{-2 j^2 t^2}.
double kolmogorov_sf(double t);

struct ChiSquareResult {
  double statistic = 0.0;
  double p_value = 1.0;
  std::size_t dof = 0;
  bool pass = false;
};

/// Chi-square goodness-of-fit of a sample against a fully specified CDF,
/// using `bins` equiprobable cells; dof = bins - 1 - params_estimated.
template <typename Quantile>
ChiSquareResult chi_square_gof(std::span<const double> x,
                               Quantile&& quantile, std::size_t bins,
                               std::size_t params_estimated = 0,
                               double alpha = 0.05);

// ---- implementation details ----

KsResult ks_test_from_statistic(double d, std::size_t n, double alpha);
ChiSquareResult chi_square_from_counts(std::span<const double> observed,
                                       double expected_per_bin,
                                       std::size_t params_estimated,
                                       double alpha);

template <typename Cdf>
KsResult ks_test(std::span<const double> x, Cdf&& cdf, double alpha) {
  std::vector<double> p(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) p[i] = cdf(x[i]);
  std::sort(p.begin(), p.end());
  double d = 0.0;
  const double n = static_cast<double>(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    d = std::max({d, p[i] - static_cast<double>(i) / n,
                  static_cast<double>(i + 1) / n - p[i]});
  }
  return ks_test_from_statistic(d, x.size(), alpha);
}

template <typename Quantile>
ChiSquareResult chi_square_gof(std::span<const double> x,
                               Quantile&& quantile, std::size_t bins,
                               std::size_t params_estimated, double alpha) {
  std::vector<double> edges(bins - 1);
  for (std::size_t b = 1; b < bins; ++b) {
    edges[b - 1] =
        quantile(static_cast<double>(b) / static_cast<double>(bins));
  }
  std::vector<double> counts(bins, 0.0);
  for (double v : x) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    counts[static_cast<std::size_t>(it - edges.begin())] += 1.0;
  }
  const double expected =
      static_cast<double>(x.size()) / static_cast<double>(bins);
  return chi_square_from_counts(counts, expected, params_estimated, alpha);
}

}  // namespace wan::stats
