#include "src/stats/tail_fit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wan::stats {

HillEstimate hill_estimator(std::span<const double> x, std::size_t k) {
  if (k < 2 || k >= x.size())
    throw std::invalid_argument("hill_estimator: need 2 <= k < n");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double x_k1 = sorted[k];  // (k+1)-th largest
  if (!(x_k1 > 0.0))
    throw std::invalid_argument("hill_estimator: tail values must be > 0");
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) s += std::log(sorted[i] / x_k1);
  HillEstimate h;
  h.k = k;
  h.beta = static_cast<double>(k) / s;
  h.stderr_beta = h.beta / std::sqrt(static_cast<double>(k));
  return h;
}

double pareto_mle_shape(std::span<const double> x, double location) {
  if (x.empty()) throw std::invalid_argument("pareto_mle_shape: empty sample");
  double s = 0.0;
  for (double v : x) {
    if (!(v >= location))
      throw std::invalid_argument("pareto_mle_shape: sample below location");
    s += std::log(v / location);
  }
  if (s <= 0.0)
    throw std::invalid_argument("pareto_mle_shape: degenerate sample");
  return static_cast<double>(x.size()) / s;
}

CcdfTailFit ccdf_tail_fit(std::span<const double> x, double tail_fraction) {
  if (!(tail_fraction > 0.0 && tail_fraction <= 1.0))
    throw std::invalid_argument("ccdf_tail_fit: tail_fraction in (0,1]");
  if (x.size() < 10)
    throw std::invalid_argument("ccdf_tail_fit: sample too small");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());

  const double n = static_cast<double>(sorted.size());
  const auto first = static_cast<std::size_t>(
      std::floor((1.0 - tail_fraction) * n));
  std::vector<double> lx, lp;
  for (std::size_t i = first; i + 1 < sorted.size(); ++i) {
    if (!(sorted[i] > 0.0)) continue;
    const double ccdf = 1.0 - static_cast<double>(i + 1) / n;
    if (ccdf <= 0.0) continue;
    lx.push_back(std::log10(sorted[i]));
    lp.push_back(std::log10(ccdf));
  }
  if (lx.size() < 3)
    throw std::invalid_argument("ccdf_tail_fit: too few tail points");

  CcdfTailFit out;
  out.fit = linear_fit(lx, lp);
  out.beta = -out.fit.slope;
  out.x_tail_start = sorted[first];
  return out;
}

double mass_in_top_fraction(std::span<const double> x, double top_fraction) {
  if (x.empty())
    throw std::invalid_argument("mass_in_top_fraction: empty sample");
  if (!(top_fraction >= 0.0 && top_fraction <= 1.0))
    throw std::invalid_argument("mass_in_top_fraction: fraction in [0,1]");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // ceil: "the largest 0.5%" always includes at least one observation
  // when top_fraction > 0 (matches how the paper counts whole bursts).
  const auto k = static_cast<std::size_t>(std::ceil(
      top_fraction * static_cast<double>(sorted.size())));
  double s = 0.0;
  for (std::size_t i = 0; i < k && i < sorted.size(); ++i) s += sorted[i];
  return s / total;
}

std::vector<std::pair<double, double>> mass_curve(std::span<const double> x,
                                                  double max_fraction) {
  if (x.empty()) throw std::invalid_argument("mass_curve: empty sample");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  std::vector<std::pair<double, double>> curve;
  double cum = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cum += sorted[i];
    const double frac = static_cast<double>(i + 1) / n;
    if (frac > max_fraction) break;
    curve.emplace_back(frac, total > 0.0 ? cum / total : 0.0);
  }
  return curve;
}

}  // namespace wan::stats
