#include "src/stats/binomial.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::stats {

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -INFINITY;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double lp = log_binomial_coefficient(n, k) +
                    static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_cdf(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  // Sum the smaller tail for accuracy; with n in the hundreds at most in
  // our use, the direct sum is fine.
  double s = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) s += binomial_pmf(n, i, p);
  return s > 1.0 ? 1.0 : s;
}

double binomial_sf(std::uint64_t n, std::uint64_t k, double p) {
  if (k == 0) return 1.0;
  return 1.0 - binomial_cdf(n, k - 1, p);
}

bool binomial_consistent(std::uint64_t n_tested, std::uint64_t n_passed,
                         double p_pass, double alpha) {
  if (n_tested == 0)
    throw std::invalid_argument("binomial_consistent: no intervals tested");
  return binomial_cdf(n_tested, n_passed, p_pass) >= alpha;
}

int sign_bias(std::uint64_t n_tested, std::uint64_t n_positive,
              double alpha) {
  if (n_tested == 0) return 0;
  const double tail = alpha / 2.0;
  // Improbably many positives?
  if (binomial_sf(n_tested, n_positive, 0.5) < tail) return +1;
  // Improbably many negatives (i.e. few positives)?
  if (binomial_cdf(n_tested, n_positive, 0.5) < tail) return -1;
  return 0;
}

}  // namespace wan::stats
