// Ordinary least squares for the log-log slope fits behind variance-time
// plots, R/S analysis and CCDF tail fitting.
#pragma once

#include <span>

namespace wan::stats {

/// y = intercept + slope * x fit by ordinary least squares.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;           ///< coefficient of determination
  double slope_stderr = 0.0; ///< standard error of the slope estimate
  std::size_t n = 0;
};

/// Fits y against x. Requires x.size() == y.size() >= 2 and non-constant x.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace wan::stats
