// Appendix A: the methodology for testing whether an arrival process is
// a (nonhomogeneous) Poisson process with rate fixed over intervals of
// length I.
//
// The trace is divided into N = T/I intervals. Each interval with enough
// arrivals is tested twice:
//   (1) exponentially distributed interarrivals — Anderson-Darling A^2
//       with the mean estimated from the interval's data;
//   (2) independent interarrivals — |lag-1 autocorrelation| must not
//       exceed 1.96/sqrt(n).
// If arrivals are truly Poisson, ~95% of intervals pass each test; a
// binomial test on the pass counts decides whether the trace is
// statistically consistent with Poisson, and a sign test on the lag-1
// correlations flags consistent positive/negative correlation (the "+"
// and "-" annotations of Fig. 2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wan::stats {

/// Configuration of the Appendix A tester.
struct PoissonTestConfig {
  double interval_length = 3600.0;  ///< I: 1 h (Fig. 2 top) or 600 s (bottom)
  double significance = 0.05;       ///< per-interval test level
  /// Minimum number of *interarrivals* in an interval for it to be
  /// testable. Very sparse intervals carry no power; Appendix A's A^2
  /// small-sample modification covers moderate n.
  std::size_t min_interarrivals = 5;
  double aggregate_alpha = 0.05;    ///< level of the binomial consistency test
};

/// Per-interval outcome (exposed for diagnostics and plotting).
struct IntervalOutcome {
  double start = 0.0;
  std::size_t n_interarrivals = 0;
  bool tested = false;
  bool pass_exponential = false;
  bool pass_independence = false;
  double a2_modified = 0.0;
  double lag1 = 0.0;
};

/// Whole-trace verdict — one letter of Fig. 2.
struct PoissonTestResult {
  std::size_t n_intervals = 0;        ///< intervals with enough data
  std::size_t n_pass_exponential = 0;
  std::size_t n_pass_independence = 0;
  std::size_t n_positive_lag1 = 0;

  double frac_pass_exponential = 0.0; ///< x-coordinate in Fig. 2
  double frac_pass_independence = 0.0;///< y-coordinate in Fig. 2

  bool consistent_exponential = false;
  bool consistent_independence = false;
  /// Statistically indistinguishable from Poisson (both consistent):
  /// drawn in large bold in Fig. 2.
  bool poisson = false;
  /// +1 / -1 if consecutive interarrivals are consistently positively /
  /// negatively correlated (the +/- annotation), else 0.
  int lag1_sign_bias = 0;

  std::vector<IntervalOutcome> intervals;
};

/// Runs the Appendix A methodology on arrival times (seconds, sorted or
/// not; will be sorted internally). `t_begin`/`t_end` bound the trace; if
/// t_end <= t_begin they default to the observed extremes.
PoissonTestResult test_poisson_arrivals(std::span<const double> arrival_times,
                                        const PoissonTestConfig& config = {},
                                        double t_begin = 0.0,
                                        double t_end = 0.0);

/// Tests one interval in isolation: `sorted_times` are the arrivals
/// inside [start, start + interval_length), already in time order. The
/// outcome is a pure function of those arrivals and the config — no
/// state bridges intervals — which is what lets a sliding-window tester
/// keep a ring of outcomes and retest nothing. test_poisson_arrivals
/// calls this per slot, so the two paths share every bit of arithmetic.
IntervalOutcome test_poisson_interval(std::span<const double> sorted_times,
                                      double start,
                                      const PoissonTestConfig& config = {});

/// Folds per-interval outcomes into the whole-trace verdict (pass
/// counts, binomial consistency, lag-1 sign bias). Pure aggregation
/// over the outcomes in order — the second shared half of
/// test_poisson_arrivals, and the finish step of the windowed tester.
PoissonTestResult aggregate_poisson_intervals(
    std::vector<IntervalOutcome> intervals,
    const PoissonTestConfig& config = {});

/// One-line rendering, e.g. "exp 93% indep 96% [POISSON] (+)".
std::string to_string(const PoissonTestResult& r);

}  // namespace wan::stats
