#include "src/stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dist/special.hpp"
#include "src/stats/autocorr.hpp"

namespace wan::stats {

LjungBoxResult ljung_box_test(std::span<const double> x, std::size_t lags,
                              double alpha) {
  if (lags == 0 || x.size() <= lags + 1)
    throw std::invalid_argument("ljung_box_test: need n > lags + 1 >= 2");
  const auto r = autocorrelation(x, lags);
  const double n = static_cast<double>(x.size());
  double q = 0.0;
  for (std::size_t k = 1; k <= lags; ++k) {
    q += r[k] * r[k] / (n - static_cast<double>(k));
  }
  q *= n * (n + 2.0);

  LjungBoxResult out;
  out.statistic = q;
  out.lags = lags;
  out.p_value = dist::chi_square_sf(q, static_cast<double>(lags));
  out.pass = out.p_value >= alpha;
  return out;
}

double kolmogorov_sf(double t) {
  if (t <= 0.0) return 1.0;
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * t * t);
    sum += (j % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::min(1.0, std::max(0.0, 2.0 * sum));
}

KsResult ks_test_from_statistic(double d, std::size_t n, double alpha) {
  KsResult out;
  out.statistic = d;
  const double sn = std::sqrt(static_cast<double>(n));
  // Stephens' finite-sample effective statistic.
  const double t = d * (sn + 0.12 + 0.11 / sn);
  out.p_value = kolmogorov_sf(t);
  out.pass = out.p_value >= alpha;
  return out;
}

ChiSquareResult chi_square_from_counts(std::span<const double> observed,
                                       double expected_per_bin,
                                       std::size_t params_estimated,
                                       double alpha) {
  if (observed.size() < 2 || !(expected_per_bin > 0.0))
    throw std::invalid_argument("chi_square_from_counts: bad inputs");
  if (observed.size() <= params_estimated + 1)
    throw std::invalid_argument("chi_square_from_counts: no dof left");
  double stat = 0.0;
  for (double o : observed) {
    const double diff = o - expected_per_bin;
    stat += diff * diff / expected_per_bin;
  }
  ChiSquareResult out;
  out.statistic = stat;
  out.dof = observed.size() - 1 - params_estimated;
  out.p_value = dist::chi_square_sf(stat, static_cast<double>(out.dof));
  out.pass = out.p_value >= alpha;
  return out;
}

}  // namespace wan::stats
