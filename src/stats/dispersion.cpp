#include "src/stats/dispersion.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/counting.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/regression.hpp"

namespace wan::stats {

namespace {

// Log-spaced block sizes from 1 to n / 8.
std::vector<std::size_t> block_sizes(std::size_t n,
                                     std::size_t max_windows) {
  std::vector<std::size_t> sizes;
  if (n < 16) return sizes;
  const double lg_max = std::log10(static_cast<double>(n) / 8.0);
  std::size_t last = 0;
  for (std::size_t i = 0; i < max_windows; ++i) {
    const double lg = lg_max * static_cast<double>(i) /
                      static_cast<double>(max_windows - 1);
    const auto m = static_cast<std::size_t>(std::llround(std::pow(10.0, lg)));
    if (m != last && m >= 1) {
      sizes.push_back(m);
      last = m;
    }
  }
  return sizes;
}

}  // namespace

std::vector<DispersionPoint> idc_curve(std::span<const double> counts,
                                       std::size_t max_windows) {
  if (counts.size() < 16)
    throw std::invalid_argument("idc_curve: series too short");
  std::vector<DispersionPoint> curve;
  for (std::size_t m : block_sizes(counts.size(), max_windows)) {
    const auto sums = aggregate_sum(counts, m);
    if (sums.size() < 4) break;
    const double mu = mean(sums);
    if (!(mu > 0.0)) continue;
    curve.push_back({static_cast<double>(m), variance(sums) / mu});
  }
  return curve;
}

std::vector<DispersionPoint> idi_curve(std::span<const double> interarrivals,
                                       std::size_t max_windows) {
  if (interarrivals.size() < 16)
    throw std::invalid_argument("idi_curve: series too short");
  const double mu = mean(interarrivals);
  if (!(mu > 0.0))
    throw std::invalid_argument("idi_curve: nonpositive mean interarrival");
  std::vector<DispersionPoint> curve;
  for (std::size_t m : block_sizes(interarrivals.size(), max_windows)) {
    const auto sums = aggregate_sum(interarrivals, m);
    if (sums.size() < 4) break;
    curve.push_back({static_cast<double>(m),
                     variance(sums) / (static_cast<double>(m) * mu * mu)});
  }
  return curve;
}

double idc_slope(std::span<const DispersionPoint> curve) {
  if (curve.size() < 4)
    throw std::invalid_argument("idc_slope: need >= 4 points");
  std::vector<double> lx, ly;
  // Upper half of the curve: the asymptotic regime.
  for (std::size_t i = curve.size() / 2; i < curve.size(); ++i) {
    if (curve[i].index <= 0.0) continue;
    lx.push_back(std::log10(curve[i].t));
    ly.push_back(std::log10(curve[i].index));
  }
  if (lx.size() < 3)
    throw std::invalid_argument("idc_slope: too few usable points");
  return linear_fit(lx, ly).slope;
}

}  // namespace wan::stats
