#include "src/stats/rs_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/stats/descriptive.hpp"

namespace wan::stats {

namespace {

// Rescaled range of one window; returns 0 if the window is constant.
double window_rs(std::span<const double> w) {
  const double m = mean(w);
  double cum = 0.0, lo = 0.0, hi = 0.0, ss = 0.0;
  for (double v : w) {
    cum += v - m;
    lo = std::min(lo, cum);
    hi = std::max(hi, cum);
    ss += (v - m) * (v - m);
  }
  const double s = std::sqrt(ss / static_cast<double>(w.size()));
  if (s <= 0.0) return 0.0;
  return (hi - lo) / s;
}

}  // namespace

RsAnalysis rs_analysis(std::span<const double> x) {
  if (x.size() < 32)
    throw std::invalid_argument("rs_analysis: series too short");

  RsAnalysis out;
  // Log-spaced windows from 8 to n/4, about 6 per decade.
  std::size_t last = 0;
  for (double lg = std::log10(8.0);; lg += 1.0 / 6.0) {
    const auto w = static_cast<std::size_t>(std::llround(std::pow(10.0, lg)));
    if (w > x.size() / 4) break;
    if (w == last) continue;
    last = w;

    double sum_rs = 0.0;
    std::size_t n_windows = 0;
    for (std::size_t start = 0; start + w <= x.size(); start += w) {
      const double rs = window_rs(x.subspan(start, w));
      if (rs > 0.0) {
        sum_rs += rs;
        ++n_windows;
      }
    }
    if (n_windows > 0) {
      out.points.push_back(
          {w, sum_rs / static_cast<double>(n_windows)});
    }
  }
  if (out.points.size() < 3)
    throw std::invalid_argument("rs_analysis: not enough window sizes");
  return out;
}

LinearFit RsAnalysis::fit() const {
  std::vector<double> xs, ys;
  for (const RsPoint& p : points) {
    xs.push_back(std::log10(static_cast<double>(p.window)));
    ys.push_back(std::log10(p.mean_rs));
  }
  return linear_fit(xs, ys);
}

double RsAnalysis::hurst() const { return fit().slope; }

}  // namespace wan::stats
