#include "src/stats/rs_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/par/parallel.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::stats {

namespace {

// Rescaled range of one window; returns 0 if the window is constant.
double window_rs(std::span<const double> w) {
  const double m = mean(w);
  double cum = 0.0, lo = 0.0, hi = 0.0, ss = 0.0;
  for (double v : w) {
    cum += v - m;
    lo = std::min(lo, cum);
    hi = std::max(hi, cum);
    ss += (v - m) * (v - m);
  }
  const double s = std::sqrt(ss / static_cast<double>(w.size()));
  if (s <= 0.0) return 0.0;
  return (hi - lo) / s;
}

// Mean R/S over the non-overlapping windows of one size; n_windows == 0
// when every window was degenerate.
RsPoint rs_point_at_window(std::span<const double> x, std::size_t w,
                           std::size_t* n_windows) {
  double sum_rs = 0.0;
  *n_windows = 0;
  for (std::size_t start = 0; start + w <= x.size(); start += w) {
    const double rs = window_rs(x.subspan(start, w));
    if (rs > 0.0) {
      sum_rs += rs;
      ++*n_windows;
    }
  }
  RsPoint p;
  p.window = w;
  p.mean_rs =
      *n_windows > 0 ? sum_rs / static_cast<double>(*n_windows) : 0.0;
  return p;
}

}  // namespace

RsAnalysis rs_analysis(std::span<const double> x) {
  if (x.size() < 32)
    throw std::invalid_argument("rs_analysis: series too short");

  // Log-spaced windows from 8 to n/4, about 6 per decade.
  std::vector<std::size_t> windows;
  std::size_t last = 0;
  for (double lg = std::log10(8.0);; lg += 1.0 / 6.0) {
    const auto w = static_cast<std::size_t>(std::llround(std::pow(10.0, lg)));
    if (w > x.size() / 4) break;
    if (w == last) continue;
    last = w;
    windows.push_back(w);
  }

  // Window sizes are independent: compute each in parallel into its own
  // slot, then collect in size order so the output never depends on the
  // schedule.
  std::vector<RsPoint> slots(windows.size());
  std::vector<std::size_t> n_windows(windows.size(), 0);
  par::parallel_for(0, windows.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      slots[i] = rs_point_at_window(x, windows[i], &n_windows[i]);
  });

  RsAnalysis out;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (n_windows[i] > 0) out.points.push_back(slots[i]);
  }
  if (out.points.size() < 3)
    throw std::invalid_argument("rs_analysis: not enough window sizes");
  return out;
}

LinearFit RsAnalysis::fit() const {
  std::vector<double> xs, ys;
  for (const RsPoint& p : points) {
    xs.push_back(std::log10(static_cast<double>(p.window)));
    ys.push_back(std::log10(p.mean_rs));
  }
  return linear_fit(xs, ys);
}

double RsAnalysis::hurst() const { return fit().slope; }

}  // namespace wan::stats
