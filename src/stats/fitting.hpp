// Parametric distribution fitting used in Section V: log-normal MLE for
// connection sizes in packets, Gumbel/log-extreme fitting for sizes in
// bytes, and exponential fitting for the straw-man comparisons.
#pragma once

#include <span>

#include "src/dist/exponential.hpp"
#include "src/dist/logextreme.hpp"
#include "src/dist/lognormal.hpp"

namespace wan::stats {

/// MLE exponential fit (mean = sample mean). Requires positive mean.
dist::Exponential fit_exponential(std::span<const double> x);

/// MLE log-normal fit: mu/sigma are the mean/SD of log x. Requires all
/// x > 0 and at least 2 distinct values.
dist::LogNormal fit_lognormal(std::span<const double> x);

/// Gumbel fit of log2 x by maximum likelihood (Newton iterations on the
/// scale parameter, closed-form location given scale), giving the paper's
/// log-extreme distribution. Requires all x > 0.
dist::LogExtreme fit_logextreme(std::span<const double> x);

}  // namespace wan::stats
