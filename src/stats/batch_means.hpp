// Batch-means confidence intervals — proper output analysis for the
// simulations in this library. Raw simulation series are autocorrelated
// (that is the whole subject of the paper), so the naive s/sqrt(n)
// interval is wrong; batch means over large blocks restore approximate
// independence.
#pragma once

#include <cstddef>
#include <span>

namespace wan::stats {

struct BatchMeansResult {
  double mean = 0.0;
  double half_width = 0.0;   ///< 95% CI half-width from batch means
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  double lag1_between_batches = 0.0;  ///< residual correlation diagnostic
};

/// Computes the batch-means estimate of the steady-state mean with a 95%
/// normal-approximation CI. `batches` in [8, 64] is customary; batch
/// size is derived from the series length.
BatchMeansResult batch_means(std::span<const double> x,
                             std::size_t batches = 32);

/// Effective sample size n * (1 - r1) / (1 + r1) from the lag-1
/// autocorrelation — the quick-and-dirty alternative.
double effective_sample_size(std::span<const double> x);

}  // namespace wan::stats
