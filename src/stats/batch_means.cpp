#include "src/stats/batch_means.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/stats/autocorr.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::stats {

BatchMeansResult batch_means(std::span<const double> x, std::size_t batches) {
  if (batches < 2) throw std::invalid_argument("batch_means: need >= 2 batches");
  if (x.size() < batches * 2)
    throw std::invalid_argument("batch_means: series too short");

  BatchMeansResult out;
  out.batches = batches;
  out.batch_size = x.size() / batches;

  std::vector<double> means(batches, 0.0);
  for (std::size_t b = 0; b < batches; ++b) {
    double s = 0.0;
    for (std::size_t i = 0; i < out.batch_size; ++i)
      s += x[b * out.batch_size + i];
    means[b] = s / static_cast<double>(out.batch_size);
  }

  out.mean = mean(means);
  const double s = stddev(means);
  out.half_width = 1.96 * s / std::sqrt(static_cast<double>(batches));
  out.lag1_between_batches = lag1_autocorrelation(means);
  return out;
}

double effective_sample_size(std::span<const double> x) {
  if (x.size() < 3)
    throw std::invalid_argument("effective_sample_size: series too short");
  const double r1 = std::clamp(lag1_autocorrelation(x), -0.999, 0.999);
  return static_cast<double>(x.size()) * (1.0 - r1) / (1.0 + r1);
}

}  // namespace wan::stats
