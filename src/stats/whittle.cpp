#include "src/stats/whittle.hpp"

#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/fft/periodogram.hpp"
#include "src/par/parallel.hpp"

namespace wan::stats {

double fgn_spectral_density(double lambda, double hurst) {
  if (!(lambda > 0.0 && lambda <= M_PI))
    throw std::invalid_argument("fgn_spectral_density: lambda must be in (0, pi]");
  if (!(hurst > 0.0 && hurst < 1.0))
    throw std::invalid_argument("fgn_spectral_density: H must be in (0, 1)");

  const double two_h = 2.0 * hurst;
  const double exponent = -(two_h + 1.0);

  // Central term plus j = 1..J pairs.
  constexpr int kJ = 50;
  double s = std::pow(lambda, exponent);
  for (int j = 1; j <= kJ; ++j) {
    const double a = 2.0 * M_PI * j + lambda;
    const double b = 2.0 * M_PI * j - lambda;
    s += std::pow(a, exponent) + std::pow(b, exponent);
  }
  // Integral tail correction: sum_{j > J} g(2 pi j +- lambda) ~
  // Integral_{J+1/2}^{inf} [g(2 pi t + lambda) + g(2 pi t - lambda)] dt.
  const double edge = 2.0 * M_PI * (kJ + 0.5);
  s += (std::pow(edge + lambda, -two_h) + std::pow(edge - lambda, -two_h)) /
       (2.0 * M_PI * two_h);

  const double cf =
      std::sin(M_PI * hurst) * std::tgamma(two_h + 1.0) / (2.0 * M_PI);
  // 1 - cos(lambda) written as 2 sin^2(lambda/2): the naive form loses
  // all precision for lambda below ~1e-8, and with H near 1 most of the
  // spectral mass lives exactly there.
  const double half = std::sin(0.5 * lambda);
  return 2.0 * cf * (2.0 * half * half) * s;
}

double farima_spectral_density(double lambda, double d) {
  if (!(lambda > 0.0 && lambda <= M_PI))
    throw std::invalid_argument("farima_spectral_density: lambda in (0, pi]");
  if (!(d > -0.5 && d < 0.5))
    throw std::invalid_argument("farima_spectral_density: d in (-1/2, 1/2)");
  const double s = 2.0 * std::sin(0.5 * lambda);
  return std::pow(s, -2.0 * d) / (2.0 * M_PI);
}

namespace {

using DensityFn = double (*)(double lambda, double theta);

// Per-candidate-theta density evaluation strategy. prepare(theta) runs
// once per candidate; at(j) is then called for every ordinate from the
// reduction workers, so it must be pure reads.
class DensityEvaluator {
 public:
  virtual ~DensityEvaluator() = default;
  virtual void prepare(double theta) = 0;
  virtual double at(std::size_t j) const = 0;
};

// Calls the full density function at every ordinate — the reference
// path, and the right one for cheap densities (fARIMA is one pow()).
class DirectEvaluator final : public DensityEvaluator {
 public:
  DirectEvaluator(std::span<const double> freq, DensityFn density)
      : freq_(freq), density_(density) {}
  void prepare(double theta) override { theta_ = theta; }
  double at(std::size_t j) const override {
    return density_(freq_[j], theta_);
  }

 private:
  std::span<const double> freq_;
  DensityFn density_;
  double theta_ = 0.5;
};

// Caches the expensive part of the fGn density across ordinates.
//
// f(lambda; H) = 2 c_f(H) * 2 sin^2(lambda/2) * [lambda^e + S(lambda; H)],
// e = -(2H+1), where S is the j >= 1 series plus its integral tail —
// ~100 pow() calls. S is smooth and even on [0, pi] (its singular
// lambda^e sibling is split out and computed exactly per ordinate from a
// cached log lambda), so per candidate H it is evaluated with its
// analytic derivative on a 513-node uniform grid and cubic-Hermite
// interpolated everywhere else. Max relative interpolation error is
// ~1e-9 over H in (0, 1) — an order below the series truncation error
// of fgn_spectral_density itself — while the per-candidate cost stops
// scaling with m: the golden-section search over a 2^20-sample
// periodogram goes from ~5e9 to ~5e7 pow-equivalents.
//
// The 2 sin^2(lambda/2) weight and log lambda are per-ordinate
// constants shared by every candidate, cached at construction.
class FgnGridEvaluator final : public DensityEvaluator {
 public:
  explicit FgnGridEvaluator(std::span<const double> freq)
      : lambda_(freq.begin(), freq.end()) {
    log_lambda_.resize(lambda_.size());
    weight_.resize(lambda_.size());
    for (std::size_t j = 0; j < lambda_.size(); ++j) {
      log_lambda_[j] = std::log(lambda_[j]);
      const double half = std::sin(0.5 * lambda_[j]);
      weight_[j] = 2.0 * half * half;
    }
  }

  void prepare(double hurst) override {
    const double two_h = 2.0 * hurst;
    e_ = -(two_h + 1.0);
    cf2_ = std::sin(M_PI * hurst) * std::tgamma(two_h + 1.0) / M_PI;
    constexpr int kJ = 50;  // matches fgn_spectral_density
    const double edge = 2.0 * M_PI * (kJ + 0.5);
    for (int i = 0; i < kNodes; ++i) {
      const double lambda = static_cast<double>(i) * kStep;
      double s = 0.0, ds = 0.0;
      for (int j = 1; j <= kJ; ++j) {
        const double a = 2.0 * M_PI * j + lambda;
        const double b = 2.0 * M_PI * j - lambda;
        const double pa = std::pow(a, e_);
        const double pb = std::pow(b, e_);
        s += pa + pb;
        ds += e_ * (pa / a - pb / b);
      }
      s += (std::pow(edge + lambda, -two_h) +
            std::pow(edge - lambda, -two_h)) /
           (2.0 * M_PI * two_h);
      ds += (std::pow(edge - lambda, e_) - std::pow(edge + lambda, e_)) /
            (2.0 * M_PI);
      node_val_[i] = s;
      node_der_[i] = ds;
    }
  }

  double at(std::size_t j) const override {
    const double u = lambda_[j] * (1.0 / kStep);
    int i = static_cast<int>(u);
    if (i > kNodes - 2) i = kNodes - 2;
    const double t = u - static_cast<double>(i);
    const double t2 = t * t;
    const double t3 = t2 * t;
    const double series =
        (2.0 * t3 - 3.0 * t2 + 1.0) * node_val_[i] +
        (t3 - 2.0 * t2 + t) * kStep * node_der_[i] +
        (-2.0 * t3 + 3.0 * t2) * node_val_[i + 1] +
        (t3 - t2) * kStep * node_der_[i + 1];
    return cf2_ * weight_[j] * (std::exp(e_ * log_lambda_[j]) + series);
  }

 private:
  static constexpr int kNodes = 513;
  static constexpr double kStep = M_PI / (kNodes - 1);

  std::vector<double> lambda_, log_lambda_, weight_;
  double node_val_[kNodes] = {}, node_der_[kNodes] = {};
  double e_ = -2.0, cf2_ = 0.0;
};

// Profiled Whittle objective Q(theta) and the profiled scale.
struct Objective {
  double q;
  double scale;
};

// Partial sums of one periodogram chunk. Combined in chunk order with a
// fixed grain, so the grouping of floating-point adds depends only on m —
// the objective is bitwise identical at any thread count.
struct ObjectiveSums {
  double ratio = 0.0;
  double logf = 0.0;
};

Objective whittle_objective(const fft::Periodogram& pg,
                            DensityEvaluator& density, double theta) {
  const std::size_t m = pg.frequency.size();
  density.prepare(theta);
  // Even the interpolated density costs an exp() per ordinate, so modest
  // chunks amortize well; 256 keeps plenty of chunks for 4-8 threads at
  // the usual m of a few thousand.
  constexpr std::size_t kGrain = 256;
  const ObjectiveSums sums = par::parallel_transform_reduce(
      std::size_t{0}, m, kGrain, ObjectiveSums{},
      [&](std::size_t j) {
        const double f = density.at(j);
        return ObjectiveSums{pg.ordinate[j] / f, std::log(f)};
      },
      [](ObjectiveSums a, ObjectiveSums b) {
        return ObjectiveSums{a.ratio + b.ratio, a.logf + b.logf};
      });
  const double dm = static_cast<double>(m);
  Objective o;
  o.scale = sums.ratio / dm;
  o.q = std::log(o.scale) + sums.logf / dm;
  return o;
}

// Golden-section minimization of a unimodal function on [lo, hi].
double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double tol) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

// Shared estimation driver over a single shape parameter theta in
// [theta_min, theta_max]; `to_hurst` converts the fitted theta into the
// reported Hurst units. Objective values are memoized per exact theta:
// the search re-visits the grid winner and the minimizer, and each
// repeat saves a full density pass. `theta_hint`, when present, is a
// nearby previous fit: localization then starts from a 3-point bracket
// check around it instead of the 21-point grid (falling back to the
// grid when the check fails), which is what makes restarting the search
// across aggregation levels cheap.
WhittleResult whittle_estimate(const fft::Periodogram& pg,
                               DensityEvaluator& density, double theta_min,
                               double theta_max, double (*to_hurst)(double),
                               std::optional<double> theta_hint = {}) {
  if (pg.frequency.size() < 8)
    throw std::invalid_argument("whittle: too few periodogram ordinates");

  std::map<double, Objective> memo;
  const auto objective = [&](double t) -> const Objective& {
    const auto it = memo.find(t);
    if (it != memo.end()) return it->second;
    return memo.emplace(t, whittle_objective(pg, density, t)).first->second;
  };

  // Localize the minimum (the objective is smooth and in practice
  // unimodal), then golden-section refinement. A valid hint brackets in
  // 3 objective evaluations; otherwise a coarse grid takes 21.
  double best_t = 0.5 * (theta_min + theta_max);
  const double grid = (theta_max - theta_min) / 20.0;
  bool bracketed = false;
  if (theta_hint && *theta_hint >= theta_min + grid &&
      *theta_hint <= theta_max - grid) {
    const double t0 = *theta_hint;
    const double q_mid = objective(t0).q;
    if (q_mid <= objective(t0 - grid).q && q_mid <= objective(t0 + grid).q) {
      best_t = t0;
      bracketed = true;
    }
  }
  if (!bracketed) {
    double best_q = HUGE_VAL;
    for (double t = theta_min; t <= theta_max; t += grid) {
      const double q = objective(t).q;
      if (q < best_q) {
        best_q = q;
        best_t = t;
      }
    }
  }
  const double lo = std::max(theta_min, best_t - 1.2 * grid);
  const double hi = std::min(theta_max, best_t + 1.2 * grid);
  const double t_hat = golden_minimize(
      [&objective](double t) { return objective(t).q; }, lo, hi, 1e-5);

  const Objective at_min = objective(t_hat);

  WhittleResult r;
  r.hurst = to_hurst(t_hat);
  r.scale = at_min.scale;
  r.objective = at_min.q;

  // Observed-information standard error: the Whittle deviance is
  // W(theta) = m * Q(theta) (up to constants), so Var ~ 2 / W''. The
  // theta -> hurst maps used here have unit slope, so no Jacobian.
  const double dt = 1e-3;
  const double t_lo = std::max(theta_min, t_hat - dt);
  const double t_hi = std::min(theta_max, t_hat + dt);
  const double q_lo = objective(t_lo).q;
  const double q_hi = objective(t_hi).q;
  const double step = 0.5 * (t_hi - t_lo);
  const double second = (q_lo - 2.0 * at_min.q + q_hi) / (step * step);
  const double m = static_cast<double>(pg.frequency.size());
  r.stderr_hurst = second > 0.0 ? std::sqrt(2.0 / (m * second)) : 0.0;
  r.ci_low = r.hurst - 1.96 * r.stderr_hurst;
  r.ci_high = r.hurst + 1.96 * r.stderr_hurst;
  return r;
}

double identity_map(double t) { return t; }
double d_to_hurst(double d) { return d + 0.5; }

}  // namespace

WhittleResult whittle_fgn_from_periodogram(const fft::Periodogram& pg,
                                           const WhittleOptions& options) {
  FgnGridEvaluator density(pg.frequency);
  // theta IS hurst for the fGn family, so the hint needs no conversion.
  return whittle_estimate(pg, density, 0.02, 0.99, &identity_map,
                          options.hurst_hint);
}

WhittleResult whittle_fgn_direct_from_periodogram(
    const fft::Periodogram& pg) {
  DirectEvaluator density(pg.frequency, &fgn_spectral_density);
  return whittle_estimate(pg, density, 0.02, 0.99, &identity_map);
}

WhittleResult whittle_fgn(std::span<const double> x) {
  const auto pg = fft::periodogram(x);
  return whittle_fgn_from_periodogram(pg);
}

WhittleResult whittle_farima_from_periodogram(const fft::Periodogram& pg) {
  // fARIMA's density is a single pow() — evaluating it directly is
  // already cheaper than any grid.
  DirectEvaluator density(pg.frequency, &farima_spectral_density);
  return whittle_estimate(pg, density, -0.45, 0.49, &d_to_hurst);
}

WhittleResult whittle_farima(std::span<const double> x) {
  const auto pg = fft::periodogram(x);
  return whittle_farima_from_periodogram(pg);
}

}  // namespace wan::stats
