#include "src/stats/whittle.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/fft/periodogram.hpp"
#include "src/par/parallel.hpp"

namespace wan::stats {

double fgn_spectral_density(double lambda, double hurst) {
  if (!(lambda > 0.0 && lambda <= M_PI))
    throw std::invalid_argument("fgn_spectral_density: lambda must be in (0, pi]");
  if (!(hurst > 0.0 && hurst < 1.0))
    throw std::invalid_argument("fgn_spectral_density: H must be in (0, 1)");

  const double two_h = 2.0 * hurst;
  const double exponent = -(two_h + 1.0);

  // Central term plus j = 1..J pairs.
  constexpr int kJ = 50;
  double s = std::pow(lambda, exponent);
  for (int j = 1; j <= kJ; ++j) {
    const double a = 2.0 * M_PI * j + lambda;
    const double b = 2.0 * M_PI * j - lambda;
    s += std::pow(a, exponent) + std::pow(b, exponent);
  }
  // Integral tail correction: sum_{j > J} g(2 pi j +- lambda) ~
  // Integral_{J+1/2}^{inf} [g(2 pi t + lambda) + g(2 pi t - lambda)] dt.
  const double edge = 2.0 * M_PI * (kJ + 0.5);
  s += (std::pow(edge + lambda, -two_h) + std::pow(edge - lambda, -two_h)) /
       (2.0 * M_PI * two_h);

  const double cf =
      std::sin(M_PI * hurst) * std::tgamma(two_h + 1.0) / (2.0 * M_PI);
  // 1 - cos(lambda) written as 2 sin^2(lambda/2): the naive form loses
  // all precision for lambda below ~1e-8, and with H near 1 most of the
  // spectral mass lives exactly there.
  const double half = std::sin(0.5 * lambda);
  return 2.0 * cf * (2.0 * half * half) * s;
}

double farima_spectral_density(double lambda, double d) {
  if (!(lambda > 0.0 && lambda <= M_PI))
    throw std::invalid_argument("farima_spectral_density: lambda in (0, pi]");
  if (!(d > -0.5 && d < 0.5))
    throw std::invalid_argument("farima_spectral_density: d in (-1/2, 1/2)");
  const double s = 2.0 * std::sin(0.5 * lambda);
  return std::pow(s, -2.0 * d) / (2.0 * M_PI);
}

namespace {

// fGn fit range in theta == H, shared by the from-scratch estimator and
// the WhittleRefitter lattice so the two paths agree on boundary cases.
constexpr double kFgnThetaMin = 0.02;
constexpr double kFgnThetaMax = 0.99;

using DensityFn = double (*)(double lambda, double theta);

// Per-candidate-theta density evaluation strategy. prepare(theta) runs
// once per candidate; at(j) is then called for every ordinate from the
// reduction workers, so it must be pure reads.
class DensityEvaluator {
 public:
  virtual ~DensityEvaluator() = default;
  virtual void prepare(double theta) = 0;
  virtual double at(std::size_t j) const = 0;
};

// Calls the full density function at every ordinate — the reference
// path, and the right one for cheap densities (fARIMA is one pow()).
class DirectEvaluator final : public DensityEvaluator {
 public:
  DirectEvaluator(std::span<const double> freq, DensityFn density)
      : freq_(freq), density_(density) {}
  void prepare(double theta) override { theta_ = theta; }
  double at(std::size_t j) const override {
    return density_(freq_[j], theta_);
  }

 private:
  std::span<const double> freq_;
  DensityFn density_;
  double theta_ = 0.5;
};

// Caches the expensive part of the fGn density across ordinates.
//
// f(lambda; H) = 2 c_f(H) * 2 sin^2(lambda/2) * [lambda^e + S(lambda; H)],
// e = -(2H+1), where S is the j >= 1 series plus its integral tail —
// ~100 pow() calls. S is smooth and even on [0, pi] (its singular
// lambda^e sibling is split out and computed exactly per ordinate from a
// cached log lambda), so per candidate H it is evaluated with its
// analytic derivative on a 513-node uniform grid and cubic-Hermite
// interpolated everywhere else. Max relative interpolation error is
// ~1e-9 over H in (0, 1) — an order below the series truncation error
// of fgn_spectral_density itself — while the per-candidate cost stops
// scaling with m: the golden-section search over a 2^20-sample
// periodogram goes from ~5e9 to ~5e7 pow-equivalents.
//
// The 2 sin^2(lambda/2) weight and log lambda are per-ordinate
// constants shared by every candidate, cached at construction.
class FgnGridEvaluator final : public DensityEvaluator {
 public:
  explicit FgnGridEvaluator(std::span<const double> freq)
      : lambda_(freq.begin(), freq.end()) {
    log_lambda_.resize(lambda_.size());
    weight_.resize(lambda_.size());
    for (std::size_t j = 0; j < lambda_.size(); ++j) {
      log_lambda_[j] = std::log(lambda_[j]);
      const double half = std::sin(0.5 * lambda_[j]);
      weight_[j] = 2.0 * half * half;
    }
  }

  void prepare(double hurst) override {
    const double two_h = 2.0 * hurst;
    e_ = -(two_h + 1.0);
    cf2_ = std::sin(M_PI * hurst) * std::tgamma(two_h + 1.0) / M_PI;
    constexpr int kJ = 50;  // matches fgn_spectral_density
    const double edge = 2.0 * M_PI * (kJ + 0.5);
    for (int i = 0; i < kNodes; ++i) {
      const double lambda = static_cast<double>(i) * kStep;
      double s = 0.0, ds = 0.0;
      for (int j = 1; j <= kJ; ++j) {
        const double a = 2.0 * M_PI * j + lambda;
        const double b = 2.0 * M_PI * j - lambda;
        const double pa = std::pow(a, e_);
        const double pb = std::pow(b, e_);
        s += pa + pb;
        ds += e_ * (pa / a - pb / b);
      }
      s += (std::pow(edge + lambda, -two_h) +
            std::pow(edge - lambda, -two_h)) /
           (2.0 * M_PI * two_h);
      ds += (std::pow(edge - lambda, e_) - std::pow(edge + lambda, e_)) /
            (2.0 * M_PI);
      node_val_[i] = s;
      node_der_[i] = ds;
    }
  }

  double at(std::size_t j) const override {
    const double u = lambda_[j] * (1.0 / kStep);
    int i = static_cast<int>(u);
    if (i > kNodes - 2) i = kNodes - 2;
    const double t = u - static_cast<double>(i);
    const double t2 = t * t;
    const double t3 = t2 * t;
    const double series =
        (2.0 * t3 - 3.0 * t2 + 1.0) * node_val_[i] +
        (t3 - 2.0 * t2 + t) * kStep * node_der_[i] +
        (-2.0 * t3 + 3.0 * t2) * node_val_[i + 1] +
        (t3 - t2) * kStep * node_der_[i + 1];
    return cf2_ * weight_[j] * (std::exp(e_ * log_lambda_[j]) + series);
  }

 private:
  static constexpr int kNodes = 513;
  static constexpr double kStep = M_PI / (kNodes - 1);

  std::vector<double> lambda_, log_lambda_, weight_;
  double node_val_[kNodes] = {}, node_der_[kNodes] = {};
  double e_ = -2.0, cf2_ = 0.0;
};

// Profiled Whittle objective Q(theta) and the profiled scale.
struct Objective {
  double q;
  double scale;
};

// Partial sums of one periodogram chunk. Combined in chunk order with a
// fixed grain, so the grouping of floating-point adds depends only on m —
// the objective is bitwise identical at any thread count.
struct ObjectiveSums {
  double ratio = 0.0;
  double logf = 0.0;
};

Objective whittle_objective(const fft::Periodogram& pg,
                            DensityEvaluator& density, double theta) {
  const std::size_t m = pg.frequency.size();
  density.prepare(theta);
  // Even the interpolated density costs an exp() per ordinate, so modest
  // chunks amortize well; 256 keeps plenty of chunks for 4-8 threads at
  // the usual m of a few thousand.
  constexpr std::size_t kGrain = 256;
  const ObjectiveSums sums = par::parallel_transform_reduce(
      std::size_t{0}, m, kGrain, ObjectiveSums{},
      [&](std::size_t j) {
        const double f = density.at(j);
        return ObjectiveSums{pg.ordinate[j] / f, std::log(f)};
      },
      [](ObjectiveSums a, ObjectiveSums b) {
        return ObjectiveSums{a.ratio + b.ratio, a.logf + b.logf};
      });
  const double dm = static_cast<double>(m);
  Objective o;
  o.scale = sums.ratio / dm;
  o.q = std::log(o.scale) + sums.logf / dm;
  return o;
}

// Golden-section minimization of a unimodal function on [lo, hi].
double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double tol) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

// Shared estimation driver over a single shape parameter theta in
// [theta_min, theta_max]; `to_hurst` converts the fitted theta into the
// reported Hurst units. Objective values are memoized per exact theta:
// the search re-visits the grid winner and the minimizer, and each
// repeat saves a full density pass. `theta_hint`, when present, is a
// nearby previous fit: localization then starts from a 3-point bracket
// check around it instead of the 21-point grid (falling back to the
// grid when the check fails), which is what makes restarting the search
// across aggregation levels cheap.
WhittleResult whittle_estimate(const fft::Periodogram& pg,
                               DensityEvaluator& density, double theta_min,
                               double theta_max, double (*to_hurst)(double),
                               std::optional<double> theta_hint = {}) {
  if (pg.frequency.size() < 8)
    throw std::invalid_argument("whittle: too few periodogram ordinates");

  std::map<double, Objective> memo;
  const auto objective = [&](double t) -> const Objective& {
    const auto it = memo.find(t);
    if (it != memo.end()) return it->second;
    return memo.emplace(t, whittle_objective(pg, density, t)).first->second;
  };

  // Localize the minimum (the objective is smooth and in practice
  // unimodal), then golden-section refinement. A valid hint brackets in
  // 3 objective evaluations; otherwise a coarse grid takes 21.
  double best_t = 0.5 * (theta_min + theta_max);
  const double grid = (theta_max - theta_min) / 20.0;
  bool bracketed = false;
  if (theta_hint && *theta_hint >= theta_min + grid &&
      *theta_hint <= theta_max - grid) {
    const double t0 = *theta_hint;
    const double q_mid = objective(t0).q;
    if (q_mid <= objective(t0 - grid).q && q_mid <= objective(t0 + grid).q) {
      best_t = t0;
      bracketed = true;
    }
  }
  if (!bracketed) {
    double best_q = HUGE_VAL;
    for (double t = theta_min; t <= theta_max; t += grid) {
      const double q = objective(t).q;
      if (q < best_q) {
        best_q = q;
        best_t = t;
      }
    }
  }
  const double lo = std::max(theta_min, best_t - 1.2 * grid);
  const double hi = std::min(theta_max, best_t + 1.2 * grid);
  const double t_hat = golden_minimize(
      [&objective](double t) { return objective(t).q; }, lo, hi, 1e-5);

  const Objective at_min = objective(t_hat);

  WhittleResult r;
  r.hurst = to_hurst(t_hat);
  r.scale = at_min.scale;
  r.objective = at_min.q;

  // Observed-information standard error: the Whittle deviance is
  // W(theta) = m * Q(theta) (up to constants), so Var ~ 2 / W''. The
  // theta -> hurst maps used here have unit slope, so no Jacobian.
  const double dt = 1e-3;
  const double t_lo = std::max(theta_min, t_hat - dt);
  const double t_hi = std::min(theta_max, t_hat + dt);
  const double q_lo = objective(t_lo).q;
  const double q_hi = objective(t_hi).q;
  const double step = 0.5 * (t_hi - t_lo);
  const double second = (q_lo - 2.0 * at_min.q + q_hi) / (step * step);
  const double m = static_cast<double>(pg.frequency.size());
  r.stderr_hurst = second > 0.0 ? std::sqrt(2.0 / (m * second)) : 0.0;
  r.ci_low = r.hurst - 1.96 * r.stderr_hurst;
  r.ci_high = r.hurst + 1.96 * r.stderr_hurst;
  return r;
}

double identity_map(double t) { return t; }
double d_to_hurst(double d) { return d + 0.5; }

}  // namespace

WhittleResult whittle_fgn_from_periodogram(const fft::Periodogram& pg,
                                           const WhittleOptions& options) {
  FgnGridEvaluator density(pg.frequency);
  // theta IS hurst for the fGn family, so the hint needs no conversion.
  return whittle_estimate(pg, density, kFgnThetaMin, kFgnThetaMax,
                          &identity_map, options.hurst_hint);
}

WhittleResult whittle_fgn_direct_from_periodogram(
    const fft::Periodogram& pg) {
  DirectEvaluator density(pg.frequency, &fgn_spectral_density);
  return whittle_estimate(pg, density, kFgnThetaMin, kFgnThetaMax,
                          &identity_map);
}

WhittleResult whittle_fgn(std::span<const double> x) {
  const auto pg = fft::periodogram(x);
  return whittle_fgn_from_periodogram(pg);
}

struct WhittleRefitter::Impl {
  std::vector<double> frequency;  ///< grid the tables were built for
  std::vector<double> h;          ///< candidate H lattice
  std::vector<double> log_f_sum;  ///< per candidate: sum_j log f(lambda_j)
  std::vector<double> inv_f;      ///< candidates x m, row-major: 1 / f
  double step = 0.0;
  FgnGridEvaluator evaluator;     ///< exact pass at the refined minimizer

  explicit Impl(std::span<const double> freq)
      : frequency(freq.begin(), freq.end()), evaluator(freq) {}

  /// Lattice objective at candidate k for periodogram ordinates I:
  /// Q_k = log(mean_j I_j / f_j) + mean_j log f_j. Only the first term
  /// touches the data — m multiply-adds against the cached row.
  double lattice_q(std::size_t k, std::span<const double> ordinate) const {
    const std::size_t m = frequency.size();
    const double* row = inv_f.data() + k * m;
    double ratio = 0.0;
    for (std::size_t j = 0; j < m; ++j) ratio += ordinate[j] * row[j];
    const double dm = static_cast<double>(m);
    return std::log(ratio / dm) + log_f_sum[k] / dm;
  }
};

WhittleRefitter::WhittleRefitter(std::span<const double> frequency,
                                 double h_step)
    : impl_(std::make_unique<Impl>(frequency)) {
  if (frequency.size() < 8)
    throw std::invalid_argument("WhittleRefitter: too few ordinates");
  for (double lambda : frequency)
    if (!(lambda > 0.0 && lambda <= M_PI))
      throw std::invalid_argument(
          "WhittleRefitter: frequencies must be in (0, pi]");
  if (!(h_step > 0.0 && h_step <= 0.05))
    throw std::invalid_argument("WhittleRefitter: h_step in (0, 0.05]");

  const std::size_t m = frequency.size();
  const auto count = static_cast<std::size_t>(
                         (kFgnThetaMax - kFgnThetaMin) / h_step) +
                     2;  // lattice covers [theta_min, theta_max] inclusive
  impl_->step = h_step;
  impl_->h.reserve(count);
  impl_->log_f_sum.reserve(count);
  impl_->inv_f.reserve(count * m);
  for (std::size_t k = 0; k < count; ++k) {
    const double hk =
        std::min(kFgnThetaMin + static_cast<double>(k) * h_step,
                 kFgnThetaMax);
    impl_->h.push_back(hk);
    impl_->evaluator.prepare(hk);
    double log_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double f = impl_->evaluator.at(j);
      log_sum += std::log(f);
      impl_->inv_f.push_back(1.0 / f);
    }
    impl_->log_f_sum.push_back(log_sum);
    if (hk >= kFgnThetaMax) break;
  }
}

WhittleRefitter::~WhittleRefitter() = default;
WhittleRefitter::WhittleRefitter(WhittleRefitter&&) noexcept = default;
WhittleRefitter& WhittleRefitter::operator=(WhittleRefitter&&) noexcept =
    default;

std::size_t WhittleRefitter::candidates() const { return impl_->h.size(); }

WhittleResult WhittleRefitter::fit(const fft::Periodogram& pg,
                                   const WhittleOptions& options) {
  Impl& im = *impl_;
  if (pg.frequency != im.frequency)
    throw std::invalid_argument(
        "WhittleRefitter: periodogram frequency grid does not match the "
        "grid the tables were built for");
  const std::span<const double> ordinate(pg.ordinate);
  const std::size_t count = im.h.size();

  // Lattice objective, memoized per index for this fit.
  std::vector<double> q(count, HUGE_VAL);
  std::vector<char> have(count, 0);
  const auto q_at = [&](std::size_t k) {
    if (!have[k]) {
      q[k] = im.lattice_q(k, ordinate);
      have[k] = 1;
    }
    return q[k];
  };
  const auto argmin_range = [&](std::size_t lo, std::size_t hi) {  // [lo, hi)
    std::size_t best = lo;
    for (std::size_t k = lo; k < hi; ++k)
      if (q_at(k) < q[best]) best = k;
    return best;
  };

  // Scan the lattice for the winning candidate. A hint restricts the
  // scan to its neighborhood first; a winner on the neighborhood edge
  // means the minimum moved out from under the hint, so rescan
  // everything. Same winner as a cold scan either way — the hint only
  // changes how much of the lattice gets touched.
  std::size_t best;
  if (options.hurst_hint && *options.hurst_hint > kFgnThetaMin &&
      *options.hurst_hint < kFgnThetaMax) {
    const auto k0 = std::min(
        count - 1,
        static_cast<std::size_t>(
            std::llround((*options.hurst_hint - kFgnThetaMin) / im.step)));
    const std::size_t w = static_cast<std::size_t>(0.05 / im.step) + 1;
    const std::size_t lo = k0 > w ? k0 - w : 0;
    const std::size_t hi = std::min(count, k0 + w + 1);
    best = argmin_range(lo, hi);
    const bool escaped =
        (best == lo && lo > 0) || (best + 1 == hi && hi < count);
    if (escaped) best = argmin_range(0, count);
  } else {
    best = argmin_range(0, count);
  }

  // Refine between lattice points — table values only, no density
  // work. A parabola through the winner and its neighbors gives the
  // first vertex; its residual bias is the objective's cubic term
  // (O(step^2), which at realistic m is the largest error in the whole
  // refit), so a cubic through FOUR lattice points — the winner's
  // triple plus one more on the side the vertex leans toward — absorbs
  // Q''' exactly and leaves O(step^3). The cubic's curvature at the
  // minimizer feeds the observed-information stderr, as the
  // golden-section path measures it by finite differences at a
  // comparable step. Near the lattice edges (including the clamped
  // last point, where spacing is irregular) the refit falls back to
  // the general-spacing parabola, then to the raw lattice point.
  double t_hat = im.h[best];
  double second = 0.0;
  if (count >= 4) {
    // Winner at a lattice edge (H pegged at the fit floor/ceiling):
    // refine through the edge's three-point stencil anyway — a minimum
    // a fraction of a step inside the boundary (the golden-section
    // path finds it; a refit must too) is still captured, and a truly
    // monotone objective clamps the vertex back to the edge.
    const std::size_t c = std::min(std::max<std::size_t>(best, 1), count - 2);
    const double x0 = im.h[c - 1], x1 = im.h[c], x2 = im.h[c + 1];
    const double y0 = q_at(c - 1), y1 = q_at(c), y2 = q_at(c + 1);
    const double a = y0 / ((x0 - x1) * (x0 - x2)) +
                     y1 / ((x1 - x0) * (x1 - x2)) +
                     y2 / ((x2 - x0) * (x2 - x1));
    if (a > 0.0) {
      const double num =
          (x1 - x0) * (x1 - x0) * (y1 - y2) -
          (x1 - x2) * (x1 - x2) * (y1 - y0);
      const double den =
          (x1 - x0) * (y1 - y2) - (x1 - x2) * (y1 - y0);
      if (den != 0.0) {
        t_hat = x1 - 0.5 * num / den;
        if (t_hat < x0) t_hat = x0;
        if (t_hat > x2) t_hat = x2;
      }
      second = 2.0 * a;
    }

    // Cubic upgrade: base the 4-point stencil at `lo` so the vertex
    // side gets the extra point, clamped so all four points exist even
    // for an edge winner. Requires uniform spacing (true away from the
    // clamped last lattice point, whose stride can be shorter).
    std::size_t lo = t_hat >= x1 ? c - 1 : c >= 2 ? c - 2 : 0;
    lo = std::min(lo, count - 4);
    if (lo + 3 < count) {
      const double step = im.step;
      const bool uniform =
          std::abs((im.h[lo + 3] - im.h[lo]) - 3.0 * step) < 1e-12;
      if (uniform) {
        const double z0 = q_at(lo), z1 = q_at(lo + 1), z2 = q_at(lo + 2),
                     z3 = q_at(lo + 3);
        const double d1 = z1 - z0;
        const double d2 = z2 - 2.0 * z1 + z0;
        const double d3 = z3 - 3.0 * z2 + 3.0 * z1 - z0;
        // dQ/du of the Newton-forward cubic, u = (t - h[lo]) / step:
        //   alpha u^2 + beta u + gamma.
        const double alpha = 0.5 * d3;
        const double beta = d2 - d3;
        const double gamma = d1 - 0.5 * d2 + d3 / 3.0;
        double u = -1.0;
        double curve_u = 0.0;  // d2Q/du2 at the root
        if (std::abs(alpha) > 1e-300) {
          const double disc = beta * beta - 4.0 * alpha * gamma;
          if (disc >= 0.0) {
            const double r = std::sqrt(disc);
            // The root with positive second derivative is the minimum.
            const double u_a = (-beta + r) / (2.0 * alpha);
            const double u_b = (-beta - r) / (2.0 * alpha);
            u = 2.0 * alpha * u_a + beta > 0.0 ? u_a : u_b;
            curve_u = 2.0 * alpha * u + beta;
          }
        } else if (beta > 0.0) {
          u = -gamma / beta;  // cubic degenerated to a parabola
          curve_u = beta;
        }
        // Accept only an interior minimum near the lattice winner;
        // otherwise the parabola result stands.
        const double u_best = (im.h[best] - im.h[lo]) / step;
        if (u >= 0.0 && u <= 3.0 && std::abs(u - u_best) <= 1.5 &&
            curve_u > 0.0) {
          t_hat = im.h[lo] + u * step;
          second = curve_u / (step * step);
        }
      }
    }
  }

  // One exact density pass at the refined minimizer for the reported
  // scale and objective — the only non-table work in the whole refit.
  const Objective at_min = whittle_objective(pg, im.evaluator, t_hat);

  WhittleResult r;
  r.hurst = t_hat;
  r.scale = at_min.scale;
  r.objective = at_min.q;
  const double m = static_cast<double>(im.frequency.size());
  r.stderr_hurst = second > 0.0 ? std::sqrt(2.0 / (m * second)) : 0.0;
  r.ci_low = r.hurst - 1.96 * r.stderr_hurst;
  r.ci_high = r.hurst + 1.96 * r.stderr_hurst;
  return r;
}

WhittleResult whittle_farima_from_periodogram(const fft::Periodogram& pg) {
  // fARIMA's density is a single pow() — evaluating it directly is
  // already cheaper than any grid.
  DirectEvaluator density(pg.frequency, &farima_spectral_density);
  return whittle_estimate(pg, density, -0.45, 0.49, &d_to_hurst);
}

WhittleResult whittle_farima(std::span<const double> x) {
  const auto pg = fft::periodogram(x);
  return whittle_farima_from_periodogram(pg);
}

}  // namespace wan::stats
