#include "src/stats/counting.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::stats {

std::vector<double> bin_counts(std::span<const double> times, double t0,
                               double t1, double bin) {
  if (!(bin > 0.0)) throw std::invalid_argument("bin_counts: bin must be > 0");
  if (!(t1 > t0)) throw std::invalid_argument("bin_counts: t1 must be > t0");
  const auto nbins = static_cast<std::size_t>(std::ceil((t1 - t0) / bin));
  std::vector<double> counts(nbins, 0.0);
  for (double t : times) {
    if (t < t0 || t >= t1) continue;
    auto idx = static_cast<std::size_t>((t - t0) / bin);
    if (idx >= nbins) idx = nbins - 1;  // guard float edge at t1
    counts[idx] += 1.0;
  }
  return counts;
}

std::vector<double> aggregate_mean(std::span<const double> x, std::size_t m) {
  if (m == 0) throw std::invalid_argument("aggregate_mean: m must be >= 1");
  std::vector<double> out;
  out.reserve(x.size() / m);
  for (std::size_t i = 0; i + m <= x.size(); i += m) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += x[i + j];
    out.push_back(s / static_cast<double>(m));
  }
  return out;
}

std::vector<double> aggregate_sum(std::span<const double> x, std::size_t m) {
  if (m == 0) throw std::invalid_argument("aggregate_sum: m must be >= 1");
  std::vector<double> out;
  out.reserve(x.size() / m);
  for (std::size_t i = 0; i + m <= x.size(); i += m) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += x[i + j];
    out.push_back(s);
  }
  return out;
}

double BurstLull::mean_burst_bins() const {
  if (burst_lengths.empty()) return 0.0;
  double s = 0.0;
  for (auto v : burst_lengths) s += static_cast<double>(v);
  return s / static_cast<double>(burst_lengths.size());
}

double BurstLull::mean_lull_bins() const {
  if (lull_lengths.empty()) return 0.0;
  double s = 0.0;
  for (auto v : lull_lengths) s += static_cast<double>(v);
  return s / static_cast<double>(lull_lengths.size());
}

BurstLull burst_lull_structure(std::span<const double> counts) {
  BurstLull out;
  std::size_t run = 0;
  bool occupied = false;
  for (double c : counts) {
    const bool occ = c > 0.0;
    if (run == 0) {
      occupied = occ;
      run = 1;
    } else if (occ == occupied) {
      ++run;
    } else {
      (occupied ? out.burst_lengths : out.lull_lengths).push_back(run);
      occupied = occ;
      run = 1;
    }
  }
  if (run > 0) (occupied ? out.burst_lengths : out.lull_lengths).push_back(run);
  return out;
}

}  // namespace wan::stats
