#include "src/stats/counting.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::stats {

std::vector<double> bin_counts(std::span<const double> times, double t0,
                               double t1, double bin) {
  BinCountsAccumulator acc(t0, t1, bin);
  acc.add(times);
  return acc.take();
}

BinCountsAccumulator::BinCountsAccumulator(double t0, double t1, double bin)
    : t0_(t0), t1_(t1), bin_(bin) {
  if (!(bin > 0.0)) throw std::invalid_argument("bin_counts: bin must be > 0");
  if (!(t1 > t0)) throw std::invalid_argument("bin_counts: t1 must be > t0");
  counts_.assign(static_cast<std::size_t>(std::ceil((t1 - t0) / bin)), 0.0);
}

void BinCountsAccumulator::add(double t) {
  if (t < t0_ || t >= t1_) return;
  auto idx = static_cast<std::size_t>((t - t0_) / bin_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge at t1
  counts_[idx] += 1.0;
}

void BinCountsAccumulator::add(std::span<const double> times) {
  // Guard the int32 index scratch; a series this long would need a bin
  // vector beyond 2G entries anyway.
  if (counts_.size() >= static_cast<std::size_t>(INT32_MAX)) {
    for (double t : times) add(t);
    return;
  }
  const double t0 = t0_;
  const double t1 = t1_;
  const double bin = bin_;
  const double last = static_cast<double>(counts_.size() - 1);
  idx_scratch_.resize(times.size());
  std::int32_t* idx = idx_scratch_.data();
  // Phase 1: pure per-element arithmetic over the time column — the
  // same range predicate and division as add(t), so the computed bin of
  // every in-range element is identical (clamping the quotient before
  // truncation equals clamping the index after it, since the quotient
  // of an in-range element is nonnegative and below bins()). All
  // selects, no branches: compare / divide / min / convert / blend,
  // which is what lets the loop vectorize.
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double t = times[i];
    // Non-short-circuit | so the predicate is two compares and an or,
    // not a branch (short-circuit || blocks vectorization).
    const bool out = (t < t0) | (t >= t1);
    double q = (t - t0) / bin;
    q = q > last ? last : q;  // float edge at t1
    q = q > 0.0 ? q : 0.0;    // keep the conversion defined on out lanes
    const auto b = static_cast<std::int32_t>(q);
    idx[i] = out ? -1 : b;
  }
  // Phase 2: scatter. Inherently serial per element, but now a plain
  // increment loop with no floating-point work left in it.
  double* counts = counts_.data();
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (idx[i] >= 0) counts[idx[i]] += 1.0;
  }
}

void BinCountsAccumulator::merge(const BinCountsAccumulator& other) {
  if (t0_ != other.t0_ || t1_ != other.t1_ || bin_ != other.bin_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument("BinCountsAccumulator::merge: grid mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
}

BinCountsAccumulator BinCountsAccumulator::from_snapshot(
    const BinCountsSnapshot& s) {
  BinCountsAccumulator acc(s.t0, s.t1, s.bin);
  if (acc.counts_.size() != s.counts.size())
    throw std::invalid_argument(
        "BinCountsAccumulator::from_snapshot: counts/grid mismatch");
  acc.counts_ = s.counts;
  return acc;
}

SpeculativeBinCounts::SpeculativeBinCounts(double t0, double bin)
    : t0_(t0), bin_(bin) {
  if (!(bin > 0.0)) throw std::invalid_argument("bin_counts: bin must be > 0");
}

void SpeculativeBinCounts::add(std::span<const double> times) {
  if (times.empty()) return;
  // One growth step per chunk: the chunk's max time bounds every index
  // this chunk can produce, so the per-element loops below never have
  // to re-check capacity.
  double mx = times[0];
  for (std::size_t i = 1; i < times.size(); ++i)
    mx = times[i] > mx ? times[i] : mx;
  const double hi_q = (mx - t0_) / bin_;
  if (!(hi_q >= 0.0) || hi_q >= static_cast<double>(INT32_MAX - 1)) {
    // Chunk max before t0 (wildly out of order), NaN, or a grid the
    // fixed accumulator's int32 scratch could not index either. Don't
    // bin (or allocate for) what finish() is going to disown.
    poisoned_ = true;
    return;
  }
  const std::size_t need = static_cast<std::size_t>(hi_q) + 1;
  if (need > counts_.size()) counts_.resize(need, 0.0);

  // The two phases mirror BinCountsAccumulator::add(span) exactly —
  // same quotient, same clamp-then-truncate — so every event at or
  // after t0 lands in the identical bin. Events below t0 poison the
  // speculation instead of being dropped: the 0 they bin into here is
  // never observed, because finish() returns nullopt.
  const double t0 = t0_;
  const double bin = bin_;
  const double last = static_cast<double>(counts_.size() - 1);
  idx_scratch_.resize(times.size());
  std::int32_t* idx = idx_scratch_.data();
  int below = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double t = times[i];
    below |= static_cast<int>(t < t0);
    double q = (t - t0) / bin;
    q = q > last ? last : q;
    q = q > 0.0 ? q : 0.0;
    idx[i] = static_cast<std::int32_t>(q);
  }
  if (below != 0) poisoned_ = true;
  double* counts = counts_.data();
  for (std::size_t i = 0; i < times.size(); ++i) counts[idx[i]] += 1.0;
}

std::optional<std::vector<double>> SpeculativeBinCounts::finish(double t1) {
  if (poisoned_ || !(t1 > t0_)) return std::nullopt;
  // The fixed accumulator covering [t0, t1) has exactly this many bins.
  const std::size_t final_len =
      static_cast<std::size_t>(std::ceil((t1 - t0_) / bin_));
  // Grown past the fixed grid: some event would have been dropped
  // (t >= t1) or edge-clamped into the last bin by the fixed
  // accumulator. The caller feeds only events strictly below t1, so in
  // practice this is the floating-point grid edge — rare enough to
  // just redo exactly.
  if (counts_.size() > final_len) return std::nullopt;
  counts_.resize(final_len, 0.0);  // trailing empty bins
  return std::move(counts_);
}

std::vector<double> aggregate_mean(std::span<const double> x, std::size_t m) {
  if (m == 0) throw std::invalid_argument("aggregate_mean: m must be >= 1");
  std::vector<double> out;
  out.reserve(x.size() / m);
  for (std::size_t i = 0; i + m <= x.size(); i += m) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += x[i + j];
    out.push_back(s / static_cast<double>(m));
  }
  return out;
}

std::vector<double> aggregate_sum(std::span<const double> x, std::size_t m) {
  if (m == 0) throw std::invalid_argument("aggregate_sum: m must be >= 1");
  std::vector<double> out;
  out.reserve(x.size() / m);
  for (std::size_t i = 0; i + m <= x.size(); i += m) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += x[i + j];
    out.push_back(s);
  }
  return out;
}

double BurstLull::mean_burst_bins() const {
  if (burst_lengths.empty()) return 0.0;
  double s = 0.0;
  for (auto v : burst_lengths) s += static_cast<double>(v);
  return s / static_cast<double>(burst_lengths.size());
}

double BurstLull::mean_lull_bins() const {
  if (lull_lengths.empty()) return 0.0;
  double s = 0.0;
  for (auto v : lull_lengths) s += static_cast<double>(v);
  return s / static_cast<double>(lull_lengths.size());
}

BurstLull burst_lull_structure(std::span<const double> counts) {
  BurstLullAccumulator acc;
  for (double c : counts) acc.push(c);
  return acc.finish();
}

void BurstLullAccumulator::push(double count) {
  const bool occ = count > 0.0;
  if (run_ == 0) {
    occupied_ = occ;
    run_ = 1;
  } else if (occ == occupied_) {
    ++run_;
  } else {
    runs_.push_back({run_, occupied_});
    occupied_ = occ;
    run_ = 1;
  }
}

BurstLull BurstLullAccumulator::finish() const {
  BurstLull out;
  for (const Run& r : runs_)
    (r.occupied ? out.burst_lengths : out.lull_lengths).push_back(r.length);
  if (run_ > 0)
    (occupied_ ? out.burst_lengths : out.lull_lengths).push_back(run_);
  return out;
}

void BurstLullAccumulator::merge(const BurstLullAccumulator& other) {
  if (other.run_ == 0) return;  // other saw nothing
  if (run_ == 0) {              // we saw nothing
    *this = other;
    return;
  }
  // Splice at the boundary: our open run meets other's first run. If
  // occupancy matches they are one run of the concatenated series.
  Run first = other.runs_.empty() ? Run{other.run_, other.occupied_}
                                  : other.runs_.front();
  if (first.occupied == occupied_) {
    first.length += run_;
  } else {
    runs_.push_back({run_, occupied_});
  }
  if (other.runs_.empty()) {
    // first IS other's open run; it stays open here.
    run_ = first.length;
    occupied_ = first.occupied;
    return;
  }
  runs_.push_back(first);
  runs_.insert(runs_.end(), other.runs_.begin() + 1, other.runs_.end());
  run_ = other.run_;
  occupied_ = other.occupied_;
}

BurstLullSnapshot BurstLullAccumulator::snapshot() const {
  BurstLullSnapshot s;
  s.runs.reserve(runs_.size());
  for (const Run& r : runs_)
    s.runs.push_back({static_cast<std::uint64_t>(r.length), r.occupied});
  s.open_length = static_cast<std::uint64_t>(run_);
  s.open_occupied = occupied_;
  return s;
}

BurstLullAccumulator BurstLullAccumulator::from_snapshot(
    const BurstLullSnapshot& s) {
  BurstLullAccumulator acc;
  acc.runs_.reserve(s.runs.size());
  for (const auto& r : s.runs)
    acc.runs_.push_back({static_cast<std::size_t>(r.length), r.occupied});
  acc.run_ = static_cast<std::size_t>(s.open_length);
  acc.occupied_ = s.open_occupied;
  return acc;
}

}  // namespace wan::stats
