#include "src/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace wan::stats {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

double variance_population(std::span<const double> x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double geometric_mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : x) {
    if (!(v > 0.0))
      throw std::invalid_argument("geometric_mean: requires x > 0");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(x.size()));
}

double min_value(std::span<const double> x) {
  if (x.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  if (x.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(x.begin(), x.end());
}

double quantile(std::span<const double> x, double p) {
  if (x.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument("quantile: p must be in [0,1]");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = p * (static_cast<double>(sorted.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double f = h - std::floor(h);
  return sorted[lo] + f * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

Summary summarize(std::span<const double> x) {
  Summary s;
  s.n = x.size();
  if (x.empty()) return s;
  s.mean = mean(x);
  s.variance = variance(x);
  s.stddev = std::sqrt(s.variance);
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  auto q = [&sorted](double p) {
    const double h = p * (static_cast<double>(sorted.size()) - 1.0);
    const std::size_t lo = static_cast<std::size_t>(std::floor(h));
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double f = h - std::floor(h);
    return sorted[lo] + f * (sorted[hi] - sorted[lo]);
  };
  s.p25 = q(0.25);
  s.median = q(0.5);
  s.p75 = q(0.75);
  return s;
}

std::vector<double> interarrivals(std::span<const double> times) {
  std::vector<double> out;
  interarrivals_into(times, out);
  return out;
}

void interarrivals_into(std::span<const double> times,
                        std::vector<double>& out) {
  if (times.size() < 2) return;
  const std::size_t base = out.size();
  const std::size_t n = times.size() - 1;
  out.resize(base + n);
  double* dst = out.data() + base;
  // Adjacent differences as one vectorizable pass; the sortedness check
  // folds into a running min so no branch lives in the loop.
  double mind = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = times[i + 1] - times[i];
    dst[i] = d;
    mind = d < mind ? d : mind;
  }
  if (mind < 0.0) {
    out.resize(base);
    throw std::invalid_argument("interarrivals: times must be sorted");
  }
}

// MomentAccumulator is header-only (see descriptive.hpp) so layers below
// wan_stats can use it without a library cycle.

}  // namespace wan::stats
