// Heavy-tail estimation: the Hill estimator and log-log CCDF regression
// used to reproduce the paper's Pareto fits (TELNET interarrival body
// beta = 0.9 / tail 0.95; FTPDATA burst bytes 0.9 <= beta <= 1.4), and the
// Appendix-B tail-mass facts (an exponential's upper 0.5% tail always
// holds ~3% of the mass, a Pareto's far more).
#pragma once

#include <span>
#include <vector>

#include "src/stats/regression.hpp"

namespace wan::stats {

/// Hill estimator of the tail index beta from the top-k order statistics.
/// Returns the classic 1/mean-of-log-excesses estimate and its asymptotic
/// standard error beta/sqrt(k).
struct HillEstimate {
  double beta = 0.0;
  double stderr_beta = 0.0;
  std::size_t k = 0;
};

HillEstimate hill_estimator(std::span<const double> x, std::size_t k);

/// Pareto MLE with known location a: beta_hat = n / sum log(x_i / a).
double pareto_mle_shape(std::span<const double> x, double location);

/// Least-squares fit of the upper `tail_fraction` of the sample's CCDF on
/// log-log axes: log10 P[X > x] ~ intercept - beta * log10 x. Robust,
/// visualizable version of the Hill fit; matches the paper's "fits well to
/// a Pareto with shape ..." statements.
struct CcdfTailFit {
  double beta = 0.0;
  LinearFit fit;            ///< the underlying regression (slope = -beta)
  double x_tail_start = 0.0;///< smallest x included in the fit
};

CcdfTailFit ccdf_tail_fit(std::span<const double> x, double tail_fraction);

/// Fraction of the total mass (sum) contributed by the largest
/// `top_fraction` of the observations — the Fig. 9 "upper 0.5% of bursts
/// hold 30-60% of the bytes" computation.
double mass_in_top_fraction(std::span<const double> x, double top_fraction);

/// Full Fig. 9 curve: for fractions f in (0, max_fraction], the share of
/// total mass held by the largest f of observations, evaluated at each
/// order statistic.
std::vector<std::pair<double, double>> mass_curve(std::span<const double> x,
                                                  double max_fraction);

}  // namespace wan::stats
