// Index of dispersion for counts (IDC) and for intervals (IDI) — the
// burstiness measures of the pre-self-similarity literature (Fowler &
// Leland [18] characterized congestion with IDC curves). Section VII's
// point in these terms: for Poisson traffic IDC(t) is flat at 1; for
// long-range dependent traffic it grows without bound as t^(2H-1).
#pragma once

#include <span>
#include <vector>

namespace wan::stats {

struct DispersionPoint {
  double t = 0.0;      ///< window length (in base-bin units)
  double index = 0.0;  ///< IDC(t) or IDI(n)
};

/// IDC(t) = Var[N(t)] / E[N(t)] evaluated at log-spaced window sizes
/// (multiples of the base bin). `counts` is the base count series.
std::vector<DispersionPoint> idc_curve(std::span<const double> counts,
                                       std::size_t max_windows = 30);

/// IDI(n) = Var[sum of n consecutive interarrivals] /
///          (n * mean(interarrival)^2), at log-spaced n.
std::vector<DispersionPoint> idi_curve(std::span<const double> interarrivals,
                                       std::size_t max_windows = 30);

/// Log-log slope of the IDC curve's upper half; ~0 for Poisson,
/// ~2H-1 > 0 for LRD traffic.
double idc_slope(std::span<const DispersionPoint> curve);

}  // namespace wan::stats
