#include "src/stats/window.hpp"

#include <cmath>

namespace wan::stats {

namespace {

/// Grid index of time t on the absolute grid anchored at t0 — the same
/// floor((t - t0) / width) BinCountsAccumulator::add computes.
std::uint64_t grid_index(double t, double t0, double width) {
  return static_cast<std::uint64_t>((t - t0) / width);
}

}  // namespace

WindowedBinCounts::WindowedBinCounts(double t0, double bin,
                                     std::size_t window_bins)
    : t0_(t0), bin_(bin) {
  if (!(bin > 0.0))
    throw std::invalid_argument("WindowedBinCounts: bin must be > 0");
  if (window_bins == 0)
    throw std::invalid_argument("WindowedBinCounts: window_bins must be >= 1");
  ring_.assign(window_bins, 0.0);
}

void WindowedBinCounts::complete_bins_through(std::uint64_t bin_index) {
  // Close bins [completed_, bin_index): the open bin first (it may hold
  // events), then empty bins up to the new open bin. The ring write and
  // completed_ advance happen BEFORE the observer runs, so an observer
  // that reads back window_counts()/completed_bins() (the analyzer
  // emitting a report at a slide boundary) sees a window that includes
  // the bin it was just notified about.
  while (completed_ < bin_index) {
    const double closed = open_;
    ring_[static_cast<std::size_t>(completed_ % ring_.size())] = closed;
    ++completed_;
    open_ = 0.0;
    if (observer_) observer_(closed);
  }
}

void WindowedBinCounts::add(double t) {
  if (t < t0_)
    throw std::invalid_argument("WindowedBinCounts::add: time before t0");
  const std::uint64_t idx = grid_index(t, t0_, bin_);
  if (idx < completed_)
    throw std::invalid_argument(
        "WindowedBinCounts::add: time precedes a completed bin");
  if (idx > completed_) complete_bins_through(idx);
  open_ += 1.0;
  ++events_;
}

void WindowedBinCounts::advance_to(double t) {
  if (t < t0_) return;
  const std::uint64_t idx = grid_index(t, t0_, bin_);
  if (idx > completed_) complete_bins_through(idx);
}

void WindowedBinCounts::window_counts(std::vector<double>& out) const {
  out.clear();
  const std::uint64_t n64 =
      completed_ < ring_.size() ? completed_ : ring_.size();
  const auto n = static_cast<std::size_t>(n64);
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k)
    out.push_back(
        ring_[static_cast<std::size_t>((completed_ - n64 + k) % ring_.size())]);
}

BinCountsSnapshot WindowedBinCounts::snapshot() const {
  BinCountsSnapshot s;
  const std::uint64_t n =
      completed_ < ring_.size() ? completed_ : ring_.size();
  s.bin = bin_;
  s.t1 = t0_ + static_cast<double>(completed_) * bin_;
  s.t0 = t0_ + static_cast<double>(completed_ - n) * bin_;
  window_counts(s.counts);
  return s;
}

void WindowedBinCounts::merge(const WindowedBinCounts& other) {
  if (t0_ != other.t0_ || bin_ != other.bin_ ||
      ring_.size() != other.ring_.size())
    throw std::logic_error("WindowedBinCounts::merge: grid mismatch");
  if (completed_ != other.completed_)
    throw std::logic_error(
        "WindowedBinCounts::merge: windows not advanced to the same bin "
        "(advance_to a common time first)");
  const std::uint64_t n =
      completed_ < ring_.size() ? completed_ : ring_.size();
  for (std::uint64_t k = 0; k < n; ++k) {
    const auto slot =
        static_cast<std::size_t>((completed_ - n + k) % ring_.size());
    ring_[slot] += other.ring_[slot];
  }
  open_ += other.open_;
  events_ += other.events_;
}

WindowedPoissonTest::WindowedPoissonTest(const PoissonTestConfig& config,
                                         double t0,
                                         std::size_t window_intervals)
    : config_(config), t0_(t0) {
  if (!(config.interval_length > 0.0))
    throw std::invalid_argument(
        "WindowedPoissonTest: interval_length must be > 0");
  if (window_intervals == 0)
    throw std::invalid_argument(
        "WindowedPoissonTest: window_intervals must be >= 1");
  ring_.assign(window_intervals, IntervalOutcome{});
}

void WindowedPoissonTest::complete_through(std::uint64_t interval_index) {
  while (completed_ < interval_index) {
    const double s0 =
        t0_ + static_cast<double>(completed_) * config_.interval_length;
    ring_[static_cast<std::size_t>(completed_ % ring_.size())] =
        test_poisson_interval(open_times_, s0, config_);
    open_times_.clear();
    ++completed_;
  }
}

void WindowedPoissonTest::push(double t) {
  if (t < t0_)
    throw std::invalid_argument("WindowedPoissonTest::push: time before t0");
  const std::uint64_t idx = grid_index(t, t0_, config_.interval_length);
  if (idx < completed_)
    throw std::invalid_argument(
        "WindowedPoissonTest::push: time precedes a completed interval");
  if (idx > completed_) complete_through(idx);
  open_times_.push_back(t);
}

void WindowedPoissonTest::advance_to(double t) {
  if (t < t0_) return;
  const std::uint64_t idx = grid_index(t, t0_, config_.interval_length);
  if (idx > completed_) complete_through(idx);
}

PoissonTestResult WindowedPoissonTest::result() const {
  const std::uint64_t n64 =
      completed_ < ring_.size() ? completed_ : ring_.size();
  const auto n = static_cast<std::size_t>(n64);
  std::vector<IntervalOutcome> outcomes;
  outcomes.reserve(n);
  for (std::size_t k = 0; k < n; ++k)
    outcomes.push_back(
        ring_[static_cast<std::size_t>((completed_ - n64 + k) % ring_.size())]);
  return aggregate_poisson_intervals(std::move(outcomes), config_);
}

}  // namespace wan::stats
