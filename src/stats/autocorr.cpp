#include "src/stats/autocorr.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/fft/fft.hpp"

namespace wan::stats {

std::vector<double> autocorrelation(std::span<const double> x,
                                    std::size_t max_lag) {
  const std::size_t n = x.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: series too short");
  if (max_lag >= n) max_lag = n - 1;

  const double mean =
      std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);

  std::vector<double> acov(max_lag + 1, 0.0);
  // FFT path for long series / many lags; direct otherwise.
  const bool use_fft = n > 2048 && max_lag > 32;
  if (use_fft) {
    // Zero-pad to >= 2n so circular correlation equals linear correlation.
    std::vector<double> padded(fft::next_power_of_two(2 * n), 0.0);
    for (std::size_t i = 0; i < n; ++i) padded[i] = x[i] - mean;
    const auto circ = fft::circular_autocorrelation(padded);
    for (std::size_t k = 0; k <= max_lag; ++k)
      acov[k] = circ[k] / static_cast<double>(n);
  } else {
    for (std::size_t k = 0; k <= max_lag; ++k) {
      double s = 0.0;
      for (std::size_t t = 0; t + k < n; ++t)
        s += (x[t] - mean) * (x[t + k] - mean);
      acov[k] = s / static_cast<double>(n);
    }
  }

  std::vector<double> r(max_lag + 1, 0.0);
  if (acov[0] <= 0.0) {
    r[0] = 1.0;
    return r;  // constant series: define r(k>0) = 0
  }
  for (std::size_t k = 0; k <= max_lag; ++k) r[k] = acov[k] / acov[0];
  return r;
}

double lag1_autocorrelation(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const auto r = autocorrelation(x, 1);
  return r[1];
}

double lag1_threshold(std::size_t n) {
  return 1.96 / std::sqrt(static_cast<double>(n));
}

double lag1_bias(std::size_t n) {
  return n == 0 ? 0.0 : -1.0 / static_cast<double>(n);
}

bool passes_lag1_independence(std::span<const double> x) {
  if (x.size() < 2) return true;
  return std::abs(lag1_autocorrelation(x)) <= lag1_threshold(x.size());
}

}  // namespace wan::stats
