// Whittle's approximate maximum-likelihood estimator of the Hurst
// parameter of fractional Gaussian noise — the estimator the paper uses
// (via Beran's S code) to gauge self-similarity in Section VII.
//
// The estimator minimizes the discrete Whittle objective
//   Q(H) = (1/m) sum_j [ log f*(lambda_j; H) + I(lambda_j) / f*(lambda_j; H) ]
// over H in (1/2, 1), where I is the periodogram and f* the unit-scale
// fGn spectral density; the innovation scale is profiled out.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace wan::fft {
struct Periodogram;
}

namespace wan::stats {

/// Spectral density of fractional Gaussian noise at frequency
/// lambda in (0, pi], for unit sigma^2:
///   f(lambda; H) = 2 c_f (1 - cos lambda) sum_j |lambda + 2 pi j|^(-2H-1),
/// with c_f = sin(pi H) Gamma(2H + 1) / (2 pi). The infinite sum is
/// evaluated with a truncated series plus an integral tail correction
/// (accurate to ~1e-8 over H in [0.5, 0.99]).
double fgn_spectral_density(double lambda, double hurst);

struct WhittleResult {
  double hurst = 0.5;
  double stderr_hurst = 0.0;   ///< from the observed curvature of Q
  double ci_low = 0.0;         ///< 95% confidence interval
  double ci_high = 0.0;
  double scale = 0.0;          ///< profiled innovation scale sigma^2
  double objective = 0.0;      ///< Q at the minimum
};

/// Estimates H of an fGn model for the (stationary) series x by Whittle's
/// method. The series is centered internally. For very long series,
/// aggregate first (the estimator is asymptotically unaffected for exact
/// fGn, and aggregation keeps the periodogram affordable).
WhittleResult whittle_fgn(std::span<const double> x);

/// Warm-start options for the golden-section search inside the Whittle
/// fit. The search normally localizes the minimum with a 21-point coarse
/// grid before refining; a caller that already holds a nearby fit — the
/// adjacent level of an aggregation-stability sweep, or the previous
/// window of a re-fit stream — passes it as `hurst_hint` and the grid is
/// replaced by a 3-point bracket check around the hint. A hint that
/// fails to bracket a minimum (the new fit moved, or the hint was junk)
/// falls back to the full grid, so the result is the same minimizer
/// either way — the hint only changes how many density passes localizing
/// it costs (3 instead of 21).
struct WhittleOptions {
  std::optional<double> hurst_hint;
};

/// Same, but starting from a precomputed periodogram. `options` may
/// carry a warm-start hint from a neighboring fit.
WhittleResult whittle_fgn_from_periodogram(const fft::Periodogram& pg,
                                           const WhittleOptions& options = {});

/// Reference path that re-evaluates fgn_spectral_density at every
/// ordinate for every candidate H. whittle_fgn* instead evaluate the
/// smooth part of the density once per H on a coarse grid and
/// interpolate (~1e-9 relative error, far below the series truncation
/// already inside fgn_spectral_density), which drops the per-candidate
/// cost from m * 100 pow() calls to ~50k regardless of m. Kept for
/// accuracy cross-checks and the before/after perf row in
/// BENCH_perf.json.
WhittleResult whittle_fgn_direct_from_periodogram(const fft::Periodogram& pg);

/// Block-update Whittle refitter for a fixed periodogram frequency
/// grid — the amortized fit behind the sliding-window analyzer.
///
/// whittle_fgn_from_periodogram rebuilds the fGn density interpolation
/// grid for every candidate H of every call (~30 candidates through the
/// golden-section refinement, ~50k pow-equivalents each), which is the
/// right trade for one-shot fits but dominates a monitor that refits
/// the same frequency grid every slide. A rolling window's grid never
/// changes (the segment length is fixed), so this class evaluates the
/// density ONCE per candidate at construction: an H lattice of spacing
/// `h_step` over the full fit range, storing per candidate the
/// log-density sum and the reciprocal density at every ordinate. A
/// refit is then a lattice scan (m multiply-adds per candidate — the
/// periodogram is the only thing that changed), a parabolic refinement
/// between the winning candidate's neighbors, and one exact density
/// pass at the refined H for the reported scale and objective:
/// microseconds against the ~20-40 ms of a from-scratch fit.
///
/// Accuracy: the lattice-parabola minimizer lands within O(h_step^2) of
/// the golden-section minimizer (itself resolved to ~1e-5); at the
/// default spacing the observed difference is ~1e-5 in H — an order
/// below the estimator's own standard error at any realistic m.
/// `WhittleOptions::hurst_hint` restricts the scan to a neighborhood of
/// the previous fit (the 3-point-bracket idea on the lattice), falling
/// back to the full scan when the minimum escapes the neighborhood.
class WhittleRefitter {
 public:
  /// Builds the density tables for `frequency` (a periodogram grid:
  /// every lambda in (0, pi], at least 8 ordinates). Construction costs
  /// one density-grid pass per lattice candidate (~0.4 s at the default
  /// spacing) — pay it once, refit for the life of the stream.
  explicit WhittleRefitter(std::span<const double> frequency,
                           double h_step = 2e-3);
  ~WhittleRefitter();
  WhittleRefitter(WhittleRefitter&&) noexcept;
  WhittleRefitter& operator=(WhittleRefitter&&) noexcept;

  /// Fits H for a periodogram on the SAME frequency grid the refitter
  /// was built for (throws std::invalid_argument otherwise — the tables
  /// are grid-specific). All SegmentRing / SegmentRingCascade levels of
  /// one analyzer share a grid, so one refitter serves them all.
  WhittleResult fit(const fft::Periodogram& pg,
                    const WhittleOptions& options = {});

  /// Lattice candidates held (diagnostics / sizing).
  std::size_t candidates() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Unit-scale spectral density of fractional ARIMA(0, d, 0):
///   f(lambda; d) = |2 sin(lambda/2)|^{-2d} / (2 pi).
/// The alternative long-memory family Section VII-D mentions when traces
/// fail the fGn fit.
double farima_spectral_density(double lambda, double d);

/// Whittle estimation under the fARIMA(0,d,0) model. The returned
/// `hurst` is d + 1/2 (the LRD correspondence); `stderr_hurst`/CI are in
/// the same units.
WhittleResult whittle_farima(std::span<const double> x);
WhittleResult whittle_farima_from_periodogram(const fft::Periodogram& pg);

}  // namespace wan::stats
