// Beran's goodness-of-fit test for long-memory time-series models
// (Beran, JRSS-B 54(3):749-760, 1992), used by the paper to judge whether
// traces are consistent with fractional Gaussian noise.
//
// With I the periodogram and f the fitted spectral density, the statistic
//   T_n = A_n / B_n,  A_n = (2 pi / n) sum_j (I_j / f_j)^2,
//                     B_n = [ (2 pi / n) sum_j I_j / f_j ]^2 ... (per-n
// normalization cancels in the ratio), satisfies under the null
//   sqrt(n) (T_n - 1/pi) -> N(0, 2/pi^2).
#pragma once

#include <span>

#include "src/stats/whittle.hpp"

namespace wan::stats {

struct BeranResult {
  double statistic = 0.0;  ///< T_n
  double z = 0.0;          ///< standardized statistic
  double p_value = 0.0;    ///< two-sided
  bool consistent = false; ///< p >= alpha
  WhittleResult whittle;   ///< the fitted fGn model
};

/// Fits fGn by Whittle's method and runs Beran's goodness-of-fit test at
/// level alpha.
BeranResult beran_fgn_test(std::span<const double> x, double alpha = 0.05);

/// Same test starting from a precomputed periodogram of the series; n is
/// the series length the periodogram came from (it scales the statistic).
/// Lets callers running several spectral estimators on one series (the
/// Hurst battery, the Section-VII bench) compute the periodogram once —
/// the identical pg bits flow through, so results match beran_fgn_test
/// exactly.
BeranResult beran_fgn_test_from_periodogram(const fft::Periodogram& pg,
                                            std::size_t n,
                                            double alpha = 0.05);

}  // namespace wan::stats
