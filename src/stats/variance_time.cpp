#include "src/stats/variance_time.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/counting.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::stats {

std::vector<std::size_t> default_aggregation_levels(std::size_t n,
                                                    std::size_t per_decade,
                                                    std::size_t min_blocks) {
  std::vector<std::size_t> levels;
  if (n < 2 * min_blocks) return levels;
  const double m_max = static_cast<double>(n) / static_cast<double>(min_blocks);
  const double step = 1.0 / static_cast<double>(per_decade);
  double lg = 0.0;
  std::size_t last = 0;
  while (true) {
    const auto m = static_cast<std::size_t>(std::llround(std::pow(10.0, lg)));
    if (static_cast<double>(m) > m_max) break;
    if (m != last) {
      levels.push_back(m);
      last = m;
    }
    lg += step;
  }
  return levels;
}

VarianceTimePlot variance_time_plot(std::span<const double> counts,
                                    std::span<const std::size_t> levels) {
  if (counts.size() < 16)
    throw std::invalid_argument("variance_time_plot: series too short");

  std::vector<std::size_t> default_levels;
  if (levels.empty()) {
    default_levels = default_aggregation_levels(counts.size());
    levels = default_levels;
  }

  VarianceTimePlot plot;
  plot.base_mean = mean(counts);
  const double norm =
      plot.base_mean != 0.0 ? plot.base_mean * plot.base_mean : 1.0;

  for (std::size_t m : levels) {
    if (m == 0 || counts.size() / m < 2) continue;
    const auto agg = aggregate_mean(counts, m);
    VtPoint p;
    p.m = m;
    p.n_blocks = agg.size();
    p.variance = variance_population(agg);
    p.normalized = p.variance / norm;
    plot.points.push_back(p);
  }
  return plot;
}

LinearFit VarianceTimePlot::fit_slope(std::size_t m_lo, std::size_t m_hi,
                                      std::size_t min_blocks) const {
  std::vector<double> xs, ys;
  for (const VtPoint& p : points) {
    if (p.m < m_lo || p.m > m_hi || p.n_blocks < min_blocks) continue;
    if (p.normalized <= 0.0) continue;
    xs.push_back(std::log10(static_cast<double>(p.m)));
    ys.push_back(std::log10(p.normalized));
  }
  if (xs.size() < 2)
    throw std::invalid_argument("VarianceTimePlot: not enough points to fit");
  return linear_fit(xs, ys);
}

double VarianceTimePlot::hurst(std::size_t m_lo, std::size_t m_hi) const {
  return 1.0 + fit_slope(m_lo, m_hi).slope / 2.0;
}

}  // namespace wan::stats
