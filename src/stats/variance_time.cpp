#include "src/stats/variance_time.hpp"

#include <cmath>
#include <stdexcept>

#include "src/par/parallel.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::stats {

std::vector<std::size_t> default_aggregation_levels(std::size_t n,
                                                    std::size_t per_decade,
                                                    std::size_t min_blocks) {
  // Clamp to >= 2 blocks per level: variance_time_plot needs at least two
  // blocks to form a variance, so levels beyond n/2 would only be
  // generated to be skipped.
  const std::size_t eff_blocks = min_blocks < 2 ? 2 : min_blocks;
  std::vector<std::size_t> levels;
  if (n < 2 * eff_blocks) return levels;
  const double m_max =
      static_cast<double>(n) / static_cast<double>(eff_blocks);
  const double step = 1.0 / static_cast<double>(per_decade);
  double lg = 0.0;
  std::size_t last = 0;
  while (true) {
    const auto m = static_cast<std::size_t>(std::llround(std::pow(10.0, lg)));
    if (static_cast<double>(m) > m_max) break;
    if (m != last) {
      levels.push_back(m);
      last = m;
    }
    lg += step;
  }
  return levels;
}

namespace {

// One point of the plot via the shared single-pass level accumulator —
// the identical arithmetic VtAccumulator::push applies per level, so a
// streamed pass reproduces the span results bit-for-bit.
VtPoint vt_point_at_level(std::span<const double> counts, std::size_t m,
                          double norm) {
  VtLevelAccumulator acc(m);
  acc.push(counts);

  VtPoint p;
  p.m = m;
  p.n_blocks = acc.n_blocks();
  p.variance = acc.variance();
  p.normalized = p.variance / norm;
  return p;
}

}  // namespace

VarianceTimePlot variance_time_plot(std::span<const double> counts,
                                    std::span<const std::size_t> levels) {
  if (counts.size() < 16)
    throw std::invalid_argument("variance_time_plot: series too short");

  std::vector<std::size_t> default_levels;
  if (levels.empty()) {
    default_levels = default_aggregation_levels(counts.size());
    levels = default_levels;
  }

  VarianceTimePlot plot;
  plot.base_mean = mean(counts);
  const double norm =
      plot.base_mean != 0.0 ? plot.base_mean * plot.base_mean : 1.0;

  std::vector<std::size_t> usable;
  usable.reserve(levels.size());
  for (std::size_t m : levels) {
    if (m == 0 || counts.size() / m < 2) continue;
    usable.push_back(m);
  }

  // Levels are independent; each task reads the shared base series and
  // writes only its own slot, combined in level order.
  plot.points.resize(usable.size());
  par::parallel_for(0, usable.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      plot.points[i] = vt_point_at_level(counts, usable[i], norm);
  });
  return plot;
}

void VtLevelAccumulator::merge(const VtLevelAccumulator& other) {
  if (m_ != other.m_)
    throw std::logic_error("VtLevelAccumulator::merge: level mismatch");
  if (other.n_blocks_ == 0 && other.in_block_ == 0) return;  // other empty
  if (in_block_ != 0)
    throw std::logic_error(
        "VtLevelAccumulator::merge: left operand mid-block — merge only on "
        "block boundaries");
  if (n_blocks_ == 0) {
    *this = other;
    return;
  }
  if (other.n_blocks_ != 0) {
    // Chan's combination of the two blocks' Welford moments.
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_blocks_);
    const auto nb = static_cast<double>(other.n_blocks_);
    const double nt = na + nb;
    mean_ += delta * (nb / nt);
    m2_ += other.m2_ + delta * delta * (na * nb / nt);
    n_blocks_ += other.n_blocks_;
  }
  // Other's open block becomes ours (ours was empty).
  block_sum_ = other.block_sum_;
  in_block_ = other.in_block_;
}

VtAccumulator::VtAccumulator(std::span<const std::size_t> levels) {
  levels_.reserve(levels.size());
  for (std::size_t m : levels) {
    if (m == 0) continue;
    levels_.emplace_back(m);
  }
}

void VtAccumulator::merge(const VtAccumulator& other) {
  if (levels_.size() != other.levels_.size())
    throw std::logic_error("VtAccumulator::merge: level set mismatch");
  for (std::size_t i = 0; i < levels_.size(); ++i)
    levels_[i].merge(other.levels_[i]);
  sum_ += other.sum_;
  n_ += other.n_;
}

VtSnapshot VtAccumulator::snapshot() const {
  VtSnapshot s;
  s.levels.reserve(levels_.size());
  for (const VtLevelAccumulator& lvl : levels_)
    s.levels.push_back(lvl.snapshot());
  s.sum = sum_;
  s.n = static_cast<std::uint64_t>(n_);
  return s;
}

VtAccumulator VtAccumulator::from_snapshot(const VtSnapshot& s) {
  VtAccumulator acc(std::span<const std::size_t>{});
  acc.levels_.reserve(s.levels.size());
  for (const VtLevelSnapshot& lvl : s.levels)
    acc.levels_.push_back(VtLevelAccumulator::from_snapshot(lvl));
  acc.sum_ = s.sum;
  acc.n_ = static_cast<std::size_t>(s.n);
  return acc;
}

VarianceTimePlot VtAccumulator::finish() const {
  VarianceTimePlot plot;
  plot.base_mean = n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
  const double norm =
      plot.base_mean != 0.0 ? plot.base_mean * plot.base_mean : 1.0;
  for (const VtLevelAccumulator& lvl : levels_) {
    if (lvl.n_blocks() < 2) continue;  // the span version's usable filter
    VtPoint p;
    p.m = lvl.m();
    p.n_blocks = lvl.n_blocks();
    p.variance = lvl.variance();
    p.normalized = p.variance / norm;
    plot.points.push_back(p);
  }
  return plot;
}

LinearFit VarianceTimePlot::fit_slope(std::size_t m_lo, std::size_t m_hi,
                                      std::size_t min_blocks) const {
  std::vector<double> xs, ys;
  for (const VtPoint& p : points) {
    if (p.m < m_lo || p.m > m_hi || p.n_blocks < min_blocks) continue;
    if (p.normalized <= 0.0) continue;
    xs.push_back(std::log10(static_cast<double>(p.m)));
    ys.push_back(std::log10(p.normalized));
  }
  if (xs.size() < 2)
    throw std::invalid_argument("VarianceTimePlot: not enough points to fit");
  return linear_fit(xs, ys);
}

double VarianceTimePlot::hurst(std::size_t m_lo, std::size_t m_hi) const {
  return 1.0 + fit_slope(m_lo, m_hi).slope / 2.0;
}

}  // namespace wan::stats
