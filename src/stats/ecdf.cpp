#include "src/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (p <= 0.0) return sorted_.front();
  if (p >= 1.0) return sorted_.back();
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())) - 1.0);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::curve() const {
  std::vector<std::pair<double, double>> pts;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    pts.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return pts;
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("ks_distance: empty sample");
  std::vector<double> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    // Advance past ties on both sides together, else the ECDF gap is
    // evaluated mid-tie and spuriously inflated.
    const double v = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] == v) ++i;
    while (j < sb.size() && sb[j] == v) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

Histogram histogram(std::span<const double> x, double lo, double hi,
                    std::size_t bins) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("histogram: bad bounds or bins");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0.0);
  const double w = (hi - lo) / static_cast<double>(bins);
  for (double v : x) {
    auto idx = static_cast<long>((v - lo) / w);
    if (idx < 0) idx = 0;
    if (idx >= static_cast<long>(bins)) idx = static_cast<long>(bins) - 1;
    h.counts[static_cast<std::size_t>(idx)] += 1.0;
  }
  return h;
}

}  // namespace wan::stats
