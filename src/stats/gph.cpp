#include "src/stats/gph.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/fft/periodogram.hpp"

namespace wan::stats {

GphResult gph_estimator(std::span<const double> x, std::size_t m) {
  return gph_from_periodogram(fft::periodogram(x), x.size(), m);
}

GphResult gph_from_periodogram(const fft::Periodogram& pg, std::size_t n,
                               std::size_t m) {
  if (m == 0) {
    m = static_cast<std::size_t>(
        std::floor(std::sqrt(static_cast<double>(n))));
  }
  if (m < 4 || m > pg.frequency.size())
    throw std::invalid_argument("gph_estimator: bad frequency count");

  std::vector<double> lx, ly;
  lx.reserve(m);
  ly.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    if (pg.ordinate[j] <= 0.0) continue;  // degenerate ordinate
    const double s = 2.0 * std::sin(0.5 * pg.frequency[j]);
    lx.push_back(std::log(s * s));
    ly.push_back(std::log(pg.ordinate[j]));
  }
  if (lx.size() < 4)
    throw std::invalid_argument("gph_estimator: too few usable ordinates");

  GphResult out;
  out.fit = linear_fit(lx, ly);
  out.d = -out.fit.slope;
  out.hurst = out.d + 0.5;
  out.stderr_d = out.fit.slope_stderr;
  out.frequencies = lx.size();
  return out;
}

}  // namespace wan::stats
