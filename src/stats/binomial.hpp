// Binomial significance machinery for Appendix A: given that each
// interval-level test has a 5% false-negative rate, the number of passing
// intervals under the null is Binomial(N, 0.95); a trace is declared
// inconsistent with Poisson only when the observed pass count is itself
// improbably low. The sign test for consistently positive/negative lag-1
// correlation is Binomial(N, 0.5).
#pragma once

#include <cstdint>

namespace wan::stats {

/// log(n choose k), exact via lgamma.
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// P[X = k] for X ~ Binomial(n, p).
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// P[X <= k] (lower tail).
double binomial_cdf(std::uint64_t n, std::uint64_t k, double p);

/// P[X >= k] (upper tail).
double binomial_sf(std::uint64_t n, std::uint64_t k, double p);

/// Appendix A acceptance rule: with N intervals tested and K passing an
/// individual test whose null pass-probability is `p_pass` (0.95 for a 5%
/// level), the trace is *consistent* with the null unless
/// P[Binomial(N, p_pass) <= K] < alpha.
bool binomial_consistent(std::uint64_t n_tested, std::uint64_t n_passed,
                         double p_pass = 0.95, double alpha = 0.05);

/// Sign-bias verdict for lag-1 correlations: +1 if significantly more
/// positive than expected under fairness, -1 if significantly more
/// negative, 0 otherwise (each tail tested at alpha/2 as in the paper's
/// "< 2.5%" rule).
int sign_bias(std::uint64_t n_tested, std::uint64_t n_positive,
              double alpha = 0.05);

}  // namespace wan::stats
