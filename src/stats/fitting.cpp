#include "src/stats/fitting.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/stats/descriptive.hpp"

namespace wan::stats {

dist::Exponential fit_exponential(std::span<const double> x) {
  const double m = mean(x);
  if (!(m > 0.0))
    throw std::invalid_argument("fit_exponential: nonpositive mean");
  return dist::Exponential(m);
}

dist::LogNormal fit_lognormal(std::span<const double> x) {
  if (x.size() < 2)
    throw std::invalid_argument("fit_lognormal: need >= 2 samples");
  std::vector<double> logs;
  logs.reserve(x.size());
  for (double v : x) {
    if (!(v > 0.0)) throw std::invalid_argument("fit_lognormal: requires x > 0");
    logs.push_back(std::log(v));
  }
  const double mu = mean(logs);
  const double sigma = stddev(logs);
  if (!(sigma > 0.0))
    throw std::invalid_argument("fit_lognormal: degenerate sample");
  return dist::LogNormal(mu, sigma);
}

dist::LogExtreme fit_logextreme(std::span<const double> x) {
  if (x.size() < 2)
    throw std::invalid_argument("fit_logextreme: need >= 2 samples");
  std::vector<double> z;  // log2 of the data
  z.reserve(x.size());
  for (double v : x) {
    if (!(v > 0.0)) throw std::invalid_argument("fit_logextreme: requires x > 0");
    z.push_back(std::log2(v));
  }

  // Gumbel MLE: solve for scale b the fixed-point equation
  //   b = mean(z) - sum(z_i e^{-z_i/b}) / sum(e^{-z_i/b}),
  // then location a = -b log( mean(e^{-z_i/b}) ).
  const double zbar = mean(z);
  double b = stddev(z) * std::sqrt(6.0) / M_PI;  // moment start
  if (!(b > 0.0)) throw std::invalid_argument("fit_logextreme: degenerate sample");
  for (int iter = 0; iter < 200; ++iter) {
    double sw = 0.0, szw = 0.0;
    for (double zi : z) {
      const double w = std::exp(-zi / b);
      sw += w;
      szw += zi * w;
    }
    const double b_next = zbar - szw / sw;
    if (!(b_next > 0.0)) break;
    if (std::abs(b_next - b) < 1e-12 * (1.0 + b)) {
      b = b_next;
      break;
    }
    b = b_next;
  }
  double sw = 0.0;
  for (double zi : z) sw += std::exp(-zi / b);
  const double a = -b * std::log(sw / static_cast<double>(z.size()));
  return dist::LogExtreme(a, b);
}

}  // namespace wan::stats
