// Empirical CDF / CCDF evaluation and histogramming, for the many
// distribution comparisons in the paper (Figs. 3, 8, 9).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace wan::stats {

/// Empirical CDF of a fixed sample; O(log n) evaluation after an O(n log n)
/// build.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> samples);

  /// F_n(x) = (#samples <= x) / n.
  double operator()(double x) const;

  /// Empirical p-quantile (inverse ECDF, left-continuous).
  double quantile(double p) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// (x, F(x)) evaluation points at every distinct sample, convenient for
  /// plotting.
  std::vector<std::pair<double, double>> curve() const;

 private:
  std::vector<double> sorted_;
};

/// Kolmogorov-Smirnov distance between two samples' ECDFs (used in tests
/// to compare generated vs analytic laws).
double ks_distance(std::span<const double> a, std::span<const double> b);

/// One-sample KS distance between a sample and a CDF evaluated via a
/// callable.
template <typename Cdf>
double ks_distance_to(std::span<const double> sample, Cdf&& cdf) {
  Ecdf e(sample);
  double d = 0.0;
  const auto& s = e.sorted();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double fx = cdf(s[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(s.size());
    const double hi =
        static_cast<double>(i + 1) / static_cast<double>(s.size());
    d = std::max({d, std::abs(fx - lo), std::abs(fx - hi)});
  }
  return d;
}

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the end bins.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<double> counts;
  double bin_width() const {
    return (hi - lo) / static_cast<double>(counts.size());
  }
};

Histogram histogram(std::span<const double> x, double lo, double hi,
                    std::size_t bins);

}  // namespace wan::stats
