// Geweke & Porter-Hudak (1983) log-periodogram regression — the third
// classical Hurst estimator, complementing variance-time (time domain)
// and Whittle (parametric frequency domain). Regresses log I(lambda_j)
// on log(4 sin^2(lambda_j / 2)) over the lowest m ~ n^0.5 frequencies:
// slope = -d, H = d + 1/2.
#pragma once

#include <span>

#include "src/stats/regression.hpp"

namespace wan::fft {
struct Periodogram;
}

namespace wan::stats {

struct GphResult {
  double d = 0.0;            ///< memory parameter
  double hurst = 0.5;        ///< d + 1/2
  double stderr_d = 0.0;     ///< regression standard error of d
  std::size_t frequencies = 0;
  LinearFit fit;
};

/// Estimates d from the lowest `m` Fourier frequencies; m == 0 selects
/// the conventional floor(n^0.5).
GphResult gph_estimator(std::span<const double> x, std::size_t m = 0);

/// Same regression starting from a precomputed periodogram; n is the
/// series length (it sets the default m). Identical result to
/// gph_estimator when pg is the periodogram of the same series — the
/// shared-periodogram entry for callers running several spectral
/// estimators on one series.
GphResult gph_from_periodogram(const fft::Periodogram& pg, std::size_t n,
                               std::size_t m = 0);

}  // namespace wan::stats
