// Variance-time analysis (Section IV): smooth a count process by
// averaging over non-overlapping blocks of M observations and watch how
// the variance of the smoothed process decays with M.
//
// Poisson-like (short-range dependent) processes decay as 1/M: slope -1
// on a log-log plot. Long-range dependent processes decay as
// M^(2H - 2) with H > 1/2: slope shallower than -1. The paper normalizes
// variances by the squared mean of the base series so traces with
// different packet counts are comparable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/stats/regression.hpp"

namespace wan::stats {

/// One point of a variance-time plot.
struct VtPoint {
  std::size_t m = 1;          ///< aggregation level
  double variance = 0.0;      ///< Var of the block-mean process
  double normalized = 0.0;    ///< variance / mean(base)^2
  std::size_t n_blocks = 0;   ///< sample size at this level
};

struct VarianceTimePlot {
  std::vector<VtPoint> points;
  double base_mean = 0.0;     ///< mean of the unaggregated series

  /// OLS fit of log10(normalized variance) vs log10(M) over points with
  /// m in [m_lo, m_hi] and at least `min_blocks` blocks.
  LinearFit fit_slope(std::size_t m_lo = 1,
                      std::size_t m_hi = SIZE_MAX,
                      std::size_t min_blocks = 8) const;

  /// Hurst estimate from the fitted slope: H = 1 + slope/2.
  double hurst(std::size_t m_lo = 1, std::size_t m_hi = SIZE_MAX) const;
};

/// Default aggregation levels: ~`per_decade` log-spaced values of M from 1
/// up to n/min_blocks.
std::vector<std::size_t> default_aggregation_levels(std::size_t n,
                                                    std::size_t per_decade = 5,
                                                    std::size_t min_blocks = 8);

/// Computes the variance-time plot of a count series at the given levels
/// (or default levels if empty).
VarianceTimePlot variance_time_plot(std::span<const double> counts,
                                    std::span<const std::size_t> levels = {});

/// Serializable state of a VtLevelAccumulator.
struct VtLevelSnapshot {
  std::uint64_t m = 1;
  double block_sum = 0.0;
  std::uint64_t in_block = 0;
  std::uint64_t n_blocks = 0;
  double mean = 0.0;
  double m2 = 0.0;
};

/// One aggregation level of a streamed variance-time analysis: folds base
/// observations into blocks of m and maintains Welford moments of the
/// completed block means. Both variance_time_plot and VtAccumulator feed
/// every observation through this exact code, which is what makes the
/// streamed and in-memory plots bit-identical.
class VtLevelAccumulator {
 public:
  VtLevelAccumulator() = default;
  explicit VtLevelAccumulator(std::size_t m) : m_(m) {}

  void push(double x) {
    block_sum_ += x;
    if (++in_block_ == m_) {
      push_block_mean(block_sum_ / static_cast<double>(m_));
      block_sum_ = 0.0;
      in_block_ = 0;
    }
  }

  /// Column form: same element order, so bit-identical to push(x) per
  /// element — but the whole series streams through one level at a time,
  /// keeping the level's accumulator state in registers instead of
  /// round-tripping every level through memory per observation.
  void push(std::span<const double> xs) {
    for (double x : xs) push(x);
  }

  std::size_t m() const { return m_; }
  std::size_t n_blocks() const { return n_blocks_; }
  std::size_t in_block() const { return in_block_; }
  /// Population variance of the completed block means; 0 if no blocks.
  double variance() const {
    return n_blocks_ == 0 ? 0.0 : m2_ / static_cast<double>(n_blocks_);
  }

  /// Appends the other level's observations to this one, as if they had
  /// been pushed here next. Precondition (throws std::logic_error): the
  /// levels share m, and this level's open block is empty unless the
  /// other is — a level only merges cleanly on a block boundary, which
  /// the sharded pipeline guarantees by splitting the series at
  /// multiples of every level's m. Block-mean moments combine by Chan's
  /// formula: deterministic for a fixed operand pair, bit-equal to the
  /// serial pass only when one operand has no completed blocks.
  void merge(const VtLevelAccumulator& other);

  VtLevelSnapshot snapshot() const {
    return {static_cast<std::uint64_t>(m_),        block_sum_,
            static_cast<std::uint64_t>(in_block_),
            static_cast<std::uint64_t>(n_blocks_), mean_,
            m2_};
  }

  static VtLevelAccumulator from_snapshot(const VtLevelSnapshot& s) {
    VtLevelAccumulator acc(static_cast<std::size_t>(s.m));
    acc.block_sum_ = s.block_sum;
    acc.in_block_ = static_cast<std::size_t>(s.in_block);
    acc.n_blocks_ = static_cast<std::size_t>(s.n_blocks);
    acc.mean_ = s.mean;
    acc.m2_ = s.m2;
    return acc;
  }

 private:
  void push_block_mean(double bm) {
    ++n_blocks_;
    const double delta = bm - mean_;
    mean_ += delta / static_cast<double>(n_blocks_);
    m2_ += delta * (bm - mean_);
  }

  std::size_t m_ = 1;
  double block_sum_ = 0.0;
  std::size_t in_block_ = 0;
  std::size_t n_blocks_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Serializable state of a VtAccumulator.
struct VtSnapshot {
  std::vector<VtLevelSnapshot> levels;
  double sum = 0.0;
  std::uint64_t n = 0;
};

/// Multi-level streaming variance-time analysis: one pass over the count
/// series updates every aggregation level at once, in O(#levels) state.
/// finish() yields the same plot variance_time_plot produces on the full
/// series (levels with fewer than 2 completed blocks are dropped, exactly
/// like the span version's usable-level filter).
class VtAccumulator {
 public:
  /// Levels must be the final choice (e.g. default_aggregation_levels of
  /// the known series length) — a streamed pass cannot revisit data.
  explicit VtAccumulator(std::span<const std::size_t> levels);

  void push(double x) {
    sum_ += x;
    ++n_;
    for (VtLevelAccumulator& lvl : levels_) lvl.push(x);
  }

  /// Column form: bit-identical to push(x) per element. Elements stay
  /// outermost on purpose — per element the level updates are mutually
  /// independent, so the CPU overlaps all the levels' accumulator
  /// chains; a levels-outer orientation would serialize one Welford
  /// dependency chain per full pass and measures ~2.5x slower.
  void push(std::span<const double> xs) {
    for (double x : xs) push(x);
  }

  std::size_t count() const { return n_; }
  VarianceTimePlot finish() const;

  /// Merges level by level (same level sets required; every level's
  /// block-boundary precondition applies — see VtLevelAccumulator).
  /// The base sum is one floating-point add per merge, so it is exact
  /// only up to fold order: fix the reduction order (shard 0 <- 1 <- 2
  /// ...) for reproducible bits.
  void merge(const VtAccumulator& other);

  VtSnapshot snapshot() const;
  static VtAccumulator from_snapshot(const VtSnapshot& s);

 private:
  std::vector<VtLevelAccumulator> levels_;
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace wan::stats
