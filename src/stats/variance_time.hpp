// Variance-time analysis (Section IV): smooth a count process by
// averaging over non-overlapping blocks of M observations and watch how
// the variance of the smoothed process decays with M.
//
// Poisson-like (short-range dependent) processes decay as 1/M: slope -1
// on a log-log plot. Long-range dependent processes decay as
// M^(2H - 2) with H > 1/2: slope shallower than -1. The paper normalizes
// variances by the squared mean of the base series so traces with
// different packet counts are comparable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/stats/regression.hpp"

namespace wan::stats {

/// One point of a variance-time plot.
struct VtPoint {
  std::size_t m = 1;          ///< aggregation level
  double variance = 0.0;      ///< Var of the block-mean process
  double normalized = 0.0;    ///< variance / mean(base)^2
  std::size_t n_blocks = 0;   ///< sample size at this level
};

struct VarianceTimePlot {
  std::vector<VtPoint> points;
  double base_mean = 0.0;     ///< mean of the unaggregated series

  /// OLS fit of log10(normalized variance) vs log10(M) over points with
  /// m in [m_lo, m_hi] and at least `min_blocks` blocks.
  LinearFit fit_slope(std::size_t m_lo = 1,
                      std::size_t m_hi = SIZE_MAX,
                      std::size_t min_blocks = 8) const;

  /// Hurst estimate from the fitted slope: H = 1 + slope/2.
  double hurst(std::size_t m_lo = 1, std::size_t m_hi = SIZE_MAX) const;
};

/// Default aggregation levels: ~`per_decade` log-spaced values of M from 1
/// up to n/min_blocks.
std::vector<std::size_t> default_aggregation_levels(std::size_t n,
                                                    std::size_t per_decade = 5,
                                                    std::size_t min_blocks = 8);

/// Computes the variance-time plot of a count series at the given levels
/// (or default levels if empty).
VarianceTimePlot variance_time_plot(std::span<const double> counts,
                                    std::span<const std::size_t> levels = {});

}  // namespace wan::stats
