// Descriptive statistics used throughout the analyses: moments,
// geometric mean (Fig. 3's "fit #1" anchors an exponential to it),
// quantiles of samples.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace wan::stats {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> x);

/// Unbiased sample variance (n-1 denominator); 0 if n < 2.
double variance(std::span<const double> x);

/// Population variance (n denominator); 0 for empty input. The paper's
/// variance-time plots use the plain second moment of the smoothed
/// series, which this matches asymptotically.
double variance_population(std::span<const double> x);

double stddev(std::span<const double> x);

/// Geometric mean; requires all x > 0.
double geometric_mean(std::span<const double> x);

double min_value(std::span<const double> x);
double max_value(std::span<const double> x);

/// p-quantile (0 <= p <= 1) by linear interpolation of order statistics
/// (type-7, the R default). Copies and sorts internally.
double quantile(std::span<const double> x, double p);

/// Median = quantile(x, 0.5).
double median(std::span<const double> x);

/// Lightweight summary for report tables.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> x);

/// Differences t[i+1] - t[i]; the interarrival view of an arrival-time
/// sequence. times must be nondecreasing.
std::vector<double> interarrivals(std::span<const double> times);

/// Appends the interarrivals of `times` to `out` — the adjacent
/// differences as one vectorizable pass over the contiguous time
/// column (no allocation when out has capacity).
void interarrivals_into(std::span<const double> times,
                        std::vector<double>& out);

/// Streaming interarrival extraction: feed a nondecreasing time column
/// chunk by chunk; gaps() equals interarrivals() of the concatenated
/// times exactly (the same subtractions in the same order, including
/// the one bridging each chunk boundary).
class InterarrivalAccumulator {
 public:
  void push_times(std::span<const double> times) {
    if (times.empty()) return;
    if (has_last_) gaps_.push_back(times[0] - last_);
    interarrivals_into(times, gaps_);
    last_ = times[times.size() - 1];
    has_last_ = true;
  }

  const std::vector<double>& gaps() const { return gaps_; }
  /// Moves the gaps out; the accumulator keeps its boundary state.
  std::vector<double> take() { return std::move(gaps_); }

 private:
  std::vector<double> gaps_;
  double last_ = 0.0;
  bool has_last_ = false;
};

/// Serializable state of a MomentAccumulator — the complete Welford
/// tuple, so an accumulator round-trips through it bit-exactly.
struct MomentSnapshot {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Single-pass Welford moment accumulator for streamed data: mean,
/// variance, extrema in O(1) state. Welford's recurrence is numerically
/// stabler than the two-pass span functions but groups the floating-point
/// work differently, so its variance agrees with variance(span) only to
/// rounding — use it where the data cannot be held, not where bitwise
/// reproduction of the span results is required.
///
/// Header-only so the layers below wan_stats (the periodogram's
/// single-pass centering in wan_fft) can use it without a library cycle.
class MomentAccumulator {
 public:
  void push(double x) {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Column form: Welford per element in order (bit-identical to push(x)
  /// per element); the loop body is branch-light once min/max start.
  void push(std::span<const double> xs) {
    for (double x : xs) push(x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased (n-1) variance; 0 if n < 2.
  double variance_sample() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  /// Population (n) variance; 0 if empty.
  double variance_population() const {
    return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  /// sqrt of the sample variance.
  double stddev() const { return std::sqrt(variance_sample()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Folds another accumulator's state into this one (Chan's parallel
  /// Welford combination). The result is a pure function of the two
  /// operand states — merging the same pair always yields the same bits
  /// — so a reduction over shards is reproducible whenever the fold
  /// order is fixed (shard 0 <- 1 <- 2 ...). It is NOT bit-equal to
  /// having pushed the concatenated stream serially; agreement with
  /// that is to rounding, like everything Welford.
  void merge(const MomentAccumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    mean_ += delta * (nb / nt);
    m2_ += other.m2_ + delta * delta * (na * nb / nt);
    n_ += other.n_;
  }

  MomentSnapshot snapshot() const {
    return {static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
  }

  static MomentAccumulator from_snapshot(const MomentSnapshot& s) {
    MomentAccumulator acc;
    acc.n_ = static_cast<std::size_t>(s.n);
    acc.mean_ = s.mean;
    acc.m2_ = s.m2;
    acc.min_ = s.min;
    acc.max_ = s.max;
    return acc;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wan::stats
