#include "src/stats/beran.hpp"

#include <cmath>

#include "src/dist/special.hpp"
#include "src/fft/periodogram.hpp"

namespace wan::stats {

BeranResult beran_fgn_test(std::span<const double> x, double alpha) {
  return beran_fgn_test_from_periodogram(fft::periodogram(x), x.size(),
                                         alpha);
}

BeranResult beran_fgn_test_from_periodogram(const fft::Periodogram& pg,
                                            std::size_t n_obs, double alpha) {
  BeranResult r;
  r.whittle = whittle_fgn_from_periodogram(pg);

  const std::size_t m = pg.frequency.size();
  double sum_ratio = 0.0;
  double sum_ratio2 = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double f =
        r.whittle.scale * fgn_spectral_density(pg.frequency[j], r.whittle.hurst);
    const double ratio = pg.ordinate[j] / f;
    sum_ratio += ratio;
    sum_ratio2 += ratio * ratio;
  }
  // Beran's sums run over the full symmetric set of Fourier frequencies
  // (j = 1..n-1); the periodogram and fGn density are symmetric, so the
  // half-range sums are simply doubled. With that convention
  // E[T_n] -> 1/pi.
  const double n = static_cast<double>(n_obs);
  const double a_n = (2.0 * M_PI / n) * 2.0 * sum_ratio2;
  const double b = (2.0 * M_PI / n) * 2.0 * sum_ratio;
  const double b_n = b * b;
  r.statistic = a_n / b_n;

  r.z = std::sqrt(n) * (r.statistic - 1.0 / M_PI) /
        std::sqrt(2.0 / (M_PI * M_PI));
  r.p_value = 2.0 * (1.0 - dist::normal_cdf(std::abs(r.z)));
  r.consistent = r.p_value >= alpha;
  return r;
}

}  // namespace wan::stats
