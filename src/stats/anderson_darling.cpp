#include "src/stats/anderson_darling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/stats/descriptive.hpp"

namespace wan::stats {

double anderson_darling_from_sorted_probs(std::span<const double> p_sorted) {
  const std::size_t n = p_sorted.size();
  if (n < 2)
    throw std::invalid_argument("anderson_darling: need >= 2 observations");
  // Clamp away from {0,1} so the logs stay finite; ties at the boundary
  // otherwise produce -inf.
  const double eps = 1e-12;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = std::clamp(p_sorted[i], eps, 1.0 - eps);
    const double v = std::clamp(p_sorted[n - 1 - i], eps, 1.0 - eps);
    s += (2.0 * static_cast<double>(i) + 1.0) *
         (std::log(u) + std::log1p(-v));
  }
  const double dn = static_cast<double>(n);
  return -dn - s / dn;
}

double anderson_darling_uniform(std::span<const double> z) {
  std::vector<double> p(z.begin(), z.end());
  std::sort(p.begin(), p.end());
  return anderson_darling_from_sorted_probs(p);
}

namespace {

struct CritRow {
  double alpha;
  double value;
};

// D'Agostino & Stephens (1986), Table 4.14: upper-tail percentage points
// of the modified A^2 = A^2 (1 + 0.6/n) for the exponential null with
// estimated scale (origin known).
constexpr CritRow kExpCrit[] = {
    {0.25, 0.736}, {0.15, 0.916}, {0.10, 1.062},
    {0.05, 1.321}, {0.025, 1.591}, {0.01, 1.959},
};

// D'Agostino & Stephens (1986), Table 4.2: A^2 percentage points for a
// fully specified null (case 0); valid for n >= 5 without modification.
constexpr CritRow kCase0Crit[] = {
    {0.15, 1.610}, {0.10, 1.933}, {0.05, 2.492},
    {0.025, 3.070}, {0.01, 3.857},
};

double lookup(const CritRow* rows, std::size_t n, double alpha,
              const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(rows[i].alpha - alpha) < 1e-9) return rows[i].value;
  }
  throw std::invalid_argument(std::string("unsupported significance level for ") +
                              what);
}

}  // namespace

double ad_critical_exponential(double alpha) {
  return lookup(kExpCrit, std::size(kExpCrit), alpha, "exponential A^2");
}

double ad_critical_case0(double alpha) {
  return lookup(kCase0Crit, std::size(kCase0Crit), alpha, "case-0 A^2");
}

AdResult ad_test_exponential(std::span<const double> x, double alpha) {
  if (x.size() < 2)
    throw std::invalid_argument("ad_test_exponential: need >= 2 observations");
  const double m = mean(x);
  if (!(m > 0.0))
    throw std::invalid_argument("ad_test_exponential: nonpositive mean");

  std::vector<double> p(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    p[i] = -std::expm1(-x[i] / m);
  std::sort(p.begin(), p.end());

  AdResult r;
  r.a2 = anderson_darling_from_sorted_probs(p);
  r.a2_modified = r.a2 * (1.0 + 0.6 / static_cast<double>(x.size()));
  r.critical = ad_critical_exponential(alpha);
  r.pass = r.a2_modified <= r.critical;
  return r;
}

AdResult ad_test_uniform(std::span<const double> z, double alpha) {
  AdResult r;
  r.a2 = anderson_darling_uniform(z);
  r.a2_modified = r.a2;  // case 0 needs no modification for n >= 5
  r.critical = ad_critical_case0(alpha);
  r.pass = r.a2_modified <= r.critical;
  return r;
}

}  // namespace wan::stats
