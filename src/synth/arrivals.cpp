#include "src/synth/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::synth {

std::vector<double> poisson_arrivals(rng::Rng& rng, double rate, double t0,
                                     double t1) {
  if (!(t1 >= t0)) throw std::invalid_argument("poisson_arrivals: t1 < t0");
  std::vector<double> times;
  if (!(rate > 0.0)) return times;
  double t = t0;
  while (true) {
    t += -std::log(rng.uniform01_open_below()) / rate;
    if (t >= t1) break;
    times.push_back(t);
  }
  return times;
}

std::vector<double> poisson_arrivals_hourly(rng::Rng& rng,
                                            const DiurnalProfile& profile,
                                            double per_day, double t0,
                                            double t1) {
  if (!(t1 >= t0))
    throw std::invalid_argument("poisson_arrivals_hourly: t1 < t0");
  std::vector<double> times;
  // Walk hour-aligned segments; within each the rate is constant.
  double seg_start = t0;
  while (seg_start < t1) {
    const double next_hour =
        (std::floor(seg_start / 3600.0) + 1.0) * 3600.0;
    const double seg_end = std::min(next_hour, t1);
    const double rate = profile.rate_at(seg_start, per_day);
    auto seg = poisson_arrivals(rng, rate, seg_start, seg_end);
    times.insert(times.end(), seg.begin(), seg.end());
    seg_start = seg_end;
  }
  return times;
}

std::vector<double> renewal_arrivals(rng::Rng& rng,
                                     const dist::Distribution& gap_dist,
                                     double t0, double t1,
                                     std::size_t max_events) {
  if (!(t1 >= t0)) throw std::invalid_argument("renewal_arrivals: t1 < t0");
  std::vector<double> times;
  double t = t0;
  while (times.size() < max_events) {
    t += gap_dist.sample(rng);
    if (t >= t1) break;
    times.push_back(t);
  }
  return times;
}

std::vector<double> renewal_arrivals_count(rng::Rng& rng,
                                           const dist::Distribution& gap_dist,
                                           double t0, std::size_t n) {
  std::vector<double> times;
  times.reserve(n);
  double t = t0;
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(t);
    t += gap_dist.sample(rng);
  }
  return times;
}

std::vector<double> uniform_arrivals(rng::Rng& rng, double t0, double t1,
                                     std::size_t n) {
  if (!(t1 > t0)) throw std::invalid_argument("uniform_arrivals: t1 <= t0");
  std::vector<double> times(n);
  for (double& t : times) t = rng.uniform(t0, t1);
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace wan::synth
