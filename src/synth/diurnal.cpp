#include "src/synth/diurnal.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wan::synth {

DiurnalProfile::DiurnalProfile() {
  w_.fill(1.0 / 24.0);
}

DiurnalProfile::DiurnalProfile(const std::array<double, 24>& weights) {
  double total = 0.0;
  for (double v : weights) {
    if (v < 0.0)
      throw std::invalid_argument("DiurnalProfile: negative weight");
    total += v;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("DiurnalProfile: all-zero weights");
  for (std::size_t h = 0; h < 24; ++h) w_[h] = weights[h] / total;
}

double DiurnalProfile::weight(std::size_t hour) const {
  return w_[hour % 24];
}

double DiurnalProfile::rate_at(double t_seconds, double per_day) const {
  const double hour_of_day = std::fmod(t_seconds / 3600.0, 24.0);
  const auto h = static_cast<std::size_t>(hour_of_day) % 24;
  // weight = fraction of daily arrivals in this hour; the hour spans
  // 3600 s, so rate = per_day * weight / 3600.
  return per_day * w_[h] / 3600.0;
}

// The preset shapes below were read off Fig. 1 of the paper: relative
// hourly fractions of a day's connections (scale is arbitrary; the
// constructor normalizes).

DiurnalProfile DiurnalProfile::telnet() {
  // Office hours with a noon dip, near-dead overnight.
  return DiurnalProfile(std::array<double, 24>{
      0.8, 0.5, 0.4, 0.3, 0.3, 0.4,   // 0-5
      0.8, 1.5, 3.0, 5.5, 6.5, 6.0,   // 6-11 (morning ramp)
      4.5, 6.0, 6.8, 6.5, 6.0, 5.0,   // 12-17 (lunch dip at 12)
      3.0, 2.2, 1.8, 1.5, 1.2, 1.0}); // evening decay
}

DiurnalProfile DiurnalProfile::ftp() {
  // Like TELNET but with substantial evening renewal (users exploiting
  // lower delays).
  return DiurnalProfile(std::array<double, 24>{
      1.5, 1.0, 0.8, 0.6, 0.6, 0.8,
      1.2, 2.0, 3.5, 5.0, 5.8, 5.5,
      4.5, 5.5, 6.0, 5.8, 5.2, 4.5,
      3.8, 4.0, 4.2, 3.8, 3.0, 2.2});
}

DiurnalProfile DiurnalProfile::nntp() {
  // Nearly constant; slight early-morning dip.
  return DiurnalProfile(std::array<double, 24>{
      4.0, 3.8, 3.5, 3.2, 3.2, 3.5,
      3.8, 4.0, 4.3, 4.5, 4.5, 4.5,
      4.4, 4.5, 4.6, 4.5, 4.5, 4.4,
      4.3, 4.3, 4.2, 4.2, 4.1, 4.0});
}

DiurnalProfile DiurnalProfile::smtp_west() {
  // Morning bias (cross-country mail lands early Pacific time).
  return DiurnalProfile(std::array<double, 24>{
      1.5, 1.2, 1.0, 0.9, 1.0, 1.5,
      3.0, 5.0, 6.5, 7.0, 6.8, 6.0,
      5.0, 5.5, 5.5, 5.2, 4.8, 4.0,
      3.0, 2.5, 2.2, 2.0, 1.8, 1.6});
}

DiurnalProfile DiurnalProfile::smtp_east() {
  // Afternoon bias (the Bellcore shape).
  return DiurnalProfile(std::array<double, 24>{
      1.5, 1.2, 1.0, 0.9, 1.0, 1.2,
      2.0, 3.0, 4.0, 4.8, 5.2, 5.5,
      5.2, 6.0, 6.8, 7.0, 6.5, 5.5,
      4.2, 3.2, 2.6, 2.2, 2.0, 1.7});
}

DiurnalProfile DiurnalProfile::www() {
  return DiurnalProfile(std::array<double, 24>{
      1.0, 0.8, 0.6, 0.5, 0.5, 0.6,
      1.0, 2.0, 3.5, 5.0, 6.0, 6.0,
      5.0, 6.0, 6.5, 6.2, 5.5, 4.5,
      3.5, 3.0, 2.5, 2.0, 1.5, 1.2});
}

DiurnalProfile DiurnalProfile::flat() { return DiurnalProfile(); }

DiurnalProfile DiurnalProfile::for_protocol(trace::Protocol p) {
  using trace::Protocol;
  switch (p) {
    case Protocol::kTelnet:
    case Protocol::kRlogin:
    case Protocol::kX11:
      return telnet();
    case Protocol::kFtpCtrl:
    case Protocol::kFtpData:
      return ftp();
    case Protocol::kNntp:
      return nntp();
    case Protocol::kSmtp:
      return smtp_west();
    case Protocol::kWww:
      return www();
    default:
      return flat();
  }
}

}  // namespace wan::synth
