// TraceSynthesizer: assembles per-protocol sources into whole synthetic
// datasets shaped like the paper's Table I (SYN/FIN connection traces
// over days) and Table II (packet traces over an hour or two).
//
// These synthetic datasets stand in for the 24 real traces, which are not
// available; every analysis in the reproduction runs against them. The
// volume knobs default to LBL-like values; presets scale them to mimic
// the other sites.
#pragma once

#include <cstdint>
#include <string>

#include "src/synth/ftp_source.hpp"
#include "src/synth/machine_sources.hpp"
#include "src/synth/packet_fill.hpp"
#include "src/synth/telnet_source.hpp"
#include "src/synth/weathermap.hpp"
#include "src/synth/www_source.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::synth {

/// Configuration of a synthetic SYN/FIN connection dataset.
struct ConnDatasetConfig {
  std::string name = "SYNTH";
  double days = 1.0;
  std::uint64_t seed = 1;

  TelnetConfig telnet;                   ///< TELNET sessions
  TelnetConfig rlogin;                   ///< RLOGIN: same shape, lower rate
  FtpConfig ftp;
  SmtpConfig smtp;
  NntpConfig nntp;
  WwwConfig www;
  X11Config x11;

  /// The periodic weather-map job of [35]. The paper *removed* this
  /// traffic before its Poisson analysis; including it by default lets
  /// analyses reproduce that preprocessing with
  /// trace::remove_periodic_streams.
  bool include_weathermap = true;
  WeatherMapConfig weathermap;

  std::uint32_t n_local_hosts = 200;
  std::uint32_t n_remote_hosts = 3000;

  ConnDatasetConfig();  ///< sets rlogin defaults (rate, protocol tag)
};

/// Configuration of a synthetic packet-level dataset.
struct PacketDatasetConfig {
  std::string name = "SYNTH-PKT";
  double hours = 2.0;
  std::uint64_t seed = 1;
  bool tcp_only = true;   ///< Table II: first traces are TCP-only
  /// Overall volume multiplier (DEC WRL traces run much hotter than LBL).
  double volume_scale = 1.0;

  /// TELNET portion (FULL-TEL, TCPLIB interarrivals). Rate chosen so a
  /// 2 PM - 4 PM window yields ~270 connections, matching LBL PKT-2's 273.
  TelnetConfig telnet;
  FtpConfig ftp;
  SmtpConfig smtp;
  NntpConfig nntp;
  WwwConfig www;
  DnsConfig dns;
  MboneConfig mbone;
  PacketFillConfig fill;

  std::uint32_t n_local_hosts = 200;
  std::uint32_t n_remote_hosts = 3000;

  /// Start hour-of-day of the capture window (paper: 2 PM).
  double start_hour = 14.0;
};

/// Builds a full SYN/FIN connection trace (all protocols).
trace::ConnTrace synthesize_conn_trace(const ConnDatasetConfig& config);

/// Builds a packet-level trace. TELNET packets come from FULL-TEL;
/// bulk protocols are generated as connections then packetized;
/// DNS/MBone join when !tcp_only.
trace::PacketTrace synthesize_packet_trace(const PacketDatasetConfig& config);

/// Table-I-like presets.
ConnDatasetConfig lbl_conn_preset(std::string name, double days,
                                  std::uint64_t seed);
/// Lower-volume site (Bellcore/UK-like): ~1/5 the LBL rates.
ConnDatasetConfig small_site_conn_preset(std::string name, double days,
                                         std::uint64_t seed);

/// Table-II-like presets.
PacketDatasetConfig lbl_pkt_preset(std::string name, bool tcp_only,
                                   std::uint64_t seed);
PacketDatasetConfig dec_wrl_pkt_preset(std::string name, std::uint64_t seed);

}  // namespace wan::synth
