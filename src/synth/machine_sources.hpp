// Machine-initiated bulk-transfer sources — SMTP and NNTP (Section III).
//
// Both deviate from Poisson for mechanistic reasons the paper names:
// SMTP is perturbed by mailing-list explosions (one connection
// immediately following another) and timers; NNTP floods news between
// peers (a received article immediately spawns offers to other peers)
// and runs timer-driven transfers. The generators below build those
// mechanisms in, so the non-Poisson verdicts of Fig. 2 *emerge* rather
// than being labeled.
#pragma once

#include <cstdint>

#include "src/dist/lognormal.hpp"
#include "src/synth/arrivals.hpp"
#include "src/synth/host_model.hpp"
#include "src/trace/conn_trace.hpp"

namespace wan::synth {

struct SmtpConfig {
  double conns_per_day = 9000.0;
  DiurnalProfile profile = DiurnalProfile::smtp_west();
  /// Fraction of the volume delivered as mailing-list explosion batches.
  double batch_fraction = 0.35;
  double batch_mean_size = 5.0;    ///< geometric mean of batch sizes
  double batch_gap_mean = 4.0;     ///< seconds between batch members
  double duration_log_mean = 1.1;  ///< ln seconds (~3 s)
  double duration_log_sd = 0.8;
  double bytes_log_mean = 7.3;     ///< ln bytes (~1.5 KB)
  double bytes_log_sd = 1.2;
};

class SmtpSource {
 public:
  explicit SmtpSource(SmtpConfig config);
  void generate(rng::Rng& rng, double t0, double t1, const HostModel& hosts,
                trace::ConnTrace& out) const;
  const SmtpConfig& config() const { return config_; }

 private:
  void emit(rng::Rng& rng, double start, const HostModel& hosts,
            trace::ConnTrace& out) const;

  SmtpConfig config_;
  dist::LogNormal duration_dist_;
  dist::LogNormal bytes_dist_;
};

struct NntpConfig {
  double conns_per_day = 11000.0;
  DiurnalProfile profile = DiurnalProfile::nntp();
  /// Timer-driven component: n_peers peers each connect every
  /// timer_period seconds (with +-jitter), exchanging batched news.
  std::size_t n_peers = 6;
  double timer_period = 600.0;
  double timer_jitter = 45.0;
  /// Flooding component: each news batch spawns a cascade of connections
  /// (geometric size), spaced by per-hop transfer delays.
  double cascade_mean_size = 4.0;
  double cascade_gap_log_mean = 2.0;  ///< ln seconds (~7 s)
  double cascade_gap_log_sd = 0.8;
  double duration_log_mean = 2.3;     ///< ln seconds (~10 s)
  double duration_log_sd = 1.0;
  double bytes_log_mean = 9.2;        ///< ln bytes (~10 KB)
  double bytes_log_sd = 1.5;
};

class NntpSource {
 public:
  explicit NntpSource(NntpConfig config);
  void generate(rng::Rng& rng, double t0, double t1, const HostModel& hosts,
                trace::ConnTrace& out) const;
  const NntpConfig& config() const { return config_; }

 private:
  void emit(rng::Rng& rng, double start, const HostModel& hosts,
            trace::ConnTrace& out) const;

  NntpConfig config_;
  dist::LogNormal cascade_gap_dist_;
  dist::LogNormal duration_dist_;
  dist::LogNormal bytes_dist_;
};

/// Geometric variate with the given mean (>= 1): number of trials until
/// first success, mean = 1/p.
std::size_t sample_geometric(rng::Rng& rng, double mean);

}  // namespace wan::synth
