#include "src/synth/telnet_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dist/exponential.hpp"
#include "src/dist/zipf.hpp"

namespace wan::synth {

TelnetSource::TelnetSource(TelnetConfig config)
    : config_(config),
      tcplib_dist_(config.tcplib),
      size_dist_(dist::LogNormal::from_log2(config.size_log2_mean,
                                            config.size_log2_sd)) {
  if (!(config_.exp_mean > 0.0))
    throw std::invalid_argument("TelnetConfig: exp_mean must be > 0");
  if (config_.min_packets < 2)
    throw std::invalid_argument("TelnetConfig: min_packets must be >= 2");
}

std::size_t TelnetSource::sample_size_packets(rng::Rng& rng) const {
  const double raw = size_dist_.sample(rng);
  const auto n = static_cast<std::size_t>(std::llround(raw));
  return std::clamp(n, config_.min_packets, config_.max_packets);
}

std::vector<double> TelnetSource::generate_packet_times(
    rng::Rng& rng, double start, std::size_t n, InterarrivalScheme scheme,
    double duration) const {
  switch (scheme) {
    case InterarrivalScheme::kTcplib:
      return renewal_arrivals_count(rng, tcplib_dist_, start, n);
    case InterarrivalScheme::kExponential: {
      const dist::Exponential exp_dist(config_.exp_mean);
      return renewal_arrivals_count(rng, exp_dist, start, n);
    }
    case InterarrivalScheme::kVarExp: {
      if (!(duration > 0.0)) duration = config_.exp_mean * static_cast<double>(n);
      return uniform_arrivals(rng, start, start + duration, n);
    }
  }
  return {};
}

std::vector<TelnetConnection> TelnetSource::generate_connections(
    rng::Rng& rng, double t0, double t1, InterarrivalScheme scheme) const {
  const auto starts =
      poisson_arrivals_hourly(rng, config_.profile, config_.conns_per_day,
                              t0, t1);
  std::vector<TelnetConnection> conns;
  conns.reserve(starts.size());
  for (double s : starts) {
    TelnetConnection c;
    c.start = s;
    const std::size_t n = sample_size_packets(rng);
    c.packet_times = generate_packet_times(rng, s, n, scheme);
    conns.push_back(std::move(c));
  }
  return conns;
}

std::vector<TelnetConnection> TelnetSource::generate_from_skeletons(
    rng::Rng& rng, const std::vector<ConnSkeleton>& skeletons,
    InterarrivalScheme scheme) const {
  std::vector<TelnetConnection> conns;
  conns.reserve(skeletons.size());
  for (const ConnSkeleton& sk : skeletons) {
    TelnetConnection c;
    c.start = sk.start;
    c.packet_times = generate_packet_times(rng, sk.start, sk.packets, scheme,
                                           sk.duration);
    conns.push_back(std::move(c));
  }
  return conns;
}

void TelnetSource::append_originator_packets(const TelnetConnection& c,
                                             double t0, double t1,
                                             std::uint32_t conn_id,
                                             trace::PacketTrace& out) const {
  for (std::size_t i = 0; i < c.packet_times.size(); ++i) {
    const double t = c.packet_times[i];
    if (t < t0 || t >= t1) continue;
    trace::PacketRecord r;
    r.time = t;
    r.protocol = config_.protocol;
    r.conn_id = conn_id;
    r.from_originator = true;
    // Mostly single keystrokes; occasional line-mode packets. The blend
    // averages ~1.6 bytes/packet, matching Section V's 139k bytes over
    // 85k packets.
    r.payload_bytes = static_cast<std::uint16_t>(1 + (i % 8 == 7 ? 5 : 0));
    out.add(r);
  }
}

void TelnetSource::append_responder_packets(rng::Rng& rng,
                                            const TelnetConnection& c,
                                            double t0, double t1,
                                            std::uint32_t conn_id,
                                            const ResponderConfig& responder,
                                            trace::PacketTrace& out) const {
  const dist::LogNormal echo_delay(responder.echo_delay_log_mean,
                                   responder.echo_delay_log_sd);
  for (double t : c.packet_times) {
    if (t < t0 || t >= t1) continue;
    // Echo of the keystroke.
    trace::PacketRecord echo;
    echo.time = t + echo_delay.sample(rng);
    echo.protocol = config_.protocol;
    echo.conn_id = conn_id;
    echo.from_originator = false;
    echo.payload_bytes = static_cast<std::uint16_t>(1 + rng.uniform_int(4));
    if (echo.time < t1) out.add(echo);

    // Occasional command output: a run of full segments.
    if (rng.bernoulli(responder.output_probability)) {
      const std::size_t n =
          1 + std::min<std::size_t>(dist::DiscretePareto{}.sample(rng),
                                    responder.max_output_packets - 1);
      double ot = echo.time + 0.05;
      for (std::size_t k = 0; k < n && ot < t1; ++k) {
        trace::PacketRecord outp;
        outp.time = ot;
        outp.protocol = config_.protocol;
        outp.conn_id = conn_id;
        outp.from_originator = false;
        outp.payload_bytes = responder.output_bytes;
        out.add(outp);
        ot += responder.output_gap * (0.5 + rng.uniform01());
      }
    }
  }
}

trace::PacketTrace TelnetSource::to_packet_trace(
    const std::vector<TelnetConnection>& conns, double t0, double t1,
    std::uint32_t first_conn_id) const {
  trace::PacketTrace out("telnet-synth", t0, t1);
  std::uint32_t id = first_conn_id;
  for (const TelnetConnection& c : conns) {
    append_originator_packets(c, t0, t1, id, out);
    ++id;
  }
  out.sort_by_time();
  return out;
}

trace::PacketTrace TelnetSource::to_packet_trace_with_responder(
    rng::Rng& rng, const std::vector<TelnetConnection>& conns, double t0,
    double t1, const ResponderConfig& responder,
    std::uint32_t first_conn_id) const {
  trace::PacketTrace out = to_packet_trace(conns, t0, t1, first_conn_id);
  std::uint32_t id = first_conn_id;
  for (const TelnetConnection& c : conns) {
    append_responder_packets(rng, c, t0, t1, id, responder, out);
    ++id;
  }
  out.sort_by_time();
  return out;
}

void TelnetSource::append_conn_records(
    rng::Rng& rng, const std::vector<TelnetConnection>& conns,
    const HostModel& hosts, trace::ConnTrace& out) const {
  for (const TelnetConnection& c : conns) {
    trace::ConnRecord r;
    r.start = c.start;
    r.duration = c.duration();
    r.protocol = config_.protocol;
    r.src_host = hosts.sample_local(rng);
    r.dst_host = hosts.sample_remote(rng);
    const auto pkts = static_cast<double>(c.packet_times.size());
    r.bytes_orig = static_cast<std::uint64_t>(pkts * 1.6);
    // The responder echoes keystrokes and adds command output.
    r.bytes_resp = static_cast<std::uint64_t>(
        pkts * (10.0 + 40.0 * rng.uniform01()));
    out.add(r);
  }
}

std::vector<ConnSkeleton> TelnetSource::skeletons_of(
    const std::vector<TelnetConnection>& conns) {
  std::vector<ConnSkeleton> sk;
  sk.reserve(conns.size());
  for (const TelnetConnection& c : conns) {
    sk.push_back({c.start, c.packet_times.size(), c.duration()});
  }
  return sk;
}

}  // namespace wan::synth
