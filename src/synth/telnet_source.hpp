// TELNET traffic synthesis — Sections IV & V.
//
// Connection arrivals: Poisson with fixed hourly rates (Section III).
// Connection sizes in packets: log2-normal, mean log2(100), sd 2.24
// (Section V). Packet interarrivals within a connection: one of the
// paper's three schemes —
//   TCPLIB  : i.i.d. draws from the (reconstructed) Tcplib law;
//   EXP     : i.i.d. exponential, mean 1.1 s;
//   VAR-EXP : the connection's packets scattered uniformly over its
//             observed duration (exponential with per-connection rate).
#pragma once

#include <cstdint>
#include <vector>

#include "src/dist/lognormal.hpp"
#include "src/dist/tcplib.hpp"
#include "src/synth/arrivals.hpp"
#include "src/synth/host_model.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::synth {

/// Section IV's packet interarrival schemes.
enum class InterarrivalScheme { kTcplib, kExponential, kVarExp };

/// Skeleton of a connection: what the paper keeps fixed when comparing
/// schemes (start time and size, plus the observed duration for VAR-EXP).
struct ConnSkeleton {
  double start = 0.0;
  std::size_t packets = 0;
  double duration = 0.0;  ///< only used by kVarExp
};

/// The TELNET *responder* side — the paper models only the originator
/// and names the responder as open work ("Modeling the TELNET responder
/// remains to be done", Section VIII). This extension supplies a simple
/// mechanistic responder: each originator packet is echoed after a small
/// network delay, and some keystrokes (command completions) trigger a
/// burst of output packets.
struct ResponderConfig {
  double echo_delay_log_mean = -2.8;  ///< ln seconds (~60 ms RTT-ish)
  double echo_delay_log_sd = 0.5;
  double output_probability = 0.15;   ///< keystrokes that finish a command
  double output_gap = 0.03;           ///< seconds between output packets
  std::size_t max_output_packets = 64;
  std::uint16_t output_bytes = 512;   ///< full output segments
};

struct TelnetConfig {
  double conns_per_day = 3000.0;
  DiurnalProfile profile = DiurnalProfile::telnet();
  dist::TcplibParams tcplib = dist::TcplibParams::paper();
  double exp_mean = 1.1;          ///< the paper's matched exponential mean
  double size_log2_mean = 6.6438561897747244;  ///< log2(100)
  double size_log2_sd = 2.24;
  std::size_t min_packets = 2;
  std::size_t max_packets = 20000; ///< clip the log-normal's far tail
  trace::Protocol protocol = trace::Protocol::kTelnet;
};

/// One synthesized TELNET connection: originator data-packet times.
struct TelnetConnection {
  double start = 0.0;
  std::vector<double> packet_times;
  double duration() const {
    return packet_times.empty() ? 0.0 : packet_times.back() - start;
  }
};

/// Generator for TELNET-like (also RLOGIN-like) traffic.
class TelnetSource {
 public:
  explicit TelnetSource(TelnetConfig config);

  const TelnetConfig& config() const { return config_; }

  /// Draws a connection size in packets (clamped log2-normal).
  std::size_t sample_size_packets(rng::Rng& rng) const;

  /// Packet times for one connection of n packets starting at `start`.
  /// For kVarExp, `duration` bounds the uniform scatter.
  std::vector<double> generate_packet_times(rng::Rng& rng, double start,
                                            std::size_t n,
                                            InterarrivalScheme scheme,
                                            double duration = 0.0) const;

  /// Full FULL-TEL synthesis over [t0, t1): Poisson-hourly connection
  /// arrivals, log-normal sizes, per-scheme packet times.
  std::vector<TelnetConnection> generate_connections(
      rng::Rng& rng, double t0, double t1,
      InterarrivalScheme scheme = InterarrivalScheme::kTcplib) const;

  /// Re-synthesis from fixed skeletons (the Fig. 5 comparison): same
  /// starts and sizes, scheme-specific timing.
  std::vector<TelnetConnection> generate_from_skeletons(
      rng::Rng& rng, const std::vector<ConnSkeleton>& skeletons,
      InterarrivalScheme scheme) const;

  /// Renders connections into a PacketTrace (originator data packets,
  /// 1-4 byte payloads), assigning sequential connection ids starting at
  /// `first_conn_id`.
  trace::PacketTrace to_packet_trace(
      const std::vector<TelnetConnection>& conns, double t0, double t1,
      std::uint32_t first_conn_id = 1) const;

  /// Both directions: originator packets plus the responder model
  /// (echoes and command-output bursts).
  trace::PacketTrace to_packet_trace_with_responder(
      rng::Rng& rng, const std::vector<TelnetConnection>& conns, double t0,
      double t1, const ResponderConfig& responder = ResponderConfig{},
      std::uint32_t first_conn_id = 1) const;

  /// Appends one connection's originator data packets (in-window only,
  /// payload keyed to the keystroke index) without sorting — the
  /// per-connection unit both to_packet_trace and the streaming
  /// synthesizer are built on. Consumes no randomness.
  void append_originator_packets(const TelnetConnection& c, double t0,
                                 double t1, std::uint32_t conn_id,
                                 trace::PacketTrace& out) const;

  /// Appends one connection's responder packets (echoes + command-output
  /// bursts), consuming rng exactly as to_packet_trace_with_responder's
  /// per-connection loop does — so a caller replaying connections in
  /// order off a saved rng state reproduces the batch packets.
  void append_responder_packets(rng::Rng& rng, const TelnetConnection& c,
                                double t0, double t1, std::uint32_t conn_id,
                                const ResponderConfig& responder,
                                trace::PacketTrace& out) const;

  /// Appends SYN/FIN-style connection records to `out` (for ConnTrace
  /// synthesis). Bytes are ~1.6 per originator packet (Section V notes
  /// 85k packets carried 139k bytes).
  void append_conn_records(rng::Rng& rng,
                           const std::vector<TelnetConnection>& conns,
                           const HostModel& hosts,
                           trace::ConnTrace& out) const;

  /// Extracts skeletons from connections (the "trace measurement" step).
  static std::vector<ConnSkeleton> skeletons_of(
      const std::vector<TelnetConnection>& conns);

 private:
  TelnetConfig config_;
  dist::TcplibTelnetInterarrival tcplib_dist_;
  dist::LogNormal size_dist_;
};

}  // namespace wan::synth
