// StreamingPacketSynthesizer: synthesize_packet_trace as a pull source.
//
// The batch synthesizer materializes every packet, clips, and sorts —
// peak memory proportional to the trace length. This source emits the
// *identical* record sequence in time order, chunk by chunk, holding
// only cheap per-connection skeletons (arrival times, RNG checkpoints)
// plus the packets of currently active connections:
//
//  * a cheap eager phase derives the same per-source child RNG streams
//    as the batch path and generates connection skeletons — arrival
//    times, bulk connection records, per-connection RNG state — all
//    O(#connections), not O(#packets);
//  * each source then lazily "activates" connections as the merge
//    frontier reaches their start time, regenerating their packets into
//    a per-source ordered buffer (a min-heap keyed by (time, sequence));
//  * a record is emitted only once every source's frontier has passed
//    it, and ties are broken by source rank then sequence — the same
//    order the batch path's stable sort of the concatenated sources
//    produces.
//
// Determinism contract: collect(StreamingPacketSynthesizer(cfg)) equals
// synthesize_packet_trace(cfg) record for record (pinned by the
// `stream`-labeled tests). This holds because every source's randomness
// is position-independent — telnet connections replay from saved RNG
// checkpoints, bulk connections draw from bulk_conn_rng(stream_key,
// conn_id), DNS/MBone walk their own child streams in arrival order.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/stream/chunk.hpp"
#include "src/synth/synthesizer.hpp"

namespace wan::synth {

/// One shard of a sharded synthesis: emit only the records whose conn
/// id lands in shard `index` of `count` under stream::shard_of — the
/// same assignment the analysis-side ShardRouter applies, so shard s's
/// synthesizer produces exactly the sub-stream the router would have
/// sent to shard s. The default (count 1) is the whole trace.
struct SynthShard {
  std::size_t index = 0;
  std::size_t count = 1;
};

class StreamingPacketSynthesizer final : public stream::PacketChunkSource {
 public:
  /// One traffic source as a lazily-activated, time-ordered buffer
  /// (defined in the .cpp; public so source implementations can subclass).
  class Generator;

  /// Sharding determinism: every shard re-derives the identical child
  /// RNG streams and connection skeletons (arrival times, conn-id
  /// numbering — all O(#connections) eager work is replicated), then
  /// activates only its own connections. Bulk connections — the volume
  /// driver — re-seed per-connection RNG, so non-owned ones are skipped
  /// outright; telnet/DNS/MBone walk shared sequential streams, so
  /// non-owned units are generated and discarded to keep the stream
  /// position exact. Shard membership is a pure function of (conn id,
  /// count): shard 3 of 8 emits the same records at any thread count,
  /// and the shards' union is the serial record set exactly.
  explicit StreamingPacketSynthesizer(
      PacketDatasetConfig config,
      std::size_t chunk_size = stream::kDefaultChunkSize,
      SynthShard shard = {});
  ~StreamingPacketSynthesizer() override;

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  /// Re-derives every per-source stream from the config; the replay is
  /// identical to the first pass.
  void reset() override;

 private:
  void build();

  PacketDatasetConfig config_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
  SynthShard shard_;
  /// In merge-rank order: telnet, bulk, dns, mbone (the batch
  /// concatenation order, which fixes tie-breaking).
  std::vector<std::unique_ptr<Generator>> gens_;
};

}  // namespace wan::synth
