#include "src/synth/www_source.hpp"

#include <algorithm>
#include <cmath>

#include "src/dist/zipf.hpp"
#include "src/synth/machine_sources.hpp"  // sample_geometric

namespace wan::synth {

// ----------------------------------------------------------------- WWW

WwwSource::WwwSource(WwwConfig config)
    : config_(config),
      think_dist_(config.think_location, config.think_shape,
                  config.think_cap),
      duration_dist_(config.duration_log_mean, config.duration_log_sd),
      bytes_dist_(config.bytes_log_mean, config.bytes_log_sd) {}

void WwwSource::generate(rng::Rng& rng, double t0, double t1,
                         const HostModel& hosts,
                         trace::ConnTrace& out) const {
  const auto sessions = poisson_arrivals_hourly(
      rng, config_.profile, config_.sessions_per_day, t0, t1);
  for (double session_start : sessions) {
    const std::uint32_t src = hosts.sample_local(rng);
    double cursor = session_start;
    const std::size_t docs =
        sample_geometric(rng, config_.docs_per_session_mean);
    for (std::size_t d = 0; d < docs && cursor < t1; ++d) {
      if (d > 0) cursor += think_dist_.sample(rng);
      const std::uint32_t dst = hosts.sample_remote(rng);
      const std::size_t objects =
          sample_geometric(rng, config_.objects_per_doc_mean);
      double t = cursor;
      for (std::size_t o = 0; o < objects && t < t1; ++o) {
        trace::ConnRecord r;
        r.start = t;
        r.duration = duration_dist_.sample(rng);
        r.protocol = trace::Protocol::kWww;
        r.src_host = src;
        r.dst_host = dst;
        r.bytes_orig = 150 + rng.uniform_int(250);  // request header
        r.bytes_resp = static_cast<std::uint64_t>(bytes_dist_.sample(rng));
        out.add(r);
        t += -std::log(rng.uniform01_open_below()) * config_.object_gap_mean;
      }
      cursor = t;
    }
  }
}

// ----------------------------------------------------------------- X11

X11Source::X11Source(X11Config config)
    : config_(config),
      gap_dist_(config.gap_location, config.gap_shape, config.gap_cap),
      duration_dist_(config.duration_log_mean, config.duration_log_sd),
      bytes_dist_(config.bytes_log_mean, config.bytes_log_sd) {}

void X11Source::generate(rng::Rng& rng, double t0, double t1,
                         const HostModel& hosts,
                         trace::ConnTrace& out) const {
  const auto sessions = poisson_arrivals_hourly(
      rng, config_.profile, config_.sessions_per_day, t0, t1);
  for (double session_start : sessions) {
    const std::uint32_t src = hosts.sample_local(rng);
    const std::uint32_t dst = hosts.sample_remote(rng);
    // Connections-per-session has a heavy tail: most xterm sessions open
    // a few windows, some open a great many.
    const dist::DiscretePareto dp;
    const std::size_t n_conns =
        1 + std::min<std::size_t>(dp.sample(rng),
                                  config_.max_conns_per_session - 1);
    double cursor = session_start;
    for (std::size_t i = 0; i < n_conns && cursor < t1; ++i) {
      trace::ConnRecord r;
      r.start = cursor;
      r.duration = duration_dist_.sample(rng);
      r.protocol = trace::Protocol::kX11;
      r.src_host = src;
      r.dst_host = dst;
      r.bytes_orig = static_cast<std::uint64_t>(bytes_dist_.sample(rng));
      r.bytes_resp = static_cast<std::uint64_t>(bytes_dist_.sample(rng));
      out.add(r);
      cursor += gap_dist_.sample(rng);
    }
  }
}

}  // namespace wan::synth
