#include "src/synth/ftp_source.hpp"

#include <algorithm>
#include <cmath>

#include "src/dist/zipf.hpp"

namespace wan::synth {

FtpSource::FtpSource(FtpConfig config)
    : config_(config),
      think_dist_(config.think_log_mean, config.think_log_sd),
      intra_dist_(config.intra_log_mean, config.intra_log_sd),
      burst_bytes_dist_(config.burst_bytes_location, config.burst_bytes_shape,
                        config.burst_bytes_cap),
      hot_bytes_dist_(
          std::min(config.burst_bytes_location * config.hot_bytes_multiplier,
                   config.burst_bytes_cap / 4.0),
          config.burst_bytes_shape, config.burst_bytes_cap),
      rate_dist_(config.rate_log_mean, config.rate_log_sd) {}

std::size_t FtpSource::sample_bursts_per_session(rng::Rng& rng) const {
  const dist::DiscretePareto dp;
  return 1 + std::min<std::size_t>(dp.sample(rng),
                                   config_.max_bursts_per_session - 1);
}

std::size_t FtpSource::sample_conns_per_burst(rng::Rng& rng) const {
  const dist::DiscretePareto dp;
  return 1 + std::min<std::size_t>(dp.sample(rng),
                                   config_.max_conns_per_burst - 1);
}

double FtpSource::sample_burst_bytes(rng::Rng& rng) const {
  return burst_bytes_dist_.sample(rng);
}

void FtpSource::generate_session(rng::Rng& rng, double session_start,
                                 double t1, const HostModel& hosts,
                                 std::uint64_t sid, bool hot,
                                 trace::ConnTrace& out) const {
  const std::uint32_t src = hosts.sample_local(rng);
  const std::uint32_t dst = hosts.sample_remote(rng);

  // Hot-event sessions are there for the one big fetch: few bursts.
  const std::size_t n_bursts =
      hot ? 1 + rng.uniform_int(2) : sample_bursts_per_session(rng);
  // The control connection opens a beat before the first transfer.
  double cursor = session_start + 1.0 + 2.0 * rng.uniform01();
  double session_end = cursor;

  for (std::size_t b = 0; b < n_bursts; ++b) {
    if (b > 0) cursor += think_dist_.sample(rng);  // inter-burst think
    if (cursor >= t1) break;

    const std::size_t n_conns =
        hot ? 1 + rng.uniform_int(3) : sample_conns_per_burst(rng);
    const double burst_total =
        hot ? hot_bytes_dist_.sample(rng) : sample_burst_bytes(rng);

    // Split the burst's bytes across its connections proportionally to
    // Pareto weights: a multi-file "mget" mixes small listings with the
    // odd big file.
    std::vector<double> weights(n_conns);
    const dist::Pareto weight_law(1.0, 1.2);
    double wsum = 0.0;
    for (double& w : weights) {
      w = weight_law.sample(rng);
      wsum += w;
    }

    for (std::size_t k = 0; k < n_conns; ++k) {
      const double bytes = std::max(64.0, burst_total * weights[k] / wsum);
      const double rate = rate_dist_.sample(rng);
      const double duration = std::max(0.05, bytes / rate);

      trace::ConnRecord r;
      r.start = cursor;
      r.duration = duration;
      r.protocol = trace::Protocol::kFtpData;
      r.src_host = src;
      r.dst_host = dst;
      // Transfers are predominantly remote -> local in byte volume;
      // the paper counts both directions, so put the payload on the
      // responder side and a trickle of commands on the originator.
      r.bytes_orig = 64;
      r.bytes_resp = static_cast<std::uint64_t>(bytes);
      r.session_id = sid;
      out.add(r);

      cursor += duration;
      session_end = std::max(session_end, cursor);
      if (k + 1 < n_conns) cursor += intra_dist_.sample(rng);
      if (cursor >= t1) break;
    }
  }

  // The enclosing FTP control connection (the paper's "FTP session").
  trace::ConnRecord ctrl;
  ctrl.start = session_start;
  ctrl.duration =
      std::max(5.0, session_end - session_start + 2.0 + 8.0 * rng.uniform01());
  ctrl.protocol = trace::Protocol::kFtpCtrl;
  ctrl.src_host = src;
  ctrl.dst_host = dst;
  ctrl.bytes_orig = 200 + rng.uniform_int(600);
  ctrl.bytes_resp = 400 + rng.uniform_int(1200);
  ctrl.session_id = sid;
  out.add(ctrl);
}

void FtpSource::generate(rng::Rng& rng, double t0, double t1,
                         const HostModel& hosts,
                         std::uint64_t* next_session_id,
                         trace::ConnTrace& out) const {
  // User-driven sessions: Poisson with fixed hourly rates (Section III).
  const auto session_starts = poisson_arrivals_hourly(
      rng, config_.profile, config_.sessions_per_day, t0, t1);
  for (double session_start : session_starts) {
    generate_session(rng, session_start, t1, hosts, (*next_session_id)++,
                     /*hot=*/false, out);
  }

  // Hot-file mirror events: clustered sessions fetching something huge.
  // These make huge-burst arrivals non-Poisson (Section VI) — the hot
  // sessions do NOT come from independent users.
  if (config_.hot_events_per_day > 0.0) {
    const double event_rate = config_.hot_events_per_day / 86400.0;
    for (double event_t : poisson_arrivals(rng, event_rate, t0, t1)) {
      const std::size_t n_sessions =
          sample_geometric_sessions(rng);
      for (std::size_t s = 0; s < n_sessions; ++s) {
        const double offset =
            -std::log(rng.uniform01_open_below()) * config_.hot_window;
        const double start = event_t + offset;
        if (start >= t1) continue;
        generate_session(rng, start, t1, hosts, (*next_session_id)++,
                         /*hot=*/true, out);
      }
    }
  }
}

std::size_t FtpSource::sample_geometric_sessions(rng::Rng& rng) const {
  // Geometric with mean hot_sessions_mean (>= 1).
  const double mean = std::max(config_.hot_sessions_mean, 1.0);
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  const double u = rng.uniform01();
  const double k = std::ceil(std::log1p(-u) / std::log1p(-p));
  return k < 1.0 ? 1 : static_cast<std::size_t>(k);
}

}  // namespace wan::synth
