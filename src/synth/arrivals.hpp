// Arrival-process generators: homogeneous Poisson, the paper's
// "fixed hourly rates" piecewise-homogeneous Poisson, and general renewal
// processes driven by any interarrival distribution.
#pragma once

#include <vector>

#include "src/dist/distribution.hpp"
#include "src/rng/rng.hpp"
#include "src/synth/diurnal.hpp"

namespace wan::synth {

/// Homogeneous Poisson arrivals with the given rate (events/second) over
/// [t0, t1).
std::vector<double> poisson_arrivals(rng::Rng& rng, double rate, double t0,
                                     double t1);

/// Piecewise-homogeneous Poisson arrivals: rate fixed within each hour,
/// shaped by the diurnal profile, averaging `per_day` arrivals per day.
/// This is exactly the model Section III finds valid for user session
/// arrivals.
std::vector<double> poisson_arrivals_hourly(rng::Rng& rng,
                                            const DiurnalProfile& profile,
                                            double per_day, double t0,
                                            double t1);

/// Renewal arrivals: event times t0 + X1, t0 + X1 + X2, ... with i.i.d.
/// gaps from `gap_dist`, truncated at t1 (and optionally at max_events).
std::vector<double> renewal_arrivals(rng::Rng& rng,
                                     const dist::Distribution& gap_dist,
                                     double t0, double t1,
                                     std::size_t max_events = SIZE_MAX);

/// Exactly n renewal events starting at t0 (no time bound) — used when a
/// connection's packet count is fixed and its duration is emergent (the
/// paper's TCPLIB and EXP schemes).
std::vector<double> renewal_arrivals_count(rng::Rng& rng,
                                           const dist::Distribution& gap_dist,
                                           double t0, std::size_t n);

/// n arrivals uniformly scattered over [t0, t1), sorted — the paper's
/// VAR-EXP scheme is equivalent to conditioning a Poisson process on its
/// count, i.e. uniform order statistics.
std::vector<double> uniform_arrivals(rng::Rng& rng, double t0, double t1,
                                     std::size_t n);

}  // namespace wan::synth
