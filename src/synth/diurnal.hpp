// Diurnal (24-hour) connection-rate profiles, reproducing the shapes of
// the paper's Fig. 1: TELNET peaks in office hours with a lunch dip, FTP
// adds an evening renewal, NNTP stays almost flat, SMTP leans morning at
// a west-coast site and afternoon at an east-coast one.
#pragma once

#include <array>
#include <cstddef>

#include "src/trace/protocol.hpp"

namespace wan::synth {

/// Relative arrival-rate weight for each hour of day. Weights are stored
/// normalized so they sum to 1 — weight(h) is the expected fraction of a
/// day's connections arriving during hour h, exactly what Fig. 1 plots.
class DiurnalProfile {
 public:
  /// Uniform profile.
  DiurnalProfile();

  /// From 24 nonnegative weights (any scale; normalized internally).
  explicit DiurnalProfile(const std::array<double, 24>& weights);

  /// Fraction of the day's connections in hour h (0-23).
  double weight(std::size_t hour) const;

  /// Instantaneous arrival rate (per second) at absolute time t for a
  /// process averaging `per_day` arrivals per day; piecewise constant
  /// over hours, which is precisely the paper's "fixed hourly rates".
  double rate_at(double t_seconds, double per_day) const;

  /// Presets shaped after Fig. 1.
  static DiurnalProfile telnet();
  static DiurnalProfile ftp();
  static DiurnalProfile nntp();
  static DiurnalProfile smtp_west();  ///< LBL-like morning bias
  static DiurnalProfile smtp_east();  ///< Bellcore-like afternoon bias
  static DiurnalProfile www();
  static DiurnalProfile flat();

  static DiurnalProfile for_protocol(trace::Protocol p);

 private:
  std::array<double, 24> w_{};
};

}  // namespace wan::synth
