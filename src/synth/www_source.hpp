// WWW and X11 sources — the remaining non-Poisson connection families of
// Section III.
//
// WWW: a user session fetches a sequence of documents, each pulling a
// handful of closely-spaced connections (HTTP/1.0 opened one connection
// per object); documents are separated by heavy-tailed think times.
//
// X11: the paper conjectures X11 *session* arrivals are Poisson but X11
// *connection* arrivals are not, because one session (an xterm, say)
// spawns connections whenever the user "decides to do something new" —
// akin to FTPDATA-within-session arrivals. We model exactly that.
#pragma once

#include "src/dist/lognormal.hpp"
#include "src/dist/pareto.hpp"
#include "src/synth/arrivals.hpp"
#include "src/synth/host_model.hpp"
#include "src/trace/conn_trace.hpp"

namespace wan::synth {

struct WwwConfig {
  double sessions_per_day = 150.0;  ///< young protocol: low volume in 1994
  DiurnalProfile profile = DiurnalProfile::www();
  double docs_per_session_mean = 5.0;   ///< geometric
  double objects_per_doc_mean = 2.5;    ///< geometric
  double object_gap_mean = 0.5;         ///< exponential, seconds
  /// Think time between documents: Pareto (heavy) — browsing pauses.
  double think_location = 2.0;
  double think_shape = 1.3;
  double think_cap = 3600.0;
  double duration_log_mean = 0.0;       ///< ln seconds (~1 s)
  double duration_log_sd = 0.9;
  double bytes_log_mean = 8.7;          ///< ln bytes (~6 KB)
  double bytes_log_sd = 1.3;
};

class WwwSource {
 public:
  explicit WwwSource(WwwConfig config);
  void generate(rng::Rng& rng, double t0, double t1, const HostModel& hosts,
                trace::ConnTrace& out) const;
  const WwwConfig& config() const { return config_; }

 private:
  WwwConfig config_;
  dist::TruncatedPareto think_dist_;
  dist::LogNormal duration_dist_;
  dist::LogNormal bytes_dist_;
};

struct X11Config {
  double sessions_per_day = 500.0;
  DiurnalProfile profile = DiurnalProfile::telnet();
  std::size_t max_conns_per_session = 200;
  /// Gap between connections within a session: heavy-tailed Pareto —
  /// "users deciding to do something new".
  double gap_location = 3.0;
  double gap_shape = 1.1;
  double gap_cap = 7200.0;
  double duration_log_mean = 4.0;  ///< ln seconds (~55 s; windows live on)
  double duration_log_sd = 1.5;
  double bytes_log_mean = 9.0;
  double bytes_log_sd = 1.5;
};

class X11Source {
 public:
  explicit X11Source(X11Config config);
  void generate(rng::Rng& rng, double t0, double t1, const HostModel& hosts,
                trace::ConnTrace& out) const;
  const X11Config& config() const { return config_; }

 private:
  X11Config config_;
  dist::TruncatedPareto gap_dist_;
  dist::LogNormal duration_dist_;
  dist::LogNormal bytes_dist_;
};

}  // namespace wan::synth
