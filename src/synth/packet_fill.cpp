#include "src/synth/packet_fill.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/dist/lognormal.hpp"
#include "src/par/parallel.hpp"
#include "src/sim/tcp.hpp"

namespace wan::synth {

namespace {

// Paces n packets across [start, start+duration) with jittered gaps.
void pace_packets(rng::Rng& rng, double start, double duration,
                  std::size_t n, double jitter, trace::Protocol proto,
                  std::uint32_t conn_id, bool from_originator,
                  std::uint16_t bytes, trace::PacketTrace& out) {
  if (n == 0) return;
  const double base_gap = duration / static_cast<double>(n);
  double t = start;
  for (std::size_t i = 0; i < n; ++i) {
    trace::PacketRecord r;
    r.time = t;
    r.protocol = proto;
    r.conn_id = conn_id;
    r.from_originator = from_originator;
    r.payload_bytes = bytes;
    out.add(r);
    const double u = rng.uniform(-jitter, jitter);
    t += base_gap * (1.0 + u);
  }
}

// Paces n packets using the TCP congestion-control model, affinely
// rescaled so the transfer spans exactly [start, start+duration).
void pace_packets_tcp(const PacketFillConfig& config, double start,
                      double duration, std::size_t n, trace::Protocol proto,
                      std::uint32_t conn_id, std::uint16_t bytes,
                      trace::PacketTrace& out) {
  sim::TcpConfig tcfg;
  tcfg.rtt = config.tcp_rtt;
  tcfg.buffer_packets = config.tcp_buffer;
  tcfg.bottleneck_rate = config.tcp_bottleneck_rate;
  const auto trace_tcp = sim::simulate_tcp_transfer(n, tcfg);
  if (trace_tcp.departure_times.empty()) return;
  const double span = std::max(trace_tcp.departure_times.back() -
                                   trace_tcp.departure_times.front(),
                               1e-9);
  for (double dep : trace_tcp.departure_times) {
    trace::PacketRecord r;
    r.time = start +
             (dep - trace_tcp.departure_times.front()) / span * duration;
    r.protocol = proto;
    r.conn_id = conn_id;
    r.from_originator = false;  // data flows responder -> originator
    r.payload_bytes = bytes;
    out.add(r);
  }
}

}  // namespace

bool is_bulk_protocol(trace::Protocol p) noexcept {
  using trace::Protocol;
  switch (p) {
    case Protocol::kFtpData:
    case Protocol::kFtpCtrl:
    case Protocol::kSmtp:
    case Protocol::kNntp:
    case Protocol::kWww:
    case Protocol::kX11:
      return true;
    default:
      return false;
  }
}

rng::Rng bulk_conn_rng(std::uint64_t stream_key,
                       std::uint32_t conn_id) noexcept {
  // Golden-ratio multiplier; +1 keeps conn 0 from collapsing onto the
  // raw key.
  return rng::Rng(stream_key ^
                  (0x9e3779b97f4a7c15ULL * (std::uint64_t{conn_id} + 1)));
}

void fill_conn_packets(rng::Rng& rng, const trace::ConnRecord& c,
                       const PacketFillConfig& config, std::uint32_t id,
                       trace::PacketTrace& out) {
  const double duration = std::max(c.duration, 0.05);

  const auto pkts_of = [&](std::uint64_t bytes) {
    const auto n = static_cast<std::size_t>(
        std::ceil(static_cast<double>(bytes) / config.data_packet_bytes));
    return std::min(std::max<std::size_t>(n, 1), config.max_packets_per_conn);
  };

  const std::size_t n_orig = pkts_of(c.bytes_orig);
  const std::size_t n_resp = pkts_of(c.bytes_resp);
  const auto per_pkt_orig = static_cast<std::uint16_t>(std::min<double>(
      static_cast<double>(c.bytes_orig) / static_cast<double>(n_orig),
      65535.0));
  const auto per_pkt_resp = static_cast<std::uint16_t>(std::min<double>(
      static_cast<double>(c.bytes_resp) / static_cast<double>(n_resp),
      65535.0));

  pace_packets(rng, c.start, duration, n_orig, config.pacing_jitter,
               c.protocol, id, /*from_originator=*/true,
               std::max<std::uint16_t>(per_pkt_orig, 1), out);
  if (config.tcp_dynamics && c.protocol == trace::Protocol::kFtpData &&
      n_resp >= config.tcp_min_packets) {
    pace_packets_tcp(config, c.start, duration, n_resp, c.protocol, id,
                     std::max<std::uint16_t>(per_pkt_resp, 1), out);
  } else {
    pace_packets(rng, c.start, duration, n_resp, config.pacing_jitter,
                 c.protocol, id, /*from_originator=*/false,
                 std::max<std::uint16_t>(per_pkt_resp, 1), out);
  }
}

void fill_bulk_packets(rng::Rng& rng, const trace::ConnTrace& conns,
                       const PacketFillConfig& config,
                       std::uint32_t* next_conn_id,
                       trace::PacketTrace& out) {
  const std::uint64_t stream_key = rng.next_u64();

  struct Item {
    const trace::ConnRecord* conn;
    std::uint32_t id;
  };
  std::vector<Item> items;
  for (const trace::ConnRecord& c : conns.records()) {
    if (!is_bulk_protocol(c.protocol)) continue;
    items.push_back({&c, (*next_conn_id)++});
  }

  // Each connection draws from its own bulk_conn_rng stream and fills a
  // private part; parts concatenate in record order, so the output is
  // identical to a serial fill for any thread count / grain.
  std::vector<trace::PacketTrace> parts(items.size());
  par::parallel_for(0, items.size(), 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      rng::Rng conn_rng = bulk_conn_rng(stream_key, items[i].id);
      fill_conn_packets(conn_rng, *items[i].conn, config, items[i].id,
                        parts[i]);
    }
  });

  std::size_t total = out.size();
  for (const trace::PacketTrace& p : parts) total += p.size();
  out.reserve(total);
  for (const trace::PacketTrace& p : parts) {
    for (const trace::PacketRecord& r : p.records()) out.add(r);
  }
}

void emit_dns_exchange(rng::Rng& rng, const DnsConfig& config, double t,
                       double t1, std::uint32_t id, trace::PacketTrace& out) {
  const dist::LogNormal delay(config.reply_delay_log_mean,
                              config.reply_delay_log_sd);
  trace::PacketRecord q;
  q.time = t;
  q.protocol = trace::Protocol::kDns;
  q.conn_id = id;
  q.from_originator = true;
  q.payload_bytes = static_cast<std::uint16_t>(40 + rng.uniform_int(40));
  out.add(q);
  const double reply_t = t + delay.sample(rng);
  if (reply_t < t1) {
    trace::PacketRecord a = q;
    a.time = reply_t;
    a.from_originator = false;
    a.payload_bytes = static_cast<std::uint16_t>(80 + rng.uniform_int(200));
    out.add(a);
  }
}

void fill_dns_packets(rng::Rng& rng, const DnsConfig& config, double t0,
                      double t1, std::uint32_t* next_conn_id,
                      trace::PacketTrace& out) {
  const double rate = config.queries_per_hour / 3600.0;
  for (double t : poisson_arrivals(rng, rate, t0, t1)) {
    emit_dns_exchange(rng, config, t, t1, (*next_conn_id)++, out);
  }
}

void emit_mbone_session(rng::Rng& rng, const MboneConfig& config,
                        double start, double t1, std::uint32_t id,
                        trace::PacketTrace& out) {
  const dist::LogNormal session_len(config.session_log_mean,
                                    config.session_log_sd);
  const double end = std::min(start + session_len.sample(rng), t1);
  for (double t = start; t < end; t += config.packet_interval) {
    trace::PacketRecord r;
    r.time = t;
    r.protocol = trace::Protocol::kMbone;
    r.conn_id = id;
    r.from_originator = true;
    r.payload_bytes = config.packet_bytes;
    out.add(r);
  }
}

void fill_mbone_packets(rng::Rng& rng, const MboneConfig& config, double t0,
                        double t1, std::uint32_t* next_conn_id,
                        trace::PacketTrace& out) {
  const double rate = config.sessions_per_hour / 3600.0;
  for (double start : poisson_arrivals(rng, rate, t0, t1)) {
    emit_mbone_session(rng, config, start, t1, (*next_conn_id)++, out);
  }
}

}  // namespace wan::synth
