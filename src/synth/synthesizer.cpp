#include "src/synth/synthesizer.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "src/par/parallel.hpp"

namespace wan::synth {

ConnDatasetConfig::ConnDatasetConfig() {
  rlogin.protocol = trace::Protocol::kRlogin;
  rlogin.conns_per_day = 1200.0;
}

namespace {

// Runs one independent per-source generator per task and concatenates
// the task outputs in task order. Each task owns a pre-derived child Rng
// stream, so the records it emits — and, after the ordered
// concatenation, the whole assembled trace — are identical to a serial
// run no matter how tasks are scheduled.
template <class Trace>
void generate_sources_into(
    std::vector<std::function<void(Trace&)>>& tasks, Trace& out) {
  std::vector<Trace> parts(tasks.size());
  par::parallel_for(0, tasks.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) tasks[i](parts[i]);
  });
  std::size_t total = out.size();
  for (const Trace& p : parts) total += p.size();
  out.reserve(total);
  for (const Trace& p : parts) {
    for (const auto& rec : p.records()) out.add(rec);
  }
}

}  // namespace

trace::ConnTrace synthesize_conn_trace(const ConnDatasetConfig& config) {
  rng::Rng root(config.seed);
  const HostModel hosts(config.n_local_hosts, config.n_remote_hosts);
  const double t0 = 0.0;
  const double t1 = config.days * 86400.0;

  trace::ConnTrace out(config.name, t0, t1);

  // Derive the per-source streams up front in the fixed order the serial
  // code always used; child() advances the root stream, so this order —
  // not the task schedule — determines every source's randomness.
  rng::Rng r_telnet = root.child("telnet");
  rng::Rng r_rlogin = root.child("rlogin");
  rng::Rng r_ftp = root.child("ftp");
  rng::Rng r_weather = config.include_weathermap ? root.child("weathermap")
                                                 : rng::Rng(0);
  rng::Rng r_smtp = root.child("smtp");
  rng::Rng r_nntp = root.child("nntp");
  rng::Rng r_www = root.child("www");
  rng::Rng r_x11 = root.child("x11");

  std::vector<std::function<void(trace::ConnTrace&)>> tasks;
  tasks.push_back([&, r_telnet](trace::ConnTrace& part) mutable {
    const TelnetSource src(config.telnet);
    const auto conns = src.generate_connections(r_telnet, t0, t1,
                                                InterarrivalScheme::kTcplib);
    src.append_conn_records(r_telnet, conns, hosts, part);
  });
  tasks.push_back([&, r_rlogin](trace::ConnTrace& part) mutable {
    const TelnetSource src(config.rlogin);
    const auto conns = src.generate_connections(r_rlogin, t0, t1,
                                                InterarrivalScheme::kTcplib);
    src.append_conn_records(r_rlogin, conns, hosts, part);
  });
  // FTP and the weather-map job share the session-id counter, so they
  // stay sequential inside one task.
  tasks.push_back([&, r_ftp, r_weather](trace::ConnTrace& part) mutable {
    std::uint64_t next_session = 1;
    const FtpSource src(config.ftp);
    src.generate(r_ftp, t0, t1, hosts, &next_session, part);
    if (config.include_weathermap) {
      WeatherMapConfig wm = config.weathermap;
      wm.local_host = 0;
      // The weather server is an obscure host: the *last* remote id, whose
      // Zipf popularity is negligible. (Using a popular remote would mix
      // user FTP traffic into the same host pair and blur the periodic
      // signature the detector looks for.)
      wm.remote_host = config.n_local_hosts + config.n_remote_hosts - 1;
      const WeatherMapSource wsrc(wm);
      wsrc.generate(r_weather, t0, t1, &next_session, part);
    }
  });
  tasks.push_back([&, r_smtp](trace::ConnTrace& part) mutable {
    const SmtpSource src(config.smtp);
    src.generate(r_smtp, t0, t1, hosts, part);
  });
  tasks.push_back([&, r_nntp](trace::ConnTrace& part) mutable {
    const NntpSource src(config.nntp);
    src.generate(r_nntp, t0, t1, hosts, part);
  });
  tasks.push_back([&, r_www](trace::ConnTrace& part) mutable {
    const WwwSource src(config.www);
    src.generate(r_www, t0, t1, hosts, part);
  });
  tasks.push_back([&, r_x11](trace::ConnTrace& part) mutable {
    const X11Source src(config.x11);
    src.generate(r_x11, t0, t1, hosts, part);
  });

  generate_sources_into(tasks, out);
  out.sort_by_start();
  return out;
}

trace::PacketTrace synthesize_packet_trace(const PacketDatasetConfig& config) {
  rng::Rng root(config.seed);
  const HostModel hosts(config.n_local_hosts, config.n_remote_hosts);
  const double t0 = config.start_hour * 3600.0;
  const double t1 = t0 + config.hours * 3600.0;

  trace::PacketTrace out(config.name, t0, t1);
  std::uint32_t next_conn_id = 1;

  // Child streams in the serial derivation order (see
  // synthesize_conn_trace).
  rng::Rng r_telnet = root.child("telnet");
  rng::Rng r_ftp = root.child("ftp");
  rng::Rng r_smtp = root.child("smtp");
  rng::Rng r_nntp = root.child("nntp");
  rng::Rng r_www = root.child("www");
  rng::Rng r_fill = root.child("fill");
  // DNS and MBone each own a child stream (rather than sharing a "udp"
  // stream sequentially) so either can be generated without first
  // materializing the other — the streaming synthesizer needs that.
  rng::Rng r_dns = config.tcp_only ? rng::Rng(0) : root.child("dns");
  rng::Rng r_mbone = config.tcp_only ? rng::Rng(0) : root.child("mbone");

  // TELNET: FULL-TEL originator packets plus the responder model
  // (echoes and command-output bursts) so the aggregate trace carries
  // both directions. Runs concurrently with the bulk connection
  // generators; its packets keep the first conn-id block.
  trace::PacketTrace telnet_pkts;
  std::size_t n_telnet_conns = 0;
  trace::ConnTrace ftp_part, smtp_part, nntp_part, www_part;
  {
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&, r_telnet]() mutable {
      TelnetConfig tc = config.telnet;
      tc.conns_per_day *= config.volume_scale;
      const TelnetSource src(tc);
      const auto conns = src.generate_connections(
          r_telnet, t0, t1, InterarrivalScheme::kTcplib);
      n_telnet_conns = conns.size();
      telnet_pkts = src.to_packet_trace_with_responder(
          r_telnet, conns, t0, t1, ResponderConfig{}, /*next_conn_id=*/1);
    });
    tasks.push_back([&, r_ftp]() mutable {
      FtpConfig fc = config.ftp;
      fc.sessions_per_day *= config.volume_scale;
      const FtpSource src(fc);
      std::uint64_t next_session = 1;
      ftp_part = trace::ConnTrace("bulk", t0, t1);
      src.generate(r_ftp, t0, t1, hosts, &next_session, ftp_part);
    });
    tasks.push_back([&, r_smtp]() mutable {
      SmtpConfig sc = config.smtp;
      sc.conns_per_day *= config.volume_scale;
      const SmtpSource src(sc);
      smtp_part = trace::ConnTrace("bulk", t0, t1);
      src.generate(r_smtp, t0, t1, hosts, smtp_part);
    });
    tasks.push_back([&, r_nntp]() mutable {
      NntpConfig nc = config.nntp;
      nc.conns_per_day *= config.volume_scale;
      const NntpSource src(nc);
      nntp_part = trace::ConnTrace("bulk", t0, t1);
      src.generate(r_nntp, t0, t1, hosts, nntp_part);
    });
    tasks.push_back([&, r_www]() mutable {
      WwwConfig wc = config.www;
      wc.sessions_per_day *= config.volume_scale;
      const WwwSource src(wc);
      www_part = trace::ConnTrace("bulk", t0, t1);
      src.generate(r_www, t0, t1, hosts, www_part);
    });
    par::parallel_for(0, tasks.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) tasks[i]();
    });
  }

  for (const auto& p : telnet_pkts.records()) out.add(p);
  next_conn_id += static_cast<std::uint32_t>(n_telnet_conns);

  // Bulk protocols: concatenate the per-protocol connection records in
  // the serial order, then packetize.
  {
    trace::ConnTrace bulk("bulk", t0, t1);
    bulk.reserve(ftp_part.size() + smtp_part.size() + nntp_part.size() +
                 www_part.size());
    for (const trace::ConnTrace* part :
         {&ftp_part, &smtp_part, &nntp_part, &www_part}) {
      for (const auto& rec : part->records()) bulk.add(rec);
    }
    fill_bulk_packets(r_fill, bulk, config.fill, &next_conn_id, out);
  }

  if (!config.tcp_only) {
    DnsConfig dc = config.dns;
    dc.queries_per_hour *= config.volume_scale;
    fill_dns_packets(r_dns, dc, t0, t1, &next_conn_id, out);
    MboneConfig mc = config.mbone;
    mc.sessions_per_hour *= config.volume_scale;
    fill_mbone_packets(r_mbone, mc, t0, t1, &next_conn_id, out);
  }

  // Drop packets that drifted past the capture window and sort.
  trace::PacketTrace clipped(config.name, t0, t1);
  clipped.reserve(out.size());
  for (const auto& p : out.records()) {
    if (p.time >= t0 && p.time < t1) clipped.add(p);
  }
  clipped.sort_by_time();
  return clipped;
}

ConnDatasetConfig lbl_conn_preset(std::string name, double days,
                                  std::uint64_t seed) {
  ConnDatasetConfig c;
  c.name = std::move(name);
  c.days = days;
  c.seed = seed;
  return c;  // defaults are LBL-like
}

ConnDatasetConfig small_site_conn_preset(std::string name, double days,
                                         std::uint64_t seed) {
  ConnDatasetConfig c;
  c.name = std::move(name);
  c.days = days;
  c.seed = seed;
  const double s = 0.2;
  c.telnet.conns_per_day *= s;
  c.rlogin.conns_per_day *= s;
  c.ftp.sessions_per_day *= s;
  c.smtp.conns_per_day *= s;
  c.smtp.profile = DiurnalProfile::smtp_east();
  c.nntp.conns_per_day *= s;
  c.www.sessions_per_day *= s;
  c.x11.sessions_per_day *= s;
  return c;
}

PacketDatasetConfig lbl_pkt_preset(std::string name, bool tcp_only,
                                   std::uint64_t seed) {
  PacketDatasetConfig c;
  c.name = std::move(name);
  c.tcp_only = tcp_only;
  c.seed = seed;
  // ~270 TELNET connections in a 2 PM - 4 PM two-hour window: the two
  // hours carry ~13% of the telnet() profile's day, so 270 / 0.13.
  c.telnet.conns_per_day = 2100.0;
  c.hours = tcp_only ? 2.0 : 1.0;
  return c;
}

PacketDatasetConfig dec_wrl_pkt_preset(std::string name, std::uint64_t seed) {
  PacketDatasetConfig c = lbl_pkt_preset(std::move(name), false, seed);
  c.hours = 1.0;
  c.volume_scale = 2.5;  // DEC WRL ran hotter than LBL
  return c;
}

}  // namespace wan::synth
