#include "src/synth/synthesizer.hpp"

#include <algorithm>

namespace wan::synth {

ConnDatasetConfig::ConnDatasetConfig() {
  rlogin.protocol = trace::Protocol::kRlogin;
  rlogin.conns_per_day = 1200.0;
}

trace::ConnTrace synthesize_conn_trace(const ConnDatasetConfig& config) {
  rng::Rng root(config.seed);
  const HostModel hosts(config.n_local_hosts, config.n_remote_hosts);
  const double t0 = 0.0;
  const double t1 = config.days * 86400.0;

  trace::ConnTrace out(config.name, t0, t1);

  {
    rng::Rng r = root.child("telnet");
    const TelnetSource src(config.telnet);
    const auto conns =
        src.generate_connections(r, t0, t1, InterarrivalScheme::kTcplib);
    src.append_conn_records(r, conns, hosts, out);
  }
  {
    rng::Rng r = root.child("rlogin");
    const TelnetSource src(config.rlogin);
    const auto conns =
        src.generate_connections(r, t0, t1, InterarrivalScheme::kTcplib);
    src.append_conn_records(r, conns, hosts, out);
  }
  std::uint64_t next_session = 1;
  {
    rng::Rng r = root.child("ftp");
    const FtpSource src(config.ftp);
    src.generate(r, t0, t1, hosts, &next_session, out);
  }
  if (config.include_weathermap) {
    rng::Rng r = root.child("weathermap");
    WeatherMapConfig wm = config.weathermap;
    wm.local_host = 0;
    // The weather server is an obscure host: the *last* remote id, whose
    // Zipf popularity is negligible. (Using a popular remote would mix
    // user FTP traffic into the same host pair and blur the periodic
    // signature the detector looks for.)
    wm.remote_host = config.n_local_hosts + config.n_remote_hosts - 1;
    const WeatherMapSource src(wm);
    src.generate(r, t0, t1, &next_session, out);
  }
  {
    rng::Rng r = root.child("smtp");
    const SmtpSource src(config.smtp);
    src.generate(r, t0, t1, hosts, out);
  }
  {
    rng::Rng r = root.child("nntp");
    const NntpSource src(config.nntp);
    src.generate(r, t0, t1, hosts, out);
  }
  {
    rng::Rng r = root.child("www");
    const WwwSource src(config.www);
    src.generate(r, t0, t1, hosts, out);
  }
  {
    rng::Rng r = root.child("x11");
    const X11Source src(config.x11);
    src.generate(r, t0, t1, hosts, out);
  }

  out.sort_by_start();
  return out;
}

trace::PacketTrace synthesize_packet_trace(const PacketDatasetConfig& config) {
  rng::Rng root(config.seed);
  const HostModel hosts(config.n_local_hosts, config.n_remote_hosts);
  const double t0 = config.start_hour * 3600.0;
  const double t1 = t0 + config.hours * 3600.0;

  trace::PacketTrace out(config.name, t0, t1);
  std::uint32_t next_conn_id = 1;

  // TELNET: FULL-TEL originator packets plus the responder model
  // (echoes and command-output bursts) so the aggregate trace carries
  // both directions.
  {
    rng::Rng r = root.child("telnet");
    TelnetConfig tc = config.telnet;
    tc.conns_per_day *= config.volume_scale;
    const TelnetSource src(tc);
    const auto conns =
        src.generate_connections(r, t0, t1, InterarrivalScheme::kTcplib);
    const auto telnet_pkts = src.to_packet_trace_with_responder(
        r, conns, t0, t1, ResponderConfig{}, next_conn_id);
    next_conn_id += static_cast<std::uint32_t>(conns.size());
    for (const auto& p : telnet_pkts.records()) out.add(p);
  }

  // Bulk protocols: generate connection records, then packetize.
  {
    trace::ConnTrace bulk("bulk", t0, t1);
    {
      rng::Rng r = root.child("ftp");
      FtpConfig fc = config.ftp;
      fc.sessions_per_day *= config.volume_scale;
      const FtpSource src(fc);
      std::uint64_t next_session = 1;
      src.generate(r, t0, t1, hosts, &next_session, bulk);
    }
    {
      rng::Rng r = root.child("smtp");
      SmtpConfig sc = config.smtp;
      sc.conns_per_day *= config.volume_scale;
      const SmtpSource src(sc);
      src.generate(r, t0, t1, hosts, bulk);
    }
    {
      rng::Rng r = root.child("nntp");
      NntpConfig nc = config.nntp;
      nc.conns_per_day *= config.volume_scale;
      const NntpSource src(nc);
      src.generate(r, t0, t1, hosts, bulk);
    }
    {
      rng::Rng r = root.child("www");
      WwwConfig wc = config.www;
      wc.sessions_per_day *= config.volume_scale;
      const WwwSource src(wc);
      src.generate(r, t0, t1, hosts, bulk);
    }
    rng::Rng r = root.child("fill");
    fill_bulk_packets(r, bulk, config.fill, &next_conn_id, out);
  }

  if (!config.tcp_only) {
    rng::Rng r = root.child("udp");
    DnsConfig dc = config.dns;
    dc.queries_per_hour *= config.volume_scale;
    fill_dns_packets(r, dc, t0, t1, &next_conn_id, out);
    MboneConfig mc = config.mbone;
    mc.sessions_per_hour *= config.volume_scale;
    fill_mbone_packets(r, mc, t0, t1, &next_conn_id, out);
  }

  // Drop packets that drifted past the capture window and sort.
  trace::PacketTrace clipped(config.name, t0, t1);
  clipped.reserve(out.size());
  for (const auto& p : out.records()) {
    if (p.time >= t0 && p.time < t1) clipped.add(p);
  }
  clipped.sort_by_time();
  return clipped;
}

ConnDatasetConfig lbl_conn_preset(std::string name, double days,
                                  std::uint64_t seed) {
  ConnDatasetConfig c;
  c.name = std::move(name);
  c.days = days;
  c.seed = seed;
  return c;  // defaults are LBL-like
}

ConnDatasetConfig small_site_conn_preset(std::string name, double days,
                                         std::uint64_t seed) {
  ConnDatasetConfig c;
  c.name = std::move(name);
  c.days = days;
  c.seed = seed;
  const double s = 0.2;
  c.telnet.conns_per_day *= s;
  c.rlogin.conns_per_day *= s;
  c.ftp.sessions_per_day *= s;
  c.smtp.conns_per_day *= s;
  c.smtp.profile = DiurnalProfile::smtp_east();
  c.nntp.conns_per_day *= s;
  c.www.sessions_per_day *= s;
  c.x11.sessions_per_day *= s;
  return c;
}

PacketDatasetConfig lbl_pkt_preset(std::string name, bool tcp_only,
                                   std::uint64_t seed) {
  PacketDatasetConfig c;
  c.name = std::move(name);
  c.tcp_only = tcp_only;
  c.seed = seed;
  // ~270 TELNET connections in a 2 PM - 4 PM two-hour window: the two
  // hours carry ~13% of the telnet() profile's day, so 270 / 0.13.
  c.telnet.conns_per_day = 2100.0;
  c.hours = tcp_only ? 2.0 : 1.0;
  return c;
}

PacketDatasetConfig dec_wrl_pkt_preset(std::string name, std::uint64_t seed) {
  PacketDatasetConfig c = lbl_pkt_preset(std::move(name), false, seed);
  c.hours = 1.0;
  c.volume_scale = 2.5;  // DEC WRL ran hotter than LBL
  return c;
}

}  // namespace wan::synth
