#include "src/synth/host_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::synth {

HostModel::HostModel(std::uint32_t n_local, std::uint32_t n_remote,
                     double zipf_exponent)
    : n_local_(n_local), n_remote_(n_remote) {
  if (n_local == 0 || n_remote == 0)
    throw std::invalid_argument("HostModel: empty host pool");
  remote_cdf_.resize(n_remote);
  double cum = 0.0;
  for (std::uint32_t i = 0; i < n_remote; ++i) {
    cum += std::pow(static_cast<double>(i + 1), -zipf_exponent);
    remote_cdf_[i] = cum;
  }
  for (double& v : remote_cdf_) v /= cum;
}

std::uint32_t HostModel::sample_local(rng::Rng& rng) const {
  return static_cast<std::uint32_t>(rng.uniform_int(n_local_));
}

std::uint32_t HostModel::sample_remote(rng::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it =
      std::lower_bound(remote_cdf_.begin(), remote_cdf_.end(), u);
  const auto idx = static_cast<std::uint32_t>(it - remote_cdf_.begin());
  // Remote ids live above the local pool to keep the spaces disjoint.
  return n_local_ + std::min(idx, n_remote_ - 1);
}

}  // namespace wan::synth
