#include "src/synth/weathermap.hpp"

#include <algorithm>
#include <stdexcept>

namespace wan::synth {

WeatherMapSource::WeatherMapSource(WeatherMapConfig config)
    : config_(config),
      bytes_dist_(config.bytes_log_mean, config.bytes_log_sd) {
  if (!(config_.period > 0.0))
    throw std::invalid_argument("WeatherMapConfig: period must be > 0");
  if (!(config_.rate_bytes_per_sec > 0.0))
    throw std::invalid_argument("WeatherMapConfig: rate must be > 0");
}

void WeatherMapSource::generate(rng::Rng& rng, double t0, double t1,
                                std::uint64_t* next_session_id,
                                trace::ConnTrace& out) const {
  const double phase = rng.uniform(0.0, config_.period);
  for (double tick = t0 + phase; tick < t1; tick += config_.period) {
    const double start =
        tick + rng.uniform(-config_.jitter, config_.jitter);
    if (start < t0 || start >= t1) continue;
    const std::uint64_t sid = (*next_session_id)++;

    const double bytes = bytes_dist_.sample(rng);
    const double xfer = std::max(0.5, bytes / config_.rate_bytes_per_sec);

    trace::ConnRecord data;
    data.start = start + 1.0;  // control handshake first
    data.duration = xfer;
    data.protocol = trace::Protocol::kFtpData;
    data.src_host = config_.local_host;
    data.dst_host = config_.remote_host;
    data.bytes_orig = 32;
    data.bytes_resp = static_cast<std::uint64_t>(bytes);
    data.session_id = sid;
    out.add(data);

    trace::ConnRecord ctrl;
    ctrl.start = start;
    ctrl.duration = xfer + 3.0;
    ctrl.protocol = trace::Protocol::kFtpCtrl;
    ctrl.src_host = config_.local_host;
    ctrl.dst_host = config_.remote_host;
    ctrl.bytes_orig = 180;
    ctrl.bytes_resp = 300;
    ctrl.session_id = sid;
    out.add(ctrl);
  }
}

}  // namespace wan::synth
