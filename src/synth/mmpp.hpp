// Markov-modulated Poisson process — the early-90s state of the art for
// "burstier than Poisson" traffic modeling, included as a baseline the
// paper's findings implicitly indict: an MMPP captures short-range
// burstiness (IDC rises over its sojourn timescale) but its correlations
// decay geometrically, so at large scales it flattens back to
// Poisson-like behaviour, unlike measured WAN traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "src/rng/rng.hpp"

namespace wan::synth {

/// An n-state MMPP: in state i, arrivals are Poisson at rate `rates[i]`;
/// the state holds for Exponential(mean_sojourn[i]) and then jumps to a
/// uniformly random other state.
struct MmppConfig {
  std::vector<double> rates = {2.0, 20.0};
  std::vector<double> mean_sojourns = {30.0, 10.0};
};

class MmppSource {
 public:
  explicit MmppSource(MmppConfig config);

  /// Arrival times over [t0, t1).
  std::vector<double> generate(rng::Rng& rng, double t0, double t1) const;

  /// Long-run average arrival rate implied by the configuration.
  double mean_rate() const;

  const MmppConfig& config() const { return config_; }

 private:
  MmppConfig config_;
};

}  // namespace wan::synth
