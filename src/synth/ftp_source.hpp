// FTP traffic synthesis — Section VI's structure:
//   FTP sessions  : Poisson arrivals with fixed hourly rates (user-driven);
//   within session: activity comes in *bursts* (directory listings,
//                   mget transfers) separated by heavy-tailed think times;
//   within burst  : FTPDATA connections in rapid succession (spacing well
//                   under the 4 s burst-joining threshold);
//   burst bytes   : Pareto-tailed (0.9 <= beta <= 1.4), so the largest
//                   0.5% of bursts carry 30-60% of all FTPDATA bytes.
#pragma once

#include <cstdint>

#include "src/dist/lognormal.hpp"
#include "src/dist/pareto.hpp"
#include "src/synth/arrivals.hpp"
#include "src/synth/host_model.hpp"
#include "src/trace/conn_trace.hpp"

namespace wan::synth {

struct FtpConfig {
  double sessions_per_day = 2500.0;
  DiurnalProfile profile = DiurnalProfile::ftp();

  /// Bursts per session: 1 + min(DiscretePareto, cap). The discrete
  /// Pareto keeps a heavy tail of very active sessions.
  std::size_t max_bursts_per_session = 60;

  /// Think time between bursts within a session (log-normal; mostly
  /// 10 s - 1000 s, well above the 4 s burst threshold).
  double think_log_mean = 4.1;   ///< ln seconds; e^4.1 ~ 60 s
  double think_log_sd = 1.4;

  /// FTPDATA connections per burst: 1 + min(DiscretePareto, cap). The
  /// paper observes up to 979 connections in one burst and finds the
  /// count "well-modeled as a Pareto distribution".
  std::size_t max_conns_per_burst = 1200;

  /// Spacing between connections inside a burst (end -> start;
  /// log-normal, mostly 0.2 - 2 s — "mget" pacing).
  double intra_log_mean = -0.35;  ///< ln seconds; e^-0.35 ~ 0.7 s
  double intra_log_sd = 0.6;

  /// Bytes per burst: truncated Pareto. beta near 1.05 reproduces the
  /// "upper 0.5% of bursts hold 30-60% of bytes" finding; the truncation
  /// bounds a burst by what a 1994 WAN could move in a long trace.
  double burst_bytes_location = 4096.0;
  double burst_bytes_shape = 1.06;
  double burst_bytes_cap = 4.0e9;

  /// Transfer rate for sizing connection durations (log-normal around
  /// ~20 KB/s with large spread).
  double rate_log_mean = 9.9;  ///< ln bytes/s; e^9.9 ~ 20 KB/s
  double rate_log_sd = 0.9;

  /// "Hot file" mirror events: occasionally a newly-released file draws
  /// a cluster of sessions fetching something huge within a short
  /// window. This is what clusters the *largest* bursts in time — the
  /// paper found upper-0.5%-tail burst arrivals fail exponentiality at
  /// every significance level (Section VI).
  double hot_events_per_day = 8.0;
  double hot_sessions_mean = 4.0;       ///< geometric sessions per event
  double hot_window = 1800.0;           ///< exponential offset scale, s
  double hot_bytes_multiplier = 200.0;  ///< scales burst_bytes_location
};

/// Generator for FTP session + FTPDATA connection records.
class FtpSource {
 public:
  explicit FtpSource(FtpConfig config);

  const FtpConfig& config() const { return config_; }

  /// Synthesizes all FTP traffic over [t0, t1) into `out`. Session ids
  /// are allocated from *next_session_id (incremented per session).
  void generate(rng::Rng& rng, double t0, double t1, const HostModel& hosts,
                std::uint64_t* next_session_id, trace::ConnTrace& out) const;

  /// Per-burst helpers, exposed for unit tests.
  std::size_t sample_bursts_per_session(rng::Rng& rng) const;
  std::size_t sample_conns_per_burst(rng::Rng& rng) const;
  double sample_burst_bytes(rng::Rng& rng) const;
  std::size_t sample_geometric_sessions(rng::Rng& rng) const;

 private:
  /// Emits one session's bursts and control record starting at
  /// session_start. hot==true draws burst bytes from the scaled-up law.
  void generate_session(rng::Rng& rng, double session_start, double t1,
                        const HostModel& hosts, std::uint64_t sid,
                        bool hot, trace::ConnTrace& out) const;

  FtpConfig config_;
  dist::LogNormal think_dist_;
  dist::LogNormal intra_dist_;
  dist::TruncatedPareto burst_bytes_dist_;
  dist::TruncatedPareto hot_bytes_dist_;
  dist::LogNormal rate_dist_;
};

}  // namespace wan::synth
