#include "src/synth/mmpp.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::synth {

MmppSource::MmppSource(MmppConfig config) : config_(std::move(config)) {
  if (config_.rates.size() < 2 ||
      config_.rates.size() != config_.mean_sojourns.size())
    throw std::invalid_argument("MmppConfig: need >= 2 matched states");
  for (double r : config_.rates) {
    if (r < 0.0) throw std::invalid_argument("MmppConfig: negative rate");
  }
  for (double s : config_.mean_sojourns) {
    if (!(s > 0.0))
      throw std::invalid_argument("MmppConfig: sojourns must be > 0");
  }
}

double MmppSource::mean_rate() const {
  // Uniform jump chain: stationary state probability proportional to the
  // mean sojourn time.
  double weight = 0.0, rate = 0.0;
  for (std::size_t i = 0; i < config_.rates.size(); ++i) {
    weight += config_.mean_sojourns[i];
    rate += config_.rates[i] * config_.mean_sojourns[i];
  }
  return rate / weight;
}

std::vector<double> MmppSource::generate(rng::Rng& rng, double t0,
                                         double t1) const {
  std::vector<double> times;
  const std::size_t n_states = config_.rates.size();
  // Start in a sojourn-weighted stationary state.
  double total_sojourn = 0.0;
  for (double s : config_.mean_sojourns) total_sojourn += s;
  std::size_t state = 0;
  {
    double u = rng.uniform01() * total_sojourn;
    for (std::size_t i = 0; i < n_states; ++i) {
      if (u < config_.mean_sojourns[i]) {
        state = i;
        break;
      }
      u -= config_.mean_sojourns[i];
    }
  }

  double t = t0;
  while (t < t1) {
    const double sojourn_end =
        t + (-std::log(rng.uniform01_open_below()) *
             config_.mean_sojourns[state]);
    const double seg_end = std::min(sojourn_end, t1);
    const double rate = config_.rates[state];
    if (rate > 0.0) {
      double a = t;
      while (true) {
        a += -std::log(rng.uniform01_open_below()) / rate;
        if (a >= seg_end) break;
        times.push_back(a);
      }
    }
    t = seg_end;
    // Jump to a uniformly random *other* state.
    const auto step = 1 + rng.uniform_int(n_states - 1);
    state = (state + step) % n_states;
  }
  return times;
}

}  // namespace wan::synth
