// Host-pair sampling for synthesized traces: a site talks to remote hosts
// with Zipf-like popularity (a few peers dominate), which matters when
// SYN/FIN analysis groups FTPDATA connections by host pair.
#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/rng.hpp"

namespace wan::synth {

/// Samples (local, remote) host pairs. Local hosts are uniform over a
/// small pool; remote hosts follow a truncated Zipf(s) law over a larger
/// pool, so a handful of popular servers attract much of the traffic.
class HostModel {
 public:
  HostModel(std::uint32_t n_local, std::uint32_t n_remote,
            double zipf_exponent = 1.0);

  std::uint32_t sample_local(rng::Rng& rng) const;
  std::uint32_t sample_remote(rng::Rng& rng) const;

  std::uint32_t n_local() const { return n_local_; }
  std::uint32_t n_remote() const { return n_remote_; }

 private:
  std::uint32_t n_local_;
  std::uint32_t n_remote_;
  std::vector<double> remote_cdf_;  // truncated-Zipf CDF over remote ids
};

}  // namespace wan::synth
