#include "src/synth/stream_synth.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/stream/shard.hpp"

namespace wan::synth {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shard membership of a conn id — stream::shard_of, with count 1 short-
// circuited so the unsharded path never touches the hash.
bool owns_conn(const SynthShard& shard, std::uint32_t conn_id) {
  return shard.count <= 1 ||
         stream::shard_of(conn_id, shard.count) == shard.index;
}

}  // namespace

// One traffic source as a lazily-activated, time-ordered record buffer.
// Subclasses activate one "unit" (a connection, a DNS exchange, an MBone
// session) per activate_next() call, pushing its records; frontier() is
// the start time of the next unactivated unit. Every record of a unit
// has time >= the unit's start and units activate in start order, so all
// buffered records below frontier() are final.
class StreamingPacketSynthesizer::Generator {
 public:
  Generator(double t0, double t1) : t0_(t0), t1_(t1) {}
  virtual ~Generator() = default;

  /// Time of the next emittable record, activating units as needed;
  /// kInf when exhausted.
  double next_time() {
    while ((heap_.empty() || frontier() <= heap_.top().time) &&
           activate_next()) {
    }
    return heap_.empty() ? kInf : heap_.top().time;
  }

  trace::PacketRecord pop() {
    trace::PacketRecord r = heap_.top().rec;
    heap_.pop();
    return r;
  }

 protected:
  /// Start time of the next unactivated unit; kInf when none remain.
  virtual double frontier() const = 0;
  /// Generates the next unit's records (pushing them); false when none
  /// remain.
  virtual bool activate_next() = 0;

  /// Clips to the capture window, like the batch path's final pass.
  void push(const trace::PacketRecord& r) {
    if (r.time < t0_ || r.time >= t1_) return;
    heap_.push({r.time, next_seq_++, r});
  }
  void push_all(const trace::PacketTrace& t) {
    for (const trace::PacketRecord& r : t.records()) push(r);
  }

  double t0_;
  double t1_;

 private:
  struct Item {
    double time;
    std::uint64_t seq;  ///< push order == generation order, for stable ties
    trace::PacketRecord rec;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

namespace {

// FULL-TEL, both directions. The eager phase burns through the same
// draws generate_connections makes, checkpointing the RNG before each
// connection so activation can replay exactly that connection's size
// and packet times; the responder stream (which the batch path consumes
// *after* all originator draws) is then walked lazily, one connection
// per activation, in the same order.
class TelnetGen final : public StreamingPacketSynthesizer::Generator {
 public:
  TelnetGen(const TelnetConfig& cfg, rng::Rng r, double t0, double t1,
            std::uint32_t first_id, SynthShard shard)
      : Generator(t0, t1),
        src_(cfg),
        first_id_(first_id),
        responder_rng_(0),
        shard_(shard) {
    starts_ = poisson_arrivals_hourly(r, cfg.profile, cfg.conns_per_day, t0,
                                      t1);
    checkpoints_.reserve(starts_.size());
    for (double s : starts_) {
      checkpoints_.push_back(r);
      const std::size_t n = src_.sample_size_packets(r);
      (void)src_.generate_packet_times(r, s, n, InterarrivalScheme::kTcplib);
    }
    responder_rng_ = r;
  }

  std::size_t connections() const { return starts_.size(); }

 protected:
  double frontier() const override {
    return idx_ < starts_.size() ? starts_[idx_] : kInf;
  }

  bool activate_next() override {
    if (idx_ >= starts_.size()) return false;
    rng::Rng r = checkpoints_[idx_];
    TelnetConnection c;
    c.start = starts_[idx_];
    const std::size_t n = src_.sample_size_packets(r);
    c.packet_times =
        src_.generate_packet_times(r, c.start, n, InterarrivalScheme::kTcplib);

    const auto id = first_id_ + static_cast<std::uint32_t>(idx_);
    trace::PacketTrace tmp("", t0_, t1_);
    src_.append_originator_packets(c, t0_, t1_, id, tmp);
    // The responder stream is one sequential walk shared by every
    // connection, so a sharded generator still generates every
    // connection's responder side — it just discards the records of
    // connections another shard owns, keeping the stream position (and
    // hence every owned connection's draws) exactly the serial path's.
    src_.append_responder_packets(responder_rng_, c, t0_, t1_, id,
                                  ResponderConfig{}, tmp);
    if (owns_conn(shard_, id)) push_all(tmp);
    ++idx_;
    return true;
  }

 private:
  TelnetSource src_;
  std::uint32_t first_id_;
  std::vector<double> starts_;
  std::vector<rng::Rng> checkpoints_;
  rng::Rng responder_rng_;
  SynthShard shard_;
  std::size_t idx_ = 0;
};

// The packetized bulk protocols. Conn ids were assigned in the batch
// concatenation order before sorting by start; each activation re-seeds
// bulk_conn_rng(stream_key, id), so activation order doesn't matter to
// the packets a connection gets.
class BulkGen final : public StreamingPacketSynthesizer::Generator {
 public:
  struct Entry {
    trace::ConnRecord conn;
    std::uint32_t id;
  };

  BulkGen(std::vector<Entry> entries, std::uint64_t stream_key,
          const PacketFillConfig& fill, double t0, double t1)
      : Generator(t0, t1),
        entries_(std::move(entries)),
        stream_key_(stream_key),
        fill_(fill) {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.conn.start < b.conn.start;
                     });
  }

 protected:
  double frontier() const override {
    return idx_ < entries_.size() ? entries_[idx_].conn.start : kInf;
  }

  bool activate_next() override {
    if (idx_ >= entries_.size()) return false;
    const Entry& e = entries_[idx_];
    rng::Rng r = bulk_conn_rng(stream_key_, e.id);
    trace::PacketTrace tmp("", t0_, t1_);
    fill_conn_packets(r, e.conn, fill_, e.id, tmp);
    push_all(tmp);
    ++idx_;
    return true;
  }

 private:
  std::vector<Entry> entries_;
  std::uint64_t stream_key_;
  PacketFillConfig fill_;
  std::size_t idx_ = 0;
};

// Poisson DNS exchanges, walked lazily in arrival order off the "dns"
// child stream (positioned just past the arrival draws, exactly where
// fill_dns_packets starts consuming per-exchange randomness).
class DnsGen final : public StreamingPacketSynthesizer::Generator {
 public:
  DnsGen(const DnsConfig& cfg, rng::Rng r, double t0, double t1,
         std::uint32_t first_id, SynthShard shard)
      : Generator(t0, t1), cfg_(cfg), first_id_(first_id), rng_(0),
        shard_(shard) {
    arrivals_ = poisson_arrivals(r, cfg.queries_per_hour / 3600.0, t0, t1);
    rng_ = r;
  }

  std::size_t connections() const { return arrivals_.size(); }

 protected:
  double frontier() const override {
    return idx_ < arrivals_.size() ? arrivals_[idx_] : kInf;
  }

  bool activate_next() override {
    if (idx_ >= arrivals_.size()) return false;
    const auto id = first_id_ + static_cast<std::uint32_t>(idx_);
    trace::PacketTrace tmp("", t0_, t1_);
    // rng_ is one sequential walk: generate every exchange, keep only
    // the owned ones (see TelnetGen's responder note).
    emit_dns_exchange(rng_, cfg_, arrivals_[idx_], t1_, id, tmp);
    if (owns_conn(shard_, id)) push_all(tmp);
    ++idx_;
    return true;
  }

 private:
  DnsConfig cfg_;
  std::uint32_t first_id_;
  rng::Rng rng_;
  std::vector<double> arrivals_;
  SynthShard shard_;
  std::size_t idx_ = 0;
};

// MBone audio sessions, same lazy-walk scheme as DnsGen.
class MboneGen final : public StreamingPacketSynthesizer::Generator {
 public:
  MboneGen(const MboneConfig& cfg, rng::Rng r, double t0, double t1,
           std::uint32_t first_id, SynthShard shard)
      : Generator(t0, t1), cfg_(cfg), first_id_(first_id), rng_(0),
        shard_(shard) {
    arrivals_ = poisson_arrivals(r, cfg.sessions_per_hour / 3600.0, t0, t1);
    rng_ = r;
  }

  std::size_t connections() const { return arrivals_.size(); }

 protected:
  double frontier() const override {
    return idx_ < arrivals_.size() ? arrivals_[idx_] : kInf;
  }

  bool activate_next() override {
    if (idx_ >= arrivals_.size()) return false;
    const auto id = first_id_ + static_cast<std::uint32_t>(idx_);
    trace::PacketTrace tmp("", t0_, t1_);
    emit_mbone_session(rng_, cfg_, arrivals_[idx_], t1_, id, tmp);
    if (owns_conn(shard_, id)) push_all(tmp);
    ++idx_;
    return true;
  }

 private:
  MboneConfig cfg_;
  std::uint32_t first_id_;
  rng::Rng rng_;
  std::vector<double> arrivals_;
  SynthShard shard_;
  std::size_t idx_ = 0;
};

}  // namespace

StreamingPacketSynthesizer::StreamingPacketSynthesizer(
    PacketDatasetConfig config, std::size_t chunk_size, SynthShard shard)
    : config_(std::move(config)), chunk_size_(chunk_size), shard_(shard) {
  if (shard_.count == 0 || shard_.index >= shard_.count)
    throw std::invalid_argument(
        "StreamingPacketSynthesizer: shard index must be < count");
  build();
}

StreamingPacketSynthesizer::~StreamingPacketSynthesizer() = default;

void StreamingPacketSynthesizer::build() {
  gens_.clear();
  const double t0 = config_.start_hour * 3600.0;
  const double t1 = t0 + config_.hours * 3600.0;
  info_ = {config_.name, t0, t1};

  rng::Rng root(config_.seed);
  const HostModel hosts(config_.n_local_hosts, config_.n_remote_hosts);

  // Child-stream derivation order must match synthesize_packet_trace —
  // child() advances the root, so this order IS the randomness.
  rng::Rng r_telnet = root.child("telnet");
  rng::Rng r_ftp = root.child("ftp");
  rng::Rng r_smtp = root.child("smtp");
  rng::Rng r_nntp = root.child("nntp");
  rng::Rng r_www = root.child("www");
  rng::Rng r_fill = root.child("fill");
  rng::Rng r_dns = config_.tcp_only ? rng::Rng(0) : root.child("dns");
  rng::Rng r_mbone = config_.tcp_only ? rng::Rng(0) : root.child("mbone");

  TelnetConfig tc = config_.telnet;
  tc.conns_per_day *= config_.volume_scale;
  auto telnet = std::make_unique<TelnetGen>(tc, r_telnet, t0, t1,
                                            /*first_id=*/1, shard_);
  auto next_conn_id =
      static_cast<std::uint32_t>(1 + telnet->connections());

  // Bulk connection skeletons in the batch concatenation order
  // (ftp, smtp, nntp, www) — that order fixes the conn-id assignment.
  trace::ConnTrace bulk("bulk", t0, t1);
  {
    FtpConfig fc = config_.ftp;
    fc.sessions_per_day *= config_.volume_scale;
    std::uint64_t next_session = 1;
    FtpSource(fc).generate(r_ftp, t0, t1, hosts, &next_session, bulk);
    SmtpConfig sc = config_.smtp;
    sc.conns_per_day *= config_.volume_scale;
    SmtpSource(sc).generate(r_smtp, t0, t1, hosts, bulk);
    NntpConfig nc = config_.nntp;
    nc.conns_per_day *= config_.volume_scale;
    NntpSource(nc).generate(r_nntp, t0, t1, hosts, bulk);
    WwwConfig wc = config_.www;
    wc.sessions_per_day *= config_.volume_scale;
    WwwSource(wc).generate(r_www, t0, t1, hosts, bulk);
  }
  const std::uint64_t stream_key = r_fill.next_u64();
  std::vector<BulkGen::Entry> entries;
  for (const trace::ConnRecord& c : bulk.records()) {
    if (!is_bulk_protocol(c.protocol)) continue;
    // Conn ids advance over the FULL entry set in every shard (the
    // numbering is global); a sharded generator then keeps only its own
    // entries. Each bulk connection re-seeds bulk_conn_rng(stream_key,
    // id), so dropped entries consume no randomness — this is where
    // sharded synthesis actually divides the packet-generation work.
    const std::uint32_t id = next_conn_id++;
    if (!owns_conn(shard_, id)) continue;
    entries.push_back({c, id});
  }
  auto bulk_gen = std::make_unique<BulkGen>(std::move(entries), stream_key,
                                            config_.fill, t0, t1);

  gens_.push_back(std::move(telnet));
  gens_.push_back(std::move(bulk_gen));

  if (!config_.tcp_only) {
    DnsConfig dc = config_.dns;
    dc.queries_per_hour *= config_.volume_scale;
    auto dns =
        std::make_unique<DnsGen>(dc, r_dns, t0, t1, next_conn_id, shard_);
    next_conn_id += static_cast<std::uint32_t>(dns->connections());
    MboneConfig mc = config_.mbone;
    mc.sessions_per_hour *= config_.volume_scale;
    auto mbone = std::make_unique<MboneGen>(mc, r_mbone, t0, t1,
                                            next_conn_id, shard_);
    gens_.push_back(std::move(dns));
    gens_.push_back(std::move(mbone));
  }
}

bool StreamingPacketSynthesizer::next(
    std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  while (chunk.size() < chunk_size_) {
    Generator* best = nullptr;
    double best_time = kInf;
    for (const auto& g : gens_) {
      const double t = g->next_time();
      // Strict < keeps the earliest-ranked generator on ties — the
      // batch concatenation order.
      if (t < best_time) {
        best_time = t;
        best = g.get();
      }
    }
    if (!best) break;
    chunk.push_back(best->pop());
  }
  return !chunk.empty();
}

void StreamingPacketSynthesizer::reset() { build(); }

}  // namespace wan::synth
