#include "src/synth/machine_sources.hpp"

#include <algorithm>
#include <cmath>

namespace wan::synth {

std::size_t sample_geometric(rng::Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  // Inverse transform: ceil(log(1-u) / log(1-p)).
  const double u = rng.uniform01();
  const double k = std::ceil(std::log1p(-u) / std::log1p(-p));
  return k < 1.0 ? 1 : static_cast<std::size_t>(k);
}

// ---------------------------------------------------------------- SMTP

SmtpSource::SmtpSource(SmtpConfig config)
    : config_(config),
      duration_dist_(config.duration_log_mean, config.duration_log_sd),
      bytes_dist_(config.bytes_log_mean, config.bytes_log_sd) {}

void SmtpSource::emit(rng::Rng& rng, double start, const HostModel& hosts,
                      trace::ConnTrace& out) const {
  trace::ConnRecord r;
  r.start = start;
  r.duration = duration_dist_.sample(rng);
  r.protocol = trace::Protocol::kSmtp;
  r.src_host = hosts.sample_remote(rng);  // mail mostly arrives from afar
  r.dst_host = hosts.sample_local(rng);
  r.bytes_orig = static_cast<std::uint64_t>(bytes_dist_.sample(rng));
  r.bytes_resp = 300 + rng.uniform_int(300);
  out.add(r);
}

void SmtpSource::generate(rng::Rng& rng, double t0, double t1,
                          const HostModel& hosts,
                          trace::ConnTrace& out) const {
  // Split the daily volume between singleton deliveries (Poisson-hourly)
  // and mailing-list explosion batches.
  const double singleton_per_day =
      config_.conns_per_day * (1.0 - config_.batch_fraction);
  const double batch_triggers_per_day = config_.conns_per_day *
                                        config_.batch_fraction /
                                        config_.batch_mean_size;

  for (double t : poisson_arrivals_hourly(rng, config_.profile,
                                          singleton_per_day, t0, t1)) {
    emit(rng, t, hosts, out);
  }
  for (double trigger : poisson_arrivals_hourly(
           rng, config_.profile, batch_triggers_per_day, t0, t1)) {
    const std::size_t n = sample_geometric(rng, config_.batch_mean_size);
    double t = trigger;
    for (std::size_t i = 0; i < n && t < t1; ++i) {
      emit(rng, t, hosts, out);
      t += -std::log(rng.uniform01_open_below()) * config_.batch_gap_mean;
    }
  }
}

// ---------------------------------------------------------------- NNTP

NntpSource::NntpSource(NntpConfig config)
    : config_(config),
      cascade_gap_dist_(config.cascade_gap_log_mean, config.cascade_gap_log_sd),
      duration_dist_(config.duration_log_mean, config.duration_log_sd),
      bytes_dist_(config.bytes_log_mean, config.bytes_log_sd) {}

void NntpSource::emit(rng::Rng& rng, double start, const HostModel& hosts,
                      trace::ConnTrace& out) const {
  trace::ConnRecord r;
  r.start = start;
  r.duration = duration_dist_.sample(rng);
  r.protocol = trace::Protocol::kNntp;
  r.src_host = hosts.sample_local(rng);
  r.dst_host = hosts.sample_remote(rng);
  r.bytes_orig = static_cast<std::uint64_t>(bytes_dist_.sample(rng));
  r.bytes_resp = static_cast<std::uint64_t>(bytes_dist_.sample(rng) * 0.3);
  out.add(r);
}

void NntpSource::generate(rng::Rng& rng, double t0, double t1,
                          const HostModel& hosts,
                          trace::ConnTrace& out) const {
  // Timer-driven peers: strictly periodic with bounded jitter — the
  // periodicity that makes NNTP arrivals decisively non-Poisson.
  const double span = t1 - t0;
  double timer_volume = 0.0;
  for (std::size_t peer = 0; peer < config_.n_peers; ++peer) {
    const double phase = rng.uniform(0.0, config_.timer_period);
    for (double t = t0 + phase; t < t1; t += config_.timer_period) {
      const double jittered =
          t + rng.uniform(-config_.timer_jitter, config_.timer_jitter);
      if (jittered < t0 || jittered >= t1) continue;
      emit(rng, jittered, hosts, out);
      timer_volume += 1.0;
    }
  }

  // Flooding cascades supply the rest of the daily volume.
  const double total_target = config_.conns_per_day * span / 86400.0;
  const double cascade_conns = std::max(0.0, total_target - timer_volume);
  const double triggers_per_day =
      cascade_conns / config_.cascade_mean_size * 86400.0 / span;
  for (double trigger : poisson_arrivals_hourly(rng, config_.profile,
                                                triggers_per_day, t0, t1)) {
    const std::size_t n = sample_geometric(rng, config_.cascade_mean_size);
    double t = trigger;
    for (std::size_t i = 0; i < n && t < t1; ++i) {
      emit(rng, t, hosts, out);
      t += cascade_gap_dist_.sample(rng);
    }
  }
}

}  // namespace wan::synth
