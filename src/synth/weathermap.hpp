// The periodic "weather-map" FTP traffic of [35]: a timer-driven job at
// one host fetching weather imagery from one remote server at a fixed
// period. Section III notes this traffic was REMOVED before the Poisson
// analysis "to avoid skewing our results" — so the synthesizer can
// inject it, and trace/periodic.hpp can find and strip it, reproducing
// the paper's preprocessing step mechanically.
#pragma once

#include <cstdint>

#include "src/dist/lognormal.hpp"
#include "src/rng/rng.hpp"
#include "src/trace/conn_trace.hpp"

namespace wan::synth {

struct WeatherMapConfig {
  double period = 3600.0;     ///< one fetch per hour
  double jitter = 15.0;       ///< uniform +- seconds around each tick
  std::uint32_t local_host = 0;
  std::uint32_t remote_host = 1;
  double bytes_log_mean = 10.6;  ///< ln bytes (~40 KB map)
  double bytes_log_sd = 0.3;
  double rate_bytes_per_sec = 20000.0;
};

/// Emits the weather-map job's FTP sessions (one control + one FTPDATA
/// per period tick) into `out`.
class WeatherMapSource {
 public:
  explicit WeatherMapSource(WeatherMapConfig config);

  void generate(rng::Rng& rng, double t0, double t1,
                std::uint64_t* next_session_id, trace::ConnTrace& out) const;

  const WeatherMapConfig& config() const { return config_; }

 private:
  WeatherMapConfig config_;
  dist::LogNormal bytes_dist_;
};

}  // namespace wan::synth
