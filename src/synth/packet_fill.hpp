// Packetization of connection records for link-level trace synthesis
// (Figs. 10-13): given SYN/FIN-style connection records, emit a plausible
// packet stream. Bulk transfers send ~512-byte data packets paced across
// the connection's duration with window-echo jitter (Section VII notes
// FTPDATA timing is network-determined, roughly constant-rate over larger
// scales); interactive protocols are handled by their own sources.
//
// Also provides the non-TCP background of the link traces: DNS
// request/reply pairs and constant-rate MBone audio.
#pragma once

#include <cstdint>

#include "src/rng/rng.hpp"
#include "src/synth/arrivals.hpp"
#include "src/synth/host_model.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::synth {

struct PacketFillConfig {
  double data_packet_bytes = 512.0;  ///< typical 1994 WAN MSS
  double pacing_jitter = 0.3;        ///< +-30% per-gap jitter
  std::size_t max_packets_per_conn = 2'000'000;

  /// When set, large FTPDATA connections are paced by the round-based
  /// TCP model (slow start + AIMD) instead of uniform jittered gaps —
  /// Section VII's point that FTPDATA timing is congestion-control
  /// determined. Departures are rescaled to the connection's recorded
  /// duration.
  bool tcp_dynamics = false;
  std::size_t tcp_min_packets = 200;  ///< smaller transfers stay uniform
  double tcp_rtt = 0.1;
  std::size_t tcp_buffer = 20;
  /// The TCP model runs in *normalized* time at this bottleneck rate
  /// (BDP = rate * rtt packets) and its departures are then rescaled to
  /// the connection's recorded duration — only the window *structure*
  /// (slow-start ramp, AIMD sawtooth) is imprinted, not absolute rates.
  double tcp_bottleneck_rate = 100.0;
};

/// True for the bulk-transfer family fill_bulk_packets packetizes
/// (FTPDATA, FTP control, SMTP, NNTP, WWW, X11).
bool is_bulk_protocol(trace::Protocol p) noexcept;

/// The per-connection packetization stream: a connection's pacing
/// randomness depends only on (stream_key, conn_id), never on how many
/// connections were filled before it — which is what lets fill run over
/// connections in any order (parallel batch fill, lazy streaming fill)
/// and still emit identical packets. stream_key is one draw from the
/// fill stream; the multiplier spreads consecutive conn ids across seed
/// space before Xoshiro's SplitMix64 seed expansion.
rng::Rng bulk_conn_rng(std::uint64_t stream_key,
                       std::uint32_t conn_id) noexcept;

/// Packetizes one bulk connection (both directions, paced over its
/// duration) as conn `id`, drawing jitter from `rng` — callers pass
/// bulk_conn_rng(stream_key, id).
void fill_conn_packets(rng::Rng& rng, const trace::ConnRecord& c,
                       const PacketFillConfig& config, std::uint32_t id,
                       trace::PacketTrace& out);

/// Emits data packets for every connection in `conns` whose protocol is
/// in the bulk family (FTPDATA, SMTP, NNTP, WWW, FTP control, X11);
/// both directions, paced over the connection duration. conn ids are
/// assigned from *next_conn_id in record order. Runs the per-connection
/// fills in parallel; output is identical for any thread count (and to
/// a serial fill) because each connection owns a bulk_conn_rng stream
/// and parts are concatenated in record order.
void fill_bulk_packets(rng::Rng& rng, const trace::ConnTrace& conns,
                       const PacketFillConfig& config,
                       std::uint32_t* next_conn_id, trace::PacketTrace& out);

struct DnsConfig {
  double queries_per_hour = 4000.0;
  double reply_delay_log_mean = -2.5;  ///< ln seconds (~80 ms)
  double reply_delay_log_sd = 1.0;
};

/// One DNS exchange: a query packet at `t` plus its reply (dropped if
/// the sampled reply time lands past t1). fill_dns_packets calls this
/// once per Poisson arrival; a streaming synthesizer calls it lazily at
/// the same rng position and gets the identical packets.
void emit_dns_exchange(rng::Rng& rng, const DnsConfig& config, double t,
                       double t1, std::uint32_t id, trace::PacketTrace& out);

/// Poisson DNS query/reply pairs (UDP); each query is one small packet,
/// each reply another.
void fill_dns_packets(rng::Rng& rng, const DnsConfig& config, double t0,
                      double t1, std::uint32_t* next_conn_id,
                      trace::PacketTrace& out);

struct MboneConfig {
  double sessions_per_hour = 1.5;
  double session_log_mean = 6.5;  ///< ln seconds (~11 min)
  double session_log_sd = 0.8;
  double packet_interval = 0.04;  ///< 25 pkt/s audio
  std::uint16_t packet_bytes = 320;
};

/// One MBone session starting at `start`: samples its length, then emits
/// constant-rate audio packets until it ends (or t1). Same lazy-call
/// contract as emit_dns_exchange.
void emit_mbone_session(rng::Rng& rng, const MboneConfig& config,
                        double start, double t1, std::uint32_t id,
                        trace::PacketTrace& out);

/// Constant-rate multicast audio sessions — the UDP traffic that does not
/// back off under congestion (Section VII-C2).
void fill_mbone_packets(rng::Rng& rng, const MboneConfig& config, double t0,
                        double t1, std::uint32_t* next_conn_id,
                        trace::PacketTrace& out);

}  // namespace wan::synth
