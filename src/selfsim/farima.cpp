#include "src/selfsim/farima.hpp"

#include <stdexcept>

#include "src/dist/normal.hpp"
#include "src/par/parallel.hpp"
#include "src/selfsim/chunk_rng.hpp"

namespace wan::selfsim {

std::vector<double> farima_ma_coefficients(double d, std::size_t order) {
  if (!(d > -0.5 && d < 0.5))
    throw std::invalid_argument("farima: d must be in (-1/2, 1/2)");
  std::vector<double> psi(order);
  if (order == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t j = 1; j < order; ++j) {
    // psi_j = psi_{j-1} * (j - 1 + d) / j.
    psi[j] = psi[j - 1] * ((static_cast<double>(j) - 1.0 + d) /
                           static_cast<double>(j));
  }
  return psi;
}

std::vector<double> generate_farima(rng::Rng& rng, std::size_t n, double d,
                                    double sigma, std::size_t ma_order) {
  const auto psi = farima_ma_coefficients(d, ma_order);
  if (n == 0) return {};

  // Innovations for t = -(ma_order-1) .. n-1, drawn from per-chunk
  // streams (chunk_rng.hpp) so generation parallelizes with the same
  // values at any thread count. One u64 leaves the caller's rng (the
  // stream key), keeping successive calls independent.
  const std::uint64_t stream_key = rng.next_u64();
  std::vector<double> eps(n + ma_order - 1);
  const std::size_t n_eps = eps.size();
  const std::size_t n_chunks = (n_eps + kSynthesisChunk - 1) / kSynthesisChunk;
  par::parallel_for(0, n_chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      rng::Rng chunk = chunk_stream_rng(stream_key, c);
      const std::size_t b = c * kSynthesisChunk;
      const std::size_t e =
          b + kSynthesisChunk < n_eps ? b + kSynthesisChunk : n_eps;
      for (std::size_t i = b; i < e; ++i)
        eps[i] = sigma * dist::standard_normal(chunk);
    }
  });

  // The O(n * ma_order) MA convolution is the hot loop; each x[t] is a
  // fixed-order sum over read-only eps, so chunking over t is
  // deterministic for free.
  std::vector<double> x(n, 0.0);
  par::parallel_for(0, n, 0, [&](std::size_t tb, std::size_t te) {
    for (std::size_t t = tb; t < te; ++t) {
      double s = 0.0;
      // eps index for lag j: eps[(t + ma_order - 1) - j].
      const std::size_t base = t + ma_order - 1;
      for (std::size_t j = 0; j < ma_order; ++j) s += psi[j] * eps[base - j];
      x[t] = s;
    }
  });
  return x;
}

}  // namespace wan::selfsim
