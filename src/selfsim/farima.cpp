#include "src/selfsim/farima.hpp"

#include <stdexcept>

#include "src/dist/normal.hpp"

namespace wan::selfsim {

std::vector<double> farima_ma_coefficients(double d, std::size_t order) {
  if (!(d > -0.5 && d < 0.5))
    throw std::invalid_argument("farima: d must be in (-1/2, 1/2)");
  std::vector<double> psi(order);
  if (order == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t j = 1; j < order; ++j) {
    // psi_j = psi_{j-1} * (j - 1 + d) / j.
    psi[j] = psi[j - 1] * ((static_cast<double>(j) - 1.0 + d) /
                           static_cast<double>(j));
  }
  return psi;
}

std::vector<double> generate_farima(rng::Rng& rng, std::size_t n, double d,
                                    double sigma, std::size_t ma_order) {
  const auto psi = farima_ma_coefficients(d, ma_order);
  // Innovations for t = -(ma_order-1) .. n-1.
  std::vector<double> eps(n + ma_order - 1);
  for (double& e : eps) e = sigma * dist::standard_normal(rng);

  std::vector<double> x(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double s = 0.0;
    // eps index for lag j: eps[(t + ma_order - 1) - j].
    const std::size_t base = t + ma_order - 1;
    for (std::size_t j = 0; j < ma_order; ++j) s += psi[j] * eps[base - j];
    x[t] = s;
  }
  return x;
}

}  // namespace wan::selfsim
