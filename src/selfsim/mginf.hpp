// The M/G/infinity construction of Appendix D (and its Appendix E
// counterexample): customers arrive Poisson(rate); each stays for an
// i.i.d. lifetime from a given distribution; X_t counts customers in the
// system at integer times.
//
//  * Pareto lifetimes with 1 < beta < 2  -> asymptotically self-similar,
//    long-range dependent count process (Appendix D);
//  * log-normal lifetimes               -> NOT long-range dependent
//    (Appendix E), though long-tailed enough to look correlated over
//    finite scales.
//
// The marginal of X_t is Poisson with mean rate * E[lifetime].
#pragma once

#include <cstddef>
#include <vector>

#include "src/dist/distribution.hpp"
#include "src/rng/rng.hpp"

namespace wan::selfsim {

struct MgInfConfig {
  double arrival_rate = 1.0;  ///< customers per unit time
  /// Warm-up span simulated before observation starts, so the system is
  /// (approximately) in steady state when counting begins. With
  /// heavy-tailed lifetimes true stationarity is unreachable in finite
  /// time; larger warm-up gets closer.
  double warmup = 1000.0;
  /// Lifetimes are clipped to this bound to keep memory finite.
  double max_lifetime = 1e7;
};

/// Simulates the count process X_0 .. X_{n-1} (observations at integer
/// times) of an M/G/inf queue with the given lifetime law.
std::vector<double> mginf_count_process(rng::Rng& rng,
                                        const dist::Distribution& lifetime,
                                        std::size_t n,
                                        const MgInfConfig& config = {});

/// Theoretical autocovariance r(k) = rate * Integral_k^inf (1 - F(x)) dx
/// (the paper's eq. 4), evaluated numerically. Returns +inf if the
/// integral diverges slowly enough that the cutoff is hit (beta <= 1).
double mginf_autocovariance(const dist::Distribution& lifetime, double rate,
                            double lag, double integration_cap = 1e9);

/// M/G/k: same arrivals and service law, but only k servers — Section
/// VII's suggestion for incorporating limited bandwidth. Returns the
/// number *in system* (in service + queued) at integer times.
std::vector<double> mgk_count_process(rng::Rng& rng,
                                      const dist::Distribution& service,
                                      std::size_t n_servers, std::size_t n,
                                      const MgInfConfig& config = {});

}  // namespace wan::selfsim
