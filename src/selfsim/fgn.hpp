// Fractional Gaussian noise — the "simplest type of self-similar
// process" the paper tests traces against (Section VII). Exact sampling
// via Davies-Harte circulant embedding (Davies & Harte 1987), which is
// O(n log n) and reproduces the target autocovariance exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "src/rng/rng.hpp"

namespace wan::selfsim {

/// Autocovariance of fGn with Hurst H and unit variance:
///   gamma(k) = 1/2 (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}).
/// Exactly self-similar: the aggregated process has the same correlation
/// structure (the r(k) of Appendix D's "exactly self-similar" display).
double fgn_autocovariance(std::size_t lag, double hurst);

/// Generates n points of zero-mean fGn with the given Hurst parameter and
/// marginal standard deviation. Throws if the circulant embedding is not
/// nonnegative definite (cannot happen for fGn with 0 < H < 1, but the
/// check guards numerical trouble).
std::vector<double> generate_fgn(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma = 1.0);

/// Fractional Brownian motion: cumulative sum of fGn (convenience).
std::vector<double> generate_fbm(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma = 1.0);

}  // namespace wan::selfsim
