// Fractional Gaussian noise — the "simplest type of self-similar
// process" the paper tests traces against (Section VII). Exact sampling
// via Davies-Harte circulant embedding (Davies & Harte 1987), which is
// O(n log n) and reproduces the target autocovariance exactly.
//
// The embedding is padded to the next power of two (the standard
// fast-fGn practice, cf. Paxson 1997), so every transform runs on the
// radix-2 planned FFT path; the circulant eigenvalues are cached per
// (embedding size, H) and the spectral noise is drawn from per-chunk
// RNG streams (src/selfsim/chunk_rng.hpp), so synthesis parallelizes
// with bit-identical output at any thread count.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/rng/rng.hpp"

namespace wan::selfsim {

/// Autocovariance of fGn with Hurst H and unit variance:
///   gamma(k) = 1/2 (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}).
/// Exactly self-similar: the aggregated process has the same correlation
/// structure (the r(k) of Appendix D's "exactly self-similar" display).
double fgn_autocovariance(std::size_t lag, double hurst);

/// Generates n points of zero-mean fGn with the given Hurst parameter and
/// marginal standard deviation. Throws if the circulant embedding is not
/// nonnegative definite (does not happen for fGn with 0 < H < 1, but the
/// check guards numerical trouble).
///
/// Consumes exactly one u64 from rng per call (the chunk-stream key), so
/// repeated calls yield independent paths; the path itself is a pure
/// function of (that key, n, hurst, sigma) and identical at any thread
/// count.
std::vector<double> generate_fgn(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma = 1.0);

/// Fractional Brownian motion: cumulative sum of fGn (convenience).
std::vector<double> generate_fbm(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma = 1.0);

/// Eigenvalues of the power-of-two circulant embedding used for n-point
/// generation: the real FFT of the covariance circle
///   c = [g(0) .. g(M/2), g(M/2 - 1) .. g(1)],  M = next_pow2(2 (n - 1)),
/// returned as the M/2 + 1 nonnegative-frequency values (tiny negative
/// roundoff clipped to zero). Results are shared through a small
/// thread-safe LRU keyed by (M, H) — the one-shot trigonometry/pow cost
/// per size, not per generated path. Exposed for tests and diagnostics.
std::shared_ptr<const std::vector<double>> fgn_circulant_eigenvalues(
    std::size_t n, double hurst);

/// Observability for the eigenvalue cache (tests).
struct FgnEigenCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};
FgnEigenCacheStats fgn_eigen_cache_stats();
void reset_fgn_eigen_cache();

}  // namespace wan::selfsim
