#include "src/selfsim/onoff.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::selfsim {

std::vector<double> onoff_aggregate_counts(
    rng::Rng& rng, const dist::Distribution& on_periods,
    const dist::Distribution& off_periods, std::size_t n_bins,
    const OnOffConfig& config) {
  if (config.n_sources == 0)
    throw std::invalid_argument("onoff: need at least one source");
  if (!(config.bin_width > 0.0))
    throw std::invalid_argument("onoff: bin_width must be > 0");

  const double horizon = static_cast<double>(n_bins) * config.bin_width;
  std::vector<double> counts(n_bins, 0.0);

  // Deposits `rate_on * overlap` into the bins covered by [a, b): the
  // fluid approximation of fixed-rate arrivals, which preserves exactly
  // the second-order structure the variance-time plot measures.
  const auto deposit = [&](double a, double b) {
    a = std::max(a, 0.0);
    b = std::min(b, horizon);
    if (a >= b) return;
    auto i = static_cast<std::size_t>(a / config.bin_width);
    while (a < b && i < n_bins) {
      const double bin_end = static_cast<double>(i + 1) * config.bin_width;
      const double seg_end = std::min(b, bin_end);
      counts[i] += config.rate_on * (seg_end - a);
      a = seg_end;
      ++i;
    }
  };

  for (std::size_t s = 0; s < config.n_sources; ++s) {
    double t = 0.0;
    bool on = true;
    if (config.randomize_phase) {
      on = rng.bernoulli(0.5);
      // Thin the first period to a uniform residual fraction.
      const double first = (on ? on_periods : off_periods).sample(rng) *
                           rng.uniform01();
      if (on) deposit(t, t + first);
      t += first;
      on = !on;
    }
    while (t < horizon) {
      const double len = (on ? on_periods : off_periods).sample(rng);
      if (on) deposit(t, t + len);
      t += len;
      on = !on;
    }
  }
  return counts;
}

}  // namespace wan::selfsim
