// Deterministic per-chunk RNG streams for parallel sample-path
// synthesis (fGn spectral noise, fARIMA innovations).
//
// The pattern mirrors synth::bulk_conn_rng: the caller draws ONE u64
// stream key from its ambient Rng (advancing it, so successive
// generator calls produce independent paths), and every fixed-size
// chunk of the index space derives its own child stream from
// (stream_key, chunk index) alone. Chunk boundaries are a pure function
// of the problem size — never of the thread count — so any scheduling
// of the chunks produces the same draws: parallel == serial bit-for-bit
// (pinned in tests/test_par_pool.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/rng/rng.hpp"

namespace wan::selfsim {

/// Indices per RNG chunk for the chunked generators. A fixed constant
/// (pure function of nothing) so the draw layout depends only on the
/// requested length.
inline constexpr std::size_t kSynthesisChunk = 1 << 14;

/// The chunk's private stream: depends only on (stream_key, chunk), so
/// chunks can be generated in any order — or concurrently — and still
/// draw identical values. The golden-ratio multiplier spreads
/// consecutive chunk indices across seed space before Xoshiro's
/// SplitMix64 seed expansion; +1 keeps chunk 0 off the raw key.
inline rng::Rng chunk_stream_rng(std::uint64_t stream_key,
                                 std::size_t chunk) noexcept {
  return rng::Rng(stream_key ^
                  (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chunk) + 1)));
}

}  // namespace wan::selfsim
