#include "src/selfsim/mginf.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace wan::selfsim {

std::vector<double> mginf_count_process(rng::Rng& rng,
                                        const dist::Distribution& lifetime,
                                        std::size_t n,
                                        const MgInfConfig& config) {
  if (!(config.arrival_rate > 0.0))
    throw std::invalid_argument("mginf: arrival_rate must be > 0");
  const double t_start = -config.warmup;
  const double t_end = static_cast<double>(n);

  // Difference array over the n observation times 0..n-1: a customer
  // occupying [a, a+s) is present at integer t iff a <= t < a+s.
  std::vector<double> diff(n + 1, 0.0);
  double t = t_start;
  while (true) {
    t += -std::log(rng.uniform01_open_below()) / config.arrival_rate;
    if (t >= t_end) break;
    const double s =
        std::min(lifetime.sample(rng), config.max_lifetime);
    const double lo = std::ceil(t);
    const double hi = std::ceil(t + s);  // first integer NOT covered
    if (hi <= 0.0 || lo >= t_end) continue;
    const auto i_lo = static_cast<std::size_t>(std::max(lo, 0.0));
    const auto i_hi =
        static_cast<std::size_t>(std::min(hi, static_cast<double>(n)));
    if (i_lo >= i_hi) continue;
    diff[i_lo] += 1.0;
    diff[i_hi] -= 1.0;
  }

  std::vector<double> counts(n, 0.0);
  double run = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    run += diff[i];
    counts[i] = run;
  }
  return counts;
}

double mginf_autocovariance(const dist::Distribution& lifetime, double rate,
                            double lag, double integration_cap) {
  // r(k) = rate * Integral_k^inf (1 - F(x)) dx, trapezoid on a geometric
  // grid from lag outward.
  double integral = 0.0;
  double t = std::max(lag, 1e-12);
  double step = std::max(1e-4, 1e-3 * t);
  while (t < integration_cap) {
    const double t2 = t + step;
    const double f1 = 1.0 - lifetime.cdf(t);
    const double f2 = 1.0 - lifetime.cdf(t2);
    integral += 0.5 * (f1 + f2) * step;
    t = t2;
    step *= 1.02;
    if (f2 < 1e-14) break;
  }
  return rate * integral;
}

std::vector<double> mgk_count_process(rng::Rng& rng,
                                      const dist::Distribution& service,
                                      std::size_t n_servers, std::size_t n,
                                      const MgInfConfig& config) {
  if (n_servers == 0)
    throw std::invalid_argument("mgk: need at least one server");
  if (!(config.arrival_rate > 0.0))
    throw std::invalid_argument("mgk: arrival_rate must be > 0");

  const double t_start = -config.warmup;
  const double t_end = static_cast<double>(n);

  // Event simulation: arrivals in time order; a min-heap of in-service
  // departure times; a FIFO of queued service demands.
  std::priority_queue<double, std::vector<double>, std::greater<>> in_service;
  std::queue<double> waiting;  // service demands of queued customers

  std::vector<double> counts(n, 0.0);
  std::size_t next_obs = 0;

  auto drain_until = [&](double now) {
    // Complete departures and promote queued customers, in departure
    // order, until the earliest remaining departure exceeds `now`.
    while (!in_service.empty() && in_service.top() <= now) {
      const double dep = in_service.top();
      // Record observations that occur before this departure.
      while (next_obs < n && static_cast<double>(next_obs) < dep) {
        counts[next_obs] =
            static_cast<double>(in_service.size() + waiting.size());
        ++next_obs;
      }
      in_service.pop();
      if (!waiting.empty()) {
        in_service.push(dep + waiting.front());
        waiting.pop();
      }
    }
    while (next_obs < n && static_cast<double>(next_obs) < now) {
      counts[next_obs] =
          static_cast<double>(in_service.size() + waiting.size());
      ++next_obs;
    }
  };

  double t = t_start;
  while (true) {
    t += -std::log(rng.uniform01_open_below()) / config.arrival_rate;
    if (t >= t_end) break;
    drain_until(t);
    const double s = std::min(service.sample(rng), config.max_lifetime);
    if (in_service.size() < n_servers) {
      in_service.push(t + s);
    } else {
      waiting.push(s);
    }
  }
  drain_until(t_end + 1.0);
  return counts;
}

}  // namespace wan::selfsim
