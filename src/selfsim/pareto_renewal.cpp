#include "src/selfsim/pareto_renewal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dist/pareto.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::selfsim {

std::vector<double> pareto_renewal_counts(rng::Rng& rng, std::size_t n_bins,
                                          const ParetoRenewalConfig& config) {
  if (!(config.bin_width > 0.0))
    throw std::invalid_argument("pareto_renewal: bin_width must be > 0");
  if (!(config.location > 0.0 && config.shape > 0.0))
    throw std::invalid_argument("pareto_renewal: bad Pareto parameters");
  const double horizon = static_cast<double>(n_bins) * config.bin_width;
  const double a = config.location;
  const double beta = config.shape;

  // The beta ~ 1 processes of Figs. 14-15 produce ~T/ln T arrivals over
  // the horizon — hundreds of millions at b = 1e7 — so the sampling loop
  // is written without virtual dispatch, and the canonical shapes avoid
  // pow() entirely: quantile(u) = a * u^{-1/beta}.
  enum class Fast { kInvU, kInvSqrtU, kInvU2, kGeneric };
  Fast fast = Fast::kGeneric;
  if (beta == 1.0) fast = Fast::kInvU;        // a / u
  else if (beta == 2.0) fast = Fast::kInvSqrtU;  // a / sqrt(u)
  else if (beta == 0.5) fast = Fast::kInvU2;  // a / u^2
  const double neg_inv_beta = -1.0 / beta;

  std::vector<double> counts(n_bins, 0.0);
  const double inv_bin = 1.0 / config.bin_width;
  double t = 0.0;
  while (true) {
    const double u = rng.uniform01_open_below();
    double gap;
    switch (fast) {
      case Fast::kInvU: gap = a / u; break;
      case Fast::kInvSqrtU: gap = a / std::sqrt(u); break;
      case Fast::kInvU2: gap = a / (u * u); break;
      default: gap = a * std::pow(u, neg_inv_beta); break;
    }
    t += gap;
    if (t >= horizon) break;
    const auto idx = static_cast<std::size_t>(t * inv_bin);
    counts[std::min(idx, n_bins - 1)] += 1.0;
  }
  return counts;
}

double paper_burst_bins_approx(double beta, double bin_width,
                               double location) {
  const double ratio = bin_width / location;
  if (std::abs(beta - 2.0) < 0.25) return ratio;
  if (std::abs(beta - 1.0) < 0.25) return std::log(std::max(ratio, 1.0));
  if (beta < 0.75) {
    // E[geometric(p)] with p ~ (a/b)^beta ... for beta = 1/2 the paper
    // gives E[Gamma(3/2)^{-1}]-style constants; the key property is
    // b-independence. Return the constant regime.
    return 1.0 / (1.0 - std::exp(-1.0));  // ~1.58 bins, b-independent
  }
  // Crude interpolation between the log and linear regimes.
  return std::pow(ratio, beta - 1.0) * std::log(std::max(ratio, 1.0));
}

BurstLullScaling burst_lull_scaling(rng::Rng& rng,
                                    std::span<const double> bin_widths,
                                    std::size_t n_bins, double location,
                                    double shape) {
  BurstLullScaling out;
  for (double b : bin_widths) {
    ParetoRenewalConfig cfg;
    cfg.location = location;
    cfg.shape = shape;
    cfg.bin_width = b;
    const auto counts = pareto_renewal_counts(rng, n_bins, cfg);
    const auto bl = stats::burst_lull_structure(counts);

    out.bin_widths.push_back(b);
    out.mean_burst_bins.push_back(bl.mean_burst_bins());
    out.mean_lull_bins.push_back(bl.mean_lull_bins());

    std::vector<double> lulls(bl.lull_lengths.begin(),
                              bl.lull_lengths.end());
    out.median_lull_bins.push_back(
        lulls.empty() ? 0.0 : stats::median(lulls));
  }
  return out;
}

}  // namespace wan::selfsim
