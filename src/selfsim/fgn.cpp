#include "src/selfsim/fgn.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "src/dist/normal.hpp"
#include "src/fft/fft.hpp"

namespace wan::selfsim {

double fgn_autocovariance(std::size_t lag, double hurst) {
  const double k = static_cast<double>(lag);
  const double two_h = 2.0 * hurst;
  if (lag == 0) return 1.0;
  return 0.5 * (std::pow(k + 1.0, two_h) - 2.0 * std::pow(k, two_h) +
                std::pow(k - 1.0, two_h));
}

std::vector<double> generate_fgn(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma) {
  if (n == 0) return {};
  if (!(hurst > 0.0 && hurst < 1.0))
    throw std::invalid_argument("generate_fgn: H must be in (0,1)");
  if (n == 1) return {sigma * dist::standard_normal(rng)};

  // Circulant embedding of the covariance over M = 2(n-1) points:
  // c = [g(0), g(1), ..., g(n-1), g(n-2), ..., g(1)].
  const std::size_t m = 2 * (n - 1);
  std::vector<fft::cd> c(m);
  for (std::size_t k = 0; k < n; ++k)
    c[k] = fft::cd(fgn_autocovariance(k, hurst), 0.0);
  for (std::size_t k = 1; k + 1 < n; ++k)
    c[m - k] = fft::cd(fgn_autocovariance(k, hurst), 0.0);

  auto eig = fft::fft(c);
  // Eigenvalues are real for a symmetric circulant; clip tiny negative
  // values from roundoff, reject materially negative ones.
  std::vector<double> lambda(m);
  for (std::size_t j = 0; j < m; ++j) {
    double v = eig[j].real();
    if (v < 0.0) {
      if (v < -1e-8 * static_cast<double>(m))
        throw std::runtime_error("generate_fgn: embedding not PSD");
      v = 0.0;
    }
    lambda[j] = v;
  }

  // Synthesize the spectrum with the right Hermitian symmetry.
  std::vector<fft::cd> z(m);
  const double half = static_cast<double>(m) / 2.0;
  z[0] = fft::cd(std::sqrt(lambda[0]) * dist::standard_normal(rng), 0.0);
  z[m / 2] =
      fft::cd(std::sqrt(lambda[m / 2]) * dist::standard_normal(rng), 0.0);
  for (std::size_t j = 1; j < m / 2; ++j) {
    const double a = dist::standard_normal(rng);
    const double b = dist::standard_normal(rng);
    const double s = std::sqrt(lambda[j] / 2.0);
    z[j] = fft::cd(s * a, s * b);
    z[m - j] = std::conj(z[j]);
  }

  auto x = fft::fft(z);
  std::vector<double> out(n);
  const double scale = sigma / std::sqrt(2.0 * half);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i].real() * scale;
  return out;
}

std::vector<double> generate_fbm(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma) {
  auto fgn = generate_fgn(rng, n, hurst, sigma);
  double cum = 0.0;
  for (double& v : fgn) {
    cum += v;
    v = cum;
  }
  return fgn;
}

}  // namespace wan::selfsim
