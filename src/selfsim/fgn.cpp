#include "src/selfsim/fgn.hpp"

#include <bit>
#include <cmath>
#include <complex>
#include <list>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/dist/normal.hpp"
#include "src/fft/fft.hpp"
#include "src/par/parallel.hpp"
#include "src/selfsim/chunk_rng.hpp"

namespace wan::selfsim {

double fgn_autocovariance(std::size_t lag, double hurst) {
  const double k = static_cast<double>(lag);
  const double two_h = 2.0 * hurst;
  if (lag == 0) return 1.0;
  return 0.5 * (std::pow(k + 1.0, two_h) - 2.0 * std::pow(k, two_h) +
                std::pow(k - 1.0, two_h));
}

namespace {

// Power-of-two embedding size for an n-point path (n >= 2): padding the
// minimal circle 2(n-1) up to 2^k keeps every transform on the radix-2
// plan path (no Bluestein) at the cost of at most 2x the embedding
// memory. The first n points of the longer exact path are themselves
// exact fGn.
std::size_t embedding_size(std::size_t n) {
  return fft::next_power_of_two(2 * (n - 1));
}

struct EigenKey {
  std::size_t m;
  std::uint64_t hurst_bits;
  bool operator<(const EigenKey& o) const {
    return m != o.m ? m < o.m : hurst_bits < o.hurst_bits;
  }
};

struct EigenCache {
  std::mutex mu;
  // front = most recently used; capacity kept tiny because an entry
  // holds M/2 + 1 doubles (8 MB at M = 2^21).
  static constexpr std::size_t kCapacity = 4;
  using Entry = std::pair<EigenKey, std::shared_ptr<const std::vector<double>>>;
  std::list<Entry> order;
  std::map<EigenKey, std::list<Entry>::iterator> index;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

EigenCache& eigen_cache() {
  static EigenCache cache;
  return cache;
}

std::shared_ptr<const std::vector<double>> compute_eigenvalues(
    std::size_t m, double hurst) {
  // Covariance circle c = [g(0)..g(m/2), g(m/2 - 1)..g(1)]. The pow()
  // calls dominate the one-shot cost, so the fill runs on the pool;
  // slots are disjoint per k and the values depend only on (k, H).
  std::vector<double> c(m);
  const std::size_t half = m / 2;
  par::parallel_for(0, half + 1, 4096, [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      const double g = fgn_autocovariance(k, hurst);
      c[k] = g;
      if (k != 0 && k != half) c[m - k] = g;
    }
  });

  auto spec = fft::rfft(c);
  auto lambda = std::make_shared<std::vector<double>>(half + 1);
  for (std::size_t j = 0; j <= half; ++j) {
    double v = spec[j].real();
    if (v < 0.0) {
      // Eigenvalues are real and (for fGn) nonnegative; clip roundoff,
      // reject materially negative values.
      if (v < -1e-8 * static_cast<double>(m))
        throw std::runtime_error("generate_fgn: embedding not PSD");
      v = 0.0;
    }
    (*lambda)[j] = v;
  }
  return lambda;
}

}  // namespace

std::shared_ptr<const std::vector<double>> fgn_circulant_eigenvalues(
    std::size_t n, double hurst) {
  if (n < 2)
    throw std::invalid_argument("fgn_circulant_eigenvalues: need n >= 2");
  const std::size_t m = embedding_size(n);
  const EigenKey key{m, std::bit_cast<std::uint64_t>(hurst)};

  EigenCache& cache = eigen_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (auto it = cache.index.find(key); it != cache.index.end()) {
      ++cache.hits;
      cache.order.splice(cache.order.begin(), cache.order, it->second);
      return it->second->second;
    }
    ++cache.misses;
  }
  // Built outside the lock: the fill/FFT enter parallel regions, and the
  // pool's help-while-waiting drain could re-enter this cache.
  auto built = compute_eigenvalues(m, hurst);
  std::lock_guard<std::mutex> lock(cache.mu);
  if (auto it = cache.index.find(key); it != cache.index.end()) {
    cache.order.splice(cache.order.begin(), cache.order, it->second);
    return it->second->second;
  }
  cache.order.emplace_front(key, built);
  cache.index[key] = cache.order.begin();
  while (cache.order.size() > EigenCache::kCapacity) {
    cache.index.erase(cache.order.back().first);
    cache.order.pop_back();
  }
  return built;
}

FgnEigenCacheStats fgn_eigen_cache_stats() {
  EigenCache& cache = eigen_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return {cache.hits, cache.misses, cache.order.size()};
}

void reset_fgn_eigen_cache() {
  EigenCache& cache = eigen_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.order.clear();
  cache.index.clear();
  cache.hits = cache.misses = 0;
}

std::vector<double> generate_fgn(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma) {
  if (n == 0) return {};
  if (!(hurst > 0.0 && hurst < 1.0))
    throw std::invalid_argument("generate_fgn: H must be in (0,1)");
  if (n == 1) return {sigma * dist::standard_normal(rng)};

  const std::size_t m = embedding_size(n);
  const std::size_t half = m / 2;
  const auto lambda = fgn_circulant_eigenvalues(n, hurst);

  // Spectral noise: the DC and Nyquist bins are real with one draw
  // each (chunk 0); interior bins j = 1..m/2-1 draw an (a, b) pair from
  // their chunk's private stream. The half spectrum is fed to the real
  // inverse transform — the full spectrum is its Hermitian mirror, so
  // the path is real by construction and the transform does half the
  // work of the old widen-to-complex synthesis.
  const std::uint64_t stream_key = rng.next_u64();
  std::vector<fft::cd> zh(half + 1);
  {
    rng::Rng edge = chunk_stream_rng(stream_key, 0);
    zh[0] = fft::cd(std::sqrt((*lambda)[0]) * dist::standard_normal(edge), 0.0);
    zh[half] =
        fft::cd(std::sqrt((*lambda)[half]) * dist::standard_normal(edge), 0.0);
  }
  const std::size_t interior = half - 1;  // j = 1..half-1
  const std::size_t n_chunks =
      interior == 0 ? 0 : (interior + kSynthesisChunk - 1) / kSynthesisChunk;
  par::parallel_for(0, n_chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      rng::Rng chunk = chunk_stream_rng(stream_key, c + 1);
      const std::size_t jb = 1 + c * kSynthesisChunk;
      const std::size_t je =
          jb + kSynthesisChunk < half ? jb + kSynthesisChunk : half;
      for (std::size_t j = jb; j < je; ++j) {
        const double a = dist::standard_normal(chunk);
        const double b = dist::standard_normal(chunk);
        const double s = std::sqrt((*lambda)[j] / 2.0);
        zh[j] = fft::cd(s * a, s * b);
      }
    }
  });

  const auto x = fft::irfft(zh, m);
  std::vector<double> out(n);
  // irfft normalizes by 1/m; the Davies-Harte sum wants the raw
  // spectral sum scaled by sigma/sqrt(m), hence sigma*sqrt(m) here.
  const double scale = sigma * std::sqrt(static_cast<double>(m));
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * scale;
  return out;
}

std::vector<double> generate_fbm(rng::Rng& rng, std::size_t n, double hurst,
                                 double sigma) {
  auto fgn = generate_fgn(rng, n, hurst, sigma);
  double cum = 0.0;
  for (double& v : fgn) {
    cum += v;
    v = cum;
  }
  return fgn;
}

}  // namespace wan::selfsim
