// One-call Hurst estimation battery: every estimator the paper uses (or
// that became standard right after it) applied to one count process,
// with the Beran goodness-of-fit verdict. This is the public entry point
// for "is this traffic self-similar, and with what H?".
#pragma once

#include <span>
#include <string>

#include "src/stats/beran.hpp"
#include "src/stats/gph.hpp"
#include "src/stats/rs_analysis.hpp"
#include "src/stats/variance_time.hpp"
#include "src/stats/whittle.hpp"

namespace wan::selfsim {

struct HurstReport {
  double vt_hurst = 0.5;        ///< variance-time slope estimate
  double rs_hurst = 0.5;        ///< rescaled-range estimate
  double gph_hurst = 0.5;       ///< log-periodogram estimate
  double whittle_fgn_hurst = 0.5;
  double whittle_fgn_stderr = 0.0;
  double whittle_farima_hurst = 0.5;
  double beran_p_value = 1.0;
  bool fgn_consistent = false;  ///< Beran verdict at 5%

  /// Median of the point estimates — a robust single answer.
  double consensus() const;

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

struct HurstReportConfig {
  /// Frequency-domain estimators run on a series aggregated down to at
  /// most this length (keeps Whittle affordable on multi-hour traces).
  std::size_t max_series_length = 8192;
  std::size_t vt_m_lo = 4;       ///< variance-time fit range
  std::size_t vt_m_hi = 4000;
  double alpha = 0.05;           ///< Beran significance level
};

/// Runs the battery on a count series (length >= 512).
HurstReport hurst_report(std::span<const double> counts,
                         const HurstReportConfig& config = {});

}  // namespace wan::selfsim
