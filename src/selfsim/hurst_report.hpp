// One-call Hurst estimation battery: every estimator the paper uses (or
// that became standard right after it) applied to one count process,
// with the Beran goodness-of-fit verdict. This is the public entry point
// for "is this traffic self-similar, and with what H?".
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/stats/beran.hpp"
#include "src/stats/gph.hpp"
#include "src/stats/rs_analysis.hpp"
#include "src/stats/variance_time.hpp"
#include "src/stats/whittle.hpp"

namespace wan::selfsim {

/// One level of the Whittle aggregation-stability sweep.
struct WhittleLevelFit {
  std::size_t aggregation = 1;   ///< block size relative to the analysis series
  std::size_t bins = 0;          ///< series length at this level
  double hurst = 0.5;
  double stderr_hurst = 0.0;
};

struct HurstReport {
  double vt_hurst = 0.5;        ///< variance-time slope estimate
  double rs_hurst = 0.5;        ///< rescaled-range estimate
  double gph_hurst = 0.5;       ///< log-periodogram estimate
  double whittle_fgn_hurst = 0.5;
  double whittle_fgn_stderr = 0.0;
  double whittle_farima_hurst = 0.5;
  double beran_p_value = 1.0;
  bool fgn_consistent = false;  ///< Beran verdict at 5%

  /// Whittle-fGn re-fit at successive 2x aggregations of the analysis
  /// series (paper Section VII: stable H across levels is the
  /// self-similar signature; a drifting H says otherwise). Entry 0 is
  /// the unaggregated fit above. All levels share one FFT through
  /// fft::SpectrumCascade and each fit warm-starts from the previous
  /// level's H, so the sweep costs far less than independent fits.
  std::vector<WhittleLevelFit> whittle_sweep;

  /// Median of the point estimates — a robust single answer.
  double consensus() const;

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

struct HurstReportConfig {
  /// Frequency-domain estimators run on a series aggregated down to at
  /// most this length (keeps Whittle affordable on multi-hour traces).
  std::size_t max_series_length = 8192;
  std::size_t vt_m_lo = 4;       ///< variance-time fit range
  std::size_t vt_m_hi = 4000;
  double alpha = 0.05;           ///< Beran significance level
  /// Extra 2x aggregation levels for the Whittle stability sweep
  /// (0 disables the sweep entirely, leaving whittle_sweep empty). The
  /// sweep also stops early when a level would fall below 512 bins or
  /// its length stops being a multiple of 4 (SpectrumCascade::can_halve).
  std::size_t whittle_sweep_levels = 3;
};

/// Runs the battery on a count series (length >= 512).
HurstReport hurst_report(std::span<const double> counts,
                         const HurstReportConfig& config = {});

}  // namespace wan::selfsim
