#include "src/selfsim/hurst_report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "src/fft/periodogram.hpp"
#include "src/stats/counting.hpp"

namespace wan::selfsim {

double HurstReport::consensus() const {
  std::vector<double> e = {vt_hurst, rs_hurst, gph_hurst, whittle_fgn_hurst,
                           whittle_farima_hurst};
  std::sort(e.begin(), e.end());
  return e[e.size() / 2];
}

std::string HurstReport::to_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "H estimates: VT %.3f | R/S %.3f | GPH %.3f | Whittle-fGn %.3f "
      "(+-%.3f) | Whittle-fARIMA %.3f\n"
      "consensus %.3f; Beran p = %.3f -> %s",
      vt_hurst, rs_hurst, gph_hurst, whittle_fgn_hurst, whittle_fgn_stderr,
      whittle_farima_hurst, consensus(), beran_p_value,
      fgn_consistent ? "consistent with fGn" : "NOT fGn");
  std::string out = buf;
  if (whittle_sweep.size() > 1) {
    out += "\nWhittle H by aggregation:";
    for (const WhittleLevelFit& level : whittle_sweep) {
      std::snprintf(buf, sizeof(buf), " M=%zu %.3f", level.aggregation,
                    level.hurst);
      out += buf;
    }
  }
  return out;
}

HurstReport hurst_report(std::span<const double> counts,
                         const HurstReportConfig& config) {
  if (counts.size() < 512)
    throw std::invalid_argument("hurst_report: need >= 512 observations");

  HurstReport out;
  const auto vt = stats::variance_time_plot(counts);
  out.vt_hurst = vt.hurst(config.vt_m_lo, config.vt_m_hi);

  // Aggregate for the frequency-domain and R/S estimators.
  std::vector<double> series(counts.begin(), counts.end());
  while (series.size() > config.max_series_length)
    series = stats::aggregate_mean(series, 2);

  out.rs_hurst = stats::rs_analysis(series).hurst();

  // One FFT serves every spectral consumer: the cascade's level-0
  // periodogram is bitwise the one fft::periodogram(series) returns, and
  // it flows through GPH, the Beran/Whittle-fGn fit and Whittle-fARIMA
  // unchanged; the Whittle stability sweep below then derives each
  // aggregated level's periodogram from the same spectrum algebraically
  // instead of re-running an FFT per level.
  fft::SpectrumCascade cascade(series);
  const auto pg = cascade.current();
  out.gph_hurst = stats::gph_from_periodogram(pg, series.size()).hurst;

  const auto beran =
      stats::beran_fgn_test_from_periodogram(pg, series.size(), config.alpha);
  out.whittle_fgn_hurst = beran.whittle.hurst;
  out.whittle_fgn_stderr = beran.whittle.stderr_hurst;
  out.beran_p_value = beran.p_value;
  out.fgn_consistent = beran.consistent;

  out.whittle_farima_hurst = stats::whittle_farima_from_periodogram(pg).hurst;

  // Aggregation-stability sweep: re-fit Whittle-fGn at 2x, 4x, ...
  // aggregations, each level's search warm-started from the previous
  // level's H (a self-similar series keeps H nearly constant across
  // levels, so the hint brackets in 3 objective evaluations).
  if (config.whittle_sweep_levels > 0) {
    out.whittle_sweep.push_back({1, cascade.length(), out.whittle_fgn_hurst,
                                 out.whittle_fgn_stderr});
    for (std::size_t k = 0; k < config.whittle_sweep_levels; ++k) {
      if (!cascade.can_halve() || cascade.length() / 2 < 512) break;
      cascade.halve();
      stats::WhittleOptions warm;
      warm.hurst_hint = out.whittle_sweep.back().hurst;
      const auto fit =
          stats::whittle_fgn_from_periodogram(cascade.current(), warm);
      out.whittle_sweep.push_back(
          {cascade.factor(), cascade.length(), fit.hurst, fit.stderr_hurst});
    }
  }
  return out;
}

}  // namespace wan::selfsim
