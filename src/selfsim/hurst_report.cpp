#include "src/selfsim/hurst_report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "src/fft/periodogram.hpp"
#include "src/stats/counting.hpp"

namespace wan::selfsim {

double HurstReport::consensus() const {
  std::vector<double> e = {vt_hurst, rs_hurst, gph_hurst, whittle_fgn_hurst,
                           whittle_farima_hurst};
  std::sort(e.begin(), e.end());
  return e[e.size() / 2];
}

std::string HurstReport::to_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "H estimates: VT %.3f | R/S %.3f | GPH %.3f | Whittle-fGn %.3f "
      "(+-%.3f) | Whittle-fARIMA %.3f\n"
      "consensus %.3f; Beran p = %.3f -> %s",
      vt_hurst, rs_hurst, gph_hurst, whittle_fgn_hurst, whittle_fgn_stderr,
      whittle_farima_hurst, consensus(), beran_p_value,
      fgn_consistent ? "consistent with fGn" : "NOT fGn");
  return buf;
}

HurstReport hurst_report(std::span<const double> counts,
                         const HurstReportConfig& config) {
  if (counts.size() < 512)
    throw std::invalid_argument("hurst_report: need >= 512 observations");

  HurstReport out;
  const auto vt = stats::variance_time_plot(counts);
  out.vt_hurst = vt.hurst(config.vt_m_lo, config.vt_m_hi);

  // Aggregate for the frequency-domain and R/S estimators.
  std::vector<double> series(counts.begin(), counts.end());
  while (series.size() > config.max_series_length)
    series = stats::aggregate_mean(series, 2);

  out.rs_hurst = stats::rs_analysis(series).hurst();

  // One periodogram serves all three spectral estimators (GPH, the
  // Beran/Whittle-fGn fit, Whittle-fARIMA): the same pg bits flow
  // through each, so the estimates are identical to the per-estimator
  // periodograms — the series FFT just runs once instead of three times.
  const auto pg = fft::periodogram(series);
  out.gph_hurst = stats::gph_from_periodogram(pg, series.size()).hurst;

  const auto beran =
      stats::beran_fgn_test_from_periodogram(pg, series.size(), config.alpha);
  out.whittle_fgn_hurst = beran.whittle.hurst;
  out.whittle_fgn_stderr = beran.whittle.stderr_hurst;
  out.beran_p_value = beran.p_value;
  out.fgn_consistent = beran.consistent;

  out.whittle_farima_hurst = stats::whittle_farima_from_periodogram(pg).hurst;
  return out;
}

}  // namespace wan::selfsim
