// ON/OFF source aggregation — the first of the paper's "methods for
// producing self-similar traffic" (Section VII-B, after [28]):
// multiplexing many sources that alternate between a fixed-rate ON state
// and a silent OFF state, with heavy-tailed period lengths, yields
// (asymptotically) self-similar aggregate traffic.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/dist/distribution.hpp"
#include "src/rng/rng.hpp"

namespace wan::selfsim {

struct OnOffConfig {
  std::size_t n_sources = 50;
  double rate_on = 1.0;     ///< arrivals per unit time while ON
  double bin_width = 1.0;   ///< observation bin width
  /// Each source starts in ON or OFF uniformly, with a randomized
  /// residual first period to reduce synchronization artifacts.
  bool randomize_phase = true;
};

/// Simulates the aggregate count process (arrivals per bin) of N ON/OFF
/// sources over n_bins. ON and OFF period lengths are drawn i.i.d. from
/// the given distributions (use Pareto with 1 < beta < 2 for
/// self-similarity; exponential for the Poisson-like control).
std::vector<double> onoff_aggregate_counts(
    rng::Rng& rng, const dist::Distribution& on_periods,
    const dist::Distribution& off_periods, std::size_t n_bins,
    const OnOffConfig& config = {});

}  // namespace wan::selfsim
