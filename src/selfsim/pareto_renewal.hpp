// Appendix C: the "pseudo-self-similar" count process built from i.i.d.
// Pareto interarrivals with beta ~ 1. Its burst/lull structure looks
// self-similar over many finite time scales (Figs. 14-15) — bursts grow
// only logarithmically with bin width while lull lengths (in bins) are
// *distribution-invariant* under aggregation — yet the process is NOT
// truly long-range dependent: for beta <= 1 the expected lull is
// infinite, every bin is eventually empty with probability 1, and the
// autocorrelation is summable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/rng/rng.hpp"
#include "src/stats/counting.hpp"

namespace wan::selfsim {

struct ParetoRenewalConfig {
  double location = 1.0;  ///< Pareto location a
  double shape = 1.0;     ///< Pareto shape beta (the paper plots beta = 1)
  double bin_width = 1e3; ///< b; Figs. 14/15 use 1e3 and 1e7
};

/// Generates the count process of n_bins bins of width b, with arrivals
/// at partial sums of i.i.d. Pareto(a, beta) interarrivals. Memory is
/// O(n_bins) regardless of the (possibly astronomically large) number of
/// arrivals, because counts are accumulated on the fly.
std::vector<double> pareto_renewal_counts(rng::Rng& rng, std::size_t n_bins,
                                          const ParetoRenewalConfig& config);

/// The paper's Appendix C approximation for the expected number of bins
/// spanned by a burst of occupied bins:
///   beta = 2   : ~ b / a          (bursts lengthen linearly with b)
///   beta = 1   : ~ log(b / a)     (bursts lengthen only logarithmically)
///   beta = 1/2 : ~ E[Gamma(3/2)]-ish constant (independent of b!)
/// Evaluated for those three canonical shapes; other shapes interpolate
/// crudely between regimes and are primarily for qualitative use.
double paper_burst_bins_approx(double beta, double bin_width,
                               double location);

/// Burst/lull statistics of a generated count process at several bin
/// widths — the Appendix C aggregation-invariance experiment in one call.
struct BurstLullScaling {
  std::vector<double> bin_widths;
  std::vector<double> mean_burst_bins;
  std::vector<double> mean_lull_bins;
  std::vector<double> median_lull_bins;
};

BurstLullScaling burst_lull_scaling(rng::Rng& rng,
                                    std::span<const double> bin_widths,
                                    std::size_t n_bins, double location,
                                    double shape);

}  // namespace wan::selfsim
