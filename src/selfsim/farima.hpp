// Fractional ARIMA(0, d, 0) — the alternative long-memory family the
// paper names when traces show long-range dependence but fail the fGn
// goodness-of-fit ("better fits to other self-similar models such as
// fractional ARIMA processes", Section VII-D).
#pragma once

#include <cstddef>
#include <vector>

#include "src/rng/rng.hpp"

namespace wan::selfsim {

/// Generates n points of fractional ARIMA(0, d, 0) with innovation sd
/// sigma via the truncated MA(inf) representation
///   X_t = sum_j psi_j eps_{t-j},  psi_j = Gamma(j + d) / (Gamma(j+1) Gamma(d)),
/// truncating at `ma_order` terms. Long-range dependent for 0 < d < 1/2
/// with Hurst H = d + 1/2.
std::vector<double> generate_farima(rng::Rng& rng, std::size_t n, double d,
                                    double sigma = 1.0,
                                    std::size_t ma_order = 4096);

/// The MA coefficients psi_0 .. psi_{order-1} (exposed for tests).
std::vector<double> farima_ma_coefficients(double d, std::size_t order);

}  // namespace wan::selfsim
