#include "src/monitor/drift.hpp"

#include <cstdio>

namespace wan::monitor {

namespace {

std::string fmt(const char* format, double a, double b, double c) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), format, a, b, c);
  return buf;
}

}  // namespace

DriftTracker::DriftTracker(std::string name, const DriftConfig& config)
    : name_(std::move(name)), config_(config) {}

std::size_t DriftTracker::ring_pass_count() const {
  std::size_t n = 0;
  for (bool v : verdicts_)
    if (v) ++n;
  return n;
}

void DriftTracker::on_report(const stream::WindowReport& report,
                             std::vector<std::string>& out) {
  // ---- Poisson verdict ring -------------------------------------
  if (report.poisson) {
    verdicts_.push_back(report.poisson->poisson);
    if (verdicts_.size() > config_.verdict_window) verdicts_.pop_front();
    ++reports_since_announce_;

    const std::size_t pass = ring_pass_count();
    const std::size_t fail = verdicts_.size() - pass;
    if (verdicts_.size() == config_.verdict_window) {
      if (state_ == 0) {
        // First full ring: adopt the majority as the initial state.
        state_ = pass * 2 >= verdicts_.size() ? 1 : -1;
        out.push_back(name_ + " arrivals " +
                      (state_ > 0 ? "look Poisson" : "are not Poisson") +
                      " (Appendix A " +
                      (state_ > 0 ? "pass " + std::to_string(pass)
                                  : "fails " + std::to_string(fail)) +
                      "/" + std::to_string(verdicts_.size()) + " windows)");
        reports_since_announce_ = 0;
      } else if (state_ > 0 && fail >= config_.flip_count) {
        state_ = -1;
        out.push_back(name_ + " arrivals no longer Poisson (Appendix A "
                      "fails " + std::to_string(fail) + "/" +
                      std::to_string(verdicts_.size()) + " windows)");
        reports_since_announce_ = 0;
      } else if (state_ < 0 && pass >= config_.flip_count) {
        state_ = 1;
        out.push_back(name_ + " arrivals now Poisson (Appendix A pass " +
                      std::to_string(pass) + "/" +
                      std::to_string(verdicts_.size()) + " windows)");
        reports_since_announce_ = 0;
      }
    }
    if (state_ != 0 && reports_since_announce_ >= config_.confirm_every) {
      out.push_back(name_ + " arrivals still " +
                    (state_ > 0 ? "Poisson (Appendix A pass " +
                                      std::to_string(pass)
                                : "non-Poisson (Appendix A fails " +
                                      std::to_string(fail)) +
                    "/" + std::to_string(verdicts_.size()) + " windows)");
      reports_since_announce_ = 0;
    }
  }

  // ---- Hurst drift against the lookback reference ----------------
  if (report.whittle_warm) {  // skip the cold-start fit's transient
    const double h = report.whittle.hurst;
    // Reference: the newest H at least `lookback` capture-seconds old.
    // Pop older entries behind it — they can never be the reference
    // again — but keep the reference itself until one ages past it.
    while (hurst_history_.size() >= 2 &&
           hurst_history_[1].first <= report.t1 - config_.hurst_lookback)
      hurst_history_.pop_front();
    if (!hurst_history_.empty() &&
        hurst_history_.front().first <= report.t1 - config_.hurst_lookback) {
      const double ref = hurst_history_.front().second;
      if (h - ref >= config_.hurst_threshold ||
          ref - h >= config_.hurst_threshold) {
        out.push_back(name_ +
                      fmt(" H drifted %.2f -> %.2f over the last %.0f s",
                          ref, h, report.t1 - hurst_history_.front().first));
        // Re-base at the drifted-to level: the shift announces once.
        hurst_history_.clear();
      }
    }
    hurst_history_.emplace_back(report.t1, h);
  }
}

}  // namespace wan::monitor
