// Drift detection over a window-report stream: turns the per-slide
// numbers into the few human-readable state transitions an operator
// actually wants to see.
//
// Two trackers per engine, both with hysteresis so a single noisy
// window cannot flap the state:
//
//   * Poisson verdict — a ring of the last `verdict_window` windows'
//     Appendix-A verdicts. The announced state flips only when at
//     least `flip_count` of the ring disagree with it (8 of 10 by
//     default), and every `confirm_every` reports a "still ..." line
//     restates the current state with the ring tally, e.g.
//       TELNET arrivals still Poisson (Appendix A pass 9/10 windows)
//
//   * Hurst drift — the Whittle H of each report is compared against
//     the value from ~`hurst_lookback` capture-seconds earlier. A move
//     of at least `hurst_threshold` announces
//       FTPDATA H drifted 0.71 -> 0.83 over the last 3600 s
//     and then re-bases: the drifted-to level becomes the new
//     reference, so a level shift announces once instead of once per
//     slide while the old value ages out of the lookback.
//
// Everything here is a pure function of the report sequence — no wall
// clock, no randomness — so monitor output stays byte-reproducible.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "src/stream/window_analyzer.hpp"

namespace wan::monitor {

struct DriftConfig {
  std::size_t verdict_window = 10;  ///< Poisson verdicts remembered
  std::size_t flip_count = 8;       ///< disagreeing verdicts to flip state
  std::size_t confirm_every = 12;   ///< "still ..." cadence, in reports
  double hurst_lookback = 3600.0;   ///< compare H against this long ago
  double hurst_threshold = 0.1;     ///< |dH| that counts as drift
};

class DriftTracker {
 public:
  DriftTracker(std::string name, const DriftConfig& config);

  /// Consumes one report; appends zero or more announcement lines.
  void on_report(const stream::WindowReport& report,
                 std::vector<std::string>& out);

  /// Current announced Poisson state: +1 Poisson, -1 not, 0 undecided.
  int poisson_state() const { return state_; }

 private:
  std::size_t ring_pass_count() const;

  std::string name_;
  DriftConfig config_;

  std::deque<bool> verdicts_;  ///< last N windows' Appendix-A verdicts
  int state_ = 0;
  std::size_t reports_since_announce_ = 0;

  std::deque<std::pair<double, double>> hurst_history_;  ///< (t1, H)
};

}  // namespace wan::monitor
