// Tail-follow pcap source: the daemon's unbounded input. Follows a
// capture file that another process is still appending to (tcpdump -w,
// a log rotator's current file) or a pipe carrying a live capture, and
// decodes exactly the records that are complete *right now* — a
// mid-record partial write is held in the buffer until the rest of its
// bytes land, never decoded early and never re-read.
//
// The crux is re-using MmapPcapReader's clean-EOF/truncation taxonomy
// with the opposite default: for the offline readers a short tail is
// terminal (truncated_records), but for a growing file "short" just
// means "the writer hasn't finished this record yet". So the poll
// verdicts are:
//
//   * kProgress     — at least one complete record decoded;
//   * kCaughtUp     — no complete record available; the next append may
//                     complete one, poll again after a delay;
//   * kEndOfStream  — a pipe delivered EOF at a record boundary (a pipe
//                     cannot grow back; a regular file never reports
//                     this, because a future append is always possible);
//   * kCorrupt      — a structural defect that no future append can
//                     repair: bad global header, oversized record
//                     length, or a pipe EOF mid-record. Counted in the
//                     same ledger rows the offline readers use
//                     (bad_headers / oversized_records /
//                     truncated_records), through the same report()
//                     choke point — strict mode therefore throws
//                     IngestError from poll() exactly where the offline
//                     readers would.
//
// Bytes are consumed exactly once: a regular file is read with pread at
// a monotonically advancing offset (the file is never seeked, so an
// external writer's position is untouched), a pipe with nonblocking
// read. Memory is bounded by one record plus the read block, like
// BufferedByteSource.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/pcap_decode.hpp"
#include "src/ingest/raw_packet.hpp"

namespace wan::monitor {

enum class PollStatus {
  kProgress,
  kCaughtUp,
  kEndOfStream,
  kCorrupt,
};

const char* to_string(PollStatus s) noexcept;

class TailPcapSource {
 public:
  /// Opens `path` for following; "-" follows standard input as a pipe.
  /// Throws std::runtime_error when the path cannot be opened. The
  /// global header is parsed lazily — a file that does not yet hold 24
  /// bytes polls kCaughtUp until it does.
  TailPcapSource(const std::string& path, ingest::ParseMode mode);
  ~TailPcapSource();

  TailPcapSource(const TailPcapSource&) = delete;
  TailPcapSource& operator=(const TailPcapSource&) = delete;

  /// Appends up to `max` newly completed records to `out` (which is NOT
  /// cleared — the daemon accumulates a chunk across polls). See the
  /// file comment for the verdict taxonomy. After kCorrupt every later
  /// poll returns kCorrupt again; after kEndOfStream, kEndOfStream.
  PollStatus poll(std::vector<ingest::RawPacket>& out, std::size_t max);

  const ingest::IngestStats& stats() const { return stats_; }
  bool header_ok() const { return header_.ok; }
  double tick() const { return header_.tick; }
  /// Max packet timestamp decoded so far (0 before any packet).
  double max_time_seen() const { return prev_time_; }
  bool saw_packet() const { return any_record_; }
  /// Total input bytes consumed (header + records), for self-stats.
  std::uint64_t bytes_consumed() const { return file_off_; }

 private:
  /// Pulls whatever bytes are available right now into the buffer.
  void fill();

  int fd_ = -1;
  bool seekable_ = false;  ///< regular file: pread at file_off_
  std::uint64_t file_off_ = 0;
  std::string path_;
  ingest::ParseMode mode_;

  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;  ///< cursor within buf_
  std::size_t end_ = 0;  ///< valid bytes in buf_

  ingest::PcapHeader header_;
  bool header_parsed_ = false;
  bool pipe_eof_ = false;
  bool fatal_ = false;
  ingest::IngestStats stats_;
  double prev_time_ = 0.0;
  bool any_record_ = false;
};

}  // namespace wan::monitor
