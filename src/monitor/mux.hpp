// Per-protocol engine multiplexer: one stream::WindowedAnalyzer per
// tracked protocol plus an aggregate over everything, all sharing one
// slide geometry and one stream origin (t_begin).
//
// Each push partitions the chunk's event times per engine (the
// aggregate sees all of them, a protocol engine only its protocol's)
// and advances every engine to the same capture time — including the
// engines whose protocol saw no traffic, whose bins would otherwise
// stall and hold their reports back. The advance completes only bins
// that end strictly before the newest event's bin, so it can never
// close a bin early: the report sequence each engine emits is
// bit-identical to running analyze_windowed offline over the same
// capture with that engine's protocol filter (the fan-out parity tests
// pin this, engine by engine and field by field).
//
// Engines update in parallel on the src/par pool — they share no
// mutable state (each engine's sink appends to its own pending queue),
// and every engine consumes a pre-partitioned time span, so the result
// is independent of scheduling. Reports drain in rounds — because all
// engines advance through the same boundaries they emit in lockstep,
// and a round is one report per engine in fixed engine order — which
// makes the drained sequence deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/stream/columnar.hpp"
#include "src/stream/window_analyzer.hpp"
#include "src/trace/protocol.hpp"

namespace wan::monitor {

/// One drained report: which engine produced it, and the report itself.
struct MuxReport {
  std::size_t engine = 0;
  stream::WindowReport report;
};

class EngineMux {
 public:
  /// Engine 0 is the aggregate ("ALL"); engines 1..n follow `protocols`
  /// in the given order. `options` supplies the shared geometry; its
  /// own protocol/orig_data filters must be unset (the mux partitions
  /// by protocol itself) — throws std::invalid_argument otherwise.
  EngineMux(const stream::WindowedOptions& options,
            const std::vector<trace::Protocol>& protocols, double t_begin);

  /// Feeds one chunk (nondecreasing times) through every engine.
  void push(const stream::PacketColumns& chunk);

  /// Completes bins through t_end on every engine — the final flush.
  void finish(double t_end);

  /// Moves every complete round of pending reports into `out`
  /// (appending; round-major, engine-minor). Complete rounds only, so
  /// interleaving stays deterministic mid-stream; finish() makes all
  /// rounds complete.
  void take_reports(std::vector<MuxReport>& out);

  std::size_t engines() const { return engines_.size(); }
  const std::string& engine_name(std::size_t i) const {
    return engines_[i].name;
  }
  /// Events routed to engine i so far (post-partition).
  std::uint64_t engine_events(std::size_t i) const {
    return engines_[i].events;
  }
  std::uint64_t reports_emitted() const { return reports_emitted_; }
  /// End time of the newest drained round's window, NaN before any.
  double last_report_t1() const { return last_t1_; }

 private:
  struct Engine {
    std::string name;
    bool all = false;  ///< aggregate: takes every event
    trace::Protocol protocol = trace::Protocol::kOther;
    std::vector<double> times;  ///< partition scratch, reused per push
    std::deque<stream::WindowReport> pending;
    std::unique_ptr<stream::WindowedAnalyzer> analyzer;
    std::uint64_t events = 0;
  };

  stream::WindowedOptions options_;
  double t_begin_ = 0.0;
  std::vector<Engine> engines_;
  std::uint64_t reports_emitted_ = 0;
  double last_t1_;
};

}  // namespace wan::monitor
