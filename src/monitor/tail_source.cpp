#include "src/monitor/tail_source.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace wan::monitor {

namespace {

/// Read granularity, and the high-water mark past which a fill stops
/// pulling: the decode loop drains at most one chunk per poll, so the
/// buffer must not race ahead of it when the writer is much faster.
constexpr std::size_t kReadBlock = std::size_t{256} << 10;
constexpr std::size_t kFillTarget = std::size_t{4} << 20;

}  // namespace

const char* to_string(PollStatus s) noexcept {
  switch (s) {
    case PollStatus::kProgress: return "progress";
    case PollStatus::kCaughtUp: return "caught-up";
    case PollStatus::kEndOfStream: return "end-of-stream";
    case PollStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

TailPcapSource::TailPcapSource(const std::string& path,
                               ingest::ParseMode mode)
    : path_(path), mode_(mode) {
  if (path == "-") {
    fd_ = ::dup(0);
    if (fd_ < 0)
      throw std::runtime_error("monitor: cannot dup stdin for follow");
    path_ = "<stdin>";
  } else {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
      throw std::runtime_error("monitor: cannot open for follow: " + path);
  }
  struct stat st {};
  if (::fstat(fd_, &st) == 0 && S_ISREG(st.st_mode)) {
    seekable_ = true;
  } else {
    // Pipes/FIFOs: nonblocking, so a poll with nothing pending returns
    // kCaughtUp instead of stalling the daemon loop.
    const int fl = ::fcntl(fd_, F_GETFL);
    if (fl >= 0) ::fcntl(fd_, F_SETFL, fl | O_NONBLOCK);
  }
}

TailPcapSource::~TailPcapSource() {
  if (fd_ >= 0) ::close(fd_);
}

void TailPcapSource::fill() {
  if (pipe_eof_ || fatal_) return;
  // Slide the undecoded tail to the front so consumed bytes are
  // reclaimed before growing the buffer.
  if (pos_ > 0) {
    const std::size_t tail = end_ - pos_;
    if (tail > 0) std::memmove(buf_.data(), buf_.data() + pos_, tail);
    end_ = tail;
    pos_ = 0;
  }
  while (end_ - pos_ < kFillTarget) {
    if (buf_.size() < end_ + kReadBlock) buf_.resize(end_ + kReadBlock);
    ssize_t got;
    if (seekable_) {
      got = ::pread(fd_, buf_.data() + end_, buf_.size() - end_,
                    static_cast<off_t>(file_off_));
    } else {
      got = ::read(fd_, buf_.data() + end_, buf_.size() - end_);
    }
    if (got > 0) {
      end_ += static_cast<std::size_t>(got);
      file_off_ += static_cast<std::uint64_t>(got);
      continue;
    }
    if (got == 0) {
      // A regular file at its current end may still grow; a pipe at EOF
      // never delivers another byte.
      if (!seekable_) pipe_eof_ = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // nothing pending
    fatal_ = true;
    report(stats_, &ingest::IngestStats::io_errors, mode_,
           "pcap read failed while following: " + path_);
    return;
  }
}

PollStatus TailPcapSource::poll(std::vector<ingest::RawPacket>& out,
                                std::size_t max) {
  if (fatal_) return PollStatus::kCorrupt;
  fill();
  if (fatal_) return PollStatus::kCorrupt;

  if (!header_parsed_) {
    const std::size_t avail = end_ - pos_;
    if (avail < 24 && !pipe_eof_)
      return PollStatus::kCaughtUp;  // header still being written
    // Enough bytes — or a pipe that will never deliver them: parse what
    // there is, so a truncated/bad header lands in the ledger exactly
    // like the offline readers' construction would put it.
    if (avail >= 24) stats_.bytes += 24;
    fatal_ = true;  // cleared below iff the header checks out
    header_ = ingest::parse_pcap_header(buf_.data() + pos_,
                                        avail < 24 ? avail : 24, stats_,
                                        mode_, path_);
    if (!header_.ok) return PollStatus::kCorrupt;
    fatal_ = false;
    pos_ += 24;
    header_parsed_ = true;
  }

  const std::uint32_t frac_limit =
      header_.tick == 1e-6 ? 1000000u : 1000000000u;
  std::size_t decoded = 0;
  ingest::RawPacket pkt;
  while (decoded < max) {
    const std::size_t avail = end_ - pos_;
    if (avail == 0) break;  // record boundary: caught up or clean EOF
    if (avail < 16) {
      if (!pipe_eof_) break;  // header half-written: hold until complete
      fatal_ = true;
      report(stats_, &ingest::IngestStats::truncated_records, mode_,
             "pcap final record header truncated by EOF: " + path_);
      break;
    }
    const unsigned char* rh = buf_.data() + pos_;
    const std::uint32_t incl_len = header_.u32(rh + 8);
    if (incl_len > ingest::kMaxCaptureBytes) {
      stats_.bytes += 16;
      fatal_ = true;
      report(stats_, &ingest::IngestStats::oversized_records, mode_,
             "pcap record length " + std::to_string(incl_len) +
                 " beyond sanity cap: " + path_);
      break;
    }
    if (avail - 16 < incl_len) {
      if (!pipe_eof_) break;  // data half-written: hold until complete
      stats_.bytes += 16;
      fatal_ = true;
      report(stats_, &ingest::IngestStats::truncated_records, mode_,
             "pcap final record data truncated by EOF: " + path_);
      break;
    }

    // The record is complete: consume it whole, then the usual decode.
    stats_.bytes += 16u + incl_len;
    const std::uint32_t ts_sec = header_.u32(rh);
    const std::uint32_t ts_frac = header_.u32(rh + 4);
    pos_ += 16u + incl_len;

    if (ts_frac >= frac_limit) {
      report(stats_, &ingest::IngestStats::bad_headers, mode_,
             "pcap timestamp fraction out of range: " + path_);
      continue;  // lenient: drop this record, keep going
    }
    const double t = static_cast<double>(ts_sec) +
                     static_cast<double>(ts_frac) * header_.tick;
    if (!ingest::decode_pcap_frame_inline(header_, rh + 16, incl_len, pkt,
                                          stats_, mode_, path_))
      continue;  // counted inside

    pkt.time = t;
    if (any_record_ && t < prev_time_) {
      report(stats_, &ingest::IngestStats::out_of_order, mode_,
             "pcap timestamp went backwards: " + path_);
    }
    if (!any_record_ || t > prev_time_) prev_time_ = t;
    any_record_ = true;
    ++stats_.records;
    out.push_back(pkt);
    ++decoded;
  }

  if (decoded > 0) return PollStatus::kProgress;
  if (fatal_) return PollStatus::kCorrupt;
  if (pipe_eof_ && end_ == pos_) return PollStatus::kEndOfStream;
  return PollStatus::kCaughtUp;
}

}  // namespace wan::monitor
