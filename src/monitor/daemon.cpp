#include "src/monitor/daemon.hpp"

#include <signal.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "src/monitor/stop_flag.hpp"
#include "src/stream/columnar.hpp"
#include "tools/arg_parse.hpp"

namespace wan::monitor {

namespace {
// Constant-initialized at namespace scope: safe to touch from a signal
// handler (no lazy-init guard on first use).
std::atomic<bool> g_stop{false};
}  // namespace

std::atomic<bool>& global_stop() noexcept { return g_stop; }

namespace {

void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // NaN/inf are not JSON; null keeps the line valid
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// One report as a JSON line. Capture-derived fields only — nothing
/// here may depend on wall time, or --speed 0 reproducibility dies.
std::string report_json(const std::string& engine,
                        const stream::WindowReport& r) {
  std::string s;
  s.reserve(512);
  s += "{\"engine\":\"";
  s += engine;
  s += "\",\"t0\":";
  append_json_number(s, r.t0);
  s += ",\"t1\":";
  append_json_number(s, r.t1);
  s += ",\"packets\":";
  s += std::to_string(r.packets);
  s += ",\"mean_count\":";
  append_json_number(s, r.mean_count);
  s += ",\"var_count\":";
  append_json_number(s, r.var_count);
  s += ",\"mean_burst_bins\":";
  append_json_number(s, r.mean_burst_bins);
  s += ",\"mean_lull_bins\":";
  append_json_number(s, r.mean_lull_bins);
  s += ",\"vt_hurst\":";
  append_json_number(s, r.vt_hurst);
  s += ",\"whittle_hurst\":";
  append_json_number(s, r.whittle.hurst);
  s += ",\"whittle_stderr\":";
  append_json_number(s, r.whittle.stderr_hurst);
  s += ",\"whittle_warm\":";
  s += r.whittle_warm ? "true" : "false";
  if (!r.sweep_hurst.empty()) {
    s += ",\"sweep_hurst\":[";
    for (std::size_t i = 0; i < r.sweep_hurst.size(); ++i) {
      if (i != 0) s += ',';
      append_json_number(s, r.sweep_hurst[i]);
    }
    s += ']';
  }
  if (r.poisson) {
    const auto& p = *r.poisson;
    s += ",\"poisson\":{\"n_intervals\":";
    s += std::to_string(p.n_intervals);
    s += ",\"frac_pass_exponential\":";
    append_json_number(s, p.frac_pass_exponential);
    s += ",\"frac_pass_independence\":";
    append_json_number(s, p.frac_pass_independence);
    s += ",\"lag1_sign_bias\":";
    append_json_number(s, p.lag1_sign_bias);
    s += ",\"poisson\":";
    s += p.poisson ? "true" : "false";
    s += '}';
  }
  s += '}';
  return s;
}

long read_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str() + std::string(key).size(), "%ld", &kb);
      return kb;
    }
  }
  return 0;
}

/// Wall-clock self-stats, diagnostic stream only.
class SelfStats {
 public:
  explicit SelfStats(double interval) : interval_(interval) {
    last_ = std::chrono::steady_clock::now();
  }

  void tick(std::ostream& diag, std::uint64_t records, std::uint64_t bytes,
            std::size_t open_flows, const EngineMux* mux, double t_hi) {
    if (interval_ <= 0.0) return;
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    if (elapsed < interval_) return;
    const double rate = (double)(records - last_records_) / elapsed;
    diag << "[monitor] pkts=" << records << " rate=";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", rate);
    diag << buf << "/s bytes=" << bytes << " open_flows=" << open_flows;
    if (mux != nullptr) {
      diag << " reports=" << mux->reports_emitted();
      const double t1 = mux->last_report_t1();
      if (std::isfinite(t1)) {
        std::snprintf(buf, sizeof(buf), "%.1f", t_hi - t1);
        diag << " lag=" << buf << "s";
      } else {
        diag << " lag=n/a";
      }
    }
    diag << " vmhwm=" << read_status_kb("VmHWM:") << "kB" << std::endl;
    last_ = now;
    last_records_ = records;
  }

 private:
  double interval_;
  std::chrono::steady_clock::time_point last_;
  std::uint64_t last_records_ = 0;
};

}  // namespace

/// Per-run output plumbing: one DriftTracker per engine, plus the
/// report-stream writers. Lives in the .cpp — callers only see the
/// option struct.
struct MonitorDaemon::Sinks {
  std::ostream& rep;
  const MonitorOptions& opts;
  std::vector<DriftTracker> trackers;
  std::vector<MuxReport> scratch;
  std::vector<std::string> lines;

  Sinks(std::ostream& rep_stream, const MonitorOptions& options)
      : rep(rep_stream), opts(options) {}

  void bind(const EngineMux& mux) {
    trackers.clear();
    for (std::size_t i = 0; i < mux.engines(); ++i)
      trackers.emplace_back(mux.engine_name(i), opts.drift);
  }

  void drain(EngineMux& mux) {
    scratch.clear();
    mux.take_reports(scratch);
    for (const MuxReport& mr : scratch) {
      const std::string& name = mux.engine_name(mr.engine);
      rep << report_json(name, mr.report) << '\n';
      lines.clear();
      trackers[mr.engine].on_report(mr.report, lines);
      for (const std::string& line : lines) rep << "# " << line << '\n';
      if (opts.report_hook) opts.report_hook(name, mr.report);
    }
  }

  void ledger(const ingest::IngestStats& stats, const char* reason) {
    rep << "# shutdown: " << reason << '\n';
    std::istringstream ls(stats.to_string());
    for (std::string line; std::getline(ls, line);)
      rep << "# " << line << '\n';
    rep.flush();
  }
};

void MonitorDaemon::install_signal_handlers() {
  struct sigaction sa;
  sigemptyset(&sa.sa_mask);
  sa.sa_handler = handle_stop_signal;
  sa.sa_flags = 0;  // no SA_RESTART: blocking reads wake with EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void MonitorDaemon::reset_signal_stop() {
  g_stop.store(false, std::memory_order_relaxed);
}

MonitorDaemon::MonitorDaemon(MonitorOptions options)
    : options_(std::move(options)) {}

bool MonitorDaemon::stopped() const {
  return stop_.load(std::memory_order_relaxed) ||
         g_stop.load(std::memory_order_relaxed);
}

void MonitorDaemon::sleep_slice(double seconds) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (!stopped() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(
        seconds < 0.05 ? (long)(seconds * 1000.0) + 1 : 50));
}

int MonitorDaemon::run_replay(ReplaySource& source) {
  std::ostream& rep = options_.report_out ? *options_.report_out : std::cout;
  std::ostream& diag = options_.diag_out ? *options_.diag_out : std::cerr;
  const stream::StreamInfo& info = source.info();

  EngineMux mux(options_.window, options_.protocols, info.t_begin);
  Sinks sinks(rep, options_);
  sinks.bind(mux);
  SelfStats self(options_.stats_interval);

  stream::PacketColumns chunk;
  double t_hi = info.t_begin;
  bool exhausted = false;
  while (!stopped()) {
    if (!source.next(chunk)) {
      exhausted = true;
      break;
    }
    if (!chunk.time.empty()) {
      t_hi = chunk.time.back();
      mux.push(chunk);
      sinks.drain(mux);
    }
    self.tick(diag, source.stats().records, source.stats().bytes,
              /*open_flows=*/0, &mux, t_hi);
  }

  // A complete replay finishes at the prescanned end (bit-parity with
  // the offline analyzer); an interrupted one at the last event pushed.
  mux.finish(exhausted ? info.t_end : t_hi);
  sinks.drain(mux);
  sinks.ledger(source.stats(), exhausted ? "end of capture" : "stop requested");
  return 0;
}

int MonitorDaemon::run_follow(TailPcapSource& source) {
  std::ostream& rep = options_.report_out ? *options_.report_out : std::cout;
  std::ostream& diag = options_.diag_out ? *options_.diag_out : std::cerr;

  ingest::FlowTable table(options_.flow);
  std::unique_ptr<EngineMux> mux;  // built at the first decoded packet
  Sinks sinks(rep, options_);
  SelfStats self(options_.stats_interval);

  std::vector<ingest::RawPacket> raw;
  stream::PacketColumns cols;
  int rc = 0;
  const char* reason = "stop requested";
  while (!stopped()) {
    raw.clear();
    const PollStatus status = source.poll(raw, options_.chunk_size);
    if (!raw.empty()) {
      cols.clear();
      for (const ingest::RawPacket& pkt : raw) table.add_append(pkt, cols);
      if (!cols.time.empty()) {
        if (!mux) {
          mux = std::make_unique<EngineMux>(
              options_.window, options_.protocols, cols.time.front());
          sinks.bind(*mux);
        }
        mux->push(cols);
        sinks.drain(*mux);
      }
    }
    if (status == PollStatus::kCaughtUp) {
      sleep_slice(options_.poll_interval);
    } else if (status == PollStatus::kEndOfStream) {
      reason = "end of stream";
      break;
    } else if (status == PollStatus::kCorrupt) {
      reason = "corrupt input";
      rc = 1;
      break;
    }
    self.tick(diag, source.stats().records, source.stats().bytes,
              table.open_flows(), mux.get(), source.max_time_seen());
  }

  if (mux) {
    // Same end convention the offline prescan uses: one tick past the
    // last timestamp, so the final event's bin is complete.
    mux->finish(source.max_time_seen() +
                (source.header_ok() ? source.tick() : 0.0));
    sinks.drain(*mux);
  }
  sinks.ledger(source.stats(), reason);
  return rc;
}

bool parse_monitor_cli(int argc, char** argv, MonitorCli& cli,
                       std::string& err) {
  tools::ArgParser args(argc, argv);
  args.add_option("--follow");
  args.add_option("--replay");
  args.add_option("--speed");
  args.add_option("--bin");
  args.add_option("--window");
  args.add_option("--slide");
  args.add_option("--segment-bins");
  args.add_option("--sweep-levels");
  args.add_option("--poisson-interval");
  args.add_option("--protocols");
  args.add_option("--json");
  args.add_option("--poll-interval");
  args.add_option("--stats-interval");
  args.add_option("--idle-timeout");
  args.add_option("--chunk");
  args.add_option("--threads");
  args.add_flag("--lenient");
  if (!args.parse(&err)) return false;

  try {
    args.reject_together("--follow", "--replay",
                         "the daemon tracks exactly one source");
    args.reject_together("--follow", "--speed",
                         "a live tail cannot be paced; --speed applies to "
                         "--replay only");
    if (!args.positional().empty()) {
      err = "unexpected positional argument '" + args.positional().front() +
            "'; the source is named by --follow or --replay";
      return false;
    }
    const std::string* follow = args.value("--follow");
    const std::string* replay = args.value("--replay");
    if (follow == nullptr && replay == nullptr) {
      err = "one of --follow PATH or --replay PATH is required";
      return false;
    }
    cli.follow_path = follow != nullptr ? *follow : "";
    cli.replay_path = replay != nullptr ? *replay : "";
    cli.speed = args.number("--speed", 0.0);
    if (cli.speed < 0.0) {
      err = "--speed wants a non-negative factor (0 = as fast as possible)";
      return false;
    }

    stream::WindowedOptions& w = cli.options.window;
    w.bin = args.number("--bin", 1.0);
    w.window = args.number("--window", 3600.0);
    w.slide = args.number("--slide", 300.0);
    w.segment_bins = args.count("--segment-bins", 0);
    w.sweep_levels = args.count("--sweep-levels", 0);
    w.poisson_interval = args.number("--poisson-interval", 60.0);
    stream::window_geometry(w);  // reject bad geometry at the CLI, loudly

    cli.options.mode = args.has("--lenient") ? ingest::ParseMode::kLenient
                                             : ingest::ParseMode::kStrict;
    cli.options.flow.idle_timeout = args.number("--idle-timeout", 3600.0);
    cli.options.chunk_size = args.count("--chunk", 4096, 1);
    cli.options.poll_interval = args.number("--poll-interval", 0.2);
    cli.options.stats_interval = args.number("--stats-interval", 10.0);
    cli.threads = args.count("--threads", 0);
    if (const std::string* j = args.value("--json")) cli.json_path = *j;

    const std::string csv = args.value("--protocols") != nullptr
                                ? *args.value("--protocols")
                                : "TELNET,FTPDATA,NNTP,SMTP,WWW";
    cli.options.protocols.clear();
    std::size_t start = 0;
    while (start <= csv.size()) {
      const std::size_t comma = csv.find(',', start);
      const std::string token =
          csv.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
      const auto proto = trace::protocol_from_string(token);
      if (!proto) {
        err = "--protocols: unknown protocol '" + token + "'";
        return false;
      }
      cli.options.protocols.push_back(*proto);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  } catch (const std::invalid_argument& e) {
    err = e.what();
    return false;
  }
  return true;
}

}  // namespace wan::monitor
