#include "src/monitor/mux.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/par/parallel.hpp"

namespace wan::monitor {

EngineMux::EngineMux(const stream::WindowedOptions& options,
                     const std::vector<trace::Protocol>& protocols,
                     double t_begin)
    : options_(options),
      t_begin_(t_begin),
      last_t1_(std::numeric_limits<double>::quiet_NaN()) {
  if (options_.protocol || options_.orig_data_only)
    throw std::invalid_argument(
        "EngineMux: the mux partitions by protocol itself; pass options "
        "without protocol/orig_data filters");
  stream::window_geometry(options_);  // validate once, loudly

  engines_.resize(protocols.size() + 1);
  engines_[0].name = "ALL";
  engines_[0].all = true;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    engines_[i + 1].name = std::string(trace::to_string(protocols[i]));
    engines_[i + 1].protocol = protocols[i];
  }
  for (Engine& e : engines_) {
    auto* pending = &e.pending;
    e.analyzer = std::make_unique<stream::WindowedAnalyzer>(
        options_, t_begin,
        [pending](const stream::WindowReport& r) { pending->push_back(r); });
  }
}

void EngineMux::push(const stream::PacketColumns& chunk) {
  if (chunk.empty()) return;
  // Partition once, serially — the per-engine scans are cheap linear
  // passes and keep every engine's input identical regardless of the
  // thread count.
  for (Engine& e : engines_) {
    e.times.clear();
    if (e.all) {
      e.times.assign(chunk.time.begin(), chunk.time.end());
    } else {
      for (std::size_t i = 0; i < chunk.size(); ++i)
        if (chunk.protocol[i] == e.protocol) e.times.push_back(chunk.time[i]);
    }
    e.events += e.times.size();
  }

  // Advance target: the start of the bin holding the newest event.
  // Completing bins strictly before it is exactly what pushing a later
  // event would have done, so idle engines stay in lockstep without
  // ever closing the current (still-filling) bin early.
  const double t_hi = chunk.time.back();
  const double rel = (t_hi - t_begin_) / options_.bin;
  const double edge =
      rel <= 0.0 ? t_begin_ : t_begin_ + std::floor(rel) * options_.bin;

  par::parallel_for(0, engines_.size(), 1,
                    [&](std::size_t b, std::size_t e) {
                      for (std::size_t i = b; i < e; ++i) {
                        Engine& eng = engines_[i];
                        eng.analyzer->push_times(eng.times);
                        eng.analyzer->finish(edge);
                      }
                    });
}

void EngineMux::finish(double t_end) {
  par::parallel_for(0, engines_.size(), 1,
                    [&](std::size_t b, std::size_t e) {
                      for (std::size_t i = b; i < e; ++i)
                        engines_[i].analyzer->finish(t_end);
                    });
}

void EngineMux::take_reports(std::vector<MuxReport>& out) {
  for (;;) {
    for (const Engine& e : engines_)
      if (e.pending.empty()) return;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      out.push_back({i, std::move(engines_[i].pending.front())});
      engines_[i].pending.pop_front();
      ++reports_emitted_;
    }
    last_t1_ = out.back().report.t1;
  }
}

}  // namespace wan::monitor
