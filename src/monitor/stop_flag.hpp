// The process-wide stop flag SIGINT/SIGTERM handlers set (a handler
// can only touch a pre-known atomic, so this cannot live per-daemon).
// Everything in the monitor that waits — the daemon poll loop, a paced
// replay sleep — checks it alongside any per-run flag.
#pragma once

#include <atomic>

namespace wan::monitor {

std::atomic<bool>& global_stop() noexcept;

}  // namespace wan::monitor
