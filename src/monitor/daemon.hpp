// The wantraffic_monitor daemon: wires an unbounded source (tail or
// replay) through the flow table and the per-protocol EngineMux, and
// turns the resulting report rounds into two output streams:
//
//   * the report stream (--json FILE or stdout) — one JSON line per
//     engine per slide, plus "# "-prefixed drift-transition lines and a
//     final "# "-prefixed shutdown block carrying the ingest ledger.
//     Every byte on this stream is derived from the capture alone (no
//     wall clock, no rates), which is what makes a --speed 0 replay
//     byte-reproducible and comparable against the offline analyzer.
//
//   * the diagnostic stream (stderr) — periodic self-stats (packets/s,
//     open flows, RSS watermark, per-engine lag behind the newest
//     event) and anything else wall-clock flavored.
//
// Shutdown: SIGINT/SIGTERM set a process-wide flag (handlers installed
// with sigaction and no SA_RESTART, so a blocking read returns EINTR
// and the poll loop observes the flag promptly). The daemon then
// finishes every engine at the last event time seen, drains the final
// report rounds, and flushes the ledger — a paced replay and a tail
// follow both exit through the same path.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/ingest/flow_table.hpp"
#include "src/ingest/ingest_stats.hpp"
#include "src/monitor/drift.hpp"
#include "src/monitor/mux.hpp"
#include "src/monitor/replay_source.hpp"
#include "src/monitor/tail_source.hpp"
#include "src/stream/window_analyzer.hpp"
#include "src/trace/protocol.hpp"

namespace wan::monitor {

struct MonitorOptions {
  stream::WindowedOptions window;  ///< shared slide geometry (no filters)
  std::vector<trace::Protocol> protocols;  ///< per-protocol engines
  ingest::ParseMode mode = ingest::ParseMode::kStrict;
  ingest::FlowTableConfig flow{3600.0, /*collect_connections=*/false};
  std::size_t chunk_size = 4096;  ///< packets decoded per poll/push
  double poll_interval = 0.2;     ///< tail: sleep between kCaughtUp polls
  double stats_interval = 10.0;   ///< self-stats cadence, seconds; 0 off
  DriftConfig drift;

  std::ostream* report_out = nullptr;  ///< JSONL stream; null = std::cout
  std::ostream* diag_out = nullptr;    ///< self-stats; null = std::cerr
  /// Test hook: observes every (engine name, report) pair as emitted.
  std::function<void(const std::string&, const stream::WindowReport&)>
      report_hook;
};

class MonitorDaemon {
 public:
  explicit MonitorDaemon(MonitorOptions options);

  /// Replays `source` to exhaustion (or until stopped). Returns 0.
  int run_replay(ReplaySource& source);

  /// Follows `source` until end-of-stream (pipes), corruption, or a
  /// stop request. Returns 0, or 1 when the input went corrupt.
  /// Strict-mode defects propagate as ingest::IngestError.
  int run_follow(TailPcapSource& source);

  /// Asks the running loop to shut down (signal-safe is not required
  /// here — tests call it from another thread; signals use the global
  /// flag installed by install_signal_handlers()).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  const std::atomic<bool>* stop_flag() const { return &stop_; }

  /// Routes SIGINT/SIGTERM to a process-wide stop flag every daemon
  /// checks. No SA_RESTART: a tail blocked in read() wakes with EINTR.
  static void install_signal_handlers();
  /// Clears the process-wide flag (tests raise() repeatedly).
  static void reset_signal_stop();

 private:
  struct Sinks;  // engines' drift trackers + output plumbing

  bool stopped() const;
  void sleep_slice(double seconds) const;

  MonitorOptions options_;
  std::atomic<bool> stop_{false};
};

/// Everything `wantraffic_monitor` parses from argv, exposed as a
/// library function so tests pin flag strictness without spawning the
/// binary. On success fills `cli`; on bad usage returns false with a
/// message in `err` (ArgParser's numeric/unknown-flag/contradiction
/// throws are converted to that same false-with-message path).
struct MonitorCli {
  MonitorOptions options;
  std::string follow_path;  ///< nonempty when --follow PATH given
  std::string replay_path;  ///< nonempty when --replay PATH given
  double speed = 0.0;       ///< --speed (replay only); 0 = unpaced
  std::size_t threads = 0;  ///< --threads; 0 = library default
  std::string json_path;    ///< --json FILE; empty = stdout
};

bool parse_monitor_cli(int argc, char** argv, MonitorCli& cli,
                       std::string& err);

}  // namespace wan::monitor
