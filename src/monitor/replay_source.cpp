#include "src/monitor/replay_source.hpp"

#include <thread>

#include "src/monitor/stop_flag.hpp"

namespace wan::monitor {

ReplaySource::ReplaySource(const std::string& path, ingest::ParseMode mode,
                           double speed, ingest::FlowTableConfig flow,
                           std::size_t chunk_size,
                           const std::atomic<bool>* stop)
    : inner_(path, mode, flow, chunk_size), speed_(speed), stop_(stop) {}

bool ReplaySource::next(stream::PacketColumns& chunk) {
  if (!inner_.next(chunk)) return false;
  if (speed_ <= 0.0 || chunk.time.empty()) return true;

  if (!anchored_) {
    anchor_ = std::chrono::steady_clock::now();
    anchored_ = true;
  }
  const double capture_elapsed = chunk.time.back() - inner_.info().t_begin;
  const auto deadline =
      anchor_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(capture_elapsed / speed_));
  // Sliced sleep: wake at least every 50 ms to honor a stop request.
  while (std::chrono::steady_clock::now() < deadline) {
    if (global_stop().load(std::memory_order_relaxed)) break;
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) break;
    const auto remaining = deadline - std::chrono::steady_clock::now();
    const auto slice = std::chrono::milliseconds(50);
    std::this_thread::sleep_for(remaining < slice ? remaining : slice);
  }
  return true;
}

}  // namespace wan::monitor
