// Replay source: feeds an existing capture through the daemon at a
// configurable time acceleration, pacing deliveries against a virtual
// clock.
//
// The wrapped PcapColumnSource does all the decoding and flow
// reconstruction; this layer only decides *when* each chunk is handed
// to the caller. `speed` is capture-seconds per wall-second: 1.0
// replays in real time, 60.0 replays an hour per minute, and 0 means
// as-fast-as-possible — no sleeps at all, which is the deterministic
// mode the replay tests and benches run (two speed-0 runs produce
// byte-identical report streams, because nothing downstream observes
// wall time).
//
// The virtual clock anchors at the first next(): wall_deadline(chunk) =
// anchor + (chunk_last_time - t_begin) / speed. Sleeping happens in
// short slices with a stop flag checked between them, so SIGINT
// interrupts a paced replay within ~50 ms instead of waiting out a
// long quiet stretch of the capture.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

#include "src/ingest/sources.hpp"
#include "src/stream/columnar.hpp"

namespace wan::monitor {

class ReplaySource {
 public:
  /// Opens and prescans the capture (so info() carries the full time
  /// range up front — the replay knows its own end, unlike a tail).
  /// `stop` may be null; when set, pacing sleeps abort early once the
  /// flag goes true. Throws what PcapColumnSource's constructor throws.
  ReplaySource(const std::string& path, ingest::ParseMode mode, double speed,
               ingest::FlowTableConfig flow = {},
               std::size_t chunk_size = stream::kDefaultChunkSize,
               const std::atomic<bool>* stop = nullptr);

  const stream::StreamInfo& info() const { return inner_.info(); }
  const ingest::IngestStats& stats() const { return inner_.stats(); }
  double speed() const { return speed_; }

  /// Pulls the next chunk, then blocks until the virtual clock reaches
  /// the chunk's last timestamp (speed > 0 only). Chunk contents are
  /// identical at every speed.
  bool next(stream::PacketColumns& chunk);

 private:
  ingest::PcapColumnSource inner_;
  double speed_;
  const std::atomic<bool>* stop_;
  bool anchored_ = false;
  std::chrono::steady_clock::time_point anchor_;
};

}  // namespace wan::monitor
