// The Fig. 5 / Fig. 7 machinery: synthesize a reference TELNET packet
// trace, re-synthesize it under the TCPLIB / EXP / VAR-EXP schemes with
// identical connection starts and sizes, and compare variance-time plots.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/stats/variance_time.hpp"
#include "src/synth/telnet_source.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::core {

struct VtComparisonConfig {
  double t0 = 0.0;
  double t1 = 7200.0;       ///< two hours, like LBL PKT-2
  double base_bin = 0.1;    ///< the paper's 0.1 s base observation bin
  double conns_per_hour = 136.5;  ///< ~273 connections over two hours
  std::uint64_t seed = 7;
  synth::TelnetConfig telnet;  ///< profile flattened internally
};

struct VtComparison {
  /// Count process per scheme name ("TRACE", "TCPLIB", "EXP", "VAR-EXP").
  std::map<std::string, std::vector<double>> counts;
  /// Variance-time plot per scheme.
  std::map<std::string, stats::VarianceTimePlot> vt;
  std::size_t n_connections = 0;
};

/// Runs the full comparison. The "TRACE" series is a Tcplib-driven
/// synthesis standing in for the measured LBL PKT-2 TELNET packets; the
/// other three re-synthesize from its skeletons exactly as Section IV
/// describes.
VtComparison run_vt_comparison(const VtComparisonConfig& config);

/// The Fig. 7 variant: FULL-TEL resimulated from scratch (fresh Poisson
/// arrivals and sizes, not skeletons) against the reference trace,
/// trimmed to the second hour.
VtComparison run_fulltel_comparison(const VtComparisonConfig& config,
                                    std::size_t n_replicates = 3);

}  // namespace wan::core
