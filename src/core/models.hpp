// The paper's headline models, packaged as the library's public facade:
//
//  * SessionArrivalModel — Poisson session arrivals with fixed hourly
//    rates, the one place the paper finds Poisson modeling valid;
//  * FullTelnetModel — FULL-TEL (Section V): parameterized ONLY by the
//    hourly connection arrival rate; Poisson connection arrivals,
//    log2-normal sizes in packets, Tcplib packet interarrivals;
//  * FtpModel — Poisson FTP session arrivals spawning heavy-tailed
//    FTPDATA connection bursts (Section VI).
#pragma once

#include "src/synth/ftp_source.hpp"
#include "src/synth/telnet_source.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::core {

/// Poisson arrivals with fixed hourly rates — valid (per the paper) for
/// TELNET connections, FTP sessions, RLOGIN sessions.
class SessionArrivalModel {
 public:
  SessionArrivalModel(synth::DiurnalProfile profile, double sessions_per_day)
      : profile_(std::move(profile)), per_day_(sessions_per_day) {}

  /// Session start times over [t0, t1).
  std::vector<double> sample_arrivals(rng::Rng& rng, double t0,
                                      double t1) const {
    return synth::poisson_arrivals_hourly(rng, profile_, per_day_, t0, t1);
  }

  double sessions_per_day() const { return per_day_; }
  const synth::DiurnalProfile& profile() const { return profile_; }

 private:
  synth::DiurnalProfile profile_;
  double per_day_;
};

/// FULL-TEL. The single free parameter is the connection arrival rate;
/// everything else is the invariant structure Sections IV-V establish.
class FullTelnetModel {
 public:
  /// `conns_per_hour`: the model's one parameter. The diurnal profile is
  /// flattened: within the modeled window the rate is constant, as in the
  /// paper's two-hour synthesis.
  explicit FullTelnetModel(double conns_per_hour);

  /// Generates originator packet traffic over [t0, t1).
  trace::PacketTrace generate(rng::Rng& rng, double t0, double t1) const;

  /// Generates with an alternative interarrival scheme (the EXP /
  /// VAR-EXP straw men) for comparisons.
  trace::PacketTrace generate(rng::Rng& rng, double t0, double t1,
                              synth::InterarrivalScheme scheme) const;

  const synth::TelnetSource& source() const { return source_; }

 private:
  synth::TelnetSource source_;
};

/// Section VI's FTP traffic structure.
class FtpModel {
 public:
  explicit FtpModel(double sessions_per_hour);

  /// Generates FTP session + FTPDATA connection records over [t0, t1).
  trace::ConnTrace generate(rng::Rng& rng, double t0, double t1) const;

  const synth::FtpSource& source() const { return source_; }

 private:
  synth::FtpSource source_;
  synth::HostModel hosts_;
};

}  // namespace wan::core
