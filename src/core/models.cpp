#include "src/core/models.hpp"

namespace wan::core {

namespace {

synth::TelnetConfig full_tel_config(double conns_per_hour) {
  synth::TelnetConfig c;
  c.profile = synth::DiurnalProfile::flat();
  c.conns_per_day = conns_per_hour * 24.0;
  return c;
}

synth::FtpConfig ftp_config(double sessions_per_hour) {
  synth::FtpConfig c;
  c.profile = synth::DiurnalProfile::flat();
  c.sessions_per_day = sessions_per_hour * 24.0;
  return c;
}

}  // namespace

FullTelnetModel::FullTelnetModel(double conns_per_hour)
    : source_(full_tel_config(conns_per_hour)) {}

trace::PacketTrace FullTelnetModel::generate(rng::Rng& rng, double t0,
                                             double t1) const {
  return generate(rng, t0, t1, synth::InterarrivalScheme::kTcplib);
}

trace::PacketTrace FullTelnetModel::generate(
    rng::Rng& rng, double t0, double t1,
    synth::InterarrivalScheme scheme) const {
  const auto conns = source_.generate_connections(rng, t0, t1, scheme);
  return source_.to_packet_trace(conns, t0, t1);
}

FtpModel::FtpModel(double sessions_per_hour)
    : source_(ftp_config(sessions_per_hour)), hosts_(100, 2000) {}

trace::ConnTrace FtpModel::generate(rng::Rng& rng, double t0,
                                    double t1) const {
  trace::ConnTrace out("ftp-model", t0, t1);
  std::uint64_t next_session = 1;
  source_.generate(rng, t0, t1, hosts_, &next_session, out);
  out.sort_by_start();
  return out;
}

}  // namespace wan::core
