#include "src/core/poisson_report.hpp"

#include "src/plot/ascii_plot.hpp"

namespace wan::core {

std::vector<ProtocolVerdict> poisson_report(
    const trace::ConnTrace& tr, const PoissonReportConfig& config) {
  stats::PoissonTestConfig test = config.test;
  test.interval_length = config.interval_length;

  std::vector<ProtocolVerdict> rows;
  for (trace::Protocol p : config.protocols) {
    const auto times = tr.arrival_times(p);
    if (times.size() < 2 * test.min_interarrivals) continue;
    ProtocolVerdict v;
    v.trace_name = tr.name();
    v.label = std::string(trace::to_string(p));
    v.result = stats::test_poisson_arrivals(times, test, tr.t_begin(),
                                            tr.t_end());
    if (v.result.n_intervals > 0) rows.push_back(std::move(v));
  }

  if (config.include_ftp_bursts) {
    const auto bursts = trace::find_ftp_bursts(tr, config.burst_gap);
    const auto times = trace::burst_start_times(bursts);
    if (times.size() >= 2 * test.min_interarrivals) {
      ProtocolVerdict v;
      v.trace_name = tr.name();
      v.label = "FTPDATA-burst";
      v.result = stats::test_poisson_arrivals(times, test, tr.t_begin(),
                                              tr.t_end());
      if (v.result.n_intervals > 0) rows.push_back(std::move(v));
    }
  }
  return rows;
}

std::string render_poisson_report(const std::vector<ProtocolVerdict>& rows) {
  std::vector<std::vector<std::string>> cells;
  for (const ProtocolVerdict& v : rows) {
    const auto& r = v.result;
    cells.push_back({
        v.trace_name,
        v.label,
        plot::fmt(100.0 * r.frac_pass_exponential, 3) + "%",
        plot::fmt(100.0 * r.frac_pass_independence, 3) + "%",
        std::to_string(r.n_intervals),
        r.poisson ? "POISSON" : "not-Poisson",
        r.lag1_sign_bias > 0 ? "+" : (r.lag1_sign_bias < 0 ? "-" : ""),
    });
  }
  return plot::render_table(
      {"trace", "protocol", "exp-pass", "indep-pass", "intervals", "verdict",
       "corr"},
      cells);
}

}  // namespace wan::core
