#include "src/core/vt_comparison.hpp"

#include "src/stats/counting.hpp"

namespace wan::core {

namespace {

synth::TelnetConfig flat_config(const VtComparisonConfig& config) {
  synth::TelnetConfig tc = config.telnet;
  tc.profile = synth::DiurnalProfile::flat();
  tc.conns_per_day = config.conns_per_hour * 24.0;
  return tc;
}

std::vector<double> packet_counts(
    const std::vector<synth::TelnetConnection>& conns,
    const VtComparisonConfig& config) {
  std::vector<double> times;
  for (const auto& c : conns) {
    for (double t : c.packet_times) {
      if (t >= config.t0 && t < config.t1) times.push_back(t);
    }
  }
  return stats::bin_counts(times, config.t0, config.t1, config.base_bin);
}

}  // namespace

VtComparison run_vt_comparison(const VtComparisonConfig& config) {
  rng::Rng root(config.seed);
  const synth::TelnetSource source(flat_config(config));

  VtComparison out;

  // Reference "trace": Tcplib-driven synthesis.
  rng::Rng r_trace = root.child("trace");
  const auto trace_conns = source.generate_connections(
      r_trace, config.t0, config.t1, synth::InterarrivalScheme::kTcplib);
  out.n_connections = trace_conns.size();
  const auto skeletons = synth::TelnetSource::skeletons_of(trace_conns);

  out.counts["TRACE"] = packet_counts(trace_conns, config);

  const std::pair<std::string, synth::InterarrivalScheme> schemes[] = {
      {"TCPLIB", synth::InterarrivalScheme::kTcplib},
      {"EXP", synth::InterarrivalScheme::kExponential},
      {"VAR-EXP", synth::InterarrivalScheme::kVarExp},
  };
  for (const auto& [name, scheme] : schemes) {
    rng::Rng r = root.child(name);
    const auto conns = source.generate_from_skeletons(r, skeletons, scheme);
    out.counts[name] = packet_counts(conns, config);
  }

  for (const auto& [name, counts] : out.counts) {
    out.vt[name] = stats::variance_time_plot(counts);
  }
  return out;
}

VtComparison run_fulltel_comparison(const VtComparisonConfig& config,
                                    std::size_t n_replicates) {
  rng::Rng root(config.seed);
  const synth::TelnetSource source(flat_config(config));

  VtComparison out;

  // Reference trace over [t0, t1+hour]; analyses use the second hour so
  // the model replicates (which warm up from empty) compare fairly.
  const double hour = 3600.0;
  const double a0 = config.t0 + hour;
  const double a1 = std::min(config.t1, a0 + hour);

  VtComparisonConfig window = config;
  window.t0 = a0;
  window.t1 = a1;

  rng::Rng r_trace = root.child("trace");
  const auto trace_conns = source.generate_connections(
      r_trace, config.t0, config.t1, synth::InterarrivalScheme::kTcplib);
  out.n_connections = trace_conns.size();
  out.counts["TRACE"] = packet_counts(trace_conns, window);

  for (std::size_t rep = 0; rep < n_replicates; ++rep) {
    rng::Rng r = root.child("fulltel-" + std::to_string(rep));
    const auto conns = source.generate_connections(
        r, config.t0, config.t1, synth::InterarrivalScheme::kTcplib);
    out.counts["FULL-TEL-" + std::to_string(rep + 1)] =
        packet_counts(conns, window);
  }

  for (const auto& [name, counts] : out.counts) {
    out.vt[name] = stats::variance_time_plot(counts);
  }
  return out;
}

}  // namespace wan::core
