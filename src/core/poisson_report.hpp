// The Fig. 2 driver: run the Appendix-A Poisson tests on every protocol
// of a connection trace (including FTPDATA bursts), at both interval
// lengths, and render the verdict table.
#pragma once

#include <string>
#include <vector>

#include "src/stats/poisson_test.hpp"
#include "src/trace/burst.hpp"
#include "src/trace/conn_trace.hpp"

namespace wan::core {

/// One letter of Fig. 2: a (trace, protocol) pair's verdict.
struct ProtocolVerdict {
  std::string trace_name;
  std::string label;  ///< protocol or "FTPDATA-burst"
  stats::PoissonTestResult result;
};

struct PoissonReportConfig {
  double interval_length = 3600.0;
  double burst_gap = 4.0;  ///< Section VI's burst-joining threshold
  std::vector<trace::Protocol> protocols = {
      trace::Protocol::kTelnet, trace::Protocol::kFtpCtrl,
      trace::Protocol::kFtpData, trace::Protocol::kSmtp,
      trace::Protocol::kNntp,   trace::Protocol::kWww,
      trace::Protocol::kRlogin, trace::Protocol::kX11,
  };
  bool include_ftp_bursts = true;
  stats::PoissonTestConfig test;  ///< interval_length overridden
};

/// Runs the tests over one trace.
std::vector<ProtocolVerdict> poisson_report(const trace::ConnTrace& tr,
                                            const PoissonReportConfig& config);

/// Renders verdicts as a Fig. 2-style table (pass rates, consistency,
/// sign annotations).
std::string render_poisson_report(const std::vector<ProtocolVerdict>& rows);

}  // namespace wan::core
