// Compact binary persistence for packet traces. CSV (csv_io.hpp) is the
// interchange format; the binary format exists because packet traces run
// to millions of records (Table II) and parse time matters when a bench
// re-reads a synthesized hour of traffic.
//
// Format (little-endian):
//   magic   "WANT"            4 bytes
//   version u32               currently 1
//   t_begin f64, t_end f64
//   name_len u32, name bytes
//   count   u64
//   records: f64 time, u8 protocol, u8 from_originator, u16 payload,
//            u32 conn_id                      (16 bytes each)
#pragma once

#include <iosfwd>
#include <string>

#include "src/trace/packet_trace.hpp"

namespace wan::trace {

void write_binary(const PacketTrace& trace, std::ostream& os);
void write_binary_file(const PacketTrace& trace, const std::string& path);

/// Throws std::runtime_error on a malformed stream (bad magic, version,
/// truncated records, unknown protocol byte).
PacketTrace read_packet_binary(std::istream& is);
PacketTrace read_packet_binary_file(const std::string& path);

}  // namespace wan::trace
