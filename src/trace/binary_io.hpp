// Compact binary persistence for packet traces. CSV (csv_io.hpp) is the
// interchange format; the binary format exists because packet traces run
// to millions of records (Table II) and parse time matters when a bench
// re-reads a synthesized hour of traffic.
//
// Format (little-endian):
//   magic   "WANT"            4 bytes
//   version u32               currently 1
//   t_begin f64, t_end f64
//   name_len u32, name bytes
//   count   u64
//   records: f64 time, u8 protocol, u8 from_originator, u16 payload,
//            u32 conn_id                      (16 bytes each)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/trace/packet_trace.hpp"

namespace wan::trace {

void write_binary(const PacketTrace& trace, std::ostream& os);
void write_binary_file(const PacketTrace& trace, const std::string& path);

/// Throws std::runtime_error on a malformed stream (bad magic, version,
/// truncated records, unknown protocol byte).
PacketTrace read_packet_binary(std::istream& is);
PacketTrace read_packet_binary_file(const std::string& path);

// --- Format primitives -------------------------------------------------
//
// The header/record codecs below are the single definition of the file
// format; write_binary/read_packet_binary and the chunked streaming
// reader/writer (src/stream/binary_chunk.hpp) are all built on them, so
// a trace written chunk by chunk is byte-identical to one written whole.

struct PacketFileHeader {
  std::string name;
  double t_begin = 0.0;
  double t_end = 0.0;
  std::uint64_t count = 0;
};

/// Size of one encoded record (f64 time, u8 protocol, u8 originator,
/// u16 payload, u32 conn_id).
inline constexpr std::size_t kPacketRecordBytes = 16;

/// Writes the header; returns the absolute stream offset of the count
/// field so a streaming writer can patch it once the count is known.
std::uint64_t write_packet_header(std::ostream& os,
                                  const PacketFileHeader& header);

/// Reads and validates magic/version; throws std::runtime_error on a
/// malformed header.
PacketFileHeader read_packet_header(std::istream& is);

void write_packet_record(std::ostream& os, const PacketRecord& r);

/// Throws std::runtime_error on truncation or an unknown protocol byte.
PacketRecord read_packet_record(std::istream& is);

}  // namespace wan::trace
