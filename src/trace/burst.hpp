// FTPDATA burst identification (Section VI): data connections spawned by
// the same FTP session whose spacing (end of one to start of the next) is
// at most `gap` seconds belong to one burst. The paper uses gap = 4 s and
// notes 2 s gives virtually identical results.
#pragma once

#include <vector>

#include "src/trace/conn_trace.hpp"

namespace wan::trace {

/// One FTPDATA connection burst.
struct FtpBurst {
  double start = 0.0;
  double end = 0.0;
  std::uint64_t bytes = 0;
  std::size_t n_connections = 0;
  std::uint64_t session_id = 0;
};

/// How to group FTPDATA connections into sessions before bursting.
enum class SessionGrouping {
  kSessionId,  ///< use ConnRecord::session_id ground truth
  kHostPair,   ///< group by (src, dst) host pair, as SYN/FIN analysis must
};

/// Finds FTPDATA bursts in a connection trace.
std::vector<FtpBurst> find_ftp_bursts(
    const ConnTrace& trace, double gap = 4.0,
    SessionGrouping grouping = SessionGrouping::kSessionId);

/// The spacings between consecutive FTPDATA connections *within the same
/// session*: end of one connection to start of the next (Fig. 8's
/// distribution). Negative spacings (overlapping connections) are clamped
/// to `min_spacing`.
std::vector<double> intra_session_spacings(
    const ConnTrace& trace,
    SessionGrouping grouping = SessionGrouping::kSessionId,
    double min_spacing = 1e-3);

/// Burst byte sizes, convenient for tail analysis.
std::vector<double> burst_bytes(const std::vector<FtpBurst>& bursts);

/// Burst start times, sorted (for arrival-process tests).
std::vector<double> burst_start_times(const std::vector<FtpBurst>& bursts);

}  // namespace wan::trace
