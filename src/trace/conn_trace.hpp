// ConnTrace: a SYN/FIN connection trace (Table I style) with the
// filtering and summarization operations Section III needs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/trace/records.hpp"

namespace wan::trace {

/// Per-protocol row of a Table-I style summary.
struct ConnSummaryRow {
  Protocol protocol = Protocol::kOther;
  std::size_t connections = 0;
  std::uint64_t bytes = 0;
};

/// A trace of TCP connections.
class ConnTrace {
 public:
  ConnTrace() = default;
  ConnTrace(std::string name, double t_begin, double t_end)
      : name_(std::move(name)), t_begin_(t_begin), t_end_(t_end) {}

  const std::string& name() const { return name_; }
  double t_begin() const { return t_begin_; }
  double t_end() const { return t_end_; }
  double duration() const { return t_end_ - t_begin_; }

  void add(const ConnRecord& rec) { records_.push_back(rec); }
  void reserve(std::size_t n) { records_.reserve(n); }
  const std::vector<ConnRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Sorts records by start time (analysis code assumes this).
  void sort_by_start();

  /// New trace containing only `protocol` connections.
  ConnTrace filter(Protocol protocol) const;

  /// Start times of all connections of `protocol`, sorted.
  std::vector<double> arrival_times(Protocol protocol) const;

  /// Connection counts / byte totals per protocol, for Table-I rows.
  std::vector<ConnSummaryRow> summary() const;

  /// Total payload bytes over all records.
  std::uint64_t total_bytes() const;

  /// Fraction of this protocol's daily connections starting within each
  /// hour-of-day bucket (Fig. 1). Buckets wrap modulo 24 h.
  std::vector<double> hourly_profile(Protocol protocol) const;

 private:
  std::string name_;
  double t_begin_ = 0.0;
  double t_end_ = 0.0;
  std::vector<ConnRecord> records_;
};

}  // namespace wan::trace
