// PacketTrace: a packet-level trace (Table II style) with the filtering
// Section IV applies before analysis (originator side only, pure acks
// removed, bulk-transfer outliers removed).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/trace/records.hpp"

namespace wan::trace {

/// Per-protocol row of a Table-II style summary.
struct PacketSummaryRow {
  Protocol protocol = Protocol::kOther;
  std::size_t packets = 0;
  std::uint64_t payload_bytes = 0;
};

class PacketTrace {
 public:
  PacketTrace() = default;
  PacketTrace(std::string name, double t_begin, double t_end)
      : name_(std::move(name)), t_begin_(t_begin), t_end_(t_end) {}

  const std::string& name() const { return name_; }
  double t_begin() const { return t_begin_; }
  double t_end() const { return t_end_; }
  double duration() const { return t_end_ - t_begin_; }

  void add(const PacketRecord& rec) { records_.push_back(rec); }
  void reserve(std::size_t n) { records_.reserve(n); }
  const std::vector<PacketRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Stable: equal timestamps keep insertion order, so a sorted trace is
  /// a well-defined function of its record sequence (the streaming layer
  /// relies on this to reproduce batch output by ordered merging).
  void sort_by_time();

  /// New trace with only `protocol` packets.
  PacketTrace filter(Protocol protocol) const;

  /// Section IV's preprocessing: keep only originator packets carrying
  /// user data (drops pure acks and responder packets).
  PacketTrace originator_data_packets() const;

  /// Section IV's outlier rule: drop connections whose originator sent
  /// more than `max_bytes` at a sustained rate above `max_rate` bytes/s
  /// ("anomalously large and rapid ... probably better modeled as bulk
  /// transfer"). Defaults are the paper's 2^10 bytes at 8 bytes/s.
  PacketTrace remove_bulk_outliers(double max_bytes = 1024.0,
                                   double max_rate = 8.0) const;

  /// Packet timestamps, sorted; optionally for a single protocol.
  std::vector<double> packet_times() const;
  std::vector<double> packet_times(Protocol protocol) const;

  /// Number of distinct connection ids present.
  std::size_t connection_count() const;

  std::vector<PacketSummaryRow> summary() const;

 private:
  std::string name_;
  double t_begin_ = 0.0;
  double t_end_ = 0.0;
  std::vector<PacketRecord> records_;
};

/// The aggregation step of the Section-IV outlier rule, factored out so
/// a two-pass streaming source and PacketTrace::remove_bulk_outliers
/// compute the identical outlier set: observe every record (in trace
/// order), then ask which connections exceeded max_bytes at a sustained
/// rate above max_rate. State is O(#connections).
class BulkOutlierDetector {
 public:
  BulkOutlierDetector(double max_bytes, double max_rate)
      : max_bytes_(max_bytes), max_rate_(max_rate) {}

  void observe(const PacketRecord& r);
  std::set<std::uint32_t> outliers() const;

 private:
  struct ConnAgg {
    double first = 0.0;
    double last = 0.0;
    double bytes = 0.0;
    bool seen = false;
  };
  double max_bytes_;
  double max_rate_;
  std::map<std::uint32_t, ConnAgg> agg_;
};

}  // namespace wan::trace
