// The TCP application protocols the paper analyzes (Section III), plus
// the non-TCP families mentioned for the link-level traces (Section VII).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wan::trace {

/// Application protocol of a connection or packet.
enum class Protocol : std::uint8_t {
  kTelnet,   ///< interactive remote login (one TCP connection per session)
  kRlogin,   ///< interactive; behaves like TELNET for arrivals
  kFtpCtrl,  ///< FTP control connection == "FTP session" in the paper
  kFtpData,  ///< FTPDATA transfer connections spawned by a session
  kSmtp,     ///< email; machine-initiated, timer-driven
  kNntp,     ///< network news; flooding + timers
  kWww,      ///< World Wide Web (young and growing in 1994)
  kX11,      ///< X11: many connections per user session
  kDns,      ///< UDP DNS (link-level traces only)
  kMbone,    ///< multicast UDP audio (link-level traces only)
  kOther,
};

inline constexpr Protocol kAllProtocols[] = {
    Protocol::kTelnet, Protocol::kRlogin, Protocol::kFtpCtrl,
    Protocol::kFtpData, Protocol::kSmtp,  Protocol::kNntp,
    Protocol::kWww,    Protocol::kX11,    Protocol::kDns,
    Protocol::kMbone,  Protocol::kOther,
};

std::string_view to_string(Protocol p) noexcept;
std::optional<Protocol> protocol_from_string(std::string_view s) noexcept;

/// User-initiated session-arrival protocols: the ones Section III finds
/// to be well-modeled as Poisson within one-hour intervals.
bool is_user_session_protocol(Protocol p) noexcept;

/// TCP protocols (appear in SYN/FIN connection traces).
bool is_tcp(Protocol p) noexcept;

}  // namespace wan::trace
