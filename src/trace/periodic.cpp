#include "src/trace/periodic.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "src/stats/descriptive.hpp"

namespace wan::trace {

namespace {

using StreamKey = std::tuple<std::uint32_t, std::uint32_t, Protocol>;

std::map<StreamKey, std::vector<double>> stream_arrivals(
    const ConnTrace& trace) {
  std::map<StreamKey, std::vector<double>> streams;
  for (const ConnRecord& r : trace.records()) {
    streams[{r.src_host, r.dst_host, r.protocol}].push_back(r.start);
  }
  for (auto& [key, times] : streams) std::sort(times.begin(), times.end());
  return streams;
}

}  // namespace

std::vector<PeriodicStream> detect_periodic_streams(
    const ConnTrace& trace, const PeriodicDetectionConfig& config) {
  std::vector<PeriodicStream> found;
  for (const auto& [key, times] : stream_arrivals(trace)) {
    if (times.size() < config.min_count) continue;
    const auto gaps = stats::interarrivals(times);
    const double m = stats::mean(gaps);
    if (!(m > 0.0)) continue;
    const double cv = stats::stddev(gaps) / m;
    if (cv <= config.max_cv) {
      PeriodicStream s;
      std::tie(s.src_host, s.dst_host, s.protocol) = key;
      s.connections = times.size();
      s.mean_period = m;
      s.cv = cv;
      found.push_back(s);
    }
  }
  return found;
}

ConnTrace remove_periodic_streams(const ConnTrace& trace,
                                  const PeriodicDetectionConfig& config) {
  const auto periodic = detect_periodic_streams(trace, config);
  std::set<StreamKey> doomed;
  for (const PeriodicStream& s : periodic) {
    doomed.insert({s.src_host, s.dst_host, s.protocol});
  }
  ConnTrace out(trace.name() + "/deperiodic", trace.t_begin(),
                trace.t_end());
  for (const ConnRecord& r : trace.records()) {
    if (doomed.contains({r.src_host, r.dst_host, r.protocol})) continue;
    out.add(r);
  }
  return out;
}

}  // namespace wan::trace
