#include "src/trace/csv_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace wan::trace {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

[[noreturn]] void bad_line(const std::string& what, std::size_t line_no) {
  throw std::runtime_error("csv_io: " + what + " at line " +
                           std::to_string(line_no));
}

Protocol parse_protocol(const std::string& s, std::size_t line_no) {
  const auto p = protocol_from_string(s);
  if (!p) bad_line("unknown protocol '" + s + "'", line_no);
  return *p;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("csv_io: cannot open for write: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("csv_io: cannot open for read: " + path);
  return is;
}

}  // namespace

void write_csv(const ConnTrace& trace, std::ostream& os) {
  os << "# t_begin=" << trace.t_begin() << " t_end=" << trace.t_end()
     << " name=" << trace.name() << "\n";
  os << "start,duration,protocol,src,dst,bytes_orig,bytes_resp,session\n";
  for (const ConnRecord& r : trace.records()) {
    os << r.start << ',' << r.duration << ',' << to_string(r.protocol) << ','
       << r.src_host << ',' << r.dst_host << ',' << r.bytes_orig << ','
       << r.bytes_resp << ',' << r.session_id << '\n';
  }
}

void write_csv_file(const ConnTrace& trace, const std::string& path) {
  auto os = open_out(path);
  write_csv(trace, os);
}

ConnTrace read_conn_csv(std::istream& is, std::string name) {
  std::string line;
  std::size_t line_no = 0;
  double t_begin = 0.0, t_end = 0.0;

  // Optional metadata comment.
  if (is.peek() == '#') {
    std::getline(is, line);
    ++line_no;
    std::istringstream meta(line);
    std::string tok;
    while (meta >> tok) {
      if (tok.rfind("t_begin=", 0) == 0) t_begin = std::stod(tok.substr(8));
      if (tok.rfind("t_end=", 0) == 0) t_end = std::stod(tok.substr(6));
    }
  }
  // Header.
  if (!std::getline(is, line)) throw std::runtime_error("csv_io: empty input");
  ++line_no;

  ConnTrace trace(std::move(name), t_begin, t_end);
  double max_end = t_end;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    if (f.size() != 8) bad_line("expected 8 fields", line_no);
    ConnRecord r;
    try {
      r.start = std::stod(f[0]);
      r.duration = std::stod(f[1]);
      r.protocol = parse_protocol(f[2], line_no);
      r.src_host = static_cast<std::uint32_t>(std::stoul(f[3]));
      r.dst_host = static_cast<std::uint32_t>(std::stoul(f[4]));
      r.bytes_orig = std::stoull(f[5]);
      r.bytes_resp = std::stoull(f[6]);
      r.session_id = std::stoull(f[7]);
    } catch (const std::logic_error&) {
      bad_line("malformed field", line_no);
    }
    max_end = std::max(max_end, r.end());
    trace.add(r);
  }
  if (t_end <= t_begin) {
    trace = [&] {
      ConnTrace fixed(trace.name(), t_begin, max_end);
      for (const auto& r : trace.records()) fixed.add(r);
      return fixed;
    }();
  }
  return trace;
}

ConnTrace read_conn_csv_file(const std::string& path) {
  auto is = open_in(path);
  return read_conn_csv(is, path);
}

void write_packet_csv_header(std::ostream& os, const std::string& name,
                             double t_begin, double t_end) {
  os << "# t_begin=" << t_begin << " t_end=" << t_end << " name=" << name
     << "\n";
  os << "time,protocol,conn,orig,payload\n";
}

void write_packet_csv_row(std::ostream& os, const PacketRecord& r) {
  os << r.time << ',' << to_string(r.protocol) << ',' << r.conn_id << ','
     << (r.from_originator ? 1 : 0) << ',' << r.payload_bytes << '\n';
}

std::pair<double, double> read_packet_csv_header(std::istream& is) {
  std::string line;
  double t_begin = 0.0, t_end = 0.0;
  if (is.peek() == '#') {
    std::getline(is, line);
    std::istringstream meta(line);
    std::string tok;
    while (meta >> tok) {
      if (tok.rfind("t_begin=", 0) == 0) t_begin = std::stod(tok.substr(8));
      if (tok.rfind("t_end=", 0) == 0) t_end = std::stod(tok.substr(6));
    }
  }
  if (!std::getline(is, line)) throw std::runtime_error("csv_io: empty input");
  return {t_begin, t_end};
}

PacketRecord parse_packet_csv_row(const std::string& line,
                                  std::size_t line_no) {
  const auto f = split_csv_line(line);
  if (f.size() != 5) bad_line("expected 5 fields", line_no);
  PacketRecord r;
  try {
    r.time = std::stod(f[0]);
    r.protocol = parse_protocol(f[1], line_no);
    r.conn_id = static_cast<std::uint32_t>(std::stoul(f[2]));
    r.from_originator = f[3] == "1";
    r.payload_bytes = static_cast<std::uint16_t>(std::stoul(f[4]));
  } catch (const std::logic_error&) {
    bad_line("malformed field", line_no);
  }
  return r;
}

void write_csv(const PacketTrace& trace, std::ostream& os) {
  write_packet_csv_header(os, trace.name(), trace.t_begin(), trace.t_end());
  for (const PacketRecord& r : trace.records()) write_packet_csv_row(os, r);
}

void write_csv_file(const PacketTrace& trace, const std::string& path) {
  auto os = open_out(path);
  write_csv(trace, os);
}

PacketTrace read_packet_csv(std::istream& is, std::string name) {
  const auto [t_begin, t_end] = read_packet_csv_header(is);
  std::size_t line_no = 2;  // metadata (if any) + column header consumed

  PacketTrace trace(std::move(name), t_begin, t_end);
  double max_time = t_end;
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const PacketRecord r = parse_packet_csv_row(line, line_no);
    max_time = std::max(max_time, r.time);
    trace.add(r);
  }
  if (t_end <= t_begin) {
    PacketTrace fixed(trace.name(), t_begin, max_time);
    for (const auto& r : trace.records()) fixed.add(r);
    return fixed;
  }
  return trace;
}

PacketTrace read_packet_csv_file(const std::string& path) {
  auto is = open_in(path);
  return read_packet_csv(is, path);
}

}  // namespace wan::trace
