#include "src/trace/protocol.hpp"

namespace wan::trace {

std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kTelnet: return "TELNET";
    case Protocol::kRlogin: return "RLOGIN";
    case Protocol::kFtpCtrl: return "FTP";
    case Protocol::kFtpData: return "FTPDATA";
    case Protocol::kSmtp: return "SMTP";
    case Protocol::kNntp: return "NNTP";
    case Protocol::kWww: return "WWW";
    case Protocol::kX11: return "X11";
    case Protocol::kDns: return "DNS";
    case Protocol::kMbone: return "MBONE";
    case Protocol::kOther: return "OTHER";
  }
  return "OTHER";
}

std::optional<Protocol> protocol_from_string(std::string_view s) noexcept {
  for (Protocol p : kAllProtocols) {
    if (to_string(p) == s) return p;
  }
  return std::nullopt;
}

bool is_user_session_protocol(Protocol p) noexcept {
  return p == Protocol::kTelnet || p == Protocol::kRlogin ||
         p == Protocol::kFtpCtrl;
}

bool is_tcp(Protocol p) noexcept {
  switch (p) {
    case Protocol::kDns:
    case Protocol::kMbone:
      return false;
    default:
      return true;
  }
}

}  // namespace wan::trace
