#include "src/trace/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace wan::trace {

namespace {

constexpr char kMagic[4] = {'W', 'A', 'N', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("binary_io: truncated input");
  return v;
}

}  // namespace

std::uint64_t write_packet_header(std::ostream& os,
                                  const PacketFileHeader& header) {
  os.write(kMagic, 4);
  put(os, kVersion);
  put(os, header.t_begin);
  put(os, header.t_end);
  const auto name_len = static_cast<std::uint32_t>(header.name.size());
  put(os, name_len);
  os.write(header.name.data(), name_len);
  // magic + version + two doubles + name_len field + name bytes.
  const std::uint64_t count_offset = 4 + 4 + 8 + 8 + 4 + name_len;
  put(os, header.count);
  if (!os) throw std::runtime_error("binary_io: header write failed");
  return count_offset;
}

PacketFileHeader read_packet_header(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("binary_io: bad magic");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("binary_io: unsupported version " +
                             std::to_string(version));
  PacketFileHeader h;
  h.t_begin = get<double>(is);
  h.t_end = get<double>(is);
  const auto name_len = get<std::uint32_t>(is);
  if (name_len > 4096)
    throw std::runtime_error("binary_io: implausible name length");
  h.name.assign(name_len, '\0');
  is.read(h.name.data(), name_len);
  if (!is) throw std::runtime_error("binary_io: truncated name");
  h.count = get<std::uint64_t>(is);
  return h;
}

void write_packet_record(std::ostream& os, const PacketRecord& r) {
  put(os, r.time);
  put(os, static_cast<std::uint8_t>(r.protocol));
  put(os, static_cast<std::uint8_t>(r.from_originator ? 1 : 0));
  put(os, r.payload_bytes);
  put(os, r.conn_id);
}

PacketRecord read_packet_record(std::istream& is) {
  constexpr auto kMaxProtocol = static_cast<std::uint8_t>(Protocol::kOther);
  PacketRecord r;
  r.time = get<double>(is);
  const auto proto = get<std::uint8_t>(is);
  if (proto > kMaxProtocol)
    throw std::runtime_error("binary_io: unknown protocol byte");
  r.protocol = static_cast<Protocol>(proto);
  r.from_originator = get<std::uint8_t>(is) != 0;
  r.payload_bytes = get<std::uint16_t>(is);
  r.conn_id = get<std::uint32_t>(is);
  return r;
}

void write_binary(const PacketTrace& trace, std::ostream& os) {
  write_packet_header(os, {trace.name(), trace.t_begin(), trace.t_end(),
                           static_cast<std::uint64_t>(trace.size())});
  for (const PacketRecord& r : trace.records()) write_packet_record(os, r);
  if (!os) throw std::runtime_error("binary_io: write failed");
}

void write_binary_file(const PacketTrace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("binary_io: cannot open " + path);
  write_binary(trace, os);
}

PacketTrace read_packet_binary(std::istream& is) {
  PacketFileHeader h = read_packet_header(is);
  PacketTrace trace(std::move(h.name), h.t_begin, h.t_end);
  trace.reserve(h.count);
  for (std::uint64_t i = 0; i < h.count; ++i)
    trace.add(read_packet_record(is));
  return trace;
}

PacketTrace read_packet_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("binary_io: cannot open " + path);
  return read_packet_binary(is);
}

}  // namespace wan::trace
