// Detection and removal of timer-driven periodic traffic — the paper's
// preprocessing step ("Prior to our analysis we removed the periodic
// 'weather-map' FTP traffic ... to avoid skewing our results",
// Section III).
//
// Detection: for each (src, dst, protocol) stream with at least
// `min_count` connections, compute the interarrival coefficient of
// variation. Human- or queue-driven streams have CV near or above 1;
// timer-driven jobs have CV far below 1 (tight jitter around a fixed
// period).
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/conn_trace.hpp"

namespace wan::trace {

/// A detected periodic stream.
struct PeriodicStream {
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  Protocol protocol = Protocol::kOther;
  std::size_t connections = 0;
  double mean_period = 0.0;
  double cv = 0.0;  ///< stddev(gaps)/mean(gaps)
};

struct PeriodicDetectionConfig {
  std::size_t min_count = 8;  ///< streams shorter than this are ignored
  double max_cv = 0.25;       ///< CV threshold declaring "timer-driven"
};

/// Finds periodic (src, dst, protocol) streams in the trace.
std::vector<PeriodicStream> detect_periodic_streams(
    const ConnTrace& trace, const PeriodicDetectionConfig& config = {});

/// Returns a copy of the trace with every connection belonging to a
/// detected periodic stream removed (both the FTPDATA and control legs
/// of a weather-map-style job disappear because both streams are
/// periodic).
ConnTrace remove_periodic_streams(const ConnTrace& trace,
                                  const PeriodicDetectionConfig& config = {});

}  // namespace wan::trace
