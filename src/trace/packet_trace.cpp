#include "src/trace/packet_trace.hpp"

#include <algorithm>
#include <set>

namespace wan::trace {

void PacketTrace::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.time < b.time;
                   });
}

PacketTrace PacketTrace::filter(Protocol protocol) const {
  PacketTrace out(name_ + "/" + std::string(to_string(protocol)), t_begin_,
                  t_end_);
  for (const PacketRecord& r : records_) {
    if (r.protocol == protocol) out.add(r);
  }
  return out;
}

PacketTrace PacketTrace::originator_data_packets() const {
  PacketTrace out(name_ + "/orig-data", t_begin_, t_end_);
  for (const PacketRecord& r : records_) {
    if (r.from_originator && r.payload_bytes > 0) out.add(r);
  }
  return out;
}

PacketTrace PacketTrace::remove_bulk_outliers(double max_bytes,
                                              double max_rate) const {
  BulkOutlierDetector det(max_bytes, max_rate);
  for (const PacketRecord& r : records_) det.observe(r);
  const std::set<std::uint32_t> outliers = det.outliers();
  PacketTrace out(name_ + "/no-outliers", t_begin_, t_end_);
  for (const PacketRecord& r : records_) {
    if (!outliers.contains(r.conn_id)) out.add(r);
  }
  return out;
}

void BulkOutlierDetector::observe(const PacketRecord& r) {
  if (!r.from_originator) return;
  ConnAgg& a = agg_[r.conn_id];
  if (!a.seen) {
    a.first = r.time;
    a.seen = true;
  }
  a.last = std::max(a.last, r.time);
  a.first = std::min(a.first, r.time);
  a.bytes += r.payload_bytes;
}

std::set<std::uint32_t> BulkOutlierDetector::outliers() const {
  std::set<std::uint32_t> out;
  for (const auto& [id, a] : agg_) {
    const double span = std::max(a.last - a.first, 1.0);
    if (a.bytes > max_bytes_ && a.bytes / span > max_rate_) out.insert(id);
  }
  return out;
}

std::vector<double> PacketTrace::packet_times() const {
  std::vector<double> times;
  times.reserve(records_.size());
  for (const PacketRecord& r : records_) times.push_back(r.time);
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<double> PacketTrace::packet_times(Protocol protocol) const {
  std::vector<double> times;
  for (const PacketRecord& r : records_) {
    if (r.protocol == protocol) times.push_back(r.time);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::size_t PacketTrace::connection_count() const {
  std::set<std::uint32_t> ids;
  for (const PacketRecord& r : records_) ids.insert(r.conn_id);
  return ids.size();
}

std::vector<PacketSummaryRow> PacketTrace::summary() const {
  std::map<Protocol, PacketSummaryRow> rows;
  for (const PacketRecord& r : records_) {
    PacketSummaryRow& row = rows[r.protocol];
    row.protocol = r.protocol;
    row.packets += 1;
    row.payload_bytes += r.payload_bytes;
  }
  std::vector<PacketSummaryRow> out;
  out.reserve(rows.size());
  for (const auto& [proto, row] : rows) out.push_back(row);
  return out;
}

}  // namespace wan::trace
