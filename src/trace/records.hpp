// The two record types of the paper's two trace families:
//  * ConnRecord — what a TCP SYN/FIN trace captures (Table I): start
//    time, duration, protocol, participating hosts, bytes each way;
//  * PacketRecord — what a packet-level trace captures (Table II).
#pragma once

#include <cstdint>

#include "src/trace/protocol.hpp"

namespace wan::trace {

/// One TCP connection as seen by a SYN/FIN monitor.
struct ConnRecord {
  double start = 0.0;      ///< seconds from trace origin
  double duration = 0.0;   ///< seconds
  Protocol protocol = Protocol::kOther;
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  std::uint64_t bytes_orig = 0;  ///< originator -> responder payload bytes
  std::uint64_t bytes_resp = 0;  ///< responder -> originator payload bytes
  /// Groups FTPDATA connections with the FTP session (control connection)
  /// that spawned them; 0 when not applicable. Real SYN/FIN analysis
  /// groups by host pair — we keep the ground truth available and let the
  /// burst code use either.
  std::uint64_t session_id = 0;

  double end() const { return start + duration; }
  std::uint64_t total_bytes() const { return bytes_orig + bytes_resp; }
};

/// One packet as seen by a link monitor.
struct PacketRecord {
  double time = 0.0;
  Protocol protocol = Protocol::kOther;
  std::uint32_t conn_id = 0;        ///< connection the packet belongs to
  bool from_originator = true;
  std::uint16_t payload_bytes = 0;  ///< 0 == "pure ack"
};

}  // namespace wan::trace
