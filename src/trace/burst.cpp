#include "src/trace/burst.hpp"

#include <algorithm>
#include <map>

namespace wan::trace {

namespace {

std::uint64_t group_key(const ConnRecord& r, SessionGrouping grouping) {
  if (grouping == SessionGrouping::kSessionId) return r.session_id;
  return (static_cast<std::uint64_t>(r.src_host) << 32) | r.dst_host;
}

// FTPDATA connections of each session, sorted by start time.
std::map<std::uint64_t, std::vector<ConnRecord>> sessions_of(
    const ConnTrace& trace, SessionGrouping grouping) {
  std::map<std::uint64_t, std::vector<ConnRecord>> sessions;
  for (const ConnRecord& r : trace.records()) {
    if (r.protocol != Protocol::kFtpData) continue;
    sessions[group_key(r, grouping)].push_back(r);
  }
  for (auto& [key, conns] : sessions) {
    std::sort(conns.begin(), conns.end(),
              [](const ConnRecord& a, const ConnRecord& b) {
                return a.start < b.start;
              });
  }
  return sessions;
}

}  // namespace

std::vector<FtpBurst> find_ftp_bursts(const ConnTrace& trace, double gap,
                                      SessionGrouping grouping) {
  std::vector<FtpBurst> bursts;
  for (const auto& [key, conns] : sessions_of(trace, grouping)) {
    FtpBurst current;
    bool open = false;
    for (const ConnRecord& c : conns) {
      if (open && c.start - current.end <= gap) {
        current.end = std::max(current.end, c.end());
        current.bytes += c.total_bytes();
        current.n_connections += 1;
      } else {
        if (open) bursts.push_back(current);
        current = FtpBurst{c.start, c.end(), c.total_bytes(), 1, key};
        open = true;
      }
    }
    if (open) bursts.push_back(current);
  }
  std::sort(bursts.begin(), bursts.end(),
            [](const FtpBurst& a, const FtpBurst& b) {
              return a.start < b.start;
            });
  return bursts;
}

std::vector<double> intra_session_spacings(const ConnTrace& trace,
                                           SessionGrouping grouping,
                                           double min_spacing) {
  std::vector<double> spacings;
  for (const auto& [key, conns] : sessions_of(trace, grouping)) {
    for (std::size_t i = 1; i < conns.size(); ++i) {
      const double s = conns[i].start - conns[i - 1].end();
      spacings.push_back(std::max(s, min_spacing));
    }
  }
  return spacings;
}

std::vector<double> burst_bytes(const std::vector<FtpBurst>& bursts) {
  std::vector<double> out;
  out.reserve(bursts.size());
  for (const FtpBurst& b : bursts)
    out.push_back(static_cast<double>(b.bytes));
  return out;
}

std::vector<double> burst_start_times(const std::vector<FtpBurst>& bursts) {
  std::vector<double> out;
  out.reserve(bursts.size());
  for (const FtpBurst& b : bursts) out.push_back(b.start);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wan::trace
