#include "src/trace/conn_trace.hpp"

#include <algorithm>
#include <cmath>

namespace wan::trace {

void ConnTrace::sort_by_start() {
  std::sort(records_.begin(), records_.end(),
            [](const ConnRecord& a, const ConnRecord& b) {
              return a.start < b.start;
            });
}

ConnTrace ConnTrace::filter(Protocol protocol) const {
  ConnTrace out(name_ + "/" + std::string(to_string(protocol)), t_begin_,
                t_end_);
  for (const ConnRecord& r : records_) {
    if (r.protocol == protocol) out.add(r);
  }
  return out;
}

std::vector<double> ConnTrace::arrival_times(Protocol protocol) const {
  std::vector<double> times;
  for (const ConnRecord& r : records_) {
    if (r.protocol == protocol) times.push_back(r.start);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<ConnSummaryRow> ConnTrace::summary() const {
  std::map<Protocol, ConnSummaryRow> rows;
  for (const ConnRecord& r : records_) {
    ConnSummaryRow& row = rows[r.protocol];
    row.protocol = r.protocol;
    row.connections += 1;
    row.bytes += r.total_bytes();
  }
  std::vector<ConnSummaryRow> out;
  out.reserve(rows.size());
  for (const auto& [proto, row] : rows) out.push_back(row);
  return out;
}

std::uint64_t ConnTrace::total_bytes() const {
  std::uint64_t total = 0;
  for (const ConnRecord& r : records_) total += r.total_bytes();
  return total;
}

std::vector<double> ConnTrace::hourly_profile(Protocol protocol) const {
  std::vector<double> buckets(24, 0.0);
  double total = 0.0;
  for (const ConnRecord& r : records_) {
    if (r.protocol != protocol) continue;
    const double hour_of_day = std::fmod(r.start / 3600.0, 24.0);
    const auto h = static_cast<std::size_t>(hour_of_day) % 24;
    buckets[h] += 1.0;
    total += 1.0;
  }
  if (total > 0.0) {
    for (double& b : buckets) b /= total;
  }
  return buckets;
}

}  // namespace wan::trace
