// CSV persistence for traces, so synthesized datasets can be saved,
// shared, and re-analyzed with external tools.
#pragma once

#include <iosfwd>
#include <string>

#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::trace {

/// Writes "start,duration,protocol,src,dst,bytes_orig,bytes_resp,session"
/// rows with a header line.
void write_csv(const ConnTrace& trace, std::ostream& os);
void write_csv_file(const ConnTrace& trace, const std::string& path);

/// Reads the format written by write_csv. Throws std::runtime_error on
/// malformed input.
ConnTrace read_conn_csv(std::istream& is, std::string name = "csv");
ConnTrace read_conn_csv_file(const std::string& path);

/// Writes "time,protocol,conn,orig,payload" rows with a header line.
void write_csv(const PacketTrace& trace, std::ostream& os);
void write_csv_file(const PacketTrace& trace, const std::string& path);

PacketTrace read_packet_csv(std::istream& is, std::string name = "csv");
PacketTrace read_packet_csv_file(const std::string& path);

}  // namespace wan::trace
