// CSV persistence for traces, so synthesized datasets can be saved,
// shared, and re-analyzed with external tools.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>

#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

namespace wan::trace {

/// Writes "start,duration,protocol,src,dst,bytes_orig,bytes_resp,session"
/// rows with a header line.
void write_csv(const ConnTrace& trace, std::ostream& os);
void write_csv_file(const ConnTrace& trace, const std::string& path);

/// Reads the format written by write_csv. Throws std::runtime_error on
/// malformed input.
ConnTrace read_conn_csv(std::istream& is, std::string name = "csv");
ConnTrace read_conn_csv_file(const std::string& path);

/// Writes "time,protocol,conn,orig,payload" rows with a header line.
void write_csv(const PacketTrace& trace, std::ostream& os);
void write_csv_file(const PacketTrace& trace, const std::string& path);

PacketTrace read_packet_csv(std::istream& is, std::string name = "csv");
PacketTrace read_packet_csv_file(const std::string& path);

// --- Row-level packet-CSV primitives -----------------------------------
//
// Shared by write_csv/read_packet_csv and the chunked streaming CSV
// reader/writer (src/stream/csv_chunk.hpp), so a file streamed row by
// row is byte-identical to one written whole.

/// Writes the "# t_begin=..." metadata comment plus the column header.
void write_packet_csv_header(std::ostream& os, const std::string& name,
                             double t_begin, double t_end);

void write_packet_csv_row(std::ostream& os, const PacketRecord& r);

/// Parses the optional leading metadata comment (consumes it only if
/// present) and the column header line. Returns {t_begin, t_end} —
/// {0, 0} when the file carries no metadata.
std::pair<double, double> read_packet_csv_header(std::istream& is);

/// Parses one data row as written by write_packet_csv_row. Throws
/// std::runtime_error (mentioning line_no) on malformed input.
PacketRecord parse_packet_csv_row(const std::string& line,
                                  std::size_t line_no);

}  // namespace wan::trace
