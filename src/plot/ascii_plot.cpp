#include "src/plot/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace wan::plot {

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
  return buf;
}

namespace {

struct Bounds {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void take(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo < hi; }
};

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

}  // namespace

std::string render(const std::vector<Series>& series,
                   const AxesConfig& axes) {
  Bounds bx, by;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if ((axes.log_x && s.x[i] <= 0.0) || (axes.log_y && s.y[i] <= 0.0))
        continue;
      bx.take(transform(s.x[i], axes.log_x));
      by.take(transform(s.y[i], axes.log_y));
    }
  }
  if (!bx.valid() || !by.valid()) {
    // Degenerate data: widen so a single point still renders.
    if (!bx.valid()) {
      bx.lo = std::isfinite(bx.lo) ? bx.lo - 1.0 : 0.0;
      bx.hi = bx.lo + 2.0;
    }
    if (!by.valid()) {
      by.lo = std::isfinite(by.lo) ? by.lo - 1.0 : 0.0;
      by.hi = by.lo + 2.0;
    }
  }

  const std::size_t w = std::max<std::size_t>(axes.width, 16);
  const std::size_t h = std::max<std::size_t>(axes.height, 6);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if ((axes.log_x && s.x[i] <= 0.0) || (axes.log_y && s.y[i] <= 0.0))
        continue;
      const double tx = transform(s.x[i], axes.log_x);
      const double ty = transform(s.y[i], axes.log_y);
      const double fx = (tx - bx.lo) / (bx.hi - bx.lo);
      const double fy = (ty - by.lo) / (by.hi - by.lo);
      auto col = static_cast<std::size_t>(fx * static_cast<double>(w - 1));
      auto row = static_cast<std::size_t>((1.0 - fy) *
                                          static_cast<double>(h - 1));
      col = std::min(col, w - 1);
      row = std::min(row, h - 1);
      grid[row][col] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!axes.title.empty()) os << axes.title << "\n";
  const auto axis_val = [](double v, bool log_scale) {
    return log_scale ? std::pow(10.0, v) : v;
  };
  char buf[32];
  for (std::size_t r = 0; r < h; ++r) {
    if (r == 0) {
      std::snprintf(buf, sizeof(buf), "%10.3g", axis_val(by.hi, axes.log_y));
      os << buf;
    } else if (r == h - 1) {
      std::snprintf(buf, sizeof(buf), "%10.3g", axis_val(by.lo, axes.log_y));
      os << buf;
    } else {
      os << std::string(10, ' ');
    }
    os << " |" << grid[r] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(w, '-') << "\n";
  std::snprintf(buf, sizeof(buf), "%-12.3g", axis_val(bx.lo, axes.log_x));
  os << std::string(12, ' ') << buf;
  os << std::string(w > 36 ? w - 36 : 1, ' ');
  std::snprintf(buf, sizeof(buf), "%12.3g", axis_val(bx.hi, axes.log_x));
  os << buf << "\n";
  if (!axes.x_label.empty() || !axes.y_label.empty()) {
    os << "            x: " << axes.x_label << "   y: " << axes.y_label
       << "\n";
  }
  for (const Series& s : series) {
    os << "            " << s.glyph << " = " << s.label << "\n";
  }
  return os.str();
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c)
    widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << v << std::string(widths[c] - v.size() + 2, ' ');
    }
    os << "\n";
  };
  emit(header);
  std::size_t total = 0;
  for (std::size_t wdt : widths) total += wdt + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows) emit(row);
  return os.str();
}

}  // namespace wan::plot
