#include "src/plot/series_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace wan::plot {

void write_columns_csv(const std::string& path,
                       const std::vector<std::string>& names,
                       const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size())
    throw std::invalid_argument("write_columns_csv: names/columns mismatch");
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_columns_csv: cannot open " + path);

  for (std::size_t c = 0; c < names.size(); ++c) {
    os << names[c] << (c + 1 < names.size() ? ',' : '\n');
  }
  std::size_t max_len = 0;
  for (const auto& col : columns) max_len = std::max(max_len, col.size());
  for (std::size_t r = 0; r < max_len; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (r < columns[c].size()) os << columns[c][r];
      os << (c + 1 < columns.size() ? ',' : '\n');
    }
  }
}

}  // namespace wan::plot
