// CSV export of plot series so the benches' figures can be re-rendered
// with external tools (gnuplot, matplotlib, R).
#pragma once

#include <string>
#include <vector>

namespace wan::plot {

/// Writes columns to a CSV file with the given header names. Columns may
/// have unequal lengths; missing cells are left empty.
void write_columns_csv(const std::string& path,
                       const std::vector<std::string>& names,
                       const std::vector<std::vector<double>>& columns);

}  // namespace wan::plot
