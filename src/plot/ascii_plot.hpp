// Terminal plotting for the benchmark harnesses: multi-series scatter
// plots on linear or logarithmic axes, rendered as text so every figure
// of the paper can be eyeballed straight from a bench run.
#pragma once

#include <string>
#include <vector>

namespace wan::plot {

struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct AxesConfig {
  bool log_x = false;
  bool log_y = false;
  std::size_t width = 72;   ///< plot area columns
  std::size_t height = 20;  ///< plot area rows
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders series into a text plot. Points with nonpositive coordinates
/// on a log axis are skipped.
std::string render(const std::vector<Series>& series, const AxesConfig& axes);

/// Renders a simple aligned table: header row + rows of cells.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

/// Formats a double with `prec` significant digits (helper for tables).
std::string fmt(double v, int prec = 4);

}  // namespace wan::plot
