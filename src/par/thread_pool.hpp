// ThreadPool: a fixed set of worker threads draining a shared task
// queue. Futures report completion and carry exceptions back to the
// submitter.
//
// The pool is deliberately dumb — no priorities, no work stealing. The
// determinism story lives one layer up in parallel.hpp: work is cut into
// chunks whose *results* are combined in index order, so it never matters
// which worker runs which chunk, or in what order.
//
// Waiters should call run_pending_task() while blocked (parallel.cpp's
// drain loop does) so that nested parallel regions cannot deadlock even
// when every worker is itself inside a wait.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wan::par {

class ThreadPool {
 public:
  /// Starts `n_workers` threads (0 is allowed: submit() still works and
  /// tasks are then executed by whoever calls run_pending_task()).
  explicit ThreadPool(std::size_t n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const;

  /// Enqueues a task. The future becomes ready when the task finishes and
  /// rethrows anything the task threw.
  std::future<void> submit(std::function<void()> task);

  /// Runs one queued task on the calling thread, if any is pending.
  /// Returns false when the queue was empty.
  bool run_pending_task();

  /// Ensures at least `n_workers` worker threads exist (never shrinks).
  void grow(std::size_t n_workers);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// The process-wide pool used by parallel_for / parallel_transform_reduce.
/// Lazily created; grows to thread_count() - 1 workers on demand.
ThreadPool& global_pool();

}  // namespace wan::par
