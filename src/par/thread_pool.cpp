#include "src/par/thread_pool.hpp"

#include "src/par/parallel.hpp"

namespace wan::par {

ThreadPool::ThreadPool(std::size_t n_workers) {
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::run_pending_task() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::grow(std::size_t n_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < n_workers)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(thread_count() > 0 ? thread_count() - 1 : 0);
  const std::size_t want = thread_count() > 0 ? thread_count() - 1 : 0;
  if (want > pool.size()) pool.grow(want);
  return pool;
}

}  // namespace wan::par
