#include "src/par/parallel.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "src/par/thread_pool.hpp"

namespace wan::par {

namespace {

std::size_t initial_thread_count() {
  if (const char* env = std::getenv("WAN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

std::atomic<std::size_t>& thread_count_slot() {
  static std::atomic<std::size_t> count(initial_thread_count());
  return count;
}

}  // namespace

std::size_t thread_count() noexcept {
  return thread_count_slot().load(std::memory_order_relaxed);
}

void set_thread_count(std::size_t n) noexcept {
  thread_count_slot().store(n >= 1 ? n : 1, std::memory_order_relaxed);
}

std::size_t default_grain(std::size_t n) noexcept {
  const std::size_t grain = (n + 63) / 64;
  return grain >= 1 ? grain : 1;
}

namespace detail {

void run_chunks(std::size_t n_chunks,
                const std::function<void(std::size_t)>& chunk) {
  if (n_chunks == 0) return;
  const std::size_t threads =
      thread_count() < n_chunks ? thread_count() : n_chunks;
  if (threads <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) chunk(c);
    return;
  }

  ThreadPool& pool = global_pool();
  std::atomic<std::size_t> next(0);
  std::atomic<bool> failed(false);
  std::mutex err_mu;
  std::exception_ptr err;

  // Chunks are claimed through a shared counter; which thread computes
  // which chunk is irrelevant because callers only depend on per-chunk
  // results (parallel_transform_reduce recombines them in index order).
  auto drain = [&] {
    for (std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
         c < n_chunks; c = next.fetch_add(1, std::memory_order_relaxed)) {
      if (failed.load(std::memory_order_relaxed)) break;
      try {
        chunk(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::future<void>> helpers;
  helpers.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    helpers.push_back(pool.submit(drain));
  drain();

  for (std::future<void>& f : helpers) {
    // Help run other queued work while waiting so that nested parallel
    // regions make progress even when every worker is blocked here.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool.run_pending_task())
        f.wait_for(std::chrono::microseconds(50));
    }
    f.get();
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace detail

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = default_grain(n);
  const std::size_t n_chunks = (n + grain - 1) / grain;
  detail::run_chunks(n_chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * grain;
    const std::size_t e = b + grain < end ? b + grain : end;
    body(b, e);
  });
}

}  // namespace wan::par
