// Deterministic data parallelism for the synthesis and estimation hot
// paths.
//
// The contract every helper here honors: *the result is a pure function
// of the inputs and the grain, never of the thread count or the
// scheduling order*. Work is cut into contiguous index chunks; each chunk
// is computed independently (by whichever thread picks it up) and chunk
// results are combined strictly in index order. Setting the thread count
// to 1 runs the identical chunked code on the calling thread, so
// `parallel == serial` holds bit-for-bit — the property the par tests
// pin for the synthesizer, variance-time, Whittle, and R/S pipelines.
//
// Exceptions thrown by a chunk abort the remaining chunks and are
// rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace wan::par {

/// Current worker budget for parallel regions (>= 1). Defaults to
/// std::thread::hardware_concurrency(), overridable with the WAN_THREADS
/// environment variable; 1 forces the serial path.
std::size_t thread_count() noexcept;

/// Sets the worker budget (clamped to >= 1). Takes effect on the next
/// parallel region; the global pool grows on demand but never shrinks.
void set_thread_count(std::size_t n) noexcept;

/// Default chunk size for an n-element range: at most 64 chunks. A pure
/// function of n — never of the thread count — so reductions group
/// floating-point operations identically no matter how many workers run.
std::size_t default_grain(std::size_t n) noexcept;

namespace detail {

/// Runs chunk(0..n_chunks-1), each exactly once, distributed over up to
/// thread_count() threads (including the caller). Blocks until all chunks
/// finish; rethrows the first chunk exception. The calling thread helps
/// drain the global pool while waiting, so nested regions cannot
/// deadlock.
void run_chunks(std::size_t n_chunks,
                const std::function<void(std::size_t)>& chunk);

}  // namespace detail

/// Applies body(chunk_begin, chunk_end) over [begin, end) cut into chunks
/// of `grain` indices (grain 0 = default_grain). Bodies must only touch
/// disjoint state per index — there is no ordering between chunks.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Ordered map-reduce: acc = combine(...combine(init, chunk_0)...,
/// chunk_k) where chunk_c = transform(i0) folded left with combine over
/// its indices. The grouping depends only on `grain`, so the result is
/// bitwise identical at any thread count.
template <class T, class Transform, class Combine>
T parallel_transform_reduce(std::size_t begin, std::size_t end,
                            std::size_t grain, T init, Transform&& transform,
                            Combine&& combine) {
  if (end <= begin) return init;
  const std::size_t n = end - begin;
  if (grain == 0) grain = default_grain(n);
  const std::size_t n_chunks = (n + grain - 1) / grain;

  std::vector<T> partial(n_chunks, init);
  detail::run_chunks(n_chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * grain;
    const std::size_t e = b + grain < end ? b + grain : end;
    T acc = transform(b);
    for (std::size_t i = b + 1; i < e; ++i) acc = combine(std::move(acc), transform(i));
    partial[c] = std::move(acc);
  });

  T out = std::move(init);
  for (std::size_t c = 0; c < n_chunks; ++c)
    out = combine(std::move(out), std::move(partial[c]));
  return out;
}

}  // namespace wan::par
