#include "src/sim/tcp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wan::sim {

TcpTrace simulate_tcp_transfer(std::size_t n_packets,
                               const TcpConfig& config) {
  TcpTrace trace;
  if (n_packets == 0) return trace;

  const double per_round_capacity = config.bottleneck_rate * config.rtt;
  if (!(per_round_capacity > 0.0))
    throw std::invalid_argument("simulate_tcp_transfer: zero capacity");

  double cwnd = 1.0;
  double ssthresh = config.initial_ssthresh;
  double queue = 0.0;   // packets standing in the bottleneck buffer
  double credit = 0.0;  // fractional service carried between rounds
                        // (capacities below 1 pkt/round must still drain)
  std::size_t remaining = n_packets;
  double t = 0.0;

  for (std::size_t round = 0;
       round < config.max_rounds && (remaining > 0 || queue > 0.0);
       ++round) {
    trace.cwnd_by_round.push_back(cwnd);

    // Self-clocking: the window covers packets in flight, which includes
    // those parked in the bottleneck buffer. Only the shortfall is new.
    const double new_pkts = std::min(
        static_cast<double>(remaining), std::max(0.0, cwnd - queue));
    trace.packets_sent += static_cast<std::size_t>(new_pkts);
    remaining -= static_cast<std::size_t>(new_pkts);

    const double offered = queue + new_pkts;
    const double drained = std::min(offered, per_round_capacity);
    double backlog = offered - drained;
    double dropped = 0.0;
    if (backlog > static_cast<double>(config.buffer_packets)) {
      dropped = backlog - static_cast<double>(config.buffer_packets);
      backlog = static_cast<double>(config.buffer_packets);
      // Dropped packets must be retransmitted eventually.
      remaining += static_cast<std::size_t>(std::ceil(dropped));
    }
    queue = backlog;
    trace.queue_by_round.push_back(queue);
    trace.packets_dropped += static_cast<std::size_t>(std::ceil(dropped));

    // Emit departures as an ack-clocked *train* at the head of the round
    // (Jain & Routhier's packet trains — the paper's [25]): a window's
    // packets travel clustered, followed by a lull until the next window
    // of acks. Retransmission accounting rounds drops up, so clamp
    // deliveries at the transfer size.
    credit += drained;
    const auto whole = static_cast<std::size_t>(credit);
    const auto n_out =
        std::min<std::size_t>(whole, n_packets - trace.packets_delivered);
    credit -= static_cast<double>(whole);
    const double train_spacing =
        config.rtt / (3.0 * static_cast<double>(std::max<std::size_t>(
                                n_out, 1)));
    for (std::size_t i = 0; i < n_out; ++i) {
      trace.departure_times.push_back(t + static_cast<double>(i + 1) *
                                              train_spacing);
      ++trace.packets_delivered;
    }

    // Window update.
    if (dropped > 0.0) {
      ssthresh = std::max(2.0, cwnd / 2.0);
      cwnd = ssthresh;  // fast recovery, not a timeout collapse
    } else if (cwnd < ssthresh) {
      cwnd = std::min(cwnd * 2.0, ssthresh);  // slow start
    } else {
      cwnd += 1.0;  // congestion avoidance
    }
    t += config.rtt;
    if (trace.packets_delivered >= n_packets) break;
  }

  trace.completion_time = t;
  trace.mean_throughput =
      t > 0.0 ? static_cast<double>(trace.packets_delivered) / t : 0.0;
  return trace;
}

namespace {

struct Flow {
  double cwnd = 1.0;
  double ssthresh = 64.0;
  double queue = 0.0;       // this flow's packets in the shared buffer
  double credit = 0.0;      // fractional service carried between rounds
  std::size_t remaining = 0;
  std::size_t delivered = 0;
  double completion = -1.0;
};

}  // namespace

TcpShared simulate_tcp_shared(std::size_t n_flows, std::size_t n_packets,
                              const TcpConfig& config) {
  TcpShared out;
  if (n_flows == 0) return out;

  const double per_round_capacity = config.bottleneck_rate * config.rtt;
  if (!(per_round_capacity > 0.0))
    throw std::invalid_argument("simulate_tcp_shared: zero capacity");

  std::vector<Flow> flows(n_flows);
  for (Flow& f : flows) {
    f.ssthresh = config.initial_ssthresh;
    f.remaining = n_packets;
  }

  double t = 0.0;
  std::size_t active = n_flows;

  for (std::size_t round = 0; round < config.max_rounds && active > 0;
       ++round) {
    // Offered load this round: standing queues plus self-clocked new
    // packets per flow.
    double offered = 0.0;
    std::vector<double> flow_offer(n_flows, 0.0);
    for (std::size_t i = 0; i < n_flows; ++i) {
      Flow& f = flows[i];
      const double new_pkts =
          std::min(static_cast<double>(f.remaining),
                   std::max(0.0, f.cwnd - f.queue));
      f.remaining -= static_cast<std::size_t>(new_pkts);
      flow_offer[i] = f.queue + new_pkts;
      offered += flow_offer[i];
    }

    const double drained = std::min(offered, per_round_capacity);
    const double share = offered > 0.0 ? drained / offered : 0.0;
    const double backlog = offered - drained;
    const bool congested =
        backlog > static_cast<double>(config.buffer_packets);
    // If the buffer overflows, leftovers shrink proportionally and the
    // overflow is dropped (to be resent).
    const double keep =
        congested && backlog > 0.0
            ? static_cast<double>(config.buffer_packets) / backlog
            : 1.0;

    std::size_t emitted = 0;
    for (std::size_t i = 0; i < n_flows; ++i) {
      Flow& f = flows[i];
      if (flow_offer[i] <= 0.0) {
        // Nothing in flight; still update the idle window gently.
        continue;
      }
      const double served = flow_offer[i] * share;
      const double leftover = (flow_offer[i] - served) * keep;
      const double dropped = (flow_offer[i] - served) - leftover;
      f.queue = leftover;
      f.remaining += static_cast<std::size_t>(std::ceil(dropped));

      // Deliveries: fractional accounting, emitted when a whole packet
      // accumulates (no service leaks between rounds).
      f.credit += served;
      const auto whole = static_cast<std::size_t>(f.credit);
      f.credit -= static_cast<double>(whole);
      const std::size_t grant =
          std::min<std::size_t>(whole, n_packets - f.delivered);
      for (std::size_t k = 0; k < grant; ++k) {
        out.aggregate_departures.push_back(
            t + config.rtt * static_cast<double>(emitted + k + 1) /
                    std::max(1.0, drained));
      }
      emitted += grant;
      f.delivered += grant;
      if (f.delivered >= n_packets && f.completion < 0.0) {
        f.completion = t + config.rtt;
        --active;
      }

      // Window update.
      if (congested && dropped > 0.0) {
        f.ssthresh = std::max(2.0, f.cwnd / 2.0);
        f.cwnd = f.ssthresh;
      } else if (f.cwnd < f.ssthresh) {
        f.cwnd = std::min(f.cwnd * 2.0, f.ssthresh);
      } else {
        f.cwnd += 1.0;
      }
    }
    t += config.rtt;
  }

  std::sort(out.aggregate_departures.begin(), out.aggregate_departures.end());
  for (const Flow& f : flows) {
    const double done = f.completion < 0.0 ? t : f.completion;
    out.completion_times.push_back(done);
    out.mean_rates.push_back(done > 0.0
                                 ? static_cast<double>(f.delivered) / done
                                 : 0.0);
  }
  return out;
}

}  // namespace wan::sim
