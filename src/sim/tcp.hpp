// A round-based model of TCP congestion control over a bottleneck link —
// the mechanism Section VII holds responsible for FTPDATA's departure
// from the constant-rate M/G/inf idealization: slow start probes, AIMD
// oscillates, and the achieved rate varies both across connections and
// within one connection's lifetime.
//
// The model advances in RTT-sized rounds. Each round the source emits
// cwnd packets, paced across the round; the bottleneck drains
// capacity*RTT packets per round into a drop-tail buffer; any excess is
// dropped and halves cwnd (fast-recovery abstracted to one event per
// round); otherwise cwnd doubles in slow start or grows by one in
// congestion avoidance.
#pragma once

#include <cstddef>
#include <vector>

namespace wan::sim {

struct TcpConfig {
  double rtt = 0.1;               ///< seconds per round
  double bottleneck_rate = 100.0; ///< packets per second
  std::size_t buffer_packets = 20;
  double initial_ssthresh = 64.0; ///< packets
  std::size_t max_rounds = 100000;
};

/// Trajectory of one transfer.
struct TcpTrace {
  std::vector<double> cwnd_by_round;       ///< window at each round start
  std::vector<double> queue_by_round;      ///< buffer occupancy at round end
  std::vector<double> departure_times;     ///< per-packet exit times
  std::size_t packets_sent = 0;            ///< includes retransmissions
  std::size_t packets_delivered = 0;
  std::size_t packets_dropped = 0;
  double completion_time = 0.0;
  double mean_throughput = 0.0;            ///< delivered packets / time
};

/// Simulates a single transfer of `n_packets` through the bottleneck.
TcpTrace simulate_tcp_transfer(std::size_t n_packets,
                               const TcpConfig& config = {});

/// Simulates `n_flows` concurrent transfers sharing one bottleneck, each
/// with `n_packets` to move; returns the aggregate departure process and
/// per-flow completion times. Demonstrates the rate heterogeneity of
/// Section VII ("different FTP connections have quite different average
/// rates").
struct TcpShared {
  std::vector<double> aggregate_departures;
  std::vector<double> completion_times;
  std::vector<double> mean_rates;  ///< per-flow achieved packets/s
};

TcpShared simulate_tcp_shared(std::size_t n_flows, std::size_t n_packets,
                              const TcpConfig& config = {});

}  // namespace wan::sim
