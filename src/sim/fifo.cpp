#include "src/sim/fifo.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace wan::sim {

std::vector<double> fifo_wait_times(std::span<const double> arrivals,
                                    std::span<const double> services) {
  if (arrivals.size() != services.size())
    throw std::invalid_argument("fifo_wait_times: size mismatch");
  std::vector<double> waits(arrivals.size(), 0.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = arrivals[i] - arrivals[i - 1];
    if (gap < 0.0)
      throw std::invalid_argument("fifo_wait_times: arrivals not sorted");
    waits[i] = std::max(0.0, waits[i - 1] + services[i - 1] - gap);
  }
  return waits;
}

QueueStats simulate_fifo(std::span<const double> arrivals,
                         const std::function<double(std::size_t)>& service,
                         std::size_t buffer_packets) {
  QueueStats stats;
  stats.arrived = arrivals.size();
  if (arrivals.empty()) return stats;

  // Single-server FIFO evolves deterministically between arrivals, so a
  // sweep over arrivals suffices; the "event engine" is implicit.
  double server_free_at = 0.0;   // when the in-service packet departs
  std::deque<double> queue;      // service demands of waiting packets
  double queued_work = 0.0;      // running sum of `queue`
  std::vector<double> delays;
  delays.reserve(arrivals.size());

  double busy_time = 0.0;
  double queue_area = 0.0;  // integral of queue length over time
  double last_t = arrivals.front();

  const auto advance_to = [&](double t) {
    // Serve completions occurring before t.
    while (server_free_at <= t && !queue.empty()) {
      queue_area += static_cast<double>(queue.size()) *
                    (server_free_at - last_t);
      last_t = server_free_at;
      const double s = queue.front();
      queue.pop_front();
      queued_work -= s;
      busy_time += s;
      server_free_at += s;
    }
    queue_area += static_cast<double>(queue.size()) * (t - last_t);
    last_t = t;
  };

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double t = arrivals[i];
    if (i > 0 && t < arrivals[i - 1])
      throw std::invalid_argument("simulate_fifo: arrivals not sorted");
    advance_to(t);

    const double s = service(i);
    if (!(s >= 0.0))
      throw std::invalid_argument("simulate_fifo: negative service time");

    if (server_free_at <= t) {
      // Server idle: go straight into service.
      delays.push_back(s);
      server_free_at = t + s;
      busy_time += s;
      ++stats.served;
    } else if (queue.size() < buffer_packets) {
      // Wait = time until server frees + queued demands ahead of us.
      const double wait = (server_free_at - t) + queued_work;
      delays.push_back(wait + s);
      queue.push_back(s);
      queued_work += s;
      ++stats.served;
      stats.max_queue_len =
          std::max(stats.max_queue_len, static_cast<double>(queue.size()));
    } else {
      ++stats.dropped;
    }
  }
  // Drain.
  while (!queue.empty()) {
    queue_area +=
        static_cast<double>(queue.size()) * (server_free_at - last_t);
    last_t = server_free_at;
    const double s = queue.front();
    queue.pop_front();
    queued_work -= s;
    busy_time += s;
    server_free_at += s;
  }

  const double horizon = server_free_at - arrivals.front();
  stats.mean_delay = stats::mean(delays);
  stats.max_delay = delays.empty() ? 0.0 : stats::max_value(delays);
  stats.p99_delay = delays.empty() ? 0.0 : stats::quantile(delays, 0.99);
  stats.mean_queue_len = horizon > 0.0 ? queue_area / horizon : 0.0;
  stats.utilization = horizon > 0.0 ? busy_time / horizon : 0.0;
  return stats;
}

QueueStats simulate_fifo_const(std::span<const double> arrivals,
                               double service_time,
                               std::size_t buffer_packets) {
  return simulate_fifo(
      arrivals, [service_time](std::size_t) { return service_time; },
      buffer_packets);
}

}  // namespace wan::sim
