// Two-class non-preemptive priority queueing — Section VIII's first
// implication: "If the higher priority class has long-range dependence
// and a high degree of variability over long time scales, then the
// bursts from the higher priority traffic could starve the lower
// priority traffic for long periods of time."
//
// Interactive (e.g. TELNET) packets get strict priority over bulk
// (e.g. FTP) packets at a shared link; we measure what the bulk class
// suffers, including the duration of its starvation episodes.
#pragma once

#include <span>
#include <vector>

#include "src/sim/fifo.hpp"

namespace wan::sim {

struct PriorityStats {
  QueueStats high;  ///< the priority class
  QueueStats low;   ///< the background class
  /// Longest stretch of simulated time during which at least one low-
  /// priority packet was continuously waiting.
  double max_low_starvation = 0.0;
  /// Number of distinct episodes where a low packet waited longer than
  /// `starvation_threshold`.
  std::size_t starvation_episodes = 0;
};

struct PriorityConfig {
  double service_time_high = 0.001;  ///< seconds per high packet
  double service_time_low = 0.01;    ///< seconds per low packet
  double starvation_threshold = 1.0; ///< what counts as "starved"
};

/// Simulates strict non-preemptive priority service of the two sorted
/// arrival streams.
PriorityStats simulate_priority(std::span<const double> high_arrivals,
                                std::span<const double> low_arrivals,
                                const PriorityConfig& config = {});

}  // namespace wan::sim
