// Measurement-based admission control — Section VIII's second
// implication: an admissions procedure "that considers only recent
// traffic could be easily misled following a long period of fairly low
// traffic rates" when the measured class is long-range dependent. (The
// paper's California-earthquake analogy.)
//
// Model: a background load process (any count series, e.g. M/G/inf with
// Pareto vs exponential lifetimes scaled to equal means) shares a link
// of given capacity with admitted flows. Flow requests arrive each slot
// (Bernoulli); the controller admits a flow of fixed rate r if its
// *measurement* of recent total load (EWMA) plus r fits under
// capacity * headroom. Admitted flows hold r units for a random number
// of slots. We record how often the *actual* total demand exceeds
// capacity — overload the controller failed to prevent.
#pragma once

#include <cstdint>
#include <span>

#include "src/rng/rng.hpp"

namespace wan::sim {

struct AdmissionConfig {
  double capacity = 100.0;
  double headroom = 0.85;         ///< admit while EWMA + r < capacity*headroom
  double ewma_alpha = 0.02;       ///< measurement smoothing per slot
  double flow_rate = 5.0;         ///< each admitted flow's demand
  double request_prob = 0.08;     ///< chance of a new request per slot
  /// Admitted flows hold capacity for a long time relative to the
  /// measurement window — the dangerous regime: commitments made during
  /// a lull are still around when the swell returns.
  double mean_holding_slots = 1500.0;
};

struct AdmissionResult {
  std::size_t slots = 0;
  std::size_t requests = 0;
  std::size_t admitted = 0;
  double mean_background = 0.0;
  double mean_total = 0.0;
  double overload_fraction = 0.0;   ///< slots with total demand > capacity
  double worst_overload = 0.0;      ///< max(total - capacity)
  double mean_admitted_flows = 0.0; ///< time-average concurrent flows
};

/// Runs the slotted admission-control simulation over the background
/// series (one value per slot).
AdmissionResult simulate_admission(rng::Rng& rng,
                                   std::span<const double> background,
                                   const AdmissionConfig& config = {});

}  // namespace wan::sim
