// A minimal discrete-event simulation engine: a clock and a stable
// time-ordered event queue. Components schedule closures; the engine
// runs them in (time, insertion-order) sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wan::sim {

/// Discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  double now() const noexcept { return now_; }

  /// Schedules `action` at absolute time t (must be >= now()).
  void schedule_at(double t, Action action);

  /// Schedules `action` `delay` seconds from now.
  void schedule_in(double delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(double until);

  /// Runs until the queue is empty.
  void run();

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // tie-breaker for stable ordering
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wan::sim
