#include "src/sim/simulator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wan::sim {

void Simulator::schedule_at(double t, Action action) {
  if (t < now_)
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

void Simulator::run_until(double until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // Copy out before pop: the action may schedule further events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
  }
  // Advance the clock to the horizon — but run() passes +inf to mean
  // "drain everything", where the clock should stop at the last event.
  if (std::isfinite(until) && now_ < until) now_ = until;
}

void Simulator::run() {
  run_until(std::numeric_limits<double>::infinity());
}

}  // namespace wan::sim
