#include "src/sim/priority.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace wan::sim {

PriorityStats simulate_priority(std::span<const double> high_arrivals,
                                std::span<const double> low_arrivals,
                                const PriorityConfig& config) {
  PriorityStats stats;
  stats.high.arrived = high_arrivals.size();
  stats.low.arrived = low_arrivals.size();

  std::deque<double> high_q, low_q;  // arrival times of waiting packets
  std::vector<double> high_delays, low_delays;
  high_delays.reserve(high_arrivals.size());
  low_delays.reserve(low_arrivals.size());

  std::size_t hi = 0, li = 0;
  double server_free = 0.0;
  double busy = 0.0;
  double current_starvation_start = -1.0;

  const double t_start = std::min(
      high_arrivals.empty() ? 1e300 : high_arrivals.front(),
      low_arrivals.empty() ? 1e300 : low_arrivals.front());

  // Event sweep: the next event is either an arrival or (implicitly) a
  // service completion; we process arrivals in order and between them
  // drain the queues.
  const auto serve_until = [&](double now) {
    while (server_free <= now && (!high_q.empty() || !low_q.empty())) {
      const bool take_high = !high_q.empty();
      const double arr = take_high ? high_q.front() : low_q.front();
      const double svc =
          take_high ? config.service_time_high : config.service_time_low;
      if (take_high) {
        high_q.pop_front();
        high_delays.push_back(server_free - arr + svc);
        ++stats.high.served;
      } else {
        low_q.pop_front();
        const double delay = server_free - arr + svc;
        low_delays.push_back(delay);
        ++stats.low.served;
        if (delay > config.starvation_threshold) {
          if (current_starvation_start < 0.0)
            current_starvation_start = arr;
        } else if (current_starvation_start >= 0.0) {
          stats.max_low_starvation =
              std::max(stats.max_low_starvation,
                       server_free - current_starvation_start);
          ++stats.starvation_episodes;
          current_starvation_start = -1.0;
        }
      }
      busy += svc;
      server_free += svc;
    }
  };

  while (hi < high_arrivals.size() || li < low_arrivals.size()) {
    const double next_h =
        hi < high_arrivals.size() ? high_arrivals[hi] : 1e300;
    const double next_l = li < low_arrivals.size() ? low_arrivals[li] : 1e300;
    const double t = std::min(next_h, next_l);
    serve_until(t);
    if (server_free < t) server_free = t;
    if (next_h <= next_l) {
      if (hi > 0 && high_arrivals[hi] < high_arrivals[hi - 1])
        throw std::invalid_argument("simulate_priority: high not sorted");
      high_q.push_back(next_h);
      ++hi;
    } else {
      if (li > 0 && low_arrivals[li] < low_arrivals[li - 1])
        throw std::invalid_argument("simulate_priority: low not sorted");
      low_q.push_back(next_l);
      ++li;
    }
  }
  serve_until(1e300);
  if (current_starvation_start >= 0.0) {
    stats.max_low_starvation = std::max(
        stats.max_low_starvation, server_free - current_starvation_start);
    ++stats.starvation_episodes;
  }

  const auto fill = [](QueueStats* q, std::vector<double>& delays) {
    q->mean_delay = stats::mean(delays);
    q->max_delay = delays.empty() ? 0.0 : stats::max_value(delays);
    q->p99_delay = delays.empty() ? 0.0 : stats::quantile(delays, 0.99);
  };
  fill(&stats.high, high_delays);
  fill(&stats.low, low_delays);
  const double horizon = server_free - t_start;
  stats.high.utilization = horizon > 0.0 ? busy / horizon : 0.0;
  stats.low.utilization = stats.high.utilization;
  return stats;
}

}  // namespace wan::sim
