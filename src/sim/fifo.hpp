// FIFO queueing of packet arrival streams — the instrument behind the
// paper's Section IV claim that exponential interarrivals "significantly
// underestimate performance measures such as average packet delay".
//
// Two forms:
//  * Lindley recursion for the infinite-buffer single-server queue
//    (exact, fast);
//  * an event-driven finite-buffer variant that also reports drops and
//    queue-length dynamics.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/stats/descriptive.hpp"

namespace wan::sim {

/// Waiting times (time in queue, excluding own service) for a FIFO
/// single-server queue fed by sorted `arrivals`, where packet i needs
/// `services[i]` seconds of service. Lindley's recursion:
///   W_0 = 0;  W_{i+1} = max(0, W_i + S_i - (A_{i+1} - A_i)).
std::vector<double> fifo_wait_times(std::span<const double> arrivals,
                                    std::span<const double> services);

/// Summary of a queueing run.
struct QueueStats {
  std::size_t arrived = 0;
  std::size_t served = 0;
  std::size_t dropped = 0;
  double mean_delay = 0.0;   ///< wait + service of served packets
  double max_delay = 0.0;
  double p99_delay = 0.0;
  double mean_queue_len = 0.0;  ///< time-averaged number waiting
  double max_queue_len = 0.0;
  double utilization = 0.0;     ///< busy fraction of the server
};

/// Event-driven FIFO with a buffer holding at most `buffer_packets`
/// *waiting* packets (the one in service not counted); arrivals finding
/// the buffer full are dropped. service(i) gives packet i's service time.
QueueStats simulate_fifo(std::span<const double> arrivals,
                         const std::function<double(std::size_t)>& service,
                         std::size_t buffer_packets = SIZE_MAX);

/// Convenience: constant service time (fixed-size packets over a fixed
/// bandwidth).
QueueStats simulate_fifo_const(std::span<const double> arrivals,
                               double service_time,
                               std::size_t buffer_packets = SIZE_MAX);

}  // namespace wan::sim
