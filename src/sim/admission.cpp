#include "src/sim/admission.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace wan::sim {

AdmissionResult simulate_admission(rng::Rng& rng,
                                   std::span<const double> background,
                                   const AdmissionConfig& config) {
  if (background.empty())
    throw std::invalid_argument("simulate_admission: empty background");
  if (!(config.capacity > 0.0) || !(config.flow_rate > 0.0))
    throw std::invalid_argument("simulate_admission: bad capacity/rate");

  AdmissionResult out;
  out.slots = background.size();

  // Active flows, as remaining holding slots.
  std::vector<std::uint64_t> flows;
  double ewma = background.front();
  double bg_sum = 0.0, total_sum = 0.0, flows_sum = 0.0;
  std::size_t overload_slots = 0;

  for (double bg : background) {
    // Expire flows.
    for (auto& remain : flows) --remain;
    flows.erase(std::remove(flows.begin(), flows.end(), 0ull), flows.end());

    const double admitted_demand =
        config.flow_rate * static_cast<double>(flows.size());

    // A new request?
    if (rng.bernoulli(config.request_prob)) {
      ++out.requests;
      if (ewma + config.flow_rate <
          config.capacity * config.headroom) {
        ++out.admitted;
        // Geometric holding time with the configured mean (>= 1 slot).
        const double u = rng.uniform01_open_below();
        const double p = 1.0 / std::max(config.mean_holding_slots, 1.0);
        const double k = std::ceil(std::log(u) / std::log1p(-p));
        flows.push_back(
            static_cast<std::uint64_t>(std::max(1.0, k)));
      }
    }

    const double total = bg + admitted_demand;
    bg_sum += bg;
    total_sum += total;
    flows_sum += static_cast<double>(flows.size());
    if (total > config.capacity) {
      ++overload_slots;
      out.worst_overload =
          std::max(out.worst_overload, total - config.capacity);
    }

    // The controller's view: smoothed recent measurement of the total.
    ewma = (1.0 - config.ewma_alpha) * ewma + config.ewma_alpha * total;
  }

  const double n = static_cast<double>(out.slots);
  out.mean_background = bg_sum / n;
  out.mean_total = total_sum / n;
  out.overload_fraction = static_cast<double>(overload_slots) / n;
  out.mean_admitted_flows = flows_sum / n;
  return out;
}

}  // namespace wan::sim
