#include "src/ingest/pcap_reader.hpp"

#include <cstring>

namespace wan::ingest {

namespace {

// The four classic magics, read as a little-endian u32. "Swapped" means
// every header field must be byte-reversed relative to how this host
// reads the file.
constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;      // native usec
constexpr std::uint32_t kMagicUsecSwap = 0xD4C3B2A1;  // swapped usec
constexpr std::uint32_t kMagicNsec = 0xA1B23C4D;      // native nsec
constexpr std::uint32_t kMagicNsecSwap = 0x4D3CB2A1;  // swapped nsec

constexpr std::uint32_t kLinkLoop = 0;    // BSD loopback (4-byte family)
constexpr std::uint32_t kLinkEther = 1;   // Ethernet
constexpr std::uint32_t kLinkRawOld = 12; // raw IP (older BSDs)
constexpr std::uint32_t kLinkRaw = 101;   // raw IP

std::uint32_t load_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

std::uint16_t load_be16(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t load_be32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

PcapReader::PcapReader(const std::string& path, ParseMode mode)
    : is_(path, std::ios::binary), path_(path), mode_(mode) {
  if (!is_) throw std::runtime_error("pcap: cannot open for read: " + path);

  unsigned char header[24];
  if (!read_exact(header, sizeof(header))) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "pcap global header truncated: " + path);
    return;  // lenient: header_ok_ stays false, next() yields nothing
  }
  stats_.bytes += sizeof(header);

  const std::uint32_t magic = load_le32(header);
  switch (magic) {
    case kMagicUsec: swap_ = false; tick_ = 1e-6; break;
    case kMagicUsecSwap: swap_ = true; tick_ = 1e-6; break;
    case kMagicNsec: swap_ = false; tick_ = 1e-9; break;
    case kMagicNsecSwap: swap_ = true; tick_ = 1e-9; break;
    default:
      report(stats_, &IngestStats::bad_headers, mode_,
             "not a pcap file (bad magic): " + path);
      return;
  }

  const std::uint16_t version_major = u16(header + 4);
  linktype_ = u32(header + 20);
  if (version_major != 2) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "unsupported pcap version " + std::to_string(version_major) +
               ": " + path);
    return;
  }
  if (linktype_ != kLinkEther && linktype_ != kLinkLoop &&
      linktype_ != kLinkRaw && linktype_ != kLinkRawOld) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "unsupported pcap link type " + std::to_string(linktype_) + ": " +
               path);
    return;
  }

  header_ok_ = true;
  data_offset_ = is_.tellg();
}

bool PcapReader::read_exact(void* dst, std::size_t n) {
  is_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(is_.gcount()) == n;
}

std::uint32_t PcapReader::u32(const unsigned char* p) const {
  const std::uint32_t v = load_le32(p);
  return swap_ ? bswap32(v) : v;
}

std::uint16_t PcapReader::u16(const unsigned char* p) const {
  const std::uint16_t v =
      static_cast<std::uint16_t>(p[0] | (static_cast<unsigned>(p[1]) << 8));
  return swap_ ? static_cast<std::uint16_t>((v >> 8) | (v << 8)) : v;
}

bool PcapReader::next(RawPacket& out) {
  if (!header_ok_ || fatal_) return false;
  while (true) {
    bool decoded = false;
    if (!read_record(out, &decoded)) return false;
    if (decoded) {
      ++stats_.records;
      return true;
    }
  }
}

bool PcapReader::read_record(RawPacket& out, bool* decoded) {
  *decoded = false;
  unsigned char rh[16];
  is_.read(reinterpret_cast<char*>(rh), sizeof(rh));
  const auto got = static_cast<std::size_t>(is_.gcount());
  if (got == 0) return false;  // clean EOF
  if (got < sizeof(rh)) {
    report(stats_, &IngestStats::truncated_records, mode_,
           "pcap record header truncated: " + path_);
    fatal_ = true;
    return false;
  }
  stats_.bytes += sizeof(rh);

  const std::uint32_t ts_sec = u32(rh);
  const std::uint32_t ts_frac = u32(rh + 4);
  const std::uint32_t incl_len = u32(rh + 8);

  if (incl_len > kMaxCaptureBytes) {
    // No resync marker in the stream: a corrupt length poisons every
    // later offset, so stop here in both modes.
    report(stats_, &IngestStats::oversized_records, mode_,
           "pcap record length " + std::to_string(incl_len) +
               " beyond sanity cap: " + path_);
    fatal_ = true;
    return false;
  }
  buf_.resize(incl_len);
  if (incl_len > 0 && !read_exact(buf_.data(), incl_len)) {
    report(stats_, &IngestStats::truncated_records, mode_,
           "pcap record data truncated: " + path_);
    fatal_ = true;
    return false;
  }
  stats_.bytes += incl_len;

  const double frac_limit = tick_ == 1e-6 ? 1e6 : 1e9;
  if (static_cast<double>(ts_frac) >= frac_limit) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "pcap timestamp fraction out of range: " + path_);
    return true;  // lenient: drop this record, keep going
  }
  const double t =
      static_cast<double>(ts_sec) + static_cast<double>(ts_frac) * tick_;

  if (!decode_frame(buf_, out)) return true;  // counted inside

  out.time = t;
  if (any_record_ && t < prev_time_) {
    report(stats_, &IngestStats::out_of_order, mode_,
           "pcap timestamp went backwards: " + path_);
    // Lenient: keep the record — downstream binning is order-independent
    // and the flow table clocks off the maximum time seen.
  }
  if (!any_record_ || t > prev_time_) prev_time_ = t;
  any_record_ = true;
  *decoded = true;
  return true;
}

bool PcapReader::decode_frame(const std::vector<unsigned char>& data,
                              RawPacket& out) {
  std::size_t off = 0;
  switch (linktype_) {
    case kLinkEther: {
      if (data.size() < 14) {
        ++stats_.short_captures;
        return false;
      }
      const std::uint16_t ethertype = load_be16(data.data() + 12);
      if (ethertype != 0x0800) {  // not IPv4
        ++stats_.skipped_frames;
        return false;
      }
      off = 14;
      break;
    }
    case kLinkLoop: {
      if (data.size() < 4) {
        ++stats_.short_captures;
        return false;
      }
      // The 4-byte family is written in the *capturing* host's byte
      // order; AF_INET == 2 in either reading means IPv4.
      const std::uint32_t fam_le = load_le32(data.data());
      const std::uint32_t fam_be = load_be32(data.data());
      if (fam_le != 2 && fam_be != 2) {
        ++stats_.skipped_frames;
        return false;
      }
      off = 4;
      break;
    }
    case kLinkRaw:
    case kLinkRawOld:
      off = 0;
      break;
    default:
      ++stats_.skipped_frames;  // unreachable: constructor validates
      return false;
  }
  return decode_ip(data.data() + off, data.size() - off, out);
}

bool PcapReader::decode_ip(const unsigned char* p, std::size_t len,
                           RawPacket& out) {
  if (len < 20) {
    ++stats_.short_captures;
    return false;
  }
  const unsigned version = p[0] >> 4;
  if (version != 4) {
    ++stats_.skipped_frames;
    return false;
  }
  const std::size_t ihl = static_cast<std::size_t>(p[0] & 0x0F) * 4;
  const std::uint16_t total_len = load_be16(p + 2);
  if (ihl < 20 || total_len < ihl) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "IPv4 header with impossible lengths: " + path_);
    return false;
  }
  const std::uint16_t frag = load_be16(p + 6);
  if ((frag & 0x1FFF) != 0) {  // non-first fragment: no transport header
    ++stats_.skipped_frames;
    return false;
  }
  if (len < ihl) {
    ++stats_.short_captures;
    return false;
  }

  out.src_ip = load_be32(p + 12);
  out.dst_ip = load_be32(p + 16);
  out.multicast = (out.dst_ip >> 28) == 0xE;

  const unsigned char* tp = p + ihl;
  const std::size_t tlen = len - ihl;
  switch (p[9]) {
    case 6: {  // TCP
      // Ports, data offset and flags live in the first 14 bytes.
      if (tlen < 14) {
        ++stats_.short_captures;
        return false;
      }
      out.tcp = true;
      out.src_port = load_be16(tp);
      out.dst_port = load_be16(tp + 2);
      const std::size_t doff = static_cast<std::size_t>(tp[12] >> 4) * 4;
      out.tcp_flags = tp[13];
      if (doff < 20 || total_len < ihl + doff) {
        report(stats_, &IngestStats::bad_headers, mode_,
               "TCP header with impossible data offset: " + path_);
        return false;
      }
      out.payload_bytes = static_cast<std::uint32_t>(total_len - ihl - doff);
      return true;
    }
    case 17: {  // UDP
      if (tlen < 8) {
        ++stats_.short_captures;
        return false;
      }
      out.tcp = false;
      out.tcp_flags = 0;
      out.src_port = load_be16(tp);
      out.dst_port = load_be16(tp + 2);
      const std::uint16_t udp_len = load_be16(tp + 4);
      if (udp_len < 8) {
        report(stats_, &IngestStats::bad_headers, mode_,
               "UDP header with impossible length: " + path_);
        return false;
      }
      out.payload_bytes = static_cast<std::uint32_t>(udp_len - 8);
      return true;
    }
    default:
      ++stats_.unknown_transports;
      return false;
  }
}

void PcapReader::reset() {
  if (!header_ok_) return;
  is_.clear();
  is_.seekg(data_offset_);
  if (!is_) throw std::runtime_error("pcap: reset seek failed: " + path_);
  stats_.clear();
  stats_.bytes += 24;  // the already-validated global header
  fatal_ = false;
  any_record_ = false;
  prev_time_ = 0.0;
}

}  // namespace wan::ingest
