#include "src/ingest/pcap_reader.hpp"

#include <cstring>

namespace wan::ingest {

PcapReader::PcapReader(const std::string& path, ParseMode mode)
    : is_(path, std::ios::binary), path_(path), mode_(mode) {
  if (!is_) throw std::runtime_error("pcap: cannot open for read: " + path);

  unsigned char header[24];
  is_.read(reinterpret_cast<char*>(header), sizeof(header));
  const auto got = static_cast<std::size_t>(is_.gcount());
  if (got == sizeof(header)) stats_.bytes += sizeof(header);
  header_ = parse_pcap_header(header, got, stats_, mode_, path);
  if (!header_.ok) return;  // lenient: next() yields nothing

  data_offset_ = is_.tellg();
}

bool PcapReader::next(RawPacket& out) {
  if (!header_.ok || fatal_) return false;
  while (true) {
    bool decoded = false;
    if (!read_record(out, &decoded)) return false;
    if (decoded) {
      ++stats_.records;
      return true;
    }
  }
}

bool PcapReader::read_record(RawPacket& out, bool* decoded) {
  *decoded = false;
  unsigned char rh[16];
  is_.read(reinterpret_cast<char*>(rh), sizeof(rh));
  const auto got = static_cast<std::size_t>(is_.gcount());
  if (got == 0) {
    if (is_.eof()) return false;  // clean EOF: ended on a record boundary
    // Zero bytes without eofbit is the stream failing, not the capture
    // ending — a truncated capture would at least reach end of file.
    report(stats_, &IngestStats::io_errors, mode_,
           "pcap read failed before end of file: " + path_);
    fatal_ = true;
    return false;
  }
  if (got < sizeof(rh)) {
    report(stats_,
           is_.eof() ? &IngestStats::truncated_records
                     : &IngestStats::io_errors,
           mode_,
           is_.eof() ? "pcap final record header truncated by EOF: " + path_
                     : "pcap read failed mid record header: " + path_);
    fatal_ = true;
    return false;
  }
  stats_.bytes += sizeof(rh);

  const std::uint32_t ts_sec = header_.u32(rh);
  const std::uint32_t ts_frac = header_.u32(rh + 4);
  const std::uint32_t incl_len = header_.u32(rh + 8);

  if (incl_len > kMaxCaptureBytes) {
    // No resync marker in the stream: a corrupt length poisons every
    // later offset, so stop here in both modes.
    report(stats_, &IngestStats::oversized_records, mode_,
           "pcap record length " + std::to_string(incl_len) +
               " beyond sanity cap: " + path_);
    fatal_ = true;
    return false;
  }
  buf_.resize(incl_len);
  if (incl_len > 0) {
    is_.read(reinterpret_cast<char*>(buf_.data()),
             static_cast<std::streamsize>(incl_len));
    if (static_cast<std::size_t>(is_.gcount()) != incl_len) {
      report(stats_,
             is_.eof() ? &IngestStats::truncated_records
                       : &IngestStats::io_errors,
             mode_,
             is_.eof() ? "pcap final record data truncated by EOF: " + path_
                       : "pcap read failed mid record data: " + path_);
      fatal_ = true;
      return false;
    }
  }
  stats_.bytes += incl_len;

  const double frac_limit = header_.tick == 1e-6 ? 1e6 : 1e9;
  if (static_cast<double>(ts_frac) >= frac_limit) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "pcap timestamp fraction out of range: " + path_);
    return true;  // lenient: drop this record, keep going
  }
  const double t =
      static_cast<double>(ts_sec) + static_cast<double>(ts_frac) * header_.tick;

  if (!decode_pcap_frame(header_, buf_.data(), buf_.size(), out, stats_,
                         mode_, path_))
    return true;  // counted inside

  out.time = t;
  if (any_record_ && t < prev_time_) {
    report(stats_, &IngestStats::out_of_order, mode_,
           "pcap timestamp went backwards: " + path_);
    // Lenient: keep the record — downstream binning is order-independent
    // and the flow table clocks off the maximum time seen.
  }
  if (!any_record_ || t > prev_time_) prev_time_ = t;
  any_record_ = true;
  *decoded = true;
  return true;
}

void PcapReader::reset() {
  if (!header_.ok) return;
  is_.clear();
  is_.seekg(data_offset_);
  if (!is_) throw std::runtime_error("pcap: reset seek failed: " + path_);
  stats_.clear();
  stats_.bytes += 24;  // the already-validated global header
  fatal_ = false;
  any_record_ = false;
  prev_time_ = 0.0;
}

}  // namespace wan::ingest
