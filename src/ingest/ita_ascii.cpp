#include "src/ingest/ita_ascii.hpp"

#include <array>
#include <charconv>
#include <limits>
#include <string_view>

#include "src/ingest/classify.hpp"

namespace wan::ingest {

namespace {

// Tokenization and numeric parsing run per line over million-line
// archives, so both are locale-free and allocation-free:
// whitespace-splitting yields string_views into the getline buffer and
// std::from_chars parses in place — no istringstream construction, no
// strtod locale lookup, no c_str() copies.

/// Splits `line` on blanks into at most `max` tokens. Returns the token
/// count, which may be `max` + "there were more" — callers only ever
/// need to distinguish "fewer than N" from "at least N".
template <std::size_t N>
std::size_t split_ws(std::string_view line,
                     std::array<std::string_view, N>& out) {
  constexpr std::string_view kBlank = " \t\r\v\f";
  std::size_t count = 0;
  std::size_t pos = 0;
  while (count < N) {
    const std::size_t begin = line.find_first_not_of(kBlank, pos);
    if (begin == std::string_view::npos) break;
    const std::size_t end = line.find_first_of(kBlank, begin);
    out[count++] = line.substr(begin, end - begin);
    if (end == std::string_view::npos) break;
    pos = end;
  }
  return count;
}

/// Whole-token double. Stricter than the strtod it replaced: no leading
/// '+' and no hex floats — the archive formats write neither.
bool parse_double(std::string_view s, double* out) {
  double v = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool skippable(std::string_view line) {
  for (char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;  // blank
}

}  // namespace

// --------------------------------------------------------- LblConnReader

LblConnReader::LblConnReader(const std::string& path, ParseMode mode)
    : is_(path), path_(path), mode_(mode) {
  if (!is_)
    throw std::runtime_error("lbl-conn: cannot open for read: " + path);
}

bool LblConnReader::next(trace::ConnRecord& out) {
  while (std::getline(is_, line_)) {
    ++line_no_;
    stats_.bytes += line_.size() + 1;
    if (skippable(line_)) continue;

    const auto where = [&] {
      return path_ + " line " + std::to_string(line_no_);
    };
    std::array<std::string_view, 7> fields;
    const std::size_t nfields = split_ws(std::string_view(line_), fields);
    if (nfields < 7) {
      report(stats_, &IngestStats::bad_lines, mode_,
             "lbl-conn line with " + std::to_string(nfields) +
                 " fields (need 7): " + where());
      continue;
    }

    trace::ConnRecord rec;
    if (!parse_double(fields[0], &rec.start)) {
      report(stats_, &IngestStats::bad_lines, mode_,
             "lbl-conn bad timestamp '" + std::string(fields[0]) +
                 "': " + where());
      continue;
    }
    // duration and the byte counters admit the archive's "?" (the
    // monitor missed that side of the connection).
    bool ok = true;
    if (fields[1] == "?") {
      ++stats_.missing_fields;
      rec.duration = 0.0;
    } else if (!parse_double(fields[1], &rec.duration) ||
               rec.duration < 0.0) {
      ok = false;
    }
    std::uint64_t host_a = 0, host_b = 0;
    for (int i = 0; ok && i < 2; ++i) {
      std::uint64_t* dst = i == 0 ? &rec.bytes_orig : &rec.bytes_resp;
      const std::string_view f = fields[3 + i];
      if (f == "?") {
        ++stats_.missing_fields;
        *dst = 0;
      } else if (!parse_u64(f, dst)) {
        ok = false;
      }
    }
    if (ok && (!parse_u64(fields[5], &host_a) ||
               !parse_u64(fields[6], &host_b) ||
               host_a > std::numeric_limits<std::uint32_t>::max() ||
               host_b > std::numeric_limits<std::uint32_t>::max())) {
      ok = false;
    }
    if (!ok) {
      report(stats_, &IngestStats::bad_lines, mode_,
             "lbl-conn unparsable field: " + where());
      continue;
    }
    rec.src_host = static_cast<std::uint32_t>(host_a);
    rec.dst_host = static_cast<std::uint32_t>(host_b);

    const auto proto = protocol_from_service(std::string(fields[2]));
    if (proto) {
      rec.protocol = *proto;
    } else {
      ++stats_.unknown_protocols;  // tolerated: analysis buckets as OTHER
      rec.protocol = trace::Protocol::kOther;
    }
    // SYN/FIN logs carry no session ground truth; burst analysis groups
    // by host pair (trace::SessionGrouping::kHostPair).
    rec.session_id = 0;

    if (any_ && rec.start < prev_start_) {
      report(stats_, &IngestStats::out_of_order, mode_,
             "lbl-conn timestamp went backwards: " + where());
    }
    if (!any_ || rec.start > prev_start_) prev_start_ = rec.start;
    any_ = true;

    ++stats_.records;
    out = rec;
    return true;
  }
  return false;
}

void LblConnReader::reset() {
  is_.clear();
  is_.seekg(0);
  if (!is_) throw std::runtime_error("lbl-conn: reset seek failed: " + path_);
  stats_.clear();
  line_no_ = 0;
  prev_start_ = 0.0;
  any_ = false;
}

// ---------------------------------------------------------- LblPktReader

LblPktReader::LblPktReader(const std::string& path, ParseMode mode)
    : is_(path), path_(path), mode_(mode) {
  if (!is_)
    throw std::runtime_error("lbl-pkt: cannot open for read: " + path);
}

bool LblPktReader::next(RawPacket& out) {
  while (std::getline(is_, line_)) {
    ++line_no_;
    stats_.bytes += line_.size() + 1;
    if (skippable(line_)) continue;

    const auto where = [&] {
      return path_ + " line " + std::to_string(line_no_);
    };
    std::array<std::string_view, 6> fields;
    const std::size_t nfields = split_ws(std::string_view(line_), fields);
    if (nfields < 6) {
      report(stats_, &IngestStats::bad_lines, mode_,
             "lbl-pkt line with " + std::to_string(nfields) +
                 " fields (need 6): " + where());
      continue;
    }

    RawPacket pkt;
    std::uint64_t src = 0, dst = 0, sport = 0, dport = 0, payload = 0;
    if (!parse_double(fields[0], &pkt.time) || !parse_u64(fields[1], &src) ||
        !parse_u64(fields[2], &dst) || !parse_u64(fields[3], &sport) ||
        !parse_u64(fields[4], &dport) || !parse_u64(fields[5], &payload) ||
        src > std::numeric_limits<std::uint32_t>::max() ||
        dst > std::numeric_limits<std::uint32_t>::max() || sport > 65535 ||
        dport > 65535 || payload > 65535) {
      report(stats_, &IngestStats::bad_lines, mode_,
             "lbl-pkt unparsable field: " + where());
      continue;
    }
    pkt.src_ip = static_cast<std::uint32_t>(src);
    pkt.dst_ip = static_cast<std::uint32_t>(dst);
    pkt.src_port = static_cast<std::uint16_t>(sport);
    pkt.dst_port = static_cast<std::uint16_t>(dport);
    pkt.payload_bytes = static_cast<std::uint32_t>(payload);
    pkt.tcp = true;       // sanitize-tcp output is TCP by construction
    pkt.tcp_flags = 0;    // flags do not survive sanitization
    pkt.multicast = false;

    if (any_ && pkt.time < prev_time_) {
      report(stats_, &IngestStats::out_of_order, mode_,
             "lbl-pkt timestamp went backwards: " + where());
    }
    if (!any_ || pkt.time > prev_time_) prev_time_ = pkt.time;
    any_ = true;

    ++stats_.records;
    out = pkt;
    return true;
  }
  return false;
}

void LblPktReader::reset() {
  is_.clear();
  is_.seekg(0);
  if (!is_) throw std::runtime_error("lbl-pkt: reset seek failed: " + path_);
  stats_.clear();
  line_no_ = 0;
  prev_time_ = 0.0;
  any_ = false;
}

}  // namespace wan::ingest
