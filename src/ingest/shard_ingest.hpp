// Sharded flow reconstruction: the FlowTable split by flow hash so the
// per-packet table work — hashing, LRU upkeep, TCP state tracking —
// runs on the src/par pool while the emitted record stream stays
// byte-identical to the serial table's.
//
// Packets are routed by the unordered host pair (the same key FTP
// session stamping uses), so every flow — and every flow of one host
// pair, e.g. an FTP session's control and data connections — lands in
// exactly one shard. Each shard owns a private FlowTable; a batch of
// raw packets is partitioned, folded in parallel, and re-emitted in
// capture order.
//
// Two facts make the output serial-identical:
//
//   * FlowTable::add advances the eviction clock to the packet's time
//     and sweeps idle flows *before* the flow lookup, so whether a
//     packet reopens its 4-tuple depends only on (packet time, the
//     flow's own last-activity time) — never on which other packets the
//     same table happened to see. Per-shard tables therefore make the
//     same open/close/reopen decisions as the serial table, provided
//     capture timestamps never step backwards by more than the idle
//     timeout (the readers' out_of_order ledger counts any step at
//     all).
//   * Shard-local conn ids are renumbered to the serial numbering in a
//     sequential pass over the batch: the serial table assigns ids at
//     each flow's first packet, so numbering flows by first appearance
//     in capture order reproduces it exactly.
//
// Everything else in a PacketRecord (protocol from ports, originator
// from the first packet's flags, payload clamp) is a pure function of
// the flow's own packets, hence shard-invariant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/ingest/flow_table.hpp"
#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/raw_packet.hpp"
#include "src/trace/records.hpp"

namespace wan::ingest {

/// Shard of a raw packet: a pure function of the unordered (src_ip,
/// dst_ip) pair and the shard count — both directions of a flow, and
/// all flows of one host pair, share a shard. Matches
/// stream::shard_of_hosts on the raw addresses.
std::size_t shard_of_packet(const RawPacket& pkt,
                            std::size_t n_shards) noexcept;

/// N flow tables behind the serial FlowTable's add contract, batched.
/// add_batch partitions a batch across the shards, folds the shards in
/// parallel, and emits records in capture order with serial conn-id
/// numbering — byte-identical to one FlowTable fed the same stream at
/// every (shard count, thread count).
class ShardedFlowTable {
 public:
  /// Throws std::invalid_argument unless 1 <= n_shards <= kMaxShards.
  explicit ShardedFlowTable(std::size_t n_shards, FlowTableConfig config = {});

  std::size_t n_shards() const { return tables_.size(); }

  /// Folds one batch of raw packets: out is resized to pkts.size() and
  /// out[i] is exactly the record a serial FlowTable would return for
  /// pkts[i]. Flow state persists across batches; batches must arrive
  /// in capture order.
  void add_batch(std::span<const RawPacket> pkts,
                 std::vector<trace::PacketRecord>& out);

  /// Forgets all shard state and the global conn numbering, like
  /// FlowTable::clear — a reset() source rebuilds identical ids.
  void clear();

  /// Open flows across all shards (4-tuples are disjoint by routing).
  /// A monitoring count, not shard-invariant: each shard's idle sweep
  /// runs on its own clock, so a shard that saw no recent packets
  /// holds idle flows longer than the serial table would. The emitted
  /// records are unaffected — a flow's fate is decided at its own next
  /// packet, identically in both.
  std::size_t open_flows() const;

  /// Globally renumbered connections, matching the serial table.
  std::uint32_t connections_seen() const { return next_global_id_ - 1; }

  /// One ledger per shard: each counts the records its shard emitted
  /// (parse defects live in the reader's ledger, upstream of routing).
  const std::vector<IngestStats>& shard_ledgers() const { return ledgers_; }

  /// The per-shard ledgers folded into one via IngestStats::merge, in
  /// shard order. merged_ledger().records equals the total records
  /// emitted.
  IngestStats merged_ledger() const;

  static constexpr std::size_t kMaxShards = 1024;

 private:
  std::vector<FlowTable> tables_;
  std::vector<IngestStats> ledgers_;
  /// Per shard: local conn id (1-based, dense) -> global conn id.
  std::vector<std::vector<std::uint32_t>> remap_;
  std::uint32_t next_global_id_ = 1;

  // Batch scratch, reused across add_batch calls.
  std::vector<std::uint32_t> shard_of_row_;
  std::vector<std::vector<std::uint32_t>> rows_;
};

}  // namespace wan::ingest
