// Readers for the two Internet Traffic Archive ASCII formats the
// paper's datasets ship in:
//
//  * lbl-conn-7 connection logs — one TCP connection per line:
//        timestamp duration protocol bytes_orig bytes_resp local remote
//    with optional trailing fields (ignored) and "?" standing for an
//    unknown duration or byte count (the SYN/FIN monitor missed that
//    side). Hosts are the archive's renumbered small integers; protocol
//    is a lowercase service name ("telnet", "ftp-data", "nntp", ...).
//
//  * lbl-pkt / dec-pkt packet lines (the sanitize-tcp output format) —
//    one packet per line:
//        timestamp src_host dst_host src_port dst_port data_bytes
//    data_bytes 0 is a pure ack. No TCP flag bits survive
//    sanitization, so flow reconstruction falls back to first-seen
//    originator and idle-timeout closing.
//
// Both readers stream line by line (memory bounded by one line), skip
// '#' comments and blank lines, and report defects through the shared
// IngestStats/ParseMode contract.
#pragma once

#include <fstream>
#include <string>

#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/raw_packet.hpp"
#include "src/trace/records.hpp"

namespace wan::ingest {

class LblConnReader {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  LblConnReader(const std::string& path, ParseMode mode);

  /// Parses the next connection line. Returns false at EOF. In lenient
  /// mode unparsable lines are counted and skipped; "?" fields parse as
  /// 0 and count as missing (they are legitimate archive content, so
  /// strict mode accepts them too).
  bool next(trace::ConnRecord& out);

  void reset();
  const IngestStats& stats() const { return stats_; }

 private:
  std::ifstream is_;
  std::string path_;
  ParseMode mode_;
  IngestStats stats_;
  std::size_t line_no_ = 0;
  double prev_start_ = 0.0;
  bool any_ = false;
  std::string line_;
};

class LblPktReader {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  LblPktReader(const std::string& path, ParseMode mode);

  /// Parses the next packet line into a RawPacket (tcp, no flag bits).
  /// Returns false at EOF.
  bool next(RawPacket& out);

  void reset();
  const IngestStats& stats() const { return stats_; }

 private:
  std::ifstream is_;
  std::string path_;
  ParseMode mode_;
  IngestStats stats_;
  std::size_t line_no_ = 0;
  double prev_time_ = 0.0;
  bool any_ = false;
  std::string line_;
};

}  // namespace wan::ingest
