// Flow reconstruction: folds a stream of RawPackets into the repo's two
// analysis record types. A 4-tuple hash table tracks every live flow;
// TCP state bits drive connection boundaries the way a SYN/FIN monitor
// would see them, and an idle timeout sweeps up flows whose endings the
// capture missed:
//
//   * a SYN without ACK marks its sender as the originator (otherwise
//     the first packet's sender is assumed to originate);
//   * FIN in both directions, or any RST, closes the connection at that
//     packet;
//   * a flow idle longer than `idle_timeout` is evicted when the clock
//     (max timestamp seen) passes its horizon — essential for the ASCII
//     packet formats, where no flag bits survive sanitization;
//   * at end of input, flush() closes everything still open.
//
// Each closed flow becomes a ConnRecord (start, duration, per-direction
// payload bytes, port-classified protocol); every packet becomes a
// PacketRecord carrying its flow's conn_id and protocol, so ingested
// traces are indistinguishable from synthesized ones downstream.
//
// FTPDATA grouping: an open FTP control connection between two hosts
// stamps its conn_id as session_id onto FTPDATA flows between the same
// host pair, which is exactly what trace::find_ftp_bursts needs for the
// paper's Section-VI burst analysis.
//
// Storage: open addressing with linear probing over a flat bucket
// array, flows in a stable slot vector, and an intrusive array-indexed
// LRU — one cache line of probing replaces the node allocation, pointer
// chase and list splice per packet that the original
// unordered_map+std::list table paid (that table survives as
// NodeFlowTable, the pinned A/B reference). Deletion is backward-shift,
// so probe chains stay gap-free without tombstones; slot indices are
// stable across growth because only the bucket array rebuilds. Every
// observable decision — conn ids, host ids, eviction and reincarnation
// order, ConnRecords — is byte-identical to NodeFlowTable, enforced by
// the `ingest`-labeled tests.
//
// Memory is O(open flows + hosts), never O(packets) — the table is what
// lets week-scale captures stream through in bounded memory.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/ingest/raw_packet.hpp"
#include "src/stream/columnar.hpp"
#include "src/trace/records.hpp"

namespace wan::ingest {

struct FlowTableConfig {
  /// Idle seconds after which an open flow is considered dead. The
  /// paper's SYN/FIN analysis has no notion of keepalive, so the
  /// default is a conservative one hour.
  double idle_timeout = 3600.0;
  /// Collect ConnRecords of closed flows (take_closed). Packet-only
  /// consumers turn this off so closed-flow records cannot accumulate.
  bool collect_connections = true;
};

class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig config = {});

  /// Folds one packet into the table and returns its analysis record.
  /// Advances the eviction clock to the packet's time (monotone max).
  /// Defined inline below: this is the per-packet hot path of the fused
  /// ingest loop.
  trace::PacketRecord add(const RawPacket& pkt);

  /// add(), but the record lands directly in a columnar chunk — the
  /// zero-copy ingest path decodes a frame and appends its fields
  /// straight to the SoA columns with no AoS row buffer in between.
  void add_append(const RawPacket& pkt, stream::PacketColumns& out) {
    out.push_back(add(pkt));
  }

  /// Closes every still-open flow (oldest first). Call at end of input.
  void flush();

  /// Moves the ConnRecords of flows closed since the last call into
  /// `out` (appending, closure order). No-op when collect_connections
  /// is off.
  void take_closed(std::vector<trace::ConnRecord>& out);

  /// Forgets everything: open flows, closed records, host numbering,
  /// conn-id counter. A reset() source rebuilds identical ids.
  void clear();

  std::size_t open_flows() const { return live_; }
  std::size_t host_count() const { return hosts_.size(); }
  std::uint32_t connections_seen() const { return next_conn_id_ - 1; }

 private:
  /// Sentinel slot/link index: "none".
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialBuckets = 1024;  // power of two

  /// One live flow: canonical key, connection state and cached hash.
  /// Slots never move — only the bucket array rebuilds on growth — so a
  /// slot index is a stable flow handle. Field order packs everything
  /// the per-packet path reads (key compare, originator test, byte and
  /// FIN accounting, record fields) into the first cache line; the
  /// open/close-only fields follow. The LRU links live in the separate
  /// links_ array, not here: the per-packet LRU splice touches three
  /// flows' links, and keeping those in a dense side array means that
  /// traffic stays within a few hot cache lines instead of pulling in
  /// three full Flow structs.
  struct Flow {
    // Canonical key: (ip_a, port_a) is the lexicographically smaller
    // endpoint, so both directions of a flow map to the same entry.
    std::uint32_t ip_a = 0, ip_b = 0;
    std::uint16_t port_a = 0, port_b = 0;
    bool tcp = true;
    bool fin_orig = false, fin_resp = false;
    trace::Protocol protocol = trace::Protocol::kOther;

    std::uint32_t conn_id = 0;
    std::uint32_t orig_ip = 0;
    std::uint16_t orig_port = 0;
    double last = 0.0;
    std::uint64_t bytes_orig = 0, bytes_resp = 0;

    // Cold half: touched only on open/close.
    std::uint32_t resp_ip = 0;
    std::uint16_t resp_port = 0;
    double first = 0.0;
    std::uint64_t session_id = 0;
    std::uint64_t hash = 0;  ///< cached key hash (probe start on erase)
  };

  /// Intrusive LRU links of slot i, dense so splices stay in cache.
  struct Link {
    std::uint32_t prev = kNil, next = kNil;
  };

  /// One probe cell: cached hash (so probing rarely touches the slot
  /// vector) and the slot it points at, kNil when empty.
  struct Bucket {
    std::uint64_t hash = 0;
    std::uint32_t slot = kNil;
  };

  // The per-packet path — hash, probe, LRU touch — is defined in this
  // header so it inlines into the fused ingest loop; the cold flow
  // open/close machinery stays out of line in flow_table.cpp.

  /// splitmix64-style mix of the packed tuple; the table only needs
  /// decent dispersion, not cryptographic strength.
  static std::uint64_t mix_key(std::uint32_t ip_a, std::uint32_t ip_b,
                               std::uint16_t port_a, std::uint16_t port_b,
                               bool tcp) noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(ip_a) << 32) ^ ip_b;
    x ^= (static_cast<std::uint64_t>(port_a) << 48) ^
         (static_cast<std::uint64_t>(port_b) << 16) ^
         (tcp ? 0x9E3779B97F4A7C15ull : 0xC2B2AE3D27D4EB4Full);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  std::uint32_t host_id(std::uint32_t ip);
  std::uint32_t find_slot(std::uint64_t hash, std::uint32_t ip_a,
                          std::uint32_t ip_b, std::uint16_t port_a,
                          std::uint16_t port_b, bool tcp) const {
    const std::size_t mask = buckets_.size() - 1;
    for (std::size_t i = hash & mask; buckets_[i].slot != kNil;
         i = (i + 1) & mask) {
      if (buckets_[i].hash != hash) continue;
      const Flow& f = slots_[buckets_[i].slot];
      if (f.ip_a == ip_a && f.ip_b == ip_b && f.port_a == port_a &&
          f.port_b == port_b && f.tcp == tcp)
        return buckets_[i].slot;
    }
    return kNil;
  }
  std::uint32_t open_flow(std::uint64_t hash, std::uint32_t ip_a,
                          std::uint32_t ip_b, std::uint16_t port_a,
                          std::uint16_t port_b, const RawPacket& pkt);
  void close_flow(std::uint32_t slot);
  void evict_idle();

  void insert_bucket(std::uint64_t hash, std::uint32_t slot);
  void erase_bucket_of(std::uint32_t slot);
  void grow();

  void lru_push_back(std::uint32_t slot) {
    Link& l = links_[slot];
    l.prev = lru_tail_;
    l.next = kNil;
    if (lru_tail_ != kNil) {
      links_[lru_tail_].next = slot;
    } else {
      lru_head_ = slot;
    }
    lru_tail_ = slot;
  }
  void lru_unlink(std::uint32_t slot) {
    Link& l = links_[slot];
    if (l.prev != kNil) {
      links_[l.prev].next = l.next;
    } else {
      lru_head_ = l.next;
    }
    if (l.next != kNil) {
      links_[l.next].prev = l.prev;
    } else {
      lru_tail_ = l.prev;
    }
    l.prev = l.next = kNil;
  }
  void lru_move_back(std::uint32_t slot) {
    if (lru_tail_ == slot) return;  // already most recent
    lru_unlink(slot);
    lru_push_back(slot);
  }

  FlowTableConfig config_;
  std::vector<Bucket> buckets_;  ///< power-of-two, ≤ 70% full
  std::vector<Flow> slots_;      ///< stable storage; dead slots on free_
  std::vector<Link> links_;      ///< LRU links of slots_, index-aligned
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::uint32_t lru_head_ = kNil;  ///< least recently touched
  std::uint32_t lru_tail_ = kNil;  ///< most recently touched
  std::unordered_map<std::uint32_t, std::uint32_t> hosts_;
  /// Unordered host-ip pair -> conn_id of the open FTP control flow.
  std::unordered_map<std::uint64_t, std::uint32_t> ftp_sessions_;
  std::vector<trace::ConnRecord> closed_;
  std::uint32_t next_conn_id_ = 1;
  double clock_ = 0.0;
  bool any_ = false;
};

inline trace::PacketRecord FlowTable::add(const RawPacket& pkt) {
  if (!any_ || pkt.time > clock_) clock_ = pkt.time;
  any_ = true;
  // Eviction check inline, the (rare) eviction walk out of line.
  if (lru_head_ != kNil &&
      clock_ - slots_[lru_head_].last > config_.idle_timeout)
    evict_idle();

  const bool a_first =
      pkt.src_ip < pkt.dst_ip ||
      (pkt.src_ip == pkt.dst_ip && pkt.src_port <= pkt.dst_port);
  const std::uint32_t ip_a = a_first ? pkt.src_ip : pkt.dst_ip;
  const std::uint16_t port_a = a_first ? pkt.src_port : pkt.dst_port;
  const std::uint32_t ip_b = a_first ? pkt.dst_ip : pkt.src_ip;
  const std::uint16_t port_b = a_first ? pkt.dst_port : pkt.src_port;
  const std::uint64_t hash = mix_key(ip_a, ip_b, port_a, port_b, pkt.tcp);

  std::uint32_t s = find_slot(hash, ip_a, ip_b, port_a, port_b, pkt.tcp);
  if (s == kNil) s = open_flow(hash, ip_a, ip_b, port_a, port_b, pkt);
  Flow& flow = slots_[s];

  const bool from_orig =
      pkt.src_ip == flow.orig_ip && pkt.src_port == flow.orig_port;
  if (pkt.time > flow.last) flow.last = pkt.time;
  if (from_orig) {
    flow.bytes_orig += pkt.payload_bytes;
  } else {
    flow.bytes_resp += pkt.payload_bytes;
  }
  lru_move_back(s);  // most recently touched

  trace::PacketRecord rec;
  rec.time = pkt.time;
  rec.protocol = flow.protocol;
  rec.conn_id = flow.conn_id;
  rec.from_originator = from_orig;
  rec.payload_bytes = static_cast<std::uint16_t>(
      pkt.payload_bytes > 0xFFFF ? 0xFFFF : pkt.payload_bytes);

  if (pkt.tcp) {
    if (pkt.tcp_flags & kTcpFin) {
      (from_orig ? flow.fin_orig : flow.fin_resp) = true;
    }
    const bool both_fins = flow.fin_orig && flow.fin_resp;
    if ((pkt.tcp_flags & kTcpRst) || both_fins) close_flow(s);
  }
  return rec;
}

}  // namespace wan::ingest
