// Flow reconstruction: folds a stream of RawPackets into the repo's two
// analysis record types. A 4-tuple hash table tracks every live flow;
// TCP state bits drive connection boundaries the way a SYN/FIN monitor
// would see them, and an idle timeout sweeps up flows whose endings the
// capture missed:
//
//   * a SYN without ACK marks its sender as the originator (otherwise
//     the first packet's sender is assumed to originate);
//   * FIN in both directions, or any RST, closes the connection at that
//     packet;
//   * a flow idle longer than `idle_timeout` is evicted when the clock
//     (max timestamp seen) passes its horizon — essential for the ASCII
//     packet formats, where no flag bits survive sanitization;
//   * at end of input, flush() closes everything still open.
//
// Each closed flow becomes a ConnRecord (start, duration, per-direction
// payload bytes, port-classified protocol); every packet becomes a
// PacketRecord carrying its flow's conn_id and protocol, so ingested
// traces are indistinguishable from synthesized ones downstream.
//
// FTPDATA grouping: an open FTP control connection between two hosts
// stamps its conn_id as session_id onto FTPDATA flows between the same
// host pair, which is exactly what trace::find_ftp_bursts needs for the
// paper's Section-VI burst analysis.
//
// Memory is O(open flows + hosts), never O(packets) — the table is what
// lets week-scale captures stream through in bounded memory.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/ingest/raw_packet.hpp"
#include "src/trace/records.hpp"

namespace wan::ingest {

struct FlowTableConfig {
  /// Idle seconds after which an open flow is considered dead. The
  /// paper's SYN/FIN analysis has no notion of keepalive, so the
  /// default is a conservative one hour.
  double idle_timeout = 3600.0;
  /// Collect ConnRecords of closed flows (take_closed). Packet-only
  /// consumers turn this off so closed-flow records cannot accumulate.
  bool collect_connections = true;
};

class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig config = {});

  /// Folds one packet into the table and returns its analysis record.
  /// Advances the eviction clock to the packet's time (monotone max).
  trace::PacketRecord add(const RawPacket& pkt);

  /// Closes every still-open flow (oldest first). Call at end of input.
  void flush();

  /// Moves the ConnRecords of flows closed since the last call into
  /// `out` (appending, closure order). No-op when collect_connections
  /// is off.
  void take_closed(std::vector<trace::ConnRecord>& out);

  /// Forgets everything: open flows, closed records, host numbering,
  /// conn-id counter. A reset() source rebuilds identical ids.
  void clear();

  std::size_t open_flows() const { return flows_.size(); }
  std::size_t host_count() const { return hosts_.size(); }
  std::uint32_t connections_seen() const { return next_conn_id_ - 1; }

 private:
  struct FlowKey {
    std::uint32_t ip_a = 0, ip_b = 0;
    std::uint16_t port_a = 0, port_b = 0;
    bool tcp = true;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept;
  };
  struct Flow {
    std::uint32_t conn_id = 0;
    std::uint32_t orig_ip = 0, resp_ip = 0;
    std::uint16_t orig_port = 0, resp_port = 0;
    double first = 0.0, last = 0.0;
    std::uint64_t bytes_orig = 0, bytes_resp = 0;
    trace::Protocol protocol = trace::Protocol::kOther;
    std::uint64_t session_id = 0;
    bool fin_orig = false, fin_resp = false;
    std::list<FlowKey>::iterator lru;
  };

  std::uint32_t host_id(std::uint32_t ip);
  Flow& open_flow(const FlowKey& key, const RawPacket& pkt);
  void close_flow(const FlowKey& key);
  void evict_idle();

  FlowTableConfig config_;
  std::unordered_map<FlowKey, Flow, FlowKeyHash> flows_;
  std::list<FlowKey> lru_;  ///< least recently touched at the front
  std::unordered_map<std::uint32_t, std::uint32_t> hosts_;
  /// Unordered host-ip pair -> conn_id of the open FTP control flow.
  std::unordered_map<std::uint64_t, std::uint32_t> ftp_sessions_;
  std::vector<trace::ConnRecord> closed_;
  std::uint32_t next_conn_id_ = 1;
  double clock_ = 0.0;
  bool any_ = false;
};

}  // namespace wan::ingest
