#include "src/ingest/mmap_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace wan::ingest {

namespace {

/// Refill granularity of the buffered fallback. One record is at most
/// kMaxCaptureBytes + 16, so ensure() requests never exceed the buffer
/// a single refill provides.
constexpr std::size_t kBufferBlock = std::size_t{1} << 20;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error("pcap: " + what + ": " + path + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

// --------------------------------------------------------- MmapByteSource

MmapByteSource::MmapByteSource(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("pcap: cannot open for read: " + path);

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat failed", path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw std::runtime_error("pcap: not a regular file (use the buffered "
                             "fallback): " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (m == MAP_FAILED) {
      ::close(fd);
      throw_errno("mmap failed", path);
    }
    base_ = static_cast<const unsigned char*>(m);
    // Pure forward scan: let readahead run ahead of the decode loop.
    ::madvise(const_cast<unsigned char*>(base_), size_, MADV_SEQUENTIAL);
  }
  // An empty regular file maps to an empty window — the reader then
  // reports a truncated global header exactly like the ifstream path.
  ::close(fd);  // the mapping holds its own reference
}

MmapByteSource::~MmapByteSource() {
  if (base_ != nullptr)
    ::munmap(const_cast<unsigned char*>(base_), size_);
}

const unsigned char* MmapByteSource::ensure(std::size_t want,
                                            std::size_t* avail) {
  const std::size_t left = pos_ < size_ ? size_ - pos_ : 0;
  *avail = left < want ? left : want;
  return base_ + pos_;
}

void MmapByteSource::drop_behind() {
  // Release whole consumed pages behind the cursor. The page holding
  // pos_ stays: ensure() pointers into the current record must remain
  // cheap to touch.
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t keep = pos_ - (pos_ % page);
  if (keep > drop_mark_) {
    ::madvise(const_cast<unsigned char*>(base_ + drop_mark_),
              keep - drop_mark_, MADV_DONTNEED);
    drop_mark_ = keep;
  }
}

// ----------------------------------------------------- BufferedByteSource

BufferedByteSource::BufferedByteSource(const std::string& path)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0)
    throw std::runtime_error("pcap: cannot open for read: " + path);
}

BufferedByteSource::BufferedByteSource(int fd, std::string name)
    : fd_(fd), path_(std::move(name)) {}

BufferedByteSource::~BufferedByteSource() {
  if (fd_ >= 0) ::close(fd_);
}

void BufferedByteSource::refill(std::size_t want) {
  // Slide the unconsumed tail to the front, then top the buffer up to
  // at least `want` bytes (or EOF/error). memmove, not assignment: the
  // regions can overlap.
  if (pos_ > 0) {
    const std::size_t tail = end_ - pos_;
    if (tail > 0) std::memmove(buf_.data(), buf_.data() + pos_, tail);
    end_ = tail;
    pos_ = 0;
  }
  const std::size_t target = want > kBufferBlock ? want : kBufferBlock;
  if (buf_.size() < target) buf_.resize(target);
  // Stop as soon as `want` is satisfied, not when the block fills:
  // each read() still requests the whole remaining block, so a regular
  // file refills in big strides, but a pipe delivering records slower
  // than the block size never stalls the caller behind bytes that
  // have not arrived yet.
  while (end_ < want && !eof_ && !read_error_) {
    const ssize_t got =
        ::read(fd_, buf_.data() + end_, buf_.size() - end_);
    if (got > 0) {
      end_ += static_cast<std::size_t>(got);
    } else if (got == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      read_error_ = true;
    }
  }
}

const unsigned char* BufferedByteSource::ensure(std::size_t want,
                                                std::size_t* avail) {
  if (end_ - pos_ < want && !eof_ && !read_error_) refill(want);
  const std::size_t left = end_ - pos_;
  *avail = left < want ? left : want;
  return buf_.data() + pos_;
}

void BufferedByteSource::rewind() {
  if (::lseek(fd_, 0, SEEK_SET) != 0)
    throw std::runtime_error(
        "pcap: input is not seekable, cannot rewind: " + path_);
  pos_ = 0;
  end_ = 0;
  eof_ = false;
  read_error_ = false;
}

std::unique_ptr<ByteSource> spooled_byte_source(int fd,
                                                const std::string& name) {
  char spool_path[] = "/tmp/wantraffic_spool_XXXXXX";
  const int spool = ::mkstemp(spool_path);
  if (spool < 0)
    throw_errno("cannot create stdin spool file", name);
  ::unlink(spool_path);  // anonymous: vanishes with the descriptor

  std::vector<unsigned char> block(std::size_t{1} << 20);
  for (;;) {
    const ssize_t got = ::read(fd, block.data(), block.size());
    if (got == 0) break;
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(spool);
      throw_errno("read from stream failed while spooling", name);
    }
    std::size_t off = 0;
    while (off < static_cast<std::size_t>(got)) {
      const ssize_t put =
          ::write(spool, block.data() + off,
                  static_cast<std::size_t>(got) - off);
      if (put < 0) {
        if (errno == EINTR) continue;
        ::close(spool);
        throw_errno("write to stdin spool failed", name);
      }
      off += static_cast<std::size_t>(put);
    }
  }
  if (::lseek(spool, 0, SEEK_SET) != 0) {
    ::close(spool);
    throw_errno("cannot rewind stdin spool", name);
  }
  return std::make_unique<BufferedByteSource>(spool, name);
}

std::unique_ptr<ByteSource> open_byte_source(const std::string& path) {
  if (path == "-") return spooled_byte_source(0, "<stdin>");
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
    try {
      return std::make_unique<MmapByteSource>(path);
    } catch (const std::runtime_error&) {
      // Mappable in principle but mmap refused (some filesystems do):
      // fall through to the sliding buffer.
    }
  }
  return std::make_unique<BufferedByteSource>(path);
}

// -------------------------------------------------------- MmapPcapReader

MmapPcapReader::MmapPcapReader(const std::string& path, ParseMode mode)
    : MmapPcapReader(open_byte_source(path), path, mode) {}

MmapPcapReader::MmapPcapReader(std::unique_ptr<ByteSource> source,
                               std::string name, ParseMode mode)
    : source_(std::move(source)), path_(std::move(name)), mode_(mode) {
  mapped_ = dynamic_cast<MmapByteSource*>(source_.get());
  std::size_t avail = 0;
  const unsigned char* h = source_->ensure(24, &avail);
  if (avail == 24) stats_.bytes += 24;
  header_ = parse_pcap_header(h, avail, stats_, mode_, path_);
  if (header_.ok) source_->advance(24);
}

void MmapPcapReader::report_short_tail(const char* what_eof,
                                       const char* what_err) {
  const bool eof = source_->at_input_end();
  report(stats_,
         eof ? &IngestStats::truncated_records : &IngestStats::io_errors,
         mode_, std::string(eof ? what_eof : what_err) + ": " + path_);
  fatal_ = true;
}

bool MmapPcapReader::read_record(RawPacket& out, bool* decoded) {
  *decoded = false;
  std::size_t avail = 0;
  const unsigned char* rh = source_->ensure(16, &avail);
  if (avail == 0) {
    if (source_->at_input_end()) return false;  // clean EOF
    report(stats_, &IngestStats::io_errors, mode_,
           "pcap read failed before end of file: " + path_);
    fatal_ = true;
    return false;
  }
  if (avail < 16) {
    report_short_tail("pcap final record header truncated by EOF",
                      "pcap read failed mid record header");
    return false;
  }

  stats_.bytes += 16;

  const std::uint32_t ts_sec = header_.u32(rh);
  const std::uint32_t ts_frac = header_.u32(rh + 4);
  const std::uint32_t incl_len = header_.u32(rh + 8);

  if (incl_len > kMaxCaptureBytes) {
    report(stats_, &IngestStats::oversized_records, mode_,
           "pcap record length " + std::to_string(incl_len) +
               " beyond sanity cap: " + path_);
    fatal_ = true;
    return false;
  }
  source_->advance(16);

  const unsigned char* data = source_->ensure(incl_len, &avail);
  if (avail < incl_len) {
    report_short_tail("pcap final record data truncated by EOF",
                      "pcap read failed mid record data");
    return false;
  }
  stats_.bytes += incl_len;
  source_->advance(incl_len);

  const double frac_limit = header_.tick == 1e-6 ? 1e6 : 1e9;
  if (static_cast<double>(ts_frac) >= frac_limit) {
    report(stats_, &IngestStats::bad_headers, mode_,
           "pcap timestamp fraction out of range: " + path_);
    return true;  // lenient: drop this record, keep going
  }
  const double t =
      static_cast<double>(ts_sec) + static_cast<double>(ts_frac) * header_.tick;

  // Decode in place: `data` points into the mapping (or the sliding
  // buffer), valid until the next ensure(); every field is copied out.
  if (!decode_pcap_frame(header_, data, incl_len, out, stats_, mode_, path_))
    return true;  // counted inside

  out.time = t;
  if (any_record_ && t < prev_time_) {
    report(stats_, &IngestStats::out_of_order, mode_,
           "pcap timestamp went backwards: " + path_);
  }
  if (!any_record_ || t > prev_time_) prev_time_ = t;
  any_record_ = true;
  *decoded = true;
  return true;
}

bool MmapPcapReader::next(RawPacket& out) {
  if (!header_.ok || fatal_) return false;
  while (true) {
    bool decoded = false;
    if (!read_record(out, &decoded)) return false;
    if (decoded) {
      ++stats_.records;
      return true;
    }
  }
}

std::size_t MmapPcapReader::next_batch(std::vector<RawPacket>& out,
                                       std::size_t max) {
  const std::size_t budget = out.size() < max ? max - out.size() : 0;
  return fold_packets(budget,
                      [&](const RawPacket& pkt) { out.push_back(pkt); });
}

void MmapPcapReader::scan_times(bool* any, double* lo, double* hi) {
  fold_packets(static_cast<std::size_t>(-1), [&](const RawPacket& pkt) {
    if (!*any) {
      *lo = *hi = pkt.time;
      *any = true;
    } else {
      if (pkt.time < *lo) *lo = pkt.time;
      if (pkt.time > *hi) *hi = pkt.time;
    }
  });
}

void MmapPcapReader::reset() {
  if (!header_.ok) return;
  source_->rewind();
  std::size_t avail = 0;
  source_->ensure(24, &avail);
  if (avail != 24)
    throw std::runtime_error("pcap: reset reread failed: " + path_);
  source_->advance(24);
  stats_.clear();
  stats_.bytes += 24;  // the already-validated global header
  fatal_ = false;
  any_record_ = false;
  prev_time_ = 0.0;
}

}  // namespace wan::ingest
