#include "src/ingest/onepass.hpp"

#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "src/stream/columnar_filters.hpp"

namespace wan::ingest {

stream::PipelineResult analyze_pcap_onepass(
    PcapColumnSource& source, const stream::PipelineOptions& options) {
  if (!source.info_deferred()) return stream::analyze_columns(source, options);

  // The eager path rejects a non-positive bin up front (expected_bins
  // is zero); match its exception before streaming anything.
  if (!(options.bin > 0.0))
    throw std::invalid_argument("analyze_stream: series too short");

  // The same filter stack analyze_columns builds, in the same order.
  // Their constructors cache the inner info() — whose deferred time
  // range is zero, but only the derived *name* is read from it here;
  // the range comes from the emission pass below.
  stream::PacketColumnSource* src = &source;
  std::optional<stream::ColumnFilterSource> filter;
  if (options.protocol || options.orig_data_only) {
    filter.emplace(*src, options.protocol, options.orig_data_only);
    src = &*filter;
  }
  std::optional<stream::ColumnBulkOutlierSource> no_outliers;
  if (options.remove_outliers) {
    no_outliers.emplace(*src, options.outlier_max_bytes,
                        options.outlier_max_rate);
    src = &*no_outliers;
  }
  const std::string name = src->info().name;

  // Speculation failed (or never got off the ground): rewind, run the
  // prescan the deferred constructor skipped, and produce the result
  // through the ordinary two-pass path. The abandoned filter wrappers
  // above are rebuilt fresh by analyze_columns, so nothing stale
  // survives into the authoritative run.
  const auto fall_back = [&]() -> stream::PipelineResult {
    source.ensure_eager_info();
    return stream::analyze_columns(source, options);
  };

  // Single decode pass: bin as the packets flow, anchored at the first
  // emitted packet's time. The anchor is only available once a packet
  // has emitted, hence the lazy construction (a filter may pull many
  // raw chunks before its first surviving row, or drop every row).
  std::optional<stats::SpeculativeBinCounts> bins;
  std::uint64_t packets = 0;
  stream::PacketColumns chunk;
  while (src->next(chunk)) {
    packets += chunk.size();
    if (!bins) bins.emplace(source.first_emitted_time(), options.bin);
    bins->add(std::span<const double>(chunk.time));
  }

  // EOF: check the speculation.
  //  * Nothing emitted — the eager info would be a zero range; let the
  //    fallback throw "series too short" exactly as the eager path.
  //  * Any out-of-order packet — the first packet was not the minimum,
  //    so the anchor (and possibly bins already scattered) are wrong.
  if (!source.any_emitted() || source.stats().out_of_order != 0)
    return fall_back();
  // All rows filtered out: the grid still spans the *raw* time range
  // (filters forward the inner range); anchor it now.
  if (!bins) bins.emplace(source.first_emitted_time(), options.bin);
  const double t0 = source.first_emitted_time();
  const double mx = source.emitted_max_time();
  const double t_end = mx + source.tick();
  // Tick absorbed at double precision: the fixed grid's half-open
  // [t0, t_end) would *drop* the packets at mx, which the speculative
  // pass already counted. Rare (huge epoch magnitudes); redo exactly.
  if (!(t_end > mx)) return fall_back();
  std::optional<std::vector<double>> counts = bins->finish(t_end);
  if (!counts) return fall_back();

  if (counts->size() < 16)  // == ceil((t_end - t0) / bin), the eager grid
    throw std::invalid_argument("analyze_stream: series too short");

  stream::PipelineResult result;
  result.info.name = name;
  result.info.t_begin = t0;
  result.info.t_end = t_end;
  result.bin = options.bin;
  result.packets = packets;
  result.counts = std::move(*counts);
  stats::VtAccumulator vt(
      stats::default_aggregation_levels(result.counts.size()));
  stats::BurstLullAccumulator bl;
  stats::MomentAccumulator moments;
  // Identical interleaved drain to analyze_columns.
  for (double c : result.counts) {
    vt.push(c);
    bl.push(c);
    moments.push(c);
  }
  result.vt = vt.finish();
  result.burst_lull = bl.finish();
  result.count_moments = moments;
  return result;
}

}  // namespace wan::ingest
