#include "src/ingest/pcap_decode.hpp"

namespace wan::ingest {

namespace {

// The four classic magics, read as a little-endian u32. "Swapped" means
// every header field must be byte-reversed relative to how this host
// reads the file.
constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;      // native usec
constexpr std::uint32_t kMagicUsecSwap = 0xD4C3B2A1;  // swapped usec
constexpr std::uint32_t kMagicNsec = 0xA1B23C4D;      // native nsec
constexpr std::uint32_t kMagicNsecSwap = 0x4D3CB2A1;  // swapped nsec

}  // namespace

PcapHeader parse_pcap_header(const unsigned char* h, std::size_t len,
                             IngestStats& stats, ParseMode mode,
                             const std::string& path) {
  PcapHeader header;
  if (len < 24) {
    report(stats, &IngestStats::bad_headers, mode,
           "pcap global header truncated: " + path);
    return header;
  }

  const std::uint32_t magic = load_le32(h);
  switch (magic) {
    case kMagicUsec: header.swap = false; header.tick = 1e-6; break;
    case kMagicUsecSwap: header.swap = true; header.tick = 1e-6; break;
    case kMagicNsec: header.swap = false; header.tick = 1e-9; break;
    case kMagicNsecSwap: header.swap = true; header.tick = 1e-9; break;
    default:
      report(stats, &IngestStats::bad_headers, mode,
             "not a pcap file (bad magic): " + path);
      return header;
  }

  const std::uint16_t version_major = header.u16(h + 4);
  header.linktype = header.u32(h + 20);
  if (version_major != 2) {
    report(stats, &IngestStats::bad_headers, mode,
           "unsupported pcap version " + std::to_string(version_major) +
               ": " + path);
    return header;
  }
  if (header.linktype != kLinkEther && header.linktype != kLinkLoop &&
      header.linktype != kLinkRaw && header.linktype != kLinkRawOld) {
    report(stats, &IngestStats::bad_headers, mode,
           "unsupported pcap link type " + std::to_string(header.linktype) +
               ": " + path);
    return header;
  }

  header.ok = true;
  return header;
}

bool decode_pcap_frame(const PcapHeader& header, const unsigned char* data,
                       std::size_t len, RawPacket& out, IngestStats& stats,
                       ParseMode mode, const std::string& path) {
  // One implementation only: the inline body in pcap_decode.hpp. This
  // out-of-line wrapper is what the ifstream PcapReader links against.
  return decode_pcap_frame_inline(header, data, len, out, stats, mode, path);
}

}  // namespace wan::ingest
