// Parse-mode contract and error ledger for the ingestion subsystem.
//
// Real captures are adversarial input: endian-swapped headers, records
// cut off by a full disk, clocks stepping backwards, snap lengths that
// chop transport headers. Every reader in src/ingest takes a ParseMode
// and an IngestStats ledger:
//   * strict  — the first structural defect throws IngestError; use it
//     when a trace is supposed to be pristine and silence would hide
//     corruption.
//   * lenient — defects are counted in the ledger, the offending unit
//     (record, line, frame) is dropped or clamped, and parsing carries
//     on; use it to salvage what a damaged capture still holds. Lenient
//     mode must never crash on any byte sequence.
// The ledger is the single source of truth for "what was thrown away":
// a lenient ingest that reports zero errors parsed the file exactly as
// strict mode would have.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wan::ingest {

enum class ParseMode : std::uint8_t {
  kStrict,   ///< throw IngestError at the first structural defect
  kLenient,  ///< count defects in IngestStats and keep going
};

/// Thrown by strict-mode parsing (and by unrecoverable defects, e.g. a
/// header too corrupt to locate any records, in either mode when the
/// caller asked for it).
class IngestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structured counts of everything a reader consumed, produced, skipped
/// or repaired. Counters are cumulative across next() calls; reset()
/// on a source rewinds them along with the stream position.
struct IngestStats {
  // --- produced ---------------------------------------------------------
  std::uint64_t records = 0;        ///< records delivered downstream
  std::uint64_t bytes = 0;          ///< input bytes consumed

  // --- structural defects (strict mode throws on each) ------------------
  std::uint64_t bad_headers = 0;         ///< unusable file/frame header
  std::uint64_t truncated_records = 0;   ///< input ended mid-record (EOF)
  std::uint64_t oversized_records = 0;   ///< length field beyond sanity cap
  std::uint64_t bad_lines = 0;           ///< unparsable ASCII line
  std::uint64_t out_of_order = 0;        ///< timestamp before predecessor
  /// Read failed before end of file (I/O error, not truncation). Kept
  /// separate from truncated_records so a capture whose final record
  /// was cut by a full disk reads differently from a dying disk: a
  /// short read at EOF is truncation, a short read anywhere else is an
  /// input error. Before this counter existed both silently ended the
  /// stream through the clean-EOF return path.
  std::uint64_t io_errors = 0;

  // --- tolerated oddities (counted in both modes, never fatal) ----------
  std::uint64_t skipped_frames = 0;      ///< non-IPv4 / fragment / odd link
  /// 802.1Q/802.1ad-tagged Ethernet frames whose tags were unwrapped to
  /// reach the inner payload — decoded, not dropped; counted so a
  /// capture from a trunk port is recognizable from its ledger.
  std::uint64_t vlan_frames = 0;
  std::uint64_t short_captures = 0;      ///< snaplen cut transport header
  std::uint64_t unknown_transports = 0;  ///< IP proto other than TCP/UDP
  std::uint64_t unknown_protocols = 0;   ///< service name/port not mapped
  std::uint64_t missing_fields = 0;      ///< "?" placeholders in ITA logs

  /// Defects that strict mode treats as fatal.
  std::uint64_t structural_errors() const {
    return bad_headers + truncated_records + oversized_records + bad_lines +
           out_of_order + io_errors;
  }

  /// Multi-line human-readable ledger (only non-zero rows).
  std::string to_string() const;

  /// Folds another ledger into this one (plain counter adds, so the
  /// merge is associative and commutative). Sharded ingestion keeps one
  /// ledger per shard and merges them into the single ledger it
  /// reports, per the repo-wide merge contract.
  void merge(const IngestStats& other) {
    records += other.records;
    bytes += other.bytes;
    bad_headers += other.bad_headers;
    truncated_records += other.truncated_records;
    oversized_records += other.oversized_records;
    bad_lines += other.bad_lines;
    out_of_order += other.out_of_order;
    io_errors += other.io_errors;
    skipped_frames += other.skipped_frames;
    vlan_frames += other.vlan_frames;
    short_captures += other.short_captures;
    unknown_transports += other.unknown_transports;
    unknown_protocols += other.unknown_protocols;
    missing_fields += other.missing_fields;
  }

  void clear() { *this = IngestStats{}; }
};

/// Counts `counter` and, in strict mode, throws IngestError with `what`.
/// The single choke point through which every reader reports a defect,
/// so the two modes cannot drift apart in what they consider an error.
void report(IngestStats& stats, std::uint64_t IngestStats::* counter,
            ParseMode mode, const std::string& what);

}  // namespace wan::ingest
