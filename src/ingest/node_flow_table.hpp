// The original node-based flow table — std::unordered_map for flows and
// a std::list LRU — retained verbatim as the A/B reference for the flat
// open-addressing FlowTable (src/ingest/flow_table.hpp) that replaced
// it on the hot path. The two tables are pinned to identical behaviour
// (conn ids, host ids, eviction order, ConnRecords) by the
// `ingest`-labeled tests and the bench_perf_ingest parity check; this
// one exists so that pin has something to compare against and so the
// flat table's speedup can be measured rather than asserted.
//
// Semantics (shared with FlowTable — see its header for the full story):
//
//   * a SYN without ACK marks its sender as the originator (otherwise
//     the first packet's sender is assumed to originate);
//   * FIN in both directions, or any RST, closes the connection at that
//     packet;
//   * a flow idle longer than `idle_timeout` is evicted when the clock
//     (max timestamp seen) passes its horizon;
//   * at end of input, flush() closes everything still open.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/ingest/flow_table.hpp"  // FlowTableConfig
#include "src/ingest/raw_packet.hpp"
#include "src/trace/records.hpp"

namespace wan::ingest {

class NodeFlowTable {
 public:
  explicit NodeFlowTable(FlowTableConfig config = {});

  /// Folds one packet into the table and returns its analysis record.
  /// Advances the eviction clock to the packet's time (monotone max).
  trace::PacketRecord add(const RawPacket& pkt);

  /// Closes every still-open flow (oldest first). Call at end of input.
  void flush();

  /// Moves the ConnRecords of flows closed since the last call into
  /// `out` (appending, closure order). No-op when collect_connections
  /// is off.
  void take_closed(std::vector<trace::ConnRecord>& out);

  /// Forgets everything: open flows, closed records, host numbering,
  /// conn-id counter. A reset() source rebuilds identical ids.
  void clear();

  std::size_t open_flows() const { return flows_.size(); }
  std::size_t host_count() const { return hosts_.size(); }
  std::uint32_t connections_seen() const { return next_conn_id_ - 1; }

 private:
  struct FlowKey {
    std::uint32_t ip_a = 0, ip_b = 0;
    std::uint16_t port_a = 0, port_b = 0;
    bool tcp = true;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept;
  };
  struct Flow {
    std::uint32_t conn_id = 0;
    std::uint32_t orig_ip = 0, resp_ip = 0;
    std::uint16_t orig_port = 0, resp_port = 0;
    double first = 0.0, last = 0.0;
    std::uint64_t bytes_orig = 0, bytes_resp = 0;
    trace::Protocol protocol = trace::Protocol::kOther;
    std::uint64_t session_id = 0;
    bool fin_orig = false, fin_resp = false;
    std::list<FlowKey>::iterator lru;
  };

  std::uint32_t host_id(std::uint32_t ip);
  Flow& open_flow(const FlowKey& key, const RawPacket& pkt);
  void close_flow(const FlowKey& key);
  void evict_idle();

  FlowTableConfig config_;
  std::unordered_map<FlowKey, Flow, FlowKeyHash> flows_;
  std::list<FlowKey> lru_;  ///< least recently touched at the front
  std::unordered_map<std::uint32_t, std::uint32_t> hosts_;
  /// Unordered host-ip pair -> conn_id of the open FTP control flow.
  std::unordered_map<std::uint64_t, std::uint32_t> ftp_sessions_;
  std::vector<trace::ConnRecord> closed_;
  std::uint32_t next_conn_id_ = 1;
  double clock_ = 0.0;
  bool any_ = false;
};

}  // namespace wan::ingest
