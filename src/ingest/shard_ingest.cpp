#include "src/ingest/shard_ingest.hpp"

#include <stdexcept>
#include <string>

#include "src/par/parallel.hpp"
#include "src/stream/shard.hpp"

namespace wan::ingest {

std::size_t shard_of_packet(const RawPacket& pkt,
                            std::size_t n_shards) noexcept {
  return stream::shard_of_hosts(pkt.src_ip, pkt.dst_ip, n_shards);
}

ShardedFlowTable::ShardedFlowTable(std::size_t n_shards,
                                   FlowTableConfig config) {
  if (n_shards == 0 || n_shards > kMaxShards) {
    throw std::invalid_argument("ShardedFlowTable: n_shards must be in [1, " +
                                std::to_string(kMaxShards) + "], got " +
                                std::to_string(n_shards));
  }
  tables_.assign(n_shards, FlowTable(config));
  ledgers_.assign(n_shards, IngestStats{});
  remap_.assign(n_shards, {});
  rows_.assign(n_shards, {});
}

void ShardedFlowTable::add_batch(std::span<const RawPacket> pkts,
                                 std::vector<trace::PacketRecord>& out) {
  const std::size_t n = tables_.size();
  out.resize(pkts.size());

  if (n == 1) {
    // One shard is the serial table verbatim: local ids ARE global ids.
    for (std::size_t i = 0; i < pkts.size(); ++i)
      out[i] = tables_[0].add(pkts[i]);
    ledgers_[0].records += pkts.size();
    next_global_id_ = tables_[0].connections_seen() + 1;
    return;
  }

  shard_of_row_.resize(pkts.size());
  for (auto& r : rows_) r.clear();
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const std::size_t s = shard_of_packet(pkts[i], n);
    shard_of_row_[i] = static_cast<std::uint32_t>(s);
    rows_[s].push_back(static_cast<std::uint32_t>(i));
  }

  // Shards are independent (disjoint flow keys), so the fold order
  // across shards is free; within a shard, rows_ preserves capture
  // order, which is all the per-flow state machine needs.
  par::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t s = b; s < e; ++s) {
      for (const std::uint32_t i : rows_[s]) out[i] = tables_[s].add(pkts[i]);
      ledgers_[s].records += rows_[s].size();
    }
  });

  // Renumber shard-local conn ids to the serial numbering: flows are
  // numbered by first appearance in capture order, which is exactly
  // when the serial table's open_flow would have assigned the id. Local
  // ids are dense and increase with first appearance inside a shard, so
  // a previously unseen local id is always remap_[s].size() + 1.
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    auto& m = remap_[shard_of_row_[i]];
    const std::uint32_t local = out[i].conn_id;
    if (local > m.size()) {
      if (local != m.size() + 1)
        throw std::logic_error("ShardedFlowTable: non-dense shard conn ids");
      m.push_back(next_global_id_++);
    }
    out[i].conn_id = m[local - 1];
  }
}

void ShardedFlowTable::clear() {
  for (auto& t : tables_) t.clear();
  for (auto& l : ledgers_) l.clear();
  for (auto& m : remap_) m.clear();
  next_global_id_ = 1;
}

std::size_t ShardedFlowTable::open_flows() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.open_flows();
  return total;
}

IngestStats ShardedFlowTable::merged_ledger() const {
  IngestStats merged;
  for (const auto& l : ledgers_) merged.merge(l);
  return merged;
}

}  // namespace wan::ingest
