// Minimal pcap *writer* — the inverse of the readers, for tests and
// benches that need a real capture file to tail or replay. Writes the
// classic little-endian usec format (magic 0xa1b2c3d4, linktype
// Ethernet) with fully synthetic but internally consistent frames:
// Ethernet/IPv4/TCP, 54 header bytes plus no captured payload, with
// the IP total length carrying the payload size the way our decoder
// derives payload_bytes (total_len - ip_hdr - tcp_hdr).
//
// write_pcap_for_records() round-trips trace::PacketRecords: each
// conn_id gets a distinct host pair and a responder port chosen so
// classify_tcp() reproduces the record's protocol, the first packet of
// a connection carries SYN (or SYN|ACK when the responder speaks
// first, which FlowTable maps back to the same originator), and every
// later packet plain ACK. Feeding the file through any pcap source
// therefore yields the original records — same times, protocols,
// direction flags and payload sizes — which is what lets monitor tests
// compare a live tail/replay against the offline analyzers on
// arbitrary synthesized traffic, not just the checked-in fixtures.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <unordered_map>

#include "src/trace/records.hpp"

namespace wan::ingest {

class PcapFileWriter {
 public:
  /// Opens (truncates) `path` and writes the global header.
  /// Throws std::runtime_error when the file cannot be created.
  explicit PcapFileWriter(const std::string& path);

  /// Appends one Ethernet/IPv4/TCP frame. `payload_bytes` is encoded in
  /// the IP total length (not captured), matching how decode derives it.
  void write_tcp(double time, std::uint32_t src_ip, std::uint32_t dst_ip,
                 std::uint16_t src_port, std::uint16_t dst_port,
                 std::uint8_t tcp_flags, std::uint16_t payload_bytes);

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

/// Streaming record-to-frame encoder: feed time-ordered PacketRecords
/// one at a time and get the capture described in the file comment.
/// State is one small entry per distinct conn_id, so multi-day
/// synthetic captures encode without materializing their records.
class PcapRecordEncoder {
 public:
  explicit PcapRecordEncoder(const std::string& path) : writer_(path) {}

  void add(const trace::PacketRecord& record);
  void flush() { writer_.flush(); }

 private:
  struct Conn {
    std::uint32_t orig_ip = 0, resp_ip = 0;
    std::uint16_t orig_port = 0, resp_port = 0;
    bool started = false;
  };

  PcapFileWriter writer_;
  std::unordered_map<std::uint32_t, Conn> conns_;
};

/// Synthesizes a capture that ingests back to exactly `records` (which
/// must be time-ordered). See the file comment for the construction.
void write_pcap_for_records(const std::string& path,
                            std::span<const trace::PacketRecord> records);

}  // namespace wan::ingest
