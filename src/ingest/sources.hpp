// Chunk-source adapters: each ingest reader exposed through the
// streaming layer's pull contract, so real captures flow through the
// same src/stream pipeline as synthesized traces, in chunk-bounded
// memory.
//
// Sources are two-pass: the constructor prescans the file once to learn
// the trace's time range (analyze_stream reads info() before any
// records flow), then rewinds. The prescan's ledger is discarded on the
// rewind — stats() reflects the emission pass only, so callers see each
// defect counted exactly once.
//
//   * PacketSourceImpl<MmapPcapReader / PcapReader / LblPktReader> —
//     packets through a flow table (connection ids + protocol
//     classification attached), emitted as PacketRecord chunks. The
//     second template parameter picks the table (flat FlowTable by
//     default; NodeFlowTable instantiations exist as the A/B baseline).
//   * PcapColumnSource — the zero-copy fast path: mmap'd batch decode
//     folded straight into PacketColumns, no PacketRecord row chunk in
//     between. ColumnsFromIngest adapts any row source to the same
//     contract for the formats without a native columnar path.
//   * FlowConnSource<...> — the same packets folded *into* connections:
//     emits the ConnRecords the flow table closes, in closure order,
//     flushing still-open flows at EOF.
//   * LblConnSource — SYN/FIN connection logs read directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ingest/flow_table.hpp"
#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/mmap_source.hpp"
#include "src/ingest/node_flow_table.hpp"
#include "src/ingest/shard_ingest.hpp"
#include "src/ingest/ita_ascii.hpp"
#include "src/ingest/pcap_reader.hpp"
#include "src/stream/chunk.hpp"
#include "src/stream/columnar.hpp"
#include "src/stream/conn_chunk.hpp"

namespace wan::ingest {

/// Packet chunk source that also carries an ingest error ledger.
class IngestPacketSource : public stream::PacketChunkSource {
 public:
  virtual const IngestStats& stats() const = 0;
};

/// Connection chunk source that also carries an ingest error ledger.
class IngestConnSource : public stream::ConnChunkSource {
 public:
  virtual const IngestStats& stats() const = 0;
};

/// Columnar packet source that also carries an ingest error ledger.
class IngestColumnSource : public stream::PacketColumnSource {
 public:
  virtual const IngestStats& stats() const = 0;
};

/// Packets from a capture file, each folded through a flow table so the
/// emitted PacketRecords carry conn ids and port-classified protocols.
/// Reader is MmapPcapReader, PcapReader or LblPktReader; Table is the
/// flat FlowTable (default) or NodeFlowTable (the retained baseline the
/// benches and parity tests compare against).
template <typename Reader, typename Table = FlowTable>
class PacketSourceImpl final : public IngestPacketSource {
 public:
  /// Opens and prescans `path`. Strict mode throws IngestError on the
  /// first structural defect (possibly from the prescan); lenient mode
  /// never throws past the initial open.
  PacketSourceImpl(const std::string& path, ParseMode mode,
                   FlowTableConfig flow = {},
                   std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const Table& flow_table() const { return table_; }

 private:
  Reader reader_;
  Table table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
};

using MmapPcapPacketSource = PacketSourceImpl<MmapPcapReader>;
using PcapPacketSource = PacketSourceImpl<PcapReader>;
using LblPktPacketSource = PacketSourceImpl<LblPktReader>;
/// The pre-fast-path configuration (ifstream reader + node table),
/// instantiated so benches can measure the fast path against it.
using NodePcapPacketSource = PacketSourceImpl<PcapReader, NodeFlowTable>;

/// Sharded twin of PacketSourceImpl: one reader (a capture is a single
/// byte stream), flow reconstruction fanned across per-shard tables on
/// the src/par pool, records re-emitted in capture order with serial
/// conn-id numbering. Chunks are byte-identical to PacketSourceImpl's
/// at every (shard count, thread count) — see shard_ingest.hpp for the
/// argument. stats() is the reader's ledger (parse defects happen
/// before routing); the table's per-shard record ledgers merge into one
/// via flow_table().merged_ledger().
template <typename Reader>
class ShardedPacketSourceImpl final : public IngestPacketSource {
 public:
  ShardedPacketSourceImpl(const std::string& path, ParseMode mode,
                          std::size_t n_shards, FlowTableConfig flow = {},
                          std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const ShardedFlowTable& flow_table() const { return table_; }

 private:
  Reader reader_;
  ShardedFlowTable table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
  std::vector<RawPacket> raw_;  ///< batch scratch, one chunk's packets
};

using ShardedMmapPcapPacketSource = ShardedPacketSourceImpl<MmapPcapReader>;
using ShardedPcapPacketSource = ShardedPacketSourceImpl<PcapReader>;
using ShardedLblPktPacketSource = ShardedPacketSourceImpl<LblPktReader>;

/// Whether a source's constructor runs the prescan pass (the default)
/// or defers it for the speculative single-pass analysis.
enum class Prescan {
  kEager,
  /// Skip the constructor's prescan: info() carries the right name but
  /// a zero time range until ensure_eager_info() runs, so the standard
  /// pipelines reject a deferred source loudly ("series too short")
  /// instead of analyzing a wrong grid. Only analyze_pcap_onepass
  /// consumes deferred sources: it learns the range from the emission
  /// pass itself and never reads the deferred info's t_begin/t_end.
  kDeferred,
};

/// The zero-copy fast path end to end: mmap'd pcap records batch-decode
/// in place and fold through the flat FlowTable straight into SoA
/// columns — no PacketRecord row chunk is ever materialized. Emits the
/// exact rows PacketSourceImpl would (pinned by the parity tests);
/// analyze_columns drains it without the ColumnsFromRows transpose.
class PcapColumnSource final : public IngestColumnSource {
 public:
  PcapColumnSource(const std::string& path, ParseMode mode,
                   FlowTableConfig flow = {},
                   std::size_t chunk_size = stream::kDefaultChunkSize,
                   Prescan prescan = Prescan::kEager);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(stream::PacketColumns& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const FlowTable& flow_table() const { return table_; }

  /// True until a deferred prescan has been replaced by a real one.
  bool info_deferred() const { return deferred_; }
  /// Runs the prescan a deferred constructor skipped (and rewinds), so
  /// info() becomes exactly what the eager constructor would have
  /// produced. The single-pass analysis calls this when its in-order
  /// speculation fails and it falls back to the two-pass path. No-op
  /// when info is already eager.
  void ensure_eager_info();

  /// Speculation support, valid while info is deferred: the time of the
  /// first packet emitted since construction/reset (t_begin, if the
  /// stream turns out to be in order), and whether any packet emitted.
  bool any_emitted() const { return first_time_set_; }
  double first_emitted_time() const { return first_time_; }
  /// The max emitted timestamp so far (exact once the source drains).
  double emitted_max_time() const { return reader_.max_time_seen(); }
  /// One timestamp quantum, for t_end = max + tick at end of stream —
  /// the same tick the eager prescan adds.
  double tick() const { return reader_.tick(); }

 private:
  MmapPcapReader reader_;
  FlowTable table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
  bool deferred_ = false;
  bool first_time_set_ = false;
  double first_time_ = 0.0;
  std::string path_;  ///< kept only for a deferred ensure_eager_info()
};

/// Owning rows->columns bridge: any IngestPacketSource behind the
/// columnar ledger contract, for the formats (lbl-pkt, sharded or row
/// pcap) that have no native columnar decode.
class ColumnsFromIngest final : public IngestColumnSource {
 public:
  explicit ColumnsFromIngest(std::unique_ptr<IngestPacketSource> inner)
      : inner_(std::move(inner)) {}

  const stream::StreamInfo& info() const override { return inner_->info(); }
  bool next(stream::PacketColumns& chunk) override;
  void reset() override { inner_->reset(); }

  const IngestStats& stats() const override { return inner_->stats(); }

 private:
  std::unique_ptr<IngestPacketSource> inner_;
  std::vector<trace::PacketRecord> buf_;
};

/// The same packet formats reduced to SYN/FIN-style connection records:
/// chunks hold the connections the flow table closed, in closure order;
/// at end of input every still-open flow is flushed. collect_conns +
/// sort_by_start yields a ConnTrace ready for the Section-III analyses.
template <typename Reader>
class FlowConnSource final : public IngestConnSource {
 public:
  FlowConnSource(const std::string& path, ParseMode mode,
                 FlowTableConfig flow = {},
                 std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::ConnRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const FlowTable& flow_table() const { return table_; }

 private:
  Reader reader_;
  FlowTable table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
  std::vector<trace::ConnRecord> pending_;
  std::size_t pos_ = 0;
  bool flushed_ = false;
};

using MmapPcapConnSource = FlowConnSource<MmapPcapReader>;
using PcapConnSource = FlowConnSource<PcapReader>;
using LblPktConnSource = FlowConnSource<LblPktReader>;

/// lbl-conn-7 connection logs, streamed directly (no reconstruction —
/// the archive already reduced them to SYN/FIN records).
class LblConnSource final : public IngestConnSource {
 public:
  LblConnSource(const std::string& path, ParseMode mode,
                std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::ConnRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }

 private:
  LblConnReader reader_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
};

}  // namespace wan::ingest
