// Chunk-source adapters: each ingest reader exposed through the
// streaming layer's pull contract, so real captures flow through the
// same src/stream pipeline as synthesized traces, in chunk-bounded
// memory.
//
// Sources are two-pass: the constructor prescans the file once to learn
// the trace's time range (analyze_stream reads info() before any
// records flow), then rewinds. The prescan's ledger is discarded on the
// rewind — stats() reflects the emission pass only, so callers see each
// defect counted exactly once.
//
//   * PacketSourceImpl<PcapReader / LblPktReader> — packets through a
//     FlowTable (connection ids + protocol classification attached),
//     emitted as PacketRecord chunks.
//   * FlowConnSource<PcapReader / LblPktReader> — the same packets
//     folded *into* connections: emits the ConnRecords the flow table
//     closes, in closure order, flushing still-open flows at EOF.
//   * LblConnSource — SYN/FIN connection logs read directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ingest/flow_table.hpp"
#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/shard_ingest.hpp"
#include "src/ingest/ita_ascii.hpp"
#include "src/ingest/pcap_reader.hpp"
#include "src/stream/chunk.hpp"
#include "src/stream/conn_chunk.hpp"

namespace wan::ingest {

/// Packet chunk source that also carries an ingest error ledger.
class IngestPacketSource : public stream::PacketChunkSource {
 public:
  virtual const IngestStats& stats() const = 0;
};

/// Connection chunk source that also carries an ingest error ledger.
class IngestConnSource : public stream::ConnChunkSource {
 public:
  virtual const IngestStats& stats() const = 0;
};

/// Packets from a capture file, each folded through a FlowTable so the
/// emitted PacketRecords carry conn ids and port-classified protocols.
/// Reader is PcapReader or LblPktReader.
template <typename Reader>
class PacketSourceImpl final : public IngestPacketSource {
 public:
  /// Opens and prescans `path`. Strict mode throws IngestError on the
  /// first structural defect (possibly from the prescan); lenient mode
  /// never throws past the initial open.
  PacketSourceImpl(const std::string& path, ParseMode mode,
                   FlowTableConfig flow = {},
                   std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const FlowTable& flow_table() const { return table_; }

 private:
  Reader reader_;
  FlowTable table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
};

using PcapPacketSource = PacketSourceImpl<PcapReader>;
using LblPktPacketSource = PacketSourceImpl<LblPktReader>;

/// Sharded twin of PacketSourceImpl: one reader (a capture is a single
/// byte stream), flow reconstruction fanned across per-shard tables on
/// the src/par pool, records re-emitted in capture order with serial
/// conn-id numbering. Chunks are byte-identical to PacketSourceImpl's
/// at every (shard count, thread count) — see shard_ingest.hpp for the
/// argument. stats() is the reader's ledger (parse defects happen
/// before routing); the table's per-shard record ledgers merge into one
/// via flow_table().merged_ledger().
template <typename Reader>
class ShardedPacketSourceImpl final : public IngestPacketSource {
 public:
  ShardedPacketSourceImpl(const std::string& path, ParseMode mode,
                          std::size_t n_shards, FlowTableConfig flow = {},
                          std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::PacketRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const ShardedFlowTable& flow_table() const { return table_; }

 private:
  Reader reader_;
  ShardedFlowTable table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
  std::vector<RawPacket> raw_;  ///< batch scratch, one chunk's packets
};

using ShardedPcapPacketSource = ShardedPacketSourceImpl<PcapReader>;
using ShardedLblPktPacketSource = ShardedPacketSourceImpl<LblPktReader>;

/// The same packet formats reduced to SYN/FIN-style connection records:
/// chunks hold the connections the flow table closed, in closure order;
/// at end of input every still-open flow is flushed. collect_conns +
/// sort_by_start yields a ConnTrace ready for the Section-III analyses.
template <typename Reader>
class FlowConnSource final : public IngestConnSource {
 public:
  FlowConnSource(const std::string& path, ParseMode mode,
                 FlowTableConfig flow = {},
                 std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::ConnRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }
  const FlowTable& flow_table() const { return table_; }

 private:
  Reader reader_;
  FlowTable table_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
  std::vector<trace::ConnRecord> pending_;
  std::size_t pos_ = 0;
  bool flushed_ = false;
};

using PcapConnSource = FlowConnSource<PcapReader>;
using LblPktConnSource = FlowConnSource<LblPktReader>;

/// lbl-conn-7 connection logs, streamed directly (no reconstruction —
/// the archive already reduced them to SYN/FIN records).
class LblConnSource final : public IngestConnSource {
 public:
  LblConnSource(const std::string& path, ParseMode mode,
                std::size_t chunk_size = stream::kDefaultChunkSize);

  const stream::StreamInfo& info() const override { return info_; }
  bool next(std::vector<trace::ConnRecord>& chunk) override;
  void reset() override;

  const IngestStats& stats() const override { return reader_.stats(); }

 private:
  LblConnReader reader_;
  stream::StreamInfo info_;
  std::size_t chunk_size_;
};

}  // namespace wan::ingest
