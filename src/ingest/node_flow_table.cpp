#include "src/ingest/node_flow_table.hpp"

#include <algorithm>

#include "src/ingest/classify.hpp"

namespace wan::ingest {

namespace {

std::uint64_t host_pair_key(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = a < b ? a : b;
  const std::uint32_t hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::size_t NodeFlowTable::FlowKeyHash::operator()(
    const FlowKey& k) const noexcept {
  // splitmix64-style mix of the packed tuple; the table only needs
  // decent dispersion, not cryptographic strength.
  std::uint64_t x = (static_cast<std::uint64_t>(k.ip_a) << 32) ^ k.ip_b;
  x ^= (static_cast<std::uint64_t>(k.port_a) << 48) ^
       (static_cast<std::uint64_t>(k.port_b) << 16) ^
       (k.tcp ? 0x9E3779B97F4A7C15ull : 0xC2B2AE3D27D4EB4Full);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

NodeFlowTable::NodeFlowTable(FlowTableConfig config) : config_(config) {}

std::uint32_t NodeFlowTable::host_id(std::uint32_t ip) {
  const auto [it, inserted] =
      hosts_.emplace(ip, static_cast<std::uint32_t>(hosts_.size() + 1));
  (void)inserted;
  return it->second;
}

NodeFlowTable::Flow& NodeFlowTable::open_flow(const FlowKey& key,
                                              const RawPacket& pkt) {
  Flow flow;
  flow.conn_id = next_conn_id_++;
  // A SYN+ACK means we caught the responder's half of the handshake
  // first: the originator is the other endpoint. Any other first packet
  // (plain SYN included) marks its sender as originator.
  const bool syn = (pkt.tcp_flags & kTcpSyn) != 0;
  const bool ack = (pkt.tcp_flags & kTcpAck) != 0;
  const bool reversed = pkt.tcp && syn && ack;
  flow.orig_ip = reversed ? pkt.dst_ip : pkt.src_ip;
  flow.orig_port = reversed ? pkt.dst_port : pkt.src_port;
  flow.resp_ip = reversed ? pkt.src_ip : pkt.dst_ip;
  flow.resp_port = reversed ? pkt.src_port : pkt.dst_port;
  flow.first = flow.last = pkt.time;
  flow.protocol = pkt.tcp ? classify_tcp(flow.resp_port, flow.orig_port)
                          : classify_udp(flow.resp_port, flow.orig_port,
                                         pkt.multicast);

  // Host ids are assigned in flow-open order (originator before
  // responder), so a reset + re-ingest reproduces identical numbering.
  host_id(flow.orig_ip);
  host_id(flow.resp_ip);

  const std::uint64_t pair = host_pair_key(flow.orig_ip, flow.resp_ip);
  if (flow.protocol == trace::Protocol::kFtpCtrl) {
    ftp_sessions_[pair] = flow.conn_id;
  } else if (flow.protocol == trace::Protocol::kFtpData) {
    const auto it = ftp_sessions_.find(pair);
    flow.session_id = it != ftp_sessions_.end() ? it->second : 0;
  }

  lru_.push_back(key);
  flow.lru = std::prev(lru_.end());
  return flows_.emplace(key, flow).first->second;
}

void NodeFlowTable::close_flow(const FlowKey& key) {
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;
  Flow& flow = it->second;

  if (config_.collect_connections) {
    trace::ConnRecord rec;
    rec.start = flow.first;
    rec.duration = flow.last - flow.first;
    rec.protocol = flow.protocol;
    rec.src_host = host_id(flow.orig_ip);
    rec.dst_host = host_id(flow.resp_ip);
    rec.bytes_orig = flow.bytes_orig;
    rec.bytes_resp = flow.bytes_resp;
    rec.session_id = flow.session_id;
    closed_.push_back(rec);
  }

  if (flow.protocol == trace::Protocol::kFtpCtrl) {
    const std::uint64_t pair = host_pair_key(flow.orig_ip, flow.resp_ip);
    const auto sess = ftp_sessions_.find(pair);
    if (sess != ftp_sessions_.end() && sess->second == flow.conn_id)
      ftp_sessions_.erase(sess);
  }

  lru_.erase(flow.lru);
  flows_.erase(it);
}

void NodeFlowTable::evict_idle() {
  while (!lru_.empty()) {
    const auto it = flows_.find(lru_.front());
    if (it == flows_.end() ||
        clock_ - it->second.last <= config_.idle_timeout)
      break;
    close_flow(lru_.front());
  }
}

trace::PacketRecord NodeFlowTable::add(const RawPacket& pkt) {
  if (!any_ || pkt.time > clock_) clock_ = pkt.time;
  any_ = true;
  evict_idle();

  FlowKey key;
  const bool a_first =
      pkt.src_ip < pkt.dst_ip ||
      (pkt.src_ip == pkt.dst_ip && pkt.src_port <= pkt.dst_port);
  key.ip_a = a_first ? pkt.src_ip : pkt.dst_ip;
  key.port_a = a_first ? pkt.src_port : pkt.dst_port;
  key.ip_b = a_first ? pkt.dst_ip : pkt.src_ip;
  key.port_b = a_first ? pkt.dst_port : pkt.src_port;
  key.tcp = pkt.tcp;

  const auto it = flows_.find(key);
  Flow& flow = it != flows_.end() ? it->second : open_flow(key, pkt);

  const bool from_orig =
      pkt.src_ip == flow.orig_ip && pkt.src_port == flow.orig_port;
  if (pkt.time > flow.last) flow.last = pkt.time;
  if (from_orig) {
    flow.bytes_orig += pkt.payload_bytes;
  } else {
    flow.bytes_resp += pkt.payload_bytes;
  }
  lru_.splice(lru_.end(), lru_, flow.lru);  // most recently touched

  trace::PacketRecord rec;
  rec.time = pkt.time;
  rec.protocol = flow.protocol;
  rec.conn_id = flow.conn_id;
  rec.from_originator = from_orig;
  rec.payload_bytes = static_cast<std::uint16_t>(
      pkt.payload_bytes > 0xFFFF ? 0xFFFF : pkt.payload_bytes);

  if (pkt.tcp) {
    if (pkt.tcp_flags & kTcpFin) {
      (from_orig ? flow.fin_orig : flow.fin_resp) = true;
    }
    const bool both_fins = flow.fin_orig && flow.fin_resp;
    if ((pkt.tcp_flags & kTcpRst) || both_fins) close_flow(key);
  }
  return rec;
}

void NodeFlowTable::flush() {
  while (!lru_.empty()) close_flow(lru_.front());
}

void NodeFlowTable::take_closed(std::vector<trace::ConnRecord>& out) {
  out.insert(out.end(), closed_.begin(), closed_.end());
  closed_.clear();
}

void NodeFlowTable::clear() {
  flows_.clear();
  lru_.clear();
  hosts_.clear();
  ftp_sessions_.clear();
  closed_.clear();
  next_conn_id_ = 1;
  clock_ = 0.0;
  any_ = false;
}

}  // namespace wan::ingest
