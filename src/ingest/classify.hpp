// Port-based protocol classification for reconstructed flows, mapping
// onto the same trace::Protocol families the synthetic traces use so
// ingested and synthesized data flow through identical analysis paths.
//
// A SYN/FIN monitor knows which endpoint is the server (the SYN's
// destination), so classification checks the responder port first; the
// originator port is consulted second to catch active-mode FTPDATA,
// where the *server* opens the connection from source port 20.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/trace/protocol.hpp"

namespace wan::ingest {

/// Protocol of a TCP flow given its two endpoint ports (responder ==
/// the SYN receiver / server side). Unmapped ports yield kOther.
trace::Protocol classify_tcp(std::uint16_t responder_port,
                             std::uint16_t originator_port) noexcept;

/// Protocol of a UDP flow: DNS by port, MBONE by multicast destination;
/// everything else kOther.
trace::Protocol classify_udp(std::uint16_t responder_port,
                             std::uint16_t originator_port,
                             bool multicast_dst) noexcept;

/// Service name from an ITA connection log (lowercase, e.g. "telnet",
/// "ftp-data", "nntp") to the Protocol enum. Also accepts this repo's
/// uppercase names via trace::protocol_from_string. nullopt if unmapped.
std::optional<trace::Protocol> protocol_from_service(
    std::string_view name) noexcept;

}  // namespace wan::ingest
