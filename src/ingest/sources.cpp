#include "src/ingest/sources.hpp"

#include <algorithm>

namespace wan::ingest {

namespace {

// One timestamp tick past the last packet puts it inside the half-open
// analysis window [t_begin, t_end).
double source_tick(const PcapReader& r) { return r.tick(); }
double source_tick(const MmapPcapReader& r) { return r.tick(); }
double source_tick(const LblPktReader&) { return 1e-6; }  // μs timestamps

// Both pcap readers produce the same stream from the same file, so they
// share the tag — a source's info().name must not depend on which
// reader served it.
const char* format_tag(const PcapReader&) { return "pcap:"; }
const char* format_tag(const MmapPcapReader&) { return "pcap:"; }
const char* format_tag(const LblPktReader&) { return "lbl-pkt:"; }

/// Prescan pass: the packet time range, with the reader left rewound.
template <typename Reader>
stream::StreamInfo prescan_packets(Reader& reader, const std::string& path) {
  RawPacket pkt;
  bool any = false;
  double lo = 0.0, hi = 0.0;
  while (reader.next(pkt)) {
    if (!any) {
      lo = hi = pkt.time;
      any = true;
    } else {
      lo = std::min(lo, pkt.time);
      hi = std::max(hi, pkt.time);
    }
  }
  reader.reset();  // discards the prescan's ledger
  stream::StreamInfo info;
  info.name = format_tag(reader) + path;
  info.t_begin = any ? lo : 0.0;
  info.t_end = any ? hi + source_tick(reader) : 0.0;
  return info;
}

/// MmapPcapReader prescans through scan_times — the same records and
/// the same fold (the overload is preferred over the template), minus
/// the per-record call overhead and the batch buffer stores: the
/// prescan only ever needs the time range, never the packets.
stream::StreamInfo prescan_packets(MmapPcapReader& reader,
                                   const std::string& path) {
  bool any = false;
  double lo = 0.0, hi = 0.0;
  reader.scan_times(&any, &lo, &hi);
  reader.reset();
  stream::StreamInfo info;
  info.name = format_tag(reader) + path;
  info.t_begin = any ? lo : 0.0;
  info.t_end = any ? hi + source_tick(reader) : 0.0;
  return info;
}

/// Packet consumers never drain closed-connection records; keep the
/// tables from accumulating them.
FlowTableConfig packet_flow_config(FlowTableConfig flow) {
  flow.collect_connections = false;
  return flow;
}

}  // namespace

// ------------------------------------------------------ PacketSourceImpl

template <typename Reader, typename Table>
PacketSourceImpl<Reader, Table>::PacketSourceImpl(const std::string& path,
                                                  ParseMode mode,
                                                  FlowTableConfig flow,
                                                  std::size_t chunk_size)
    : reader_(path, mode),
      table_(packet_flow_config(flow)),
      chunk_size_(chunk_size) {
  info_ = prescan_packets(reader_, path);
}

template <typename Reader, typename Table>
bool PacketSourceImpl<Reader, Table>::next(
    std::vector<trace::PacketRecord>& chunk) {
  chunk.clear();
  RawPacket pkt;
  while (chunk.size() < chunk_size_ && reader_.next(pkt)) {
    chunk.push_back(table_.add(pkt));
  }
  return !chunk.empty();
}

template <typename Reader, typename Table>
void PacketSourceImpl<Reader, Table>::reset() {
  reader_.reset();
  table_.clear();  // identical conn ids on the second pass
}

template class PacketSourceImpl<MmapPcapReader>;
template class PacketSourceImpl<PcapReader>;
template class PacketSourceImpl<LblPktReader>;
template class PacketSourceImpl<PcapReader, NodeFlowTable>;

// ----------------------------------------------- ShardedPacketSourceImpl

template <typename Reader>
ShardedPacketSourceImpl<Reader>::ShardedPacketSourceImpl(
    const std::string& path, ParseMode mode, std::size_t n_shards,
    FlowTableConfig flow, std::size_t chunk_size)
    : reader_(path, mode),
      table_(n_shards, packet_flow_config(flow)),
      chunk_size_(chunk_size) {
  info_ = prescan_packets(reader_, path);
}

template <typename Reader>
bool ShardedPacketSourceImpl<Reader>::next(
    std::vector<trace::PacketRecord>& chunk) {
  raw_.clear();
  RawPacket pkt;
  while (raw_.size() < chunk_size_ && reader_.next(pkt)) raw_.push_back(pkt);
  table_.add_batch(raw_, chunk);
  return !chunk.empty();
}

template <typename Reader>
void ShardedPacketSourceImpl<Reader>::reset() {
  reader_.reset();
  table_.clear();  // identical conn ids on the second pass
}

template class ShardedPacketSourceImpl<MmapPcapReader>;
template class ShardedPacketSourceImpl<PcapReader>;
template class ShardedPacketSourceImpl<LblPktReader>;

// ------------------------------------------------------ PcapColumnSource

PcapColumnSource::PcapColumnSource(const std::string& path, ParseMode mode,
                                   FlowTableConfig flow,
                                   std::size_t chunk_size, Prescan prescan)
    : reader_(path, mode),
      table_(packet_flow_config(flow)),
      chunk_size_(chunk_size),
      deferred_(prescan == Prescan::kDeferred) {
  if (deferred_) {
    // Name now, time range only if ensure_eager_info() is ever needed.
    info_.name = std::string("pcap:") + path;
    path_ = path;
  } else {
    info_ = prescan_packets(reader_, path);
  }
}

bool PcapColumnSource::next(stream::PacketColumns& chunk) {
  chunk.clear();
  chunk.reserve(chunk_size_);
  // Fused: each record goes mapping -> decode -> flow table -> SoA
  // columns in one pass, with no RawPacket batch buffer written and
  // re-read in between.
  reader_.fold_packets(chunk_size_, [&](const RawPacket& pkt) {
    table_.add_append(pkt, chunk);
  });
  if (!first_time_set_ && !chunk.empty()) {
    first_time_ = chunk.time.front();
    first_time_set_ = true;
  }
  return !chunk.empty();
}

void PcapColumnSource::reset() {
  reader_.reset();
  table_.clear();  // identical conn ids on the second pass
  first_time_set_ = false;
  first_time_ = 0.0;
}

void PcapColumnSource::ensure_eager_info() {
  if (!deferred_) return;
  reset();
  info_ = prescan_packets(reader_, path_);
  deferred_ = false;
}

// ----------------------------------------------------- ColumnsFromIngest

bool ColumnsFromIngest::next(stream::PacketColumns& chunk) {
  chunk.clear();
  if (!inner_->next(buf_)) return false;
  chunk.append_rows(buf_);
  return true;
}

// -------------------------------------------------------- FlowConnSource

template <typename Reader>
FlowConnSource<Reader>::FlowConnSource(const std::string& path,
                                       ParseMode mode, FlowTableConfig flow,
                                       std::size_t chunk_size)
    : reader_(path, mode), table_(flow), chunk_size_(chunk_size) {
  info_ = prescan_packets(reader_, path);
}

template <typename Reader>
bool FlowConnSource<Reader>::next(std::vector<trace::ConnRecord>& chunk) {
  chunk.clear();
  while (chunk.size() < chunk_size_) {
    if (pos_ < pending_.size()) {
      chunk.push_back(pending_[pos_++]);
      continue;
    }
    pending_.clear();
    pos_ = 0;
    RawPacket pkt;
    while (pending_.empty()) {
      if (reader_.next(pkt)) {
        table_.add(pkt);
        table_.take_closed(pending_);
      } else if (!flushed_) {
        table_.flush();  // capture ended: close what never saw a FIN
        table_.take_closed(pending_);
        flushed_ = true;
      } else {
        return !chunk.empty();
      }
    }
  }
  return !chunk.empty();
}

template <typename Reader>
void FlowConnSource<Reader>::reset() {
  reader_.reset();
  table_.clear();
  pending_.clear();
  pos_ = 0;
  flushed_ = false;
}

template class FlowConnSource<MmapPcapReader>;
template class FlowConnSource<PcapReader>;
template class FlowConnSource<LblPktReader>;

// --------------------------------------------------------- LblConnSource

LblConnSource::LblConnSource(const std::string& path, ParseMode mode,
                             std::size_t chunk_size)
    : reader_(path, mode), chunk_size_(chunk_size) {
  trace::ConnRecord rec;
  bool any = false;
  double lo = 0.0, hi = 0.0;
  while (reader_.next(rec)) {
    const double end = rec.start + rec.duration;
    if (!any) {
      lo = rec.start;
      hi = end;
      any = true;
    } else {
      lo = std::min(lo, rec.start);
      hi = std::max(hi, end);
    }
  }
  reader_.reset();
  info_.name = "lbl-conn:" + path;
  info_.t_begin = any ? lo : 0.0;
  info_.t_end = any ? hi : 0.0;
}

bool LblConnSource::next(std::vector<trace::ConnRecord>& chunk) {
  chunk.clear();
  trace::ConnRecord rec;
  while (chunk.size() < chunk_size_ && reader_.next(rec)) {
    chunk.push_back(rec);
  }
  return !chunk.empty();
}

void LblConnSource::reset() { reader_.reset(); }

}  // namespace wan::ingest
