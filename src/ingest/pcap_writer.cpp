#include "src/ingest/pcap_writer.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "src/ingest/raw_packet.hpp"

namespace wan::ingest {

namespace {

void put_u32le(unsigned char* p, std::uint32_t v) {
  p[0] = v & 0xFF;
  p[1] = (v >> 8) & 0xFF;
  p[2] = (v >> 16) & 0xFF;
  p[3] = (v >> 24) & 0xFF;
}

void put_u16be(unsigned char* p, std::uint16_t v) {
  p[0] = (v >> 8) & 0xFF;
  p[1] = v & 0xFF;
}

void put_u32be(unsigned char* p, std::uint32_t v) {
  p[0] = (v >> 24) & 0xFF;
  p[1] = (v >> 16) & 0xFF;
  p[2] = (v >> 8) & 0xFF;
  p[3] = v & 0xFF;
}

constexpr std::size_t kFrameBytes = 14 + 20 + 20;  // eth + ip + tcp

/// The responder-side well-known port that classify_tcp maps back to
/// `p`. FTPDATA is the exception (active mode: the *originator* binds
/// port 20) and is handled at the call site; MBONE is UDP multicast
/// and not representable as TCP, so it degrades to an OTHER port.
std::uint16_t responder_port_for(trace::Protocol p) {
  switch (p) {
    case trace::Protocol::kTelnet: return 23;
    case trace::Protocol::kRlogin: return 513;
    case trace::Protocol::kFtpCtrl: return 21;
    case trace::Protocol::kSmtp: return 25;
    case trace::Protocol::kNntp: return 119;
    case trace::Protocol::kWww: return 80;
    case trace::Protocol::kX11: return 6000;
    case trace::Protocol::kDns: return 53;
    default: return 49152;  // classifies as OTHER
  }
}

}  // namespace

PcapFileWriter::PcapFileWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("pcap_writer: cannot create " + path);
  unsigned char h[24] = {};
  put_u32le(h + 0, 0xA1B2C3D4);  // usec magic, native little-endian
  h[4] = 2;                      // version 2.4
  h[6] = 4;
  put_u32le(h + 16, 65535);  // snaplen
  put_u32le(h + 20, 1);      // LINKTYPE_ETHERNET
  out_.write(reinterpret_cast<const char*>(h), sizeof(h));
}

void PcapFileWriter::write_tcp(double time, std::uint32_t src_ip,
                               std::uint32_t dst_ip, std::uint16_t src_port,
                               std::uint16_t dst_port, std::uint8_t tcp_flags,
                               std::uint16_t payload_bytes) {
  std::uint32_t sec = static_cast<std::uint32_t>(time);
  std::uint32_t usec =
      static_cast<std::uint32_t>(std::llround((time - sec) * 1e6));
  if (usec >= 1000000) {  // rounding carried into the next second
    usec -= 1000000;
    ++sec;
  }

  unsigned char rec[16 + kFrameBytes] = {};
  put_u32le(rec + 0, sec);
  put_u32le(rec + 4, usec);
  put_u32le(rec + 8, kFrameBytes);                  // incl_len: headers only
  put_u32le(rec + 12, kFrameBytes + payload_bytes); // orig_len

  unsigned char* eth = rec + 16;
  eth[12] = 0x08;  // ethertype IPv4
  eth[13] = 0x00;

  unsigned char* ip = eth + 14;
  ip[0] = 0x45;  // v4, ihl 5
  put_u16be(ip + 2, static_cast<std::uint16_t>(40 + payload_bytes));
  ip[8] = 64;  // ttl
  ip[9] = 6;   // TCP
  put_u32be(ip + 12, src_ip);
  put_u32be(ip + 16, dst_ip);

  unsigned char* tcp = ip + 20;
  put_u16be(tcp + 0, src_port);
  put_u16be(tcp + 2, dst_port);
  tcp[12] = 5 << 4;  // data offset
  tcp[13] = tcp_flags;
  put_u16be(tcp + 14, 8192);  // window

  out_.write(reinterpret_cast<const char*>(rec), sizeof(rec));
  if (!out_) throw std::runtime_error("pcap_writer: write failed");
}

void PcapRecordEncoder::add(const trace::PacketRecord& r) {
  auto [it, fresh] = conns_.try_emplace(r.conn_id);
  Conn& c = it->second;
  if (fresh) {
    // Distinct host pair per connection id, with the port carrying
    // the high id bits so 4-tuples stay unique while the host space
    // (and the flow table's host map) stays bounded at 2 * 4096.
    const std::uint32_t low = r.conn_id & 0xFFF;
    c.orig_ip = 0x0A000000u | low;   // 10.0.x.y
    c.resp_ip = 0xC0A80000u | low;   // 192.168.x.y
    const std::uint16_t eph =
        static_cast<std::uint16_t>(40000 + (r.conn_id >> 12) % 20000);
    if (r.protocol == trace::Protocol::kFtpData) {
      c.orig_port = 20;  // active mode: classify keys the originator
      c.resp_port = eph;
    } else {
      c.orig_port = eph;
      c.resp_port = responder_port_for(r.protocol);
    }
  }

  std::uint8_t flags = kTcpAck;
  if (!c.started) {
    // First packet establishes the originator: a bare SYN marks the
    // sender, a SYN|ACK marks the receiver — so a connection whose
    // first record travels responder->originator still reconstructs
    // with the right orientation.
    flags = r.from_originator ? kTcpSyn
                              : static_cast<std::uint8_t>(kTcpSyn | kTcpAck);
    c.started = true;
  }
  if (r.from_originator) {
    writer_.write_tcp(r.time, c.orig_ip, c.resp_ip, c.orig_port, c.resp_port,
                      flags, r.payload_bytes);
  } else {
    writer_.write_tcp(r.time, c.resp_ip, c.orig_ip, c.resp_port, c.orig_port,
                      flags, r.payload_bytes);
  }
}

void write_pcap_for_records(const std::string& path,
                            std::span<const trace::PacketRecord> records) {
  PcapRecordEncoder encoder(path);
  for (const trace::PacketRecord& r : records) encoder.add(r);
  encoder.flush();
}

}  // namespace wan::ingest
