#include "src/ingest/ingest_stats.hpp"

#include <sstream>

namespace wan::ingest {

std::string IngestStats::to_string() const {
  std::ostringstream os;
  os << "ingested " << records << " record(s) from " << bytes << " byte(s)";
  const struct {
    const char* label;
    std::uint64_t value;
  } rows[] = {
      {"bad headers", bad_headers},
      {"truncated records", truncated_records},
      {"oversized records", oversized_records},
      {"bad lines", bad_lines},
      {"out-of-order timestamps", out_of_order},
      {"read errors", io_errors},
      {"skipped frames", skipped_frames},
      {"vlan-tagged frames (decoded)", vlan_frames},
      {"short captures", short_captures},
      {"unknown transports", unknown_transports},
      {"unknown protocols", unknown_protocols},
      {"missing '?' fields", missing_fields},
  };
  for (const auto& row : rows) {
    if (row.value != 0) os << "\n  " << row.label << ": " << row.value;
  }
  return os.str();
}

void report(IngestStats& stats, std::uint64_t IngestStats::* counter,
            ParseMode mode, const std::string& what) {
  ++(stats.*counter);
  if (mode == ParseMode::kStrict) throw IngestError("ingest: " + what);
}

}  // namespace wan::ingest
