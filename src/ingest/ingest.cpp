#include "src/ingest/ingest.hpp"

#include <stdexcept>

namespace wan::ingest {

std::optional<IngestFormat> ingest_format_from_string(
    std::string_view s) noexcept {
  if (s == "pcap") return IngestFormat::kPcap;
  if (s == "lbl-conn") return IngestFormat::kLblConn;
  if (s == "lbl-pkt") return IngestFormat::kLblPkt;
  return std::nullopt;
}

const char* to_string(IngestFormat format) noexcept {
  switch (format) {
    case IngestFormat::kPcap: return "pcap";
    case IngestFormat::kLblConn: return "lbl-conn";
    case IngestFormat::kLblPkt: return "lbl-pkt";
  }
  return "?";
}

namespace {

/// "-" (stdin) rides the MmapPcapReader path: open_byte_source spools
/// the stream to a rewindable temp file, so only configurations that
/// never reach that reader need rejecting — the ifstream row reader and
/// the ASCII formats, whose readers open the path directly.
void check_stdin_support(const std::string& path, IngestFormat format,
                         const IngestOptions& opt) {
  if (path != "-") return;
  if (format != IngestFormat::kPcap)
    throw std::invalid_argument(
        "stdin input (-) is supported for pcap only; the " +
        std::string(to_string(format)) +
        " reader needs a named file");
  if (opt.rows_ingest)
    throw std::invalid_argument(
        "stdin input (-) needs the default byte-source reader; drop "
        "--rows-ingest");
}

}  // namespace

std::unique_ptr<IngestPacketSource> open_packet_source(
    const std::string& path, IngestFormat format, const IngestOptions& opt) {
  check_stdin_support(path, format, opt);
  switch (format) {
    case IngestFormat::kPcap:
      if (opt.shards > 1) {
        if (opt.rows_ingest)
          return std::make_unique<ShardedPcapPacketSource>(
              path, opt.mode, opt.shards, opt.flow, opt.chunk_size);
        return std::make_unique<ShardedMmapPcapPacketSource>(
            path, opt.mode, opt.shards, opt.flow, opt.chunk_size);
      }
      if (opt.rows_ingest)
        return std::make_unique<PcapPacketSource>(path, opt.mode, opt.flow,
                                                  opt.chunk_size);
      return std::make_unique<MmapPcapPacketSource>(path, opt.mode, opt.flow,
                                                    opt.chunk_size);
    case IngestFormat::kLblPkt:
      if (opt.shards > 1)
        return std::make_unique<ShardedLblPktPacketSource>(
            path, opt.mode, opt.shards, opt.flow, opt.chunk_size);
      return std::make_unique<LblPktPacketSource>(path, opt.mode, opt.flow,
                                                  opt.chunk_size);
    case IngestFormat::kLblConn:
      break;
  }
  throw std::invalid_argument(
      "lbl-conn logs hold connections, not packets; use open_conn_source");
}

std::unique_ptr<IngestColumnSource> open_packet_column_source(
    const std::string& path, IngestFormat format, const IngestOptions& opt) {
  check_stdin_support(path, format, opt);
  // Native columnar decode exists only for serial mmap'd pcap; the
  // other packet configurations keep their row sources and transpose.
  if (format == IngestFormat::kPcap && opt.shards == 1 && !opt.rows_ingest)
    return std::make_unique<PcapColumnSource>(path, opt.mode, opt.flow,
                                              opt.chunk_size);
  return std::make_unique<ColumnsFromIngest>(
      open_packet_source(path, format, opt));
}

std::unique_ptr<IngestConnSource> open_conn_source(const std::string& path,
                                                   IngestFormat format,
                                                   const IngestOptions& opt) {
  check_stdin_support(path, format, opt);
  switch (format) {
    case IngestFormat::kPcap:
      if (opt.rows_ingest)
        return std::make_unique<PcapConnSource>(path, opt.mode, opt.flow,
                                                opt.chunk_size);
      return std::make_unique<MmapPcapConnSource>(path, opt.mode, opt.flow,
                                                  opt.chunk_size);
    case IngestFormat::kLblPkt:
      return std::make_unique<LblPktConnSource>(path, opt.mode, opt.flow,
                                                opt.chunk_size);
    case IngestFormat::kLblConn:
      return std::make_unique<LblConnSource>(path, opt.mode, opt.chunk_size);
  }
  throw std::invalid_argument("unknown ingest format");
}

trace::ConnTrace reconstruct_conn_trace(const std::string& path,
                                        IngestFormat format,
                                        const IngestOptions& opt,
                                        IngestStats* stats_out) {
  const auto source = open_conn_source(path, format, opt);
  auto tr = stream::collect_conns(*source);
  tr.sort_by_start();
  if (stats_out != nullptr) *stats_out = source->stats();
  return tr;
}

}  // namespace wan::ingest
