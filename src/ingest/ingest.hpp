// Front door of the ingestion subsystem: pick a format, get a chunk
// source. Tools parse "--ingest-format=pcap|lbl-conn|lbl-pkt" into an
// IngestFormat and hand the rest to these factories.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/ingest/sources.hpp"
#include "src/trace/conn_trace.hpp"

namespace wan::ingest {

enum class IngestFormat : std::uint8_t {
  kPcap,     ///< binary libpcap capture
  kLblConn,  ///< ITA lbl-conn-7 ASCII connection log
  kLblPkt,   ///< ITA lbl-pkt / dec-pkt ASCII packet lines
};

/// "pcap", "lbl-conn", "lbl-pkt" (the --ingest-format spellings).
std::optional<IngestFormat> ingest_format_from_string(
    std::string_view s) noexcept;

const char* to_string(IngestFormat format) noexcept;

struct IngestOptions {
  ParseMode mode = ParseMode::kStrict;
  std::size_t chunk_size = stream::kDefaultChunkSize;
  FlowTableConfig flow;  ///< idle timeout for flow reconstruction
  /// Flow-hash shards for packet-level reconstruction. 1 = the serial
  /// FlowTable; > 1 fans the table work across the src/par pool with
  /// byte-identical output (see shard_ingest.hpp). Connection-level
  /// sources ignore this — closure order is not shard-invariant, so
  /// tools reject --shards in conn mode instead.
  std::size_t shards = 1;
  /// Use the legacy ifstream row reader for pcap instead of the mmap'd
  /// zero-copy fast path. The two are pinned byte-identical; this
  /// exists for A/B measurement (--rows-ingest in the tools) and as an
  /// escape hatch, not because the outputs can differ.
  bool rows_ingest = false;
};

/// Packet-level source for the packet formats (pcap, lbl-pkt).
/// Throws std::invalid_argument for kLblConn — connection logs hold no
/// packets. Throws IngestError per the strict-mode contract.
std::unique_ptr<IngestPacketSource> open_packet_source(
    const std::string& path, IngestFormat format, const IngestOptions& opt);

/// Columnar packet-level source: pcap on the default path decodes
/// straight into PacketColumns (mmap + flat table, no row chunk —
/// the zero-copy fast path analyze_columns drains); every other
/// packet configuration is the row source bridged through a transpose.
/// Rows are identical to open_packet_source's in every configuration.
/// Throws std::invalid_argument for kLblConn.
std::unique_ptr<IngestColumnSource> open_packet_column_source(
    const std::string& path, IngestFormat format, const IngestOptions& opt);

/// Connection-level source for any format: lbl-conn logs stream
/// directly; the packet formats are folded through flow reconstruction.
std::unique_ptr<IngestConnSource> open_conn_source(const std::string& path,
                                                   IngestFormat format,
                                                   const IngestOptions& opt);

/// Convenience batch wrapper: ingest `path` into a ConnTrace sorted by
/// start time, ready for poisson_report / find_ftp_bursts. `stats_out`,
/// when non-null, receives the emission-pass ledger.
trace::ConnTrace reconstruct_conn_trace(const std::string& path,
                                        IngestFormat format,
                                        const IngestOptions& opt,
                                        IngestStats* stats_out = nullptr);

}  // namespace wan::ingest
