// Shared pcap parsing primitives: the global-header fields, the
// endian helpers, and the frame/IP/transport decode that turns one
// captured record into a RawPacket. Both pcap readers — the buffered
// std::ifstream PcapReader and the zero-copy MmapPcapReader — call
// these same functions on the same bytes, which is what makes their
// record streams and error ledgers identical by construction rather
// than by parallel maintenance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/raw_packet.hpp"

namespace wan::ingest {

/// Upper bound on a record's captured length. Real snap lengths top out
/// at 256 KiB; a length field above this is corruption, and because a
/// pcap stream has no resync marker the reader stops at that point.
inline constexpr std::uint32_t kMaxCaptureBytes = 1u << 20;

// Supported link-layer types (the global header's last field).
inline constexpr std::uint32_t kLinkLoop = 0;    ///< BSD loopback
inline constexpr std::uint32_t kLinkEther = 1;   ///< Ethernet
inline constexpr std::uint32_t kLinkRawOld = 12; ///< raw IP (older BSDs)
inline constexpr std::uint32_t kLinkRaw = 101;   ///< raw IP

inline std::uint32_t load_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

inline std::uint16_t load_be16(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t load_be32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// Decoded 24-byte global header. Default state is "unusable" — ok only
/// turns true when the magic, version and link type all check out.
struct PcapHeader {
  bool ok = false;
  bool swap = false;       ///< header fields are opposite-endian
  double tick = 1e-6;      ///< 1e-6 (usec magic) or 1e-9 (nsec magic)
  std::uint32_t linktype = 1;

  std::uint32_t u32(const unsigned char* p) const {
    const std::uint32_t v = load_le32(p);
    return swap ? bswap32(v) : v;
  }
  std::uint16_t u16(const unsigned char* p) const {
    const std::uint16_t v =
        static_cast<std::uint16_t>(p[0] | (static_cast<unsigned>(p[1]) << 8));
    return swap ? static_cast<std::uint16_t>((v >> 8) | (v << 8)) : v;
  }
};

/// Parses the 24-byte global header at `h` (len bytes available).
/// Defects land in the ledger through the report() choke point — a
/// short header, a bad magic, an unsupported version or link type each
/// count one bad_headers and leave ok == false.
PcapHeader parse_pcap_header(const unsigned char* h, std::size_t len,
                             IngestStats& stats, ParseMode mode,
                             const std::string& path);

/// Decodes one captured frame (`data`, `len` bytes, already bounded by
/// incl_len) into `out` per the header's link type. Returns true when
/// the frame yielded an IPv4 TCP/UDP packet; otherwise the reason is
/// counted (skipped_frames / short_captures / unknown_transports /
/// bad_headers) and false comes back. Does not touch out.time.
bool decode_pcap_frame(const PcapHeader& header, const unsigned char* data,
                       std::size_t len, RawPacket& out, IngestStats& stats,
                       ParseMode mode, const std::string& path);

/// The frame decode, inline. decode_pcap_frame is a one-line wrapper
/// around this (see pcap_decode.cpp), so there is still exactly one
/// implementation; the mmap reader's batch loop calls this directly to
/// let the whole per-record decode inline into its hot loop.
inline bool decode_pcap_frame_inline(const PcapHeader& header,
                                     const unsigned char* data,
                                     std::size_t len, RawPacket& out,
                                     IngestStats& stats, ParseMode mode,
                                     const std::string& path) {
  std::size_t off = 0;
  switch (header.linktype) {
    case kLinkEther: {
      if (len < 14) {
        ++stats.short_captures;
        return false;
      }
      std::uint16_t ethertype = load_be16(data + 12);
      off = 14;
      // 802.1Q / 802.1ad VLAN tags: each inserts 4 bytes (TCI + the
      // real ethertype) after the MACs. Stacked tags (QinQ) nest at
      // most a handful deep; 4 covers every capture seen in the wild
      // and bounds the loop against a crafted tag chain.
      int tags = 0;
      for (; (ethertype == 0x8100 || ethertype == 0x88A8) && tags < 4;
           ++tags) {
        if (len < off + 4) {
          ++stats.short_captures;
          return false;
        }
        ethertype = load_be16(data + off + 2);
        off += 4;
      }
      if (tags > 0) ++stats.vlan_frames;  // one tagged frame, however deep
      if (ethertype != 0x0800) {  // not IPv4
        ++stats.skipped_frames;
        return false;
      }
      break;
    }
    case kLinkLoop: {
      if (len < 4) {
        ++stats.short_captures;
        return false;
      }
      // The 4-byte family is written in the *capturing* host's byte
      // order; AF_INET == 2 in either reading means IPv4.
      const std::uint32_t fam_le = load_le32(data);
      const std::uint32_t fam_be = load_be32(data);
      if (fam_le != 2 && fam_be != 2) {
        ++stats.skipped_frames;
        return false;
      }
      off = 4;
      break;
    }
    case kLinkRaw:
    case kLinkRawOld:
      off = 0;
      break;
    default:
      ++stats.skipped_frames;  // unreachable: header parse validates
      return false;
  }

  const unsigned char* p = data + off;
  len -= off;
  if (len < 20) {
    ++stats.short_captures;
    return false;
  }
  const unsigned version = p[0] >> 4;
  if (version != 4) {
    ++stats.skipped_frames;
    return false;
  }
  const std::size_t ihl = static_cast<std::size_t>(p[0] & 0x0F) * 4;
  const std::uint16_t total_len = load_be16(p + 2);
  if (ihl < 20 || total_len < ihl) {
    report(stats, &IngestStats::bad_headers, mode,
           "IPv4 header with impossible lengths: " + path);
    return false;
  }
  const std::uint16_t frag = load_be16(p + 6);
  if ((frag & 0x1FFF) != 0) {  // non-first fragment: no transport header
    ++stats.skipped_frames;
    return false;
  }
  if (len < ihl) {
    ++stats.short_captures;
    return false;
  }

  out.src_ip = load_be32(p + 12);
  out.dst_ip = load_be32(p + 16);
  out.multicast = (out.dst_ip >> 28) == 0xE;

  const unsigned char* tp = p + ihl;
  const std::size_t tlen = len - ihl;
  switch (p[9]) {
    case 6: {  // TCP
      // Ports, data offset and flags live in the first 14 bytes.
      if (tlen < 14) {
        ++stats.short_captures;
        return false;
      }
      out.tcp = true;
      out.src_port = load_be16(tp);
      out.dst_port = load_be16(tp + 2);
      const std::size_t doff = static_cast<std::size_t>(tp[12] >> 4) * 4;
      out.tcp_flags = tp[13];
      if (doff < 20 || total_len < ihl + doff) {
        report(stats, &IngestStats::bad_headers, mode,
               "TCP header with impossible data offset: " + path);
        return false;
      }
      out.payload_bytes = static_cast<std::uint32_t>(total_len - ihl - doff);
      return true;
    }
    case 17: {  // UDP
      if (tlen < 8) {
        ++stats.short_captures;
        return false;
      }
      out.tcp = false;
      out.tcp_flags = 0;
      out.src_port = load_be16(tp);
      out.dst_port = load_be16(tp + 2);
      const std::uint16_t udp_len = load_be16(tp + 4);
      if (udp_len < 8) {
        report(stats, &IngestStats::bad_headers, mode,
               "UDP header with impossible length: " + path);
        return false;
      }
      out.payload_bytes = static_cast<std::uint32_t>(udp_len - 8);
      return true;
    }
    default:
      ++stats.unknown_transports;
      return false;
  }
}

}  // namespace wan::ingest
