// Single-pass speculative analysis: the zero-copy ingest front door.
//
// The streaming pipeline's contract forces every capture source through
// two full decode passes — analyze_columns reads info() (the trace's
// time range) before the first chunk flows, so the constructor prescans
// the whole file just to learn t_begin/t_end. But for a capture in time
// order — the overwhelmingly common case, and one the reader already
// detects exactly (its out_of_order ledger row) — the range is free:
// t_begin is the first packet's timestamp and t_end is the emission
// watermark plus one tick. analyze_pcap_onepass exploits that:
//
//   1. Open the source with Prescan::kDeferred (no prescan pass).
//   2. Stream it through the same filter stack analyze_columns builds,
//      binning counts into a SpeculativeBinCounts anchored at the first
//      packet's time — the same t0, bin width and quotient arithmetic
//      the fixed-grid accumulator would use.
//   3. At EOF, check the speculation: no out-of-order packet (so the
//      first packet really was the minimum), a representable grid edge,
//      and a grown bin vector no longer than the fixed grid. All good —
//      finish the result right there, one decode pass total.
//   4. Any check fails — fall back: rewind, run the prescan the
//      constructor skipped, and delegate to analyze_columns. The
//      fallback costs one extra pass over the rare capture that needs
//      it; it never changes a byte of the result.
//
// Either way the returned PipelineResult is bit-identical to
// analyze_columns over an eagerly-prescanned source (the `ingest`
// tests pin both branches). This lives in src/ingest, not src/stream:
// the speculation needs the concrete PcapColumnSource (its deferred
// mode and ordering watermark), and ingest already layers above stream.
#pragma once

#include "src/ingest/sources.hpp"
#include "src/stream/pipeline.hpp"

namespace wan::ingest {

/// Analyzes `source` (constructed with Prescan::kDeferred) in a single
/// decode pass when the capture allows it, falling back to the
/// two-pass analyze_columns path when it does not. Also accepts an
/// eager source, which just delegates to analyze_columns. Throws
/// std::invalid_argument ("series too short") exactly when the eager
/// path would, though at end of stream rather than up front.
stream::PipelineResult analyze_pcap_onepass(
    PcapColumnSource& source, const stream::PipelineOptions& options = {});

}  // namespace wan::ingest
