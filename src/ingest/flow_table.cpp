#include "src/ingest/flow_table.hpp"

#include <algorithm>

#include "src/ingest/classify.hpp"

namespace wan::ingest {

namespace {

std::uint64_t host_pair_key(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = a < b ? a : b;
  const std::uint32_t hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

FlowTable::FlowTable(FlowTableConfig config)
    : config_(config), buckets_(kInitialBuckets) {}

std::uint32_t FlowTable::host_id(std::uint32_t ip) {
  const auto [it, inserted] =
      hosts_.emplace(ip, static_cast<std::uint32_t>(hosts_.size() + 1));
  (void)inserted;
  return it->second;
}

// --------------------------------------------------------------- buckets

void FlowTable::insert_bucket(std::uint64_t hash, std::uint32_t slot) {
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = hash & mask;
  while (buckets_[i].slot != kNil) i = (i + 1) & mask;
  buckets_[i].hash = hash;
  buckets_[i].slot = slot;
}

void FlowTable::erase_bucket_of(std::uint32_t slot) {
  const std::size_t mask = buckets_.size() - 1;
  std::size_t hole = slots_[slot].hash & mask;
  while (buckets_[hole].slot != slot) hole = (hole + 1) & mask;

  // Backward-shift deletion: pull every displaced element of the probe
  // chain into the hole so lookups never need tombstones. An element at
  // j may move into the hole iff the hole lies on its probe path, i.e.
  // between its ideal cell and j (cyclically).
  std::size_t j = hole;
  while (true) {
    j = (j + 1) & mask;
    if (buckets_[j].slot == kNil) break;
    const std::size_t ideal = buckets_[j].hash & mask;
    if (((j - ideal) & mask) >= ((j - hole) & mask)) {
      buckets_[hole] = buckets_[j];
      hole = j;
    }
  }
  buckets_[hole].slot = kNil;
}

void FlowTable::grow() {
  buckets_.assign(buckets_.size() * 2, Bucket{});
  // Reinsert every live flow; the LRU chain enumerates exactly those.
  // Linear probing has no insertion-order dependence that any lookup
  // can observe, so rebuild order does not affect behaviour.
  for (std::uint32_t s = lru_head_; s != kNil; s = links_[s].next)
    insert_bucket(slots_[s].hash, s);
}

// ------------------------------------------------------------ flow logic

std::uint32_t FlowTable::open_flow(std::uint64_t hash, std::uint32_t ip_a,
                                   std::uint32_t ip_b, std::uint16_t port_a,
                                   std::uint16_t port_b,
                                   const RawPacket& pkt) {
  if ((live_ + 1) * 10 > buckets_.size() * 7) grow();

  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    slots_[s] = Flow{};
    links_[s] = Link{};
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    links_.emplace_back();
  }
  Flow& flow = slots_[s];
  flow.ip_a = ip_a;
  flow.ip_b = ip_b;
  flow.port_a = port_a;
  flow.port_b = port_b;
  flow.tcp = pkt.tcp;
  flow.hash = hash;

  flow.conn_id = next_conn_id_++;
  // A SYN+ACK means we caught the responder's half of the handshake
  // first: the originator is the other endpoint. Any other first packet
  // (plain SYN included) marks its sender as originator.
  const bool syn = (pkt.tcp_flags & kTcpSyn) != 0;
  const bool ack = (pkt.tcp_flags & kTcpAck) != 0;
  const bool reversed = pkt.tcp && syn && ack;
  flow.orig_ip = reversed ? pkt.dst_ip : pkt.src_ip;
  flow.orig_port = reversed ? pkt.dst_port : pkt.src_port;
  flow.resp_ip = reversed ? pkt.src_ip : pkt.dst_ip;
  flow.resp_port = reversed ? pkt.src_port : pkt.dst_port;
  flow.first = flow.last = pkt.time;
  flow.protocol = pkt.tcp ? classify_tcp(flow.resp_port, flow.orig_port)
                          : classify_udp(flow.resp_port, flow.orig_port,
                                         pkt.multicast);

  // Host ids are assigned in flow-open order (originator before
  // responder), so a reset + re-ingest reproduces identical numbering.
  host_id(flow.orig_ip);
  host_id(flow.resp_ip);

  const std::uint64_t pair = host_pair_key(flow.orig_ip, flow.resp_ip);
  if (flow.protocol == trace::Protocol::kFtpCtrl) {
    ftp_sessions_[pair] = flow.conn_id;
  } else if (flow.protocol == trace::Protocol::kFtpData) {
    const auto it = ftp_sessions_.find(pair);
    flow.session_id = it != ftp_sessions_.end() ? it->second : 0;
  }

  insert_bucket(hash, s);
  lru_push_back(s);
  ++live_;
  return s;
}

void FlowTable::close_flow(std::uint32_t slot) {
  Flow& flow = slots_[slot];

  if (config_.collect_connections) {
    trace::ConnRecord rec;
    rec.start = flow.first;
    rec.duration = flow.last - flow.first;
    rec.protocol = flow.protocol;
    rec.src_host = host_id(flow.orig_ip);
    rec.dst_host = host_id(flow.resp_ip);
    rec.bytes_orig = flow.bytes_orig;
    rec.bytes_resp = flow.bytes_resp;
    rec.session_id = flow.session_id;
    closed_.push_back(rec);
  }

  if (flow.protocol == trace::Protocol::kFtpCtrl) {
    const std::uint64_t pair = host_pair_key(flow.orig_ip, flow.resp_ip);
    const auto sess = ftp_sessions_.find(pair);
    if (sess != ftp_sessions_.end() && sess->second == flow.conn_id)
      ftp_sessions_.erase(sess);
  }

  erase_bucket_of(slot);
  lru_unlink(slot);
  free_.push_back(slot);
  --live_;
}

void FlowTable::evict_idle() {
  while (lru_head_ != kNil) {
    if (clock_ - slots_[lru_head_].last <= config_.idle_timeout) break;
    close_flow(lru_head_);
  }
}

void FlowTable::flush() {
  while (lru_head_ != kNil) close_flow(lru_head_);
}

void FlowTable::take_closed(std::vector<trace::ConnRecord>& out) {
  out.insert(out.end(), closed_.begin(), closed_.end());
  closed_.clear();
}

void FlowTable::clear() {
  buckets_.assign(kInitialBuckets, Bucket{});
  slots_.clear();
  links_.clear();
  free_.clear();
  live_ = 0;
  lru_head_ = lru_tail_ = kNil;
  hosts_.clear();
  ftp_sessions_.clear();
  closed_.clear();
  next_conn_id_ = 1;
  clock_ = 0.0;
  any_ = false;
}

}  // namespace wan::ingest
