// Streaming libpcap reader built for adversarial input: the classic
// 24-byte global header in either byte order (magic-based swap
// detection), microsecond and nanosecond timestamp variants, and
// per-record bounds checks so a truncated or corrupt capture degrades
// into ledger entries instead of undefined behaviour.
//
// Supported link layers: Ethernet (DLT 1), raw IP (DLT 12 / 101), and
// the BSD loopback header (DLT 0). Frames that are not first-fragment
// IPv4 TCP/UDP are counted and skipped — the analysis record types only
// model those two transports (src/trace/records.hpp).
//
// Memory is bounded by one record (capped at kMaxCaptureBytes): the
// reader never materializes the file, so week-scale captures ingest
// through the streaming pipeline in chunk-bounded memory.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/raw_packet.hpp"

namespace wan::ingest {

/// Upper bound on a record's captured length. Real snap lengths top out
/// at 256 KiB; a length field above this is corruption, and because a
/// pcap stream has no resync marker the reader stops at that point.
inline constexpr std::uint32_t kMaxCaptureBytes = 1u << 20;

class PcapReader {
 public:
  /// Opens `path` and parses the global header. Strict mode throws
  /// IngestError on a malformed header; lenient mode records it and
  /// yields an exhausted reader (next() == false, no crash).
  /// Throws std::runtime_error in both modes if the file cannot be
  /// opened at all.
  PcapReader(const std::string& path, ParseMode mode);

  /// Decodes the next IPv4 TCP/UDP packet. Returns false when the file
  /// (or, in lenient mode, the parsable prefix of it) is exhausted.
  bool next(RawPacket& out);

  /// Rewinds to the first record and clears the ledger.
  void reset();

  const IngestStats& stats() const { return stats_; }

  /// False when the global header was unusable (lenient mode only —
  /// strict mode throws from the constructor instead).
  bool header_ok() const { return header_ok_; }

  /// Timestamp resolution: 1e-6 (usec magic) or 1e-9 (nsec magic).
  double tick() const { return tick_; }

  /// Link-layer type from the global header (1 Ethernet, 0 loopback,
  /// 12/101 raw IP).
  std::uint32_t linktype() const { return linktype_; }

 private:
  bool read_exact(void* dst, std::size_t n);
  std::uint32_t u32(const unsigned char* p) const;
  std::uint16_t u16(const unsigned char* p) const;
  /// One pcap record; returns false at EOF/fatal, sets *decoded when the
  /// record yielded an analysis packet.
  bool read_record(RawPacket& out, bool* decoded);
  bool decode_frame(const std::vector<unsigned char>& data, RawPacket& out);
  bool decode_ip(const unsigned char* p, std::size_t len, RawPacket& out);

  std::ifstream is_;
  std::string path_;
  ParseMode mode_;
  IngestStats stats_;
  bool swap_ = false;       ///< header fields are opposite-endian
  double tick_ = 1e-6;
  std::uint32_t linktype_ = 1;
  bool header_ok_ = false;
  bool fatal_ = false;      ///< unrecoverable mid-file corruption (lenient)
  double prev_time_ = 0.0;
  bool any_record_ = false;
  std::streampos data_offset_;
  std::vector<unsigned char> buf_;
};

}  // namespace wan::ingest
