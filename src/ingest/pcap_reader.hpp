// Streaming libpcap reader built for adversarial input: the classic
// 24-byte global header in either byte order (magic-based swap
// detection), microsecond and nanosecond timestamp variants, and
// per-record bounds checks so a truncated or corrupt capture degrades
// into ledger entries instead of undefined behaviour.
//
// Supported link layers: Ethernet (DLT 1), raw IP (DLT 12 / 101), and
// the BSD loopback header (DLT 0). Frames that are not first-fragment
// IPv4 TCP/UDP are counted and skipped — the analysis record types only
// model those two transports (src/trace/records.hpp).
//
// End-of-input taxonomy (shared with MmapPcapReader):
//   * the file ends on a record boundary — clean EOF, nothing counted;
//   * the file ends mid-record — truncated_records (a capture cut by a
//     full disk or a killed monitor);
//   * a read fails before EOF — io_errors (the input itself is dying).
//
// Memory is bounded by one record (capped at kMaxCaptureBytes): the
// reader never materializes the file, so week-scale captures ingest
// through the streaming pipeline in chunk-bounded memory.
//
// This is the retained reference implementation; the zero-copy
// mmap-backed reader (src/ingest/mmap_source.hpp) is the default fast
// path and is pinned byte-identical to this one — both call the same
// src/ingest/pcap_decode.hpp routines on the same bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/pcap_decode.hpp"
#include "src/ingest/raw_packet.hpp"

namespace wan::ingest {

class PcapReader {
 public:
  /// Opens `path` and parses the global header. Strict mode throws
  /// IngestError on a malformed header; lenient mode records it and
  /// yields an exhausted reader (next() == false, no crash).
  /// Throws std::runtime_error in both modes if the file cannot be
  /// opened at all.
  PcapReader(const std::string& path, ParseMode mode);

  /// Decodes the next IPv4 TCP/UDP packet. Returns false when the file
  /// (or, in lenient mode, the parsable prefix of it) is exhausted.
  bool next(RawPacket& out);

  /// Rewinds to the first record and clears the ledger.
  void reset();

  const IngestStats& stats() const { return stats_; }

  /// False when the global header was unusable (lenient mode only —
  /// strict mode throws from the constructor instead).
  bool header_ok() const { return header_.ok; }

  /// Timestamp resolution: 1e-6 (usec magic) or 1e-9 (nsec magic).
  double tick() const { return header_.tick; }

  /// Link-layer type from the global header (1 Ethernet, 0 loopback,
  /// 12/101 raw IP).
  std::uint32_t linktype() const { return header_.linktype; }

 private:
  /// One pcap record; returns false at EOF/fatal, sets *decoded when the
  /// record yielded an analysis packet.
  bool read_record(RawPacket& out, bool* decoded);

  std::ifstream is_;
  std::string path_;
  ParseMode mode_;
  IngestStats stats_;
  PcapHeader header_;
  bool fatal_ = false;      ///< unrecoverable mid-file corruption (lenient)
  double prev_time_ = 0.0;
  bool any_record_ = false;
  std::streampos data_offset_;
  std::vector<unsigned char> buf_;
};

}  // namespace wan::ingest
