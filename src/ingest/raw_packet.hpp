// The decoded form every packet-level input format (pcap, lbl-pkt ASCII)
// reduces to before flow reconstruction: one transport-layer datagram
// with addressing, TCP state bits, and payload size. The FlowTable folds
// RawPackets into the repo's ConnRecord / PacketRecord types.
#pragma once

#include <cstdint>

namespace wan::ingest {

// TCP flag bits as they appear in the header's 13th byte.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct RawPacket {
  double time = 0.0;            ///< seconds (absolute capture timestamp)
  std::uint32_t src_ip = 0;     ///< host byte order (or ITA host number)
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  bool tcp = true;              ///< false == UDP
  std::uint8_t tcp_flags = 0;   ///< 0 for UDP and for ASCII formats
  std::uint32_t payload_bytes = 0;  ///< transport payload (0 == pure ack)
  bool multicast = false;       ///< destination is a class-D address
};

}  // namespace wan::ingest
