#include "src/ingest/classify.hpp"

namespace wan::ingest {

namespace {

// Well-known server ports of the paper's protocol families (Section III
// names the TCP services; DNS appears in the link-level traces).
trace::Protocol tcp_port_protocol(std::uint16_t port) noexcept {
  switch (port) {
    case 23: return trace::Protocol::kTelnet;
    case 513: return trace::Protocol::kRlogin;
    case 21: return trace::Protocol::kFtpCtrl;
    case 20: return trace::Protocol::kFtpData;
    case 25: return trace::Protocol::kSmtp;
    case 119: return trace::Protocol::kNntp;
    case 80:
    case 8080: return trace::Protocol::kWww;
    case 53: return trace::Protocol::kDns;
    default:
      if (port >= 6000 && port <= 6063) return trace::Protocol::kX11;
      return trace::Protocol::kOther;
  }
}

}  // namespace

trace::Protocol classify_tcp(std::uint16_t responder_port,
                             std::uint16_t originator_port) noexcept {
  const trace::Protocol by_resp = tcp_port_protocol(responder_port);
  if (by_resp != trace::Protocol::kOther) return by_resp;
  // Active-mode FTPDATA (and rlogin's privileged client port) is keyed
  // by the originator side.
  const trace::Protocol by_orig = tcp_port_protocol(originator_port);
  if (by_orig == trace::Protocol::kFtpData) return by_orig;
  return trace::Protocol::kOther;
}

trace::Protocol classify_udp(std::uint16_t responder_port,
                             std::uint16_t originator_port,
                             bool multicast_dst) noexcept {
  if (multicast_dst) return trace::Protocol::kMbone;
  if (responder_port == 53 || originator_port == 53)
    return trace::Protocol::kDns;
  return trace::Protocol::kOther;
}

std::optional<trace::Protocol> protocol_from_service(
    std::string_view name) noexcept {
  // ITA connection logs use lowercase /etc/services-style names.
  if (name == "telnet") return trace::Protocol::kTelnet;
  if (name == "rlogin" || name == "login") return trace::Protocol::kRlogin;
  if (name == "ftp") return trace::Protocol::kFtpCtrl;
  if (name == "ftp-data" || name == "ftpdata")
    return trace::Protocol::kFtpData;
  if (name == "smtp") return trace::Protocol::kSmtp;
  if (name == "nntp") return trace::Protocol::kNntp;
  if (name == "www" || name == "http") return trace::Protocol::kWww;
  if (name == "x11" || name == "X") return trace::Protocol::kX11;
  if (name == "domain" || name == "dns") return trace::Protocol::kDns;
  if (name == "mbone") return trace::Protocol::kMbone;
  if (name == "other") return trace::Protocol::kOther;
  return trace::protocol_from_string(name);
}

}  // namespace wan::ingest
