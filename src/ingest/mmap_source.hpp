// Zero-copy pcap ingestion: the capture is mapped into the address
// space once and every record — header and frame bytes — is parsed in
// place. No per-record read() syscalls, no record buffer, no copy
// between the page cache and the parser; the kernel streams pages in
// under MADV_SEQUENTIAL while the decode loop walks pointers.
//
// Two layers:
//
//   * ByteSource — a minimal forward cursor over a byte stream:
//     ensure(want) returns a pointer to the next `want` bytes (fewer
//     near end of input) without consuming, advance(n) consumes.
//     MmapByteSource implements it as pointer arithmetic over the
//     mapping; BufferedByteSource is the fallback for inputs that
//     cannot be mapped (pipes, stdin, odd filesystems), keeping a
//     sliding buffer so memory stays bounded by one record either way.
//     open_byte_source() picks: regular mappable file -> mmap,
//     anything else -> buffered.
//
//   * MmapPcapReader — PcapReader's contract (same records, same
//     ledger, same strict/lenient semantics; pinned byte-identical by
//     the `ingest`-labeled tests) on top of a ByteSource, plus
//     next_batch() which decodes a whole chunk of records per call so
//     the hot loop has no per-record virtual dispatch. Both readers
//     call the shared src/ingest/pcap_decode.hpp routines, so they
//     cannot drift apart in what they accept.
//
// Mapping lifetime: the mapping lives exactly as long as the reader
// (sources keep their reader for their own lifetime), and RawPackets
// copy every field out of the mapped bytes — nothing downstream holds
// a pointer into the file, so source/reset/destruction ordering cannot
// dangle. See DESIGN.md §14.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ingest/ingest_stats.hpp"
#include "src/ingest/pcap_decode.hpp"
#include "src/ingest/raw_packet.hpp"

namespace wan::ingest {

/// Forward cursor over a byte stream. ensure() never consumes —
/// repeated calls return the same bytes until advance() moves past
/// them. Pointers returned by ensure() are invalidated by the next
/// ensure()/advance()/rewind() call (the mmap implementation keeps them
/// stable for its lifetime, but callers must not rely on that).
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Pointer to the next min(want, remaining) bytes; *avail receives
  /// that count (0 at end of input, pointer then unspecified).
  virtual const unsigned char* ensure(std::size_t want,
                                      std::size_t* avail) = 0;

  /// Consumes n bytes. n must not exceed the last ensure()'s *avail.
  virtual void advance(std::size_t n) = 0;

  /// True when the end of the underlying input has been reached (i.e.
  /// a short ensure() means truncation, not a pending read error).
  virtual bool at_input_end() const = 0;

  /// Back to byte 0. Throws std::runtime_error if the input cannot be
  /// repositioned (pipes, stdin).
  virtual void rewind() = 0;
};

/// The whole file mapped read-only; cursor = pointer arithmetic.
/// Consumed pages are released back to the kernel (MADV_DONTNEED) every
/// kDropWindow bytes, so resident memory stays bounded by the window
/// plus readahead — not the capture length. A released page refaults
/// from the page cache if revisited (rewind), so the drop is purely a
/// residency hint, never a correctness concern on the immutable file.
class MmapByteSource final : public ByteSource {
 public:
  /// Throws std::runtime_error when the file cannot be opened, is not a
  /// regular file, or the mapping fails — callers that want the
  /// fallback instead use open_byte_source().
  explicit MmapByteSource(const std::string& path);
  ~MmapByteSource() override;

  MmapByteSource(const MmapByteSource&) = delete;
  MmapByteSource& operator=(const MmapByteSource&) = delete;

  const unsigned char* ensure(std::size_t want, std::size_t* avail) override;
  void advance(std::size_t n) override {
    pos_ += n;
    if (pos_ - drop_mark_ >= kDropWindow) drop_behind();
  }
  bool at_input_end() const override { return true; }  // all bytes mapped
  void rewind() override {
    pos_ = 0;
    drop_mark_ = 0;
  }

  std::size_t size() const { return size_; }
  /// The mapping itself, for the reader's devirtualized batch loop.
  const unsigned char* data() const { return base_; }
  std::size_t pos() const { return pos_; }

  /// Page-drop cadence; the batch walk syncs its local cursor this
  /// often so residency stays bounded even within one long walk.
  static constexpr std::size_t kDropWindow = std::size_t{1} << 22;  // 4 MiB

 private:

  void drop_behind();

  const unsigned char* base_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::size_t drop_mark_ = 0;  ///< bytes before this are released
};

/// Buffered-read fallback: a sliding window over a file descriptor, for
/// inputs mmap cannot serve. Reads in large blocks; the partial record
/// at the window's tail slides to the front before each refill, so
/// memory stays bounded by max(block, one record), never by the input.
class BufferedByteSource final : public ByteSource {
 public:
  explicit BufferedByteSource(const std::string& path);

  /// Adopts an already-open descriptor (closed on destruction). `name`
  /// appears in error messages in place of a path. This is how the
  /// stdin spool and the monitor daemon's pipe source reuse the
  /// sliding-buffer contract on descriptors that have no path.
  BufferedByteSource(int fd, std::string name);

  ~BufferedByteSource() override;

  BufferedByteSource(const BufferedByteSource&) = delete;
  BufferedByteSource& operator=(const BufferedByteSource&) = delete;

  const unsigned char* ensure(std::size_t want, std::size_t* avail) override;
  void advance(std::size_t n) override { pos_ += n; }
  bool at_input_end() const override { return eof_ && !read_error_; }
  void rewind() override;

  /// A read() failed with an error (not EOF). The reader above maps
  /// this to the io_errors ledger row instead of truncated_records.
  bool read_error() const { return read_error_; }

 private:
  void refill(std::size_t want);

  int fd_ = -1;
  std::string path_;
  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;   ///< cursor within buf_
  std::size_t end_ = 0;   ///< valid bytes in buf_
  bool eof_ = false;
  bool read_error_ = false;
};

/// mmap when the path is a regular mappable file, buffered otherwise.
/// The path "-" means standard input: the stream is spooled once into
/// an unlinked temporary file (bounded by disk, not memory) and served
/// through BufferedByteSource, so the two-pass sources' prescan +
/// rewind contract holds even though a pipe cannot seek. Every pcap
/// reader and source therefore accepts "-" transparently.
std::unique_ptr<ByteSource> open_byte_source(const std::string& path);

/// Drains `fd` to EOF into an unlinked temp file and returns a
/// rewindable BufferedByteSource over it — the "-" implementation,
/// exposed so tests can feed a pipe directly. Throws std::runtime_error
/// when the spool file cannot be created or a read/write fails.
std::unique_ptr<ByteSource> spooled_byte_source(int fd,
                                                const std::string& name);

/// PcapReader's contract over a ByteSource — the zero-copy fast path.
class MmapPcapReader {
 public:
  /// Opens `path` via open_byte_source (mmap with buffered fallback)
  /// and parses the global header; same strict/lenient semantics as
  /// PcapReader's constructor.
  MmapPcapReader(const std::string& path, ParseMode mode);

  /// Adopts an explicit byte source (tests use this to force the
  /// buffered fallback onto a mappable file).
  MmapPcapReader(std::unique_ptr<ByteSource> source, std::string name,
                 ParseMode mode);

  /// Decodes the next IPv4 TCP/UDP packet; PcapReader::next verbatim.
  bool next(RawPacket& out);

  /// Appends decoded packets to `out` until it holds `max` packets or
  /// input is exhausted. Returns the number appended. Equivalent to
  /// calling next() in a loop, minus the per-record call overhead; the
  /// bulk sources drain through this.
  std::size_t next_batch(std::vector<RawPacket>& out, std::size_t max);

  /// Prescan support: decodes every remaining record — same decode
  /// calls, same ledger, same strict-mode behavior as next()/next_batch
  /// — but folds only the decoded packets' min/max time instead of
  /// storing them. `*any` is false when nothing decoded.
  void scan_times(bool* any, double* lo, double* hi);

  /// Streams up to `max` decoded packets into `sink(const RawPacket&)`
  /// without materializing them anywhere — the fused ingest path hands
  /// each packet straight from the mapping to the flow table. Same
  /// records, same ledger as next(); next_batch and scan_times are both
  /// thin wrappers over this.
  template <typename Sink>
  std::size_t fold_packets(std::size_t max, Sink&& sink) {
    if (!header_.ok || fatal_) return 0;
    if (mapped_ != nullptr) return walk_mapped(max, sink);
    std::size_t appended = 0;
    RawPacket pkt;
    while (appended < max && next(pkt)) {
      sink(pkt);
      ++appended;
    }
    return appended;
  }

  /// Rewinds to the first record and clears the ledger.
  void reset();

  const IngestStats& stats() const { return stats_; }
  bool header_ok() const { return header_.ok; }
  double tick() const { return header_.tick; }
  std::uint32_t linktype() const { return header_.linktype; }

  /// Whether any packet has decoded since open/reset, and the largest
  /// timestamp among them (the ordering watermark — it never moves
  /// backwards). After a full drain these are exactly the prescan's
  /// "any" and "hi"; the speculative single-pass analysis reads them at
  /// EOF instead of paying a separate scan for the time range.
  bool saw_packet() const { return any_record_; }
  double max_time_seen() const { return prev_time_; }

 private:
  bool read_record(RawPacket& out, bool* decoded);
  template <typename Emit>
  std::size_t walk_mapped(std::size_t max_out, Emit&& emit);
  void report_short_tail(const char* what_eof, const char* what_err);

  std::unique_ptr<ByteSource> source_;
  MmapByteSource* mapped_ = nullptr;  ///< source_ downcast, batch fast path
  std::string path_;
  ParseMode mode_;
  IngestStats stats_;
  PcapHeader header_;
  bool fatal_ = false;
  double prev_time_ = 0.0;
  bool any_record_ = false;
};

/// The devirtualized hot loop: when the source is the mapping itself,
/// every regular record parses straight off a local cursor with no
/// virtual ensure()/advance() round trips and no per-record ledger
/// stores (bytes/records accumulate in registers, flushed on every
/// exit path — including strict-mode throws — by the sync guard).
/// Irregular records — short tail, oversized length — sync and drop to
/// read_record(), whose ledger handling is the single source of truth
/// for those paths; everything this loop does inline (byte accounting,
/// timestamp checks, decode, ooo bookkeeping) mirrors read_record
/// statement for statement, so the two paths stay byte-identical (the
/// `ingest` tests pin them). `emit` receives each decoded packet —
/// next_batch appends to its vector, scan_times folds min/max, the
/// fused column source feeds its flow table — up to `max_out` packets.
template <typename Emit>
std::size_t MmapPcapReader::walk_mapped(std::size_t max_out, Emit&& emit) {
  const unsigned char* const base = mapped_->data();
  const std::size_t size = mapped_->size();
  const double tick = header_.tick;
  // Integer form of read_record's double comparison: every uint32 up to
  // 1e6/1e9 converts to double exactly, so `ts_frac >= frac_limit` and
  // `(double)ts_frac >= (double)frac_limit` accept identical records.
  const std::uint32_t frac_limit = tick == 1e-6 ? 1000000u : 1000000000u;
  std::size_t appended = 0;

  std::size_t pos = mapped_->pos();
  std::size_t synced = pos;  ///< mapped_->pos() mirror, updated on sync
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  // Ordering state mirrored into locals too: `emit` may reach back into
  // the object owning this reader (the fused source's lambda captures
  // it), so without the mirrors the compiler must reload/store the
  // members around every emit call.
  double prev_time = prev_time_;
  bool any_record = any_record_;
  // Flush register state back to the source and ledger on every way out
  // of the loop: normal exit, delegation, or a report() throw in strict
  // mode (the ifstream reader's ledger is already synced when it
  // throws, so ours must be too).
  struct Sync {
    MmapPcapReader* r;
    std::size_t* pos;
    std::uint64_t* bytes;
    std::uint64_t* records;
    double* prev_time;
    bool* any_record;
    ~Sync() {
      // The local cursor can only be ahead of the source (read_record
      // delegation moves the source itself, after which pos re-syncs).
      const std::size_t at = r->mapped_->pos();
      if (*pos > at) r->mapped_->advance(*pos - at);
      r->stats_.bytes += *bytes;
      r->stats_.records += *records;
      r->prev_time_ = *prev_time;
      r->any_record_ = *any_record;
    }
  } sync{this, &pos, &bytes, &records, &prev_time, &any_record};

  RawPacket pkt;
  while (appended < max_out) {
    const std::size_t rem = size > pos ? size - pos : 0;
    if (rem == 0) break;  // clean EOF at a record boundary
    const unsigned char* rh = base + pos;
    std::uint32_t incl_len = 0;
    if (rem >= 16) incl_len = header_.u32(rh + 8);
    if (rem < 16 || incl_len > kMaxCaptureBytes ||
        rem - 16 < incl_len) [[unlikely]] {
      // Truncated tail or oversized record: all terminal. Sync first,
      // then read_record owns the ledger wording and fatal_.
      mapped_->advance(pos - mapped_->pos());
      stats_.bytes += bytes;
      stats_.records += records;
      bytes = records = 0;
      prev_time_ = prev_time;
      any_record_ = any_record;
      bool decoded = false;
      const bool more = read_record(pkt, &decoded);
      pos = synced = mapped_->pos();
      prev_time = prev_time_;
      any_record = any_record_;
      if (!more) break;
      if (decoded) {
        ++stats_.records;
        emit(pkt);
        ++appended;
      }
      continue;
    }

    const std::uint32_t ts_sec = header_.u32(rh);
    const std::uint32_t ts_frac = header_.u32(rh + 4);
    bytes += 16u + incl_len;
    pos += 16u + static_cast<std::size_t>(incl_len);

    if (ts_frac >= frac_limit) [[unlikely]] {
      report(stats_, &IngestStats::bad_headers, mode_,
             "pcap timestamp fraction out of range: " + path_);
      continue;  // lenient: drop this record, keep going
    }
    const double t =
        static_cast<double>(ts_sec) + static_cast<double>(ts_frac) * tick;
    if (!decode_pcap_frame_inline(header_, rh + 16, incl_len, pkt, stats_,
                                  mode_, path_))
      continue;  // counted inside

    pkt.time = t;
    if (any_record && t < prev_time) [[unlikely]] {
      report(stats_, &IngestStats::out_of_order, mode_,
             "pcap timestamp went backwards: " + path_);
    }
    if (!any_record || t > prev_time) prev_time = t;
    any_record = true;
    ++records;
    emit(pkt);
    ++appended;

    // A long walk (scan_times crosses the whole capture in one call)
    // must still drop consumed pages as it goes — sync the source
    // cursor every drop window so residency never grows with the walk
    // length, only with the window.
    if (pos - synced >= MmapByteSource::kDropWindow) {
      mapped_->advance(pos - synced);
      synced = pos;
    }
  }
  return appended;
}

}  // namespace wan::ingest
