// Periodogram estimation — the raw spectral input to Whittle's estimator
// and Beran's goodness-of-fit test (Section VII).
#pragma once

#include <span>
#include <vector>

namespace wan::fft {

/// Result of periodogram(): ordinates I(lambda_j) at the Fourier
/// frequencies lambda_j = 2*pi*j/n, j = 1..floor((n-1)/2).
struct Periodogram {
  std::vector<double> frequency;  ///< lambda_j in (0, pi)
  std::vector<double> ordinate;   ///< I(lambda_j)
};

/// Computes I(lambda_j) = |sum_t (x_t - mean) e^{-i lambda_j t}|^2 / (2 pi n).
/// The mean is removed so the j = 0 ordinate (which would be dominated by
/// the level of the series) is excluded, as is standard. The mean is
/// accumulated in one Welford pass and subtracted while the series is
/// packed into the real-input FFT's half-size workspace — no widened or
/// centered copy of the series is made. An odd-length series is trimmed
/// by one trailing sample so the transform size is always even and rfft
/// never needs its widened odd-length fallback.
Periodogram periodogram(std::span<const double> x);

}  // namespace wan::fft
