// Periodogram estimation — the raw spectral input to Whittle's estimator
// and Beran's goodness-of-fit test (Section VII).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace wan::fft {

/// Result of periodogram(): ordinates I(lambda_j) at the Fourier
/// frequencies lambda_j = 2*pi*j/n, j = 1..floor((n-1)/2).
struct Periodogram {
  std::vector<double> frequency;  ///< lambda_j in (0, pi)
  std::vector<double> ordinate;   ///< I(lambda_j)
};

/// Computes I(lambda_j) = |sum_t (x_t - mean) e^{-i lambda_j t}|^2 / (2 pi n).
/// The mean is removed so the j = 0 ordinate (which would be dominated by
/// the level of the series) is excluded, as is standard. The mean is
/// accumulated in one Welford pass and subtracted while the series is
/// packed into the real-input FFT's half-size workspace — no widened or
/// centered copy of the series is made. An odd-length series is trimmed
/// by one trailing sample so the transform size is always even and rfft
/// never needs its widened odd-length fallback.
Periodogram periodogram(std::span<const double> x);

/// Shares one real FFT across 2x aggregation levels of a series.
///
/// An aggregation-stability sweep (paper Section VII: a self-similar
/// process shows the same H at every aggregation level M) needs the
/// periodogram of aggregate_mean(x, 2^k) for k = 0, 1, 2, ... The naive
/// path re-runs an FFT per level; but block-averaging by 2 is a linear
/// filter-and-decimate, so each halved level's DFT follows from the
/// previous level's in closed form. With w = e^{-2 pi i / n} and X the
/// length-n spectrum, the length-n/2 spectrum of the pairwise means is
///   Y_k = [(X_k + X_{k+n/2}) + w^{-k} (X_k - X_{k+n/2})] / 4,
/// an O(n) pass on the stored half-spectrum (the k+n/2 entries come from
/// the conjugate mirror of real input). The cascade therefore costs one
/// FFT total, with level k ordinates equal in exact arithmetic to
/// periodogram(aggregate_mean(x, 2^k)) — floating point puts them within
/// ~1e-12 relative, and level 0 is bitwise identical to periodogram(x)
/// because the construction replicates its trim / mean-removal / rfft
/// steps exactly.
///
/// Halving stops when the current length is not a multiple of 4: the
/// time-domain path would then trim one sample before its FFT, which has
/// no spectral counterpart. Callers fall back to aggregate_mean there.
class SpectrumCascade {
 public:
  /// One real FFT of the (even-trimmed, mean-removed) series; throws
  /// std::invalid_argument below 4 samples, like periodogram().
  explicit SpectrumCascade(std::span<const double> x);

  /// Series length at the current level (base length / factor()).
  std::size_t length() const { return n_; }

  /// Aggregation block size of the current level relative to the base
  /// series: 1, 2, 4, ... doubling per halve().
  std::size_t factor() const { return factor_; }

  /// True while the next halving is representable: current length a
  /// multiple of 4 (so the halved length stays even) and >= 8 (so the
  /// halved periodogram keeps at least one ordinate).
  bool can_halve() const { return n_ >= 8 && n_ % 4 == 0; }

  /// Descends one aggregation level in O(length()); throws
  /// std::logic_error when !can_halve().
  void halve();

  /// Periodogram of the current level, on the same frequency grid and
  /// normalization as periodogram() of the aggregated series.
  Periodogram current() const;

 private:
  std::vector<std::complex<double>> half_;  ///< mean-removed half-spectrum
  std::size_t n_ = 0;
  std::size_t factor_ = 1;
};

/// Serializable state of an AveragedPeriodogram: per-frequency ordinate
/// sums plus the segment count. Exact-sum doubles, so it round-trips
/// bit-exactly.
struct AveragedPeriodogramSnapshot {
  std::uint64_t segment_length = 0;
  std::uint64_t segments = 0;
  std::vector<double> ordinate_sum;
};

/// Bartlett-style averaged periodogram: push fixed-length segments of a
/// count series and finish() with per-segment periodograms averaged
/// ordinate by ordinate — the mergeable spectral input for sharded
/// Whittle/GPH/Beran estimation. Each segment is centered on its own
/// mean (Welch's segment convention), so a segment's contribution
/// depends only on its own samples; merging two accumulators is then an
/// exact elementwise sum plus a segment-count add, and any merge order
/// over disjoint segment sets reproduces the serial bits.
class AveragedPeriodogram {
 public:
  /// Throws std::invalid_argument unless segment_length >= 4 and even
  /// (periodogram() trims odd lengths, which would silently change the
  /// frequency grid).
  explicit AveragedPeriodogram(std::size_t segment_length);

  /// Accumulates one segment; throws unless x.size() == segment_length().
  void push(std::span<const double> x);

  std::size_t segment_length() const { return segment_length_; }
  std::size_t segments() const { return segments_; }

  /// Elementwise ordinate-sum add; requires equal segment lengths
  /// (throws std::invalid_argument otherwise). Associative up to
  /// floating-point addition order — fix the fold order (shard 0 <- 1
  /// <- 2 ...) for reproducible bits.
  void merge(const AveragedPeriodogram& other);

  AveragedPeriodogramSnapshot snapshot() const;
  static AveragedPeriodogram from_snapshot(
      const AveragedPeriodogramSnapshot& s);

  /// The averaged periodogram on the segment-length frequency grid;
  /// throws std::logic_error before any segment has been pushed.
  Periodogram finish() const;

 private:
  std::size_t segment_length_ = 0;
  std::size_t segments_ = 0;
  std::vector<double> frequency_;
  std::vector<double> ordinate_sum_;
};

}  // namespace wan::fft
