#include "src/fft/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::fft {

bool is_power_of_two(std::size_t n) noexcept {
  return n >= 1 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::span<cd> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n))
    throw std::invalid_argument("fft_pow2: size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies, with per-stage twiddle tables. Each w_len^k comes
  // straight from cos/sin instead of the incremental w *= wlen recurrence,
  // which accumulates O(len) rounding error by the end of a stage; the
  // table is also computed once per stage instead of once per block.
  std::vector<cd> twiddle(n / 2);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double ang =
        (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    for (std::size_t k = 0; k < half; ++k) {
      const double a = ang * static_cast<double>(k);
      twiddle[k] = cd(std::cos(a), std::sin(a));
    }
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cd u = data[i + k];
        const cd v = data[i + k + half] * twiddle[k];
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
  }
}

namespace {

// Bluestein's algorithm: express an arbitrary-length DFT as a
// convolution, evaluated with a power-of-two FFT.
std::vector<cd> bluestein(std::span<const cd> data, bool inverse) {
  const std::size_t n = data.size();
  const std::size_t m = next_power_of_two(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp w[k] = exp(sign * i * pi * k^2 / n).
  std::vector<cd> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(k2) /
                       static_cast<double>(n);
    w[k] = cd(std::cos(ang), std::sin(ang));
  }

  std::vector<cd> a(m, cd(0.0, 0.0));
  std::vector<cd> b(m, cd(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(w[k]);
    b[m - k] = std::conj(w[k]);
  }

  fft_pow2(a, false);
  fft_pow2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, true);
  const double inv_m = 1.0 / static_cast<double>(m);

  std::vector<cd> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * inv_m * w[k];
  return out;
}

}  // namespace

std::vector<cd> fft(std::span<const cd> data) {
  std::vector<cd> out(data.begin(), data.end());
  if (out.empty()) return out;
  if (is_power_of_two(out.size())) {
    fft_pow2(out, false);
    return out;
  }
  return bluestein(data, false);
}

std::vector<cd> ifft(std::span<const cd> data) {
  std::vector<cd> out(data.begin(), data.end());
  if (out.empty()) return out;
  if (is_power_of_two(out.size())) {
    fft_pow2(out, true);
  } else {
    out = bluestein(data, true);
  }
  const double inv_n = 1.0 / static_cast<double>(out.size());
  for (cd& v : out) v *= inv_n;
  return out;
}

std::vector<cd> fft_real(std::span<const double> data) {
  std::vector<cd> cx(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) cx[i] = cd(data[i], 0.0);
  return fft(cx);
}

std::vector<double> circular_autocorrelation(std::span<const double> x) {
  auto spec = fft_real(x);
  std::vector<cd> power(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    power[i] = cd(std::norm(spec[i]), 0.0);
  auto corr = ifft(power);
  std::vector<double> out(corr.size());
  for (std::size_t i = 0; i < corr.size(); ++i) out[i] = corr[i].real();
  return out;
}

}  // namespace wan::fft
