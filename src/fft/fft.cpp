#include "src/fft/fft.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/fft/plan.hpp"

namespace wan::fft {

bool is_power_of_two(std::size_t n) noexcept {
  return n >= 1 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) {
  constexpr std::size_t kMaxPower =
      (std::numeric_limits<std::size_t>::max() >> 1) + 1;  // 2^63 on 64-bit
  if (n > kMaxPower)
    throw std::overflow_error(
        "next_power_of_two: no power of two >= n fits in size_t");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::span<cd> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n))
    throw std::invalid_argument("fft_pow2: size must be a power of two");
  if (n == 1) return;
  const auto plan = plan_for(n);
  if (inverse) {
    plan->inverse(data);
  } else {
    plan->forward(data);
  }
}

namespace {

// Bluestein's algorithm: express an arbitrary-length DFT as a
// convolution, evaluated with a power-of-two FFT. All three inner
// transforms have the same size m, so one cached plan serves them all —
// the twiddle/bit-reversal tables are derived (at most) once per m, not
// three times per call.
std::vector<cd> bluestein(std::span<const cd> data, bool inverse) {
  const std::size_t n = data.size();
  const std::size_t m = next_power_of_two(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;
  const auto plan = plan_for(m);

  // Chirp w[k] = exp(sign * i * pi * k^2 / n).
  std::vector<cd> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(k2) /
                       static_cast<double>(n);
    w[k] = cd(std::cos(ang), std::sin(ang));
  }

  std::vector<cd> a(m, cd(0.0, 0.0));
  std::vector<cd> b(m, cd(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(w[k]);
    b[m - k] = std::conj(w[k]);
  }

  plan->forward(a);
  plan->forward(b);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  plan->inverse(a);
  const double inv_m = 1.0 / static_cast<double>(m);

  std::vector<cd> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * inv_m * w[k];
  return out;
}

}  // namespace

std::vector<cd> fft(std::span<const cd> data) {
  std::vector<cd> out(data.begin(), data.end());
  if (out.empty()) return out;
  if (is_power_of_two(out.size())) {
    fft_pow2(out, false);
    return out;
  }
  return bluestein(data, false);
}

std::vector<cd> ifft(std::span<const cd> data) {
  std::vector<cd> out(data.begin(), data.end());
  if (out.empty()) return out;
  if (is_power_of_two(out.size())) {
    fft_pow2(out, true);
  } else {
    out = bluestein(data, true);
  }
  const double inv_n = 1.0 / static_cast<double>(out.size());
  for (cd& v : out) v *= inv_n;
  return out;
}

std::vector<cd> rfft(std::span<const double> data, double subtract) {
  const std::size_t n = data.size();
  if (n == 0) return {};
  if (n == 1) return {cd(data[0] - subtract, 0.0)};
  if (n % 2 == 0) return rfft_plan_for(n)->forward(data, subtract);

  // Odd length: widen (centering in place) and truncate the complex
  // spectrum to the nonnegative frequencies.
  std::vector<cd> cx(n);
  for (std::size_t i = 0; i < n; ++i) cx[i] = cd(data[i] - subtract, 0.0);
  auto full = fft(cx);
  full.resize(n / 2 + 1);
  return full;
}

std::vector<double> irfft(std::span<const cd> half_spectrum, std::size_t n) {
  if (n == 0) return {};
  if (half_spectrum.size() != n / 2 + 1)
    throw std::invalid_argument(
        "irfft: half spectrum must hold floor(n/2) + 1 entries");
  if (n == 1) return {half_spectrum[0].real()};
  if (n % 2 == 0) return rfft_plan_for(n)->inverse(half_spectrum);

  // Odd length: rebuild the full Hermitian spectrum and invert.
  std::vector<cd> full(n);
  full[0] = cd(half_spectrum[0].real(), 0.0);
  for (std::size_t k = 1; k <= n / 2; ++k) {
    full[k] = half_spectrum[k];
    full[n - k] = std::conj(half_spectrum[k]);
  }
  const auto z = ifft(full);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = z[i].real();
  return out;
}

std::vector<cd> fft_real(std::span<const double> data) {
  const std::size_t n = data.size();
  if (n == 0) return {};
  const auto half = rfft(data);
  std::vector<cd> out(n);
  for (std::size_t k = 0; k < half.size(); ++k) out[k] = half[k];
  // Conjugate mirror for the strictly negative frequencies.
  for (std::size_t k = 1; k <= n - half.size(); ++k)
    out[n - k] = std::conj(half[k]);
  return out;
}

std::vector<double> circular_autocorrelation(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  const auto spec = rfft(x);
  std::vector<cd> power(spec.size());
  for (std::size_t k = 0; k < spec.size(); ++k)
    power[k] = cd(std::norm(spec[k]), 0.0);
  return irfft(power, n);
}

}  // namespace wan::fft
