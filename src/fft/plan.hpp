// Planned FFT execution: an FftPlan caches everything about a transform
// size that is pure trigonometry/bookkeeping — the bit-reversal
// permutation and the per-stage twiddle tables — so repeated transforms
// of the same length (Whittle likelihood evaluations, per-block fGn
// synthesis, Bluestein's three same-size inner FFTs) stop recomputing
// cos/sin. Plans are shared through a small thread-safe LRU cache.
//
// Real-input transforms get their own RfftPlan: N reals are packed into
// N/2 complex points, transformed with the (cached) half-size complex
// plan, and unpacked with a cached e^{-2*pi*i*k/N} table — half the
// work and memory of widening the series to complex.
//
// Determinism contract: butterfly stages may run in parallel on the
// src/par pool, but every butterfly writes a disjoint pair of slots and
// performs arithmetic that depends only on the plan tables, so the
// output is bit-identical at any thread count (and identical to the
// serial loop nest the plan replaced).
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace wan::fft {

using cd = std::complex<double>;

/// A reusable radix-2 plan for one power-of-two transform size.
class FftPlan {
 public:
  /// Builds the bit-reversal permutation and per-stage twiddle tables
  /// for size n. Throws std::invalid_argument unless n is a power of
  /// two (n >= 1).
  explicit FftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place unnormalized DFT of exactly size() points.
  void forward(std::span<cd> data) const { transform(data, false); }

  /// In-place unnormalized inverse DFT (divide by size() yourself for
  /// the unitary convention).
  void inverse(std::span<cd> data) const { transform(data, true); }

  /// Twiddle table of the stage with butterfly span `len` (a power of
  /// two in [2, size()]): entries w_len^k = exp(-2*pi*i*k/len) for
  /// k in [0, len/2). Exposed for the rfft unpack path and for tests.
  std::span<const cd> stage_twiddles(std::size_t len) const;

 private:
  void transform(std::span<cd> data, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;  ///< bit-reversed index of each i
  /// Stage tables concatenated smallest stage first; the table for
  /// butterfly span `len` starts at offset len/2 - 1 and holds len/2
  /// entries (total n - 1).
  std::vector<cd> stages_;
};

/// Fetches (or builds and caches) the plan for power-of-two size n.
/// Thread-safe; the cache keeps the most recently used sizes and evicts
/// least-recently-used plans beyond its capacity. Callers keep their
/// shared_ptr, so eviction never invalidates a plan in use.
std::shared_ptr<const FftPlan> plan_for(std::size_t n);

/// A plan for real-input transforms of even length n: the cached
/// half-size complex plan (when n/2 is a power of two) plus the
/// pack/unpack twiddle table exp(-2*pi*i*k/n).
class RfftPlan {
 public:
  /// Throws std::invalid_argument unless n is even and >= 2.
  explicit RfftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Spectrum of the real series (x - subtract) at k = 0..n/2
  /// (n/2 + 1 entries; the remaining half is the conjugate mirror).
  /// `subtract` lets callers center in place while packing, with no
  /// separate centered copy (the periodogram path).
  std::vector<cd> forward(std::span<const double> x,
                          double subtract = 0.0) const;

  /// Inverse of forward(): reconstructs the n real points from the
  /// half spectrum (n/2 + 1 entries), normalized by 1/n.
  std::vector<double> inverse(std::span<const cd> half_spectrum) const;

 private:
  std::size_t n_;  ///< real length (even)
  std::size_t h_;  ///< n / 2, the complex transform size
  std::shared_ptr<const FftPlan> half_plan_;  ///< null when h_ is not 2^k
  std::vector<cd> unpack_;  ///< exp(-2*pi*i*k/n), k = 0..h_
};

/// Fetches (or builds and caches) the real-transform plan for even n.
std::shared_ptr<const RfftPlan> rfft_plan_for(std::size_t n);

/// Cache observability (tests and diagnostics).
struct PlanCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;  ///< currently cached plans
};

PlanCacheStats plan_cache_stats();        ///< complex-plan cache
PlanCacheStats rfft_plan_cache_stats();   ///< real-plan cache

/// Drops all cached plans and zeroes the counters (tests only; safe at
/// any time because callers hold shared_ptrs).
void reset_plan_caches();

}  // namespace wan::fft
