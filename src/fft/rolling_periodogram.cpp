#include "src/fft/rolling_periodogram.hpp"

#include <cmath>
#include <stdexcept>

namespace wan::fft {

SegmentRing::SegmentRing(std::size_t segment_length, std::size_t capacity)
    : segment_length_(segment_length), capacity_(capacity) {
  if (segment_length < 4 || segment_length % 2 != 0)
    throw std::invalid_argument(
        "SegmentRing: segment_length must be even and >= 4");
  if (capacity == 0)
    throw std::invalid_argument("SegmentRing: capacity must be >= 1");
  n_ordinates_ = (segment_length - 1) / 2;
  slots_.assign(capacity_ * n_ordinates_, 0.0);
  frequency_.resize(n_ordinates_);
  for (std::size_t j = 1; j <= n_ordinates_; ++j)
    frequency_[j - 1] = 2.0 * M_PI * static_cast<double>(j) /
                        static_cast<double>(segment_length_);
}

void SegmentRing::push_segment(std::span<const double> x) {
  if (x.size() != segment_length_)
    throw std::invalid_argument("SegmentRing::push_segment: segment size");
  const Periodogram p = periodogram(x);
  double* slot = slots_.data() + head_ * n_ordinates_;
  for (std::size_t i = 0; i < n_ordinates_; ++i) slot[i] = p.ordinate[i];
  head_ = (head_ + 1) % capacity_;
  ++total_;
}

void SegmentRing::push_samples(std::span<const double> xs) {
  std::size_t i = 0;
  while (i < xs.size()) {
    if (pending_.empty() && xs.size() - i >= segment_length_) {
      // Whole segments pass straight through, no staging copy.
      push_segment(xs.subspan(i, segment_length_));
      i += segment_length_;
      continue;
    }
    const std::size_t want = segment_length_ - pending_.size();
    const std::size_t take = std::min(want, xs.size() - i);
    pending_.insert(pending_.end(), xs.begin() + i, xs.begin() + i + take);
    i += take;
    if (pending_.size() == segment_length_) {
      push_segment(pending_);
      pending_.clear();
    }
  }
}

std::size_t SegmentRing::segments() const {
  return total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
}

Periodogram SegmentRing::finish() const {
  const AveragedPeriodogram acc = averaged();
  return acc.finish();
}

AveragedPeriodogram SegmentRing::averaged() const {
  const std::size_t n = segments();
  if (n == 0)
    throw std::logic_error("SegmentRing: no complete segment yet");
  AveragedPeriodogramSnapshot snap;
  snap.segment_length = static_cast<std::uint64_t>(segment_length_);
  snap.segments = static_cast<std::uint64_t>(n);
  snap.ordinate_sum.assign(n_ordinates_, 0.0);
  // Sum resident segments oldest first: when the ring is full the
  // oldest slot is head_ (the next overwrite target), otherwise slot 0.
  // This is the order AveragedPeriodogram::push would have added them
  // in, so the sums are bit-identical to the batch accumulator's.
  const std::size_t start = total_ < capacity_ ? 0 : head_;
  for (std::size_t k = 0; k < n; ++k) {
    const double* slot =
        slots_.data() + ((start + k) % capacity_) * n_ordinates_;
    for (std::size_t i = 0; i < n_ordinates_; ++i)
      snap.ordinate_sum[i] += slot[i];
  }
  return AveragedPeriodogram::from_snapshot(snap);
}

SegmentRingCascade::SegmentRingCascade(std::size_t segment_length,
                                       std::size_t base_capacity,
                                       std::size_t levels) {
  const std::size_t div = std::size_t{1} << levels;
  if (base_capacity % div != 0 || base_capacity / div == 0)
    throw std::invalid_argument(
        "SegmentRingCascade: base_capacity must be a nonzero multiple of "
        "2^levels so every level's ring spans the same window");
  rings_.reserve(levels + 1);
  for (std::size_t l = 0; l <= levels; ++l)
    rings_.emplace_back(segment_length, base_capacity >> l);
  carry_.assign(levels + 1, 0.0);
  has_carry_.assign(levels + 1, false);
}

void SegmentRingCascade::push_samples(std::span<const double> xs) {
  // Level 0 takes the span in one go; deeper levels fold pairs one
  // sample at a time (each level runs at half the previous rate, so
  // the scalar path is not the hot one).
  rings_[0].push_samples(xs);
  for (const double v : xs) {
    double value = v;
    for (std::size_t l = 0; l + 1 < rings_.size(); ++l) {
      if (!has_carry_[l]) {
        carry_[l] = value;
        has_carry_[l] = true;
        break;
      }
      // Same arithmetic as aggregate_mean(., 2): sum then divide.
      value = (carry_[l] + value) / 2.0;
      has_carry_[l] = false;
      rings_[l + 1].push_samples(std::span<const double>(&value, 1));
    }
  }
}

}  // namespace wan::fft
