#include "src/fft/plan.hpp"

#include <cmath>
#include <list>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/fft/fft.hpp"
#include "src/par/parallel.hpp"

namespace wan::fft {

namespace {

// Butterflies (or packed points) per parallel chunk. A fixed constant —
// never derived from the thread count — so the chunk layout, and with it
// the exact arithmetic each chunk performs, is a pure function of the
// transform size. Small transforms fit in one chunk and take a plain
// serial loop with no scheduling overhead.
constexpr std::size_t kButterflyGrain = 1 << 14;

// A tiny thread-safe LRU for plan sharing. Values are built *outside*
// the lock: a build may itself enter parallel regions (or another plan
// cache), and constructing under the mutex could re-enter it through the
// pool's help-while-waiting drain. Losing a build race just means one
// redundant construction; the first inserted plan wins.
template <class Key, class Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  template <class Make>
  std::shared_ptr<const Value> get_or_create(const Key& key,
                                             const Make& make) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto it = index_.find(key); it != index_.end()) {
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return it->second->second;
      }
      ++misses_;
    }
    std::shared_ptr<const Value> built = make();
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = index_.find(key); it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second;
    }
    order_.emplace_front(key, built);
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    return built;
  }

  PlanCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_, order_.size()};
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
    index_.clear();
    hits_ = misses_ = 0;
  }

 private:
  using Entry = std::pair<Key, std::shared_ptr<const Value>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> order_;  ///< front = most recently used
  std::map<Key, typename std::list<Entry>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

LruCache<std::size_t, FftPlan>& plan_cache() {
  static LruCache<std::size_t, FftPlan> cache(16);
  return cache;
}

LruCache<std::size_t, RfftPlan>& rfft_plan_cache() {
  static LruCache<std::size_t, RfftPlan> cache(16);
  return cache;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n))
    throw std::invalid_argument("FftPlan: size must be a power of two");

  bitrev_.resize(n);
  bitrev_[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }

  // Per-stage twiddle tables, concatenated smallest stage first: the
  // stage with span len owns entries [len/2 - 1, len - 1). Each w_len^k
  // comes straight from cos/sin instead of the incremental w *= wlen
  // recurrence, which accumulates O(len) rounding error by the end of a
  // stage.
  if (n >= 2) stages_.resize(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double ang = -2.0 * M_PI / static_cast<double>(len);
    cd* table = stages_.data() + (half - 1);
    for (std::size_t k = 0; k < half; ++k) {
      const double a = ang * static_cast<double>(k);
      table[k] = cd(std::cos(a), std::sin(a));
    }
  }
}

std::span<const cd> FftPlan::stage_twiddles(std::size_t len) const {
  if (len < 2 || len > n_ || !is_power_of_two(len))
    throw std::invalid_argument("FftPlan::stage_twiddles: bad stage");
  const std::size_t half = len / 2;
  return {stages_.data() + (half - 1), half};
}

void FftPlan::transform(std::span<cd> data, bool inverse) const {
  if (data.size() != n_)
    throw std::invalid_argument("FftPlan: data size does not match plan");
  if (n_ == 1) return;

  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  const std::size_t n_butterflies = n_ / 2;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const cd* tw = stages_.data() + (half - 1);

    // One stage = n/2 independent butterflies; butterfly b lives in
    // block b / half at offset b % half and touches only its own two
    // slots, so any chunking computes bit-identical results.
    auto run = [&](std::size_t b, std::size_t e) {
      std::size_t block = b / half;
      std::size_t k = b - block * half;
      std::size_t base = block * len;
      for (std::size_t idx = b; idx < e; ++idx) {
        const cd w = inverse ? std::conj(tw[k]) : tw[k];
        const cd u = data[base + k];
        const cd v = data[base + k + half] * w;
        data[base + k] = u + v;
        data[base + k + half] = u - v;
        if (++k == half) {
          k = 0;
          base += len;
        }
      }
    };

    if (n_butterflies <= kButterflyGrain) {
      run(0, n_butterflies);  // single chunk: skip scheduling entirely
    } else {
      par::parallel_for(0, n_butterflies, kButterflyGrain, run);
    }
  }
}

std::shared_ptr<const FftPlan> plan_for(std::size_t n) {
  if (!is_power_of_two(n))
    throw std::invalid_argument("plan_for: size must be a power of two");
  return plan_cache().get_or_create(
      n, [n] { return std::make_shared<const FftPlan>(n); });
}

RfftPlan::RfftPlan(std::size_t n) : n_(n), h_(n / 2) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("RfftPlan: size must be even and >= 2");
  if (is_power_of_two(h_)) half_plan_ = plan_for(h_);

  unpack_.resize(h_ + 1);
  const double ang = -2.0 * M_PI / static_cast<double>(n_);
  for (std::size_t k = 0; k <= h_; ++k) {
    const double a = ang * static_cast<double>(k);
    unpack_[k] = cd(std::cos(a), std::sin(a));
  }
  // Exact endpoints (sin(-pi) is only ~1e-16 in floating point) keep
  // the DC and Nyquist bins purely real.
  unpack_[0] = cd(1.0, 0.0);
  unpack_[h_] = cd(-1.0, 0.0);
}

std::vector<cd> RfftPlan::forward(std::span<const double> x,
                                  double subtract) const {
  if (x.size() != n_)
    throw std::invalid_argument("RfftPlan: data size does not match plan");

  // Pack pairs of (centered) reals into h complex points. The packing
  // buffer doubles as the transform workspace, so no widened copy of
  // the full series is ever made.
  std::vector<cd> z(h_);
  auto pack = [&](std::size_t b, std::size_t e) {
    for (std::size_t t = b; t < e; ++t)
      z[t] = cd(x[2 * t] - subtract, x[2 * t + 1] - subtract);
  };
  if (h_ <= kButterflyGrain) {
    pack(0, h_);
  } else {
    par::parallel_for(0, h_, kButterflyGrain, pack);
  }

  if (half_plan_) {
    half_plan_->forward(z);
  } else {
    z = fft(z);  // Bluestein for non-power-of-two half sizes
  }

  // Split Z into the spectra of the even and odd subsequences and
  // recombine: X[k] = Xe[k] + w_n^k Xo[k], k = 0..h.
  std::vector<cd> out(h_ + 1);
  auto unpack = [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      const cd zk = z[k == h_ ? 0 : k];
      const cd zc = std::conj(z[(h_ - k) % h_]);
      const cd even = 0.5 * (zk + zc);
      const cd odd = cd(0.0, -0.5) * (zk - zc);
      out[k] = even + unpack_[k] * odd;
    }
  };
  if (h_ + 1 <= kButterflyGrain) {
    unpack(0, h_ + 1);
  } else {
    par::parallel_for(0, h_ + 1, kButterflyGrain, unpack);
  }
  return out;
}

std::vector<double> RfftPlan::inverse(std::span<const cd> half_spectrum) const {
  if (half_spectrum.size() != h_ + 1)
    throw std::invalid_argument(
        "RfftPlan: half spectrum must hold n/2 + 1 entries");

  // Reassemble the packed spectrum: Z[k] = Xe[k] + i Xo[k], with
  // Xe[k] = (X[k] + conj(X[h-k]))/2 and w_n^k Xo[k] = (X[k] -
  // conj(X[h-k]))/2.
  std::vector<cd> z(h_);
  auto repack = [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      const cd xk = half_spectrum[k];
      const cd xc = std::conj(half_spectrum[h_ - k]);
      const cd even = 0.5 * (xk + xc);
      const cd odd = (0.5 * (xk - xc)) * std::conj(unpack_[k]);
      z[k] = even + cd(-odd.imag(), odd.real());  // even + i*odd
    }
  };
  if (h_ <= kButterflyGrain) {
    repack(0, h_);
  } else {
    par::parallel_for(0, h_, kButterflyGrain, repack);
  }

  if (half_plan_) {
    half_plan_->inverse(z);
    const double inv_h = 1.0 / static_cast<double>(h_);
    for (cd& v : z) v *= inv_h;
  } else {
    z = ifft(z);
  }

  std::vector<double> out(n_);
  for (std::size_t t = 0; t < h_; ++t) {
    out[2 * t] = z[t].real();
    out[2 * t + 1] = z[t].imag();
  }
  return out;
}

std::shared_ptr<const RfftPlan> rfft_plan_for(std::size_t n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("rfft_plan_for: size must be even and >= 2");
  return rfft_plan_cache().get_or_create(
      n, [n] { return std::make_shared<const RfftPlan>(n); });
}

PlanCacheStats plan_cache_stats() { return plan_cache().stats(); }

PlanCacheStats rfft_plan_cache_stats() { return rfft_plan_cache().stats(); }

void reset_plan_caches() {
  plan_cache().clear();
  rfft_plan_cache().clear();
}

}  // namespace wan::fft
