// Fast Fourier transform substrate, implemented from scratch:
//  - iterative radix-2 Cooley-Tukey for power-of-two lengths, executed
//    through cached FftPlans (src/fft/plan.hpp) whose butterfly stages
//    can run in parallel with bit-identical results,
//  - Bluestein's chirp-z algorithm for arbitrary lengths (one shared
//    plan for its three same-size inner transforms),
//  - real-input transforms (rfft/irfft) that pack N reals into N/2
//    complex points, halving the work and memory of the complex path,
// plus helpers for real input and circular (auto)correlation. Used by the
// periodogram / Whittle estimator and by Davies-Harte fGn generation.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace wan::fft {

using cd = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n) noexcept;

/// Smallest power of two >= n. Throws std::overflow_error when no such
/// power fits in std::size_t (n > 2^63 on 64-bit targets) instead of
/// the previous behavior of looping forever on shift overflow.
std::size_t next_power_of_two(std::size_t n);

/// In-place radix-2 FFT. data.size() must be a power of two.
/// inverse=true computes the unnormalized inverse transform; divide by N
/// yourself if you need the unitary convention (or use ifft()).
void fft_pow2(std::span<cd> data, bool inverse);

/// FFT of arbitrary length (Bluestein for non powers of two).
std::vector<cd> fft(std::span<const cd> data);

/// Inverse FFT of arbitrary length, normalized by 1/N.
std::vector<cd> ifft(std::span<const cd> data);

/// FFT of real input at the nonnegative frequencies only: returns
/// floor(n/2) + 1 entries X[k], k = 0..floor(n/2); the rest of the
/// spectrum is the conjugate mirror X[n-k] = conj(X[k]). Even lengths
/// take the packed half-size transform (two reals per complex point);
/// odd lengths fall back to the complex transform internally.
/// `subtract` is removed from every sample during packing, so centered
/// spectra (periodogram) need no separate centered copy.
std::vector<cd> rfft(std::span<const double> data, double subtract = 0.0);

/// Inverse of rfft(): reconstructs the n real points from the
/// floor(n/2) + 1 nonnegative-frequency entries. The imaginary parts of
/// half_spectrum[0] (and, for even n, half_spectrum[n/2]) are ignored,
/// as Hermitian symmetry forces them to zero.
std::vector<double> irfft(std::span<const cd> half_spectrum, std::size_t n);

/// FFT of real input; returns the full complex spectrum of length n
/// (computed via rfft plus the conjugate mirror for even n).
std::vector<cd> fft_real(std::span<const double> data);

/// Circular autocorrelation sums via FFT:
///   r[k] = sum_i x[i] * x[(i+k) mod n].
/// Callers that want linear (non-circular) sums should zero-pad first.
/// Runs entirely on the half-spectrum (rfft -> |X|^2 -> irfft).
std::vector<double> circular_autocorrelation(std::span<const double> x);

}  // namespace wan::fft
