// Fast Fourier transform substrate, implemented from scratch:
//  - iterative radix-2 Cooley-Tukey for power-of-two lengths,
//  - Bluestein's chirp-z algorithm for arbitrary lengths,
// plus helpers for real input and circular (auto)correlation. Used by the
// periodogram / Whittle estimator and by Davies-Harte fGn generation.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace wan::fft {

using cd = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n) noexcept;

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n) noexcept;

/// In-place radix-2 FFT. data.size() must be a power of two.
/// inverse=true computes the unnormalized inverse transform; divide by N
/// yourself if you need the unitary convention (or use ifft()).
void fft_pow2(std::span<cd> data, bool inverse);

/// FFT of arbitrary length (Bluestein for non powers of two).
std::vector<cd> fft(std::span<const cd> data);

/// Inverse FFT of arbitrary length, normalized by 1/N.
std::vector<cd> ifft(std::span<const cd> data);

/// FFT of real input; returns the full complex spectrum of length n.
std::vector<cd> fft_real(std::span<const double> data);

/// Circular autocorrelation sums via FFT:
///   r[k] = sum_i x[i] * x[(i+k) mod n].
/// Callers that want linear (non-circular) sums should zero-pad first.
std::vector<double> circular_autocorrelation(std::span<const double> x);

}  // namespace wan::fft
