// Rolling (sliding-window) periodogram estimation: the amortized
// spectral engine behind the windowed analyzer.
//
// The batch AveragedPeriodogram answers "what is the averaged spectrum
// of THIS series"; a monitor needs "what is the averaged spectrum of
// the LAST W samples", re-asked every slide. Recomputing the window
// costs one FFT per segment — O(W log W) per slide. SegmentRing keeps
// the per-segment periodograms in a ring instead: a slide pushes the
// newly completed segment (one O(m log m) FFT through the cached
// RfftPlan) and the ring forgets the oldest segment by overwrite, so
// the per-slide FFT work is a single segment no matter how wide the
// window is. Summation happens at finish() time, oldest segment first
// — the exact floating-point order AveragedPeriodogram::push uses —
// so the rolling window's averaged periodogram is bit-identical to a
// batch AveragedPeriodogram fed the same window, not merely close.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/fft/periodogram.hpp"

namespace wan::fft {

/// Ring of per-segment periodograms over the most recent `capacity`
/// segments of length `segment_length` (Welch's segment convention:
/// each segment centered on its own mean, like AveragedPeriodogram).
///
/// Costs: push_segment is one cached-plan rfft, O(m log m); eviction is
/// a slot overwrite, O(1); finish() sums the resident segments'
/// ordinates, O(capacity * m). A full-window recompute would instead
/// pay O(capacity * m log m) in FFTs alone — the finish() sum is the
/// price of exactness, and it is the cheaper term.
class SegmentRing {
 public:
  /// Throws std::invalid_argument unless segment_length >= 4 and even
  /// (AveragedPeriodogram's constraint — odd lengths would shift the
  /// frequency grid) and capacity >= 1.
  SegmentRing(std::size_t segment_length, std::size_t capacity);

  /// Accumulates one segment, evicting the oldest once the ring is
  /// full; throws unless x.size() == segment_length().
  void push_segment(std::span<const double> x);

  /// Sample-wise feeder: buffers samples and calls push_segment for
  /// every completed segment. pending() tells how many samples sit in
  /// the partial segment.
  void push_samples(std::span<const double> xs);
  std::size_t pending() const { return pending_.size(); }

  std::size_t segment_length() const { return segment_length_; }
  std::size_t capacity() const { return capacity_; }
  /// Segments currently resident (<= capacity()).
  std::size_t segments() const;
  /// Segments ever pushed (resident + evicted).
  std::uint64_t total_segments() const { return total_; }

  /// Averaged periodogram of the resident segments, summed oldest
  /// segment first — bit-identical to AveragedPeriodogram::finish()
  /// over the same segments in the same order. Throws std::logic_error
  /// before the first complete segment.
  Periodogram finish() const;

  /// The resident window as an AveragedPeriodogram — the bridge to the
  /// batch type's snapshot()/merge() contract. The returned
  /// accumulator's state (ordinate sums, segment count) is exactly
  /// what a batch accumulator fed the same window would hold.
  AveragedPeriodogram averaged() const;

 private:
  std::size_t segment_length_ = 0;
  std::size_t capacity_ = 0;
  std::size_t n_ordinates_ = 0;
  std::uint64_t total_ = 0;       ///< segments ever pushed
  std::size_t head_ = 0;          ///< next slot to (over)write
  std::vector<double> slots_;     ///< capacity x n_ordinates, ring order
  std::vector<double> frequency_;
  std::vector<double> pending_;   ///< partial segment from push_samples
};

/// Multiresolution rolling sweep: one SegmentRing per 2x aggregation
/// level, fed by a pairwise-mean cascade — the windowed counterpart of
/// SpectrumCascade for the aggregation-stability sweep (paper Section
/// VII: H should agree across levels for self-similar traffic).
///
/// Level 0 sees the base samples; level l+1 receives (a + b) / 2 for
/// each consecutive level-l pair, which is exactly aggregate_mean(., 2)
/// applied l times (same adds, same divide — bit-equal). Level l's ring
/// holds base_capacity / 2^l segments of the same segment_length, so
/// every level's window spans the same base-sample range. Amortized
/// cost: level l completes a segment every 2^l base segments, so the
/// whole cascade costs < 2 FFTs per base segment regardless of depth.
class SegmentRingCascade {
 public:
  /// levels + 1 rings (level 0 .. levels). Throws std::invalid_argument
  /// unless base_capacity is divisible by 2^levels with a nonzero
  /// quotient (each level's ring must hold a whole number of segments
  /// covering the same window).
  SegmentRingCascade(std::size_t segment_length, std::size_t base_capacity,
                     std::size_t levels);

  void push_samples(std::span<const double> xs);

  std::size_t levels() const { return rings_.size() - 1; }
  const SegmentRing& ring(std::size_t level) const { return rings_[level]; }

 private:
  std::vector<SegmentRing> rings_;
  std::vector<double> carry_;      ///< per-level pending pair member
  std::vector<bool> has_carry_;
};

}  // namespace wan::fft
