#include "src/fft/periodogram.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/fft/fft.hpp"

namespace wan::fft {

Periodogram periodogram(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 4) throw std::invalid_argument("periodogram: series too short");

  const double mean =
      std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = x[i] - mean;

  const auto spec = fft_real(centered);
  const std::size_t m = (n - 1) / 2;
  Periodogram out;
  out.frequency.resize(m);
  out.ordinate.resize(m);
  const double scale = 1.0 / (2.0 * M_PI * static_cast<double>(n));
  for (std::size_t j = 1; j <= m; ++j) {
    out.frequency[j - 1] =
        2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n);
    out.ordinate[j - 1] = std::norm(spec[j]) * scale;
  }
  return out;
}

}  // namespace wan::fft
