#include "src/fft/periodogram.hpp"

#include <cmath>
#include <stdexcept>

#include "src/fft/fft.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::fft {

Periodogram periodogram(std::span<const double> x) {
  if (x.size() < 4)
    throw std::invalid_argument("periodogram: series too short");

  // Force an even transform size by dropping the last sample of an
  // odd-length series. One sample is statistically immaterial for the
  // ordinates, and it keeps rfft on the planned half-size real path
  // (the odd fallback widens to a full complex transform and, for
  // non-power-of-two n, falls through to Bluestein).
  if (x.size() % 2 != 0) x = x.first(x.size() - 1);
  const std::size_t n = x.size();

  // Single-pass Welford mean (header-only MomentAccumulator); the mean
  // is then removed while rfft packs the series into its half-size
  // complex workspace, so no separate centered copy is ever allocated.
  stats::MomentAccumulator acc;
  for (double v : x) acc.push(v);

  const auto spec = rfft(x, acc.mean());
  const std::size_t m = (n - 1) / 2;
  Periodogram out;
  out.frequency.resize(m);
  out.ordinate.resize(m);
  const double scale = 1.0 / (2.0 * M_PI * static_cast<double>(n));
  for (std::size_t j = 1; j <= m; ++j) {
    out.frequency[j - 1] =
        2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n);
    out.ordinate[j - 1] = std::norm(spec[j]) * scale;
  }
  return out;
}

SpectrumCascade::SpectrumCascade(std::span<const double> x) {
  if (x.size() < 4)
    throw std::invalid_argument("SpectrumCascade: series too short");
  // Replicates periodogram()'s preprocessing bit for bit — same trim,
  // same Welford mean, same rfft — so current() at factor 1 returns the
  // identical ordinates.
  if (x.size() % 2 != 0) x = x.first(x.size() - 1);
  n_ = x.size();
  stats::MomentAccumulator acc;
  for (double v : x) acc.push(v);
  half_ = rfft(x, acc.mean());
}

void SpectrumCascade::halve() {
  if (!can_halve())
    throw std::logic_error(
        "SpectrumCascade::halve: current length not a multiple of 4");
  const std::size_t half_n = n_ / 2;  // length after halving
  std::vector<cd> next(half_n / 2 + 1);
  const double step = 2.0 * M_PI / static_cast<double>(n_);
  for (std::size_t k = 0; k <= half_n / 2; ++k) {
    const cd a = half_[k];
    // X_{k + n/2}: inside the stored half-spectrum only at k = 0; the
    // rest come from the real-input conjugate mirror X_{n-j} = conj(X_j).
    const cd b = k == 0 ? half_[half_n] : std::conj(half_[half_n - k]);
    const double ang = step * static_cast<double>(k);
    const cd w_inv(std::cos(ang), std::sin(ang));  // w^{-k}
    next[k] = 0.25 * ((a + b) + w_inv * (a - b));
  }
  half_ = std::move(next);
  n_ = half_n;
  factor_ *= 2;
}

Periodogram SpectrumCascade::current() const {
  const std::size_t m = (n_ - 1) / 2;
  Periodogram out;
  out.frequency.resize(m);
  out.ordinate.resize(m);
  const double scale = 1.0 / (2.0 * M_PI * static_cast<double>(n_));
  for (std::size_t j = 1; j <= m; ++j) {
    out.frequency[j - 1] =
        2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n_);
    out.ordinate[j - 1] = std::norm(half_[j]) * scale;
  }
  return out;
}

AveragedPeriodogram::AveragedPeriodogram(std::size_t segment_length)
    : segment_length_(segment_length) {
  if (segment_length < 4 || segment_length % 2 != 0)
    throw std::invalid_argument(
        "AveragedPeriodogram: segment_length must be even and >= 4");
  const std::size_t m = (segment_length - 1) / 2;
  frequency_.resize(m);
  for (std::size_t j = 1; j <= m; ++j)
    frequency_[j - 1] =
        2.0 * M_PI * static_cast<double>(j) / static_cast<double>(segment_length);
  ordinate_sum_.assign(m, 0.0);
}

void AveragedPeriodogram::push(std::span<const double> x) {
  if (x.size() != segment_length_)
    throw std::invalid_argument("AveragedPeriodogram::push: segment size");
  const Periodogram p = periodogram(x);
  for (std::size_t i = 0; i < ordinate_sum_.size(); ++i)
    ordinate_sum_[i] += p.ordinate[i];
  ++segments_;
}

void AveragedPeriodogram::merge(const AveragedPeriodogram& other) {
  if (segment_length_ != other.segment_length_)
    throw std::invalid_argument(
        "AveragedPeriodogram::merge: segment length mismatch");
  for (std::size_t i = 0; i < ordinate_sum_.size(); ++i)
    ordinate_sum_[i] += other.ordinate_sum_[i];
  segments_ += other.segments_;
}

AveragedPeriodogramSnapshot AveragedPeriodogram::snapshot() const {
  return {static_cast<std::uint64_t>(segment_length_),
          static_cast<std::uint64_t>(segments_), ordinate_sum_};
}

AveragedPeriodogram AveragedPeriodogram::from_snapshot(
    const AveragedPeriodogramSnapshot& s) {
  AveragedPeriodogram acc(static_cast<std::size_t>(s.segment_length));
  if (acc.ordinate_sum_.size() != s.ordinate_sum.size())
    throw std::invalid_argument(
        "AveragedPeriodogram::from_snapshot: ordinate count mismatch");
  acc.ordinate_sum_ = s.ordinate_sum;
  acc.segments_ = static_cast<std::size_t>(s.segments);
  return acc;
}

Periodogram AveragedPeriodogram::finish() const {
  if (segments_ == 0)
    throw std::logic_error("AveragedPeriodogram::finish: no segments");
  Periodogram out;
  out.frequency = frequency_;
  out.ordinate.resize(ordinate_sum_.size());
  const double inv = 1.0 / static_cast<double>(segments_);
  for (std::size_t i = 0; i < ordinate_sum_.size(); ++i)
    out.ordinate[i] = ordinate_sum_[i] * inv;
  return out;
}

}  // namespace wan::fft
