#include "src/fft/periodogram.hpp"

#include <cmath>
#include <stdexcept>

#include "src/fft/fft.hpp"
#include "src/stats/descriptive.hpp"

namespace wan::fft {

Periodogram periodogram(std::span<const double> x) {
  if (x.size() < 4)
    throw std::invalid_argument("periodogram: series too short");

  // Force an even transform size by dropping the last sample of an
  // odd-length series. One sample is statistically immaterial for the
  // ordinates, and it keeps rfft on the planned half-size real path
  // (the odd fallback widens to a full complex transform and, for
  // non-power-of-two n, falls through to Bluestein).
  if (x.size() % 2 != 0) x = x.first(x.size() - 1);
  const std::size_t n = x.size();

  // Single-pass Welford mean (header-only MomentAccumulator); the mean
  // is then removed while rfft packs the series into its half-size
  // complex workspace, so no separate centered copy is ever allocated.
  stats::MomentAccumulator acc;
  for (double v : x) acc.push(v);

  const auto spec = rfft(x, acc.mean());
  const std::size_t m = (n - 1) / 2;
  Periodogram out;
  out.frequency.resize(m);
  out.ordinate.resize(m);
  const double scale = 1.0 / (2.0 * M_PI * static_cast<double>(n));
  for (std::size_t j = 1; j <= m; ++j) {
    out.frequency[j - 1] =
        2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n);
    out.ordinate[j - 1] = std::norm(spec[j]) * scale;
  }
  return out;
}

}  // namespace wan::fft
