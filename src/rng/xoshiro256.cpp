#include "src/rng/xoshiro256.hpp"

#include "src/rng/splitmix64.hpp"

namespace wan::rng {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;

  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);

  return result;
}

namespace {

// Applies one of the published jump polynomials to the generator state.
template <std::size_t N>
void apply_jump(Xoshiro256& gen, std::array<std::uint64_t, 4>& s,
                const std::uint64_t (&poly)[N]) noexcept {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : poly) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= gen.state()[static_cast<std::size_t>(i)];
      }
      gen.next();
    }
  }
  s = acc;
}

}  // namespace

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  apply_jump(*this, s_, kJump);
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  apply_jump(*this, s_, kLongJump);
}

}  // namespace wan::rng
