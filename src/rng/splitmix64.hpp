// SplitMix64: a tiny, fast 64-bit generator used here only for seeding
// larger-state generators (Xoshiro256++). Reference: Steele, Lea &
// Flood, "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014.
#pragma once

#include <cstdint>

namespace wan::rng {

/// SplitMix64 generator. Every output of next() is a full-period walk of a
/// 64-bit counter passed through a bijective finalizer, so any seed —
/// including 0 — is acceptable.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

  /// Current internal counter (useful for tests / serialization).
  std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace wan::rng
