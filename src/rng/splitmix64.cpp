#include "src/rng/splitmix64.hpp"

namespace wan::rng {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace wan::rng
