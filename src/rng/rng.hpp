// Rng: the library-wide random source facade.
//
// All stochastic components in wantraffic draw from an Rng passed in by the
// caller, never from hidden global state, so every experiment is exactly
// reproducible from its seed. Independent sub-streams (one per traffic
// source, say) are created with split(), which uses Xoshiro256++'s 2^128
// jump so streams cannot overlap in any realistic run.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/rng/xoshiro256.hpp"

namespace wan::rng {

/// Uniform random source with convenient double helpers and stream
/// splitting. Cheap to copy; copies continue from the same state (use
/// split() for independent streams).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xda7a5eedULL) noexcept : gen_(seed) {}

  /// Raw 64 uniform bits.
  std::uint64_t next_u64() noexcept { return gen_.next(); }

  // std::uniform_random_bit_generator interface.
  std::uint64_t operator()() noexcept { return gen_.next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  double uniform01() noexcept;

  /// Uniform double in (0, 1]: never returns 0, so -log(u) is always finite.
  /// Use for inverse-transform sampling of distributions with unbounded
  /// support.
  double uniform01_open_below() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method (unbiased). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Returns a new Rng whose stream is separated from this one by a 2^128
  /// jump. The parent keeps its (jumped) position, so repeated split()
  /// calls yield mutually non-overlapping children.
  Rng split() noexcept;

  /// Derives a deterministic child seeded from this stream plus a label
  /// hash; handy for naming per-component streams ("telnet", "ftp", ...)
  /// without threading splits through call sites.
  Rng child(std::string_view label) noexcept;

  const Xoshiro256& generator() const noexcept { return gen_; }

 private:
  explicit Rng(const Xoshiro256& gen) noexcept : gen_(gen) {}

  Xoshiro256 gen_;
};

/// FNV-1a hash of a label; used by Rng::child and by deterministic
/// per-entity seeding in the synthesizer.
std::uint64_t hash_label(std::string_view label) noexcept;

}  // namespace wan::rng
