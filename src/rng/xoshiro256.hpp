// Xoshiro256++ 1.0, the all-purpose 64-bit generator of Blackman &
// Vigna (https://prng.di.unimi.it/). 256 bits of state, period 2^256-1,
// with jump() / long_jump() for creating independent streams.
#pragma once

#include <array>
#include <cstdint>

namespace wan::rng {

/// Xoshiro256++ generator. Satisfies std::uniform_random_bit_generator so it
/// can also drive <random> distributions in tests.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the authors (avoids correlated low-entropy states).
  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680u) noexcept;

  /// Constructs from a full 256-bit state. The state must not be all zero.
  explicit Xoshiro256(const std::array<std::uint64_t, 4>& state) noexcept
      : s_(state) {}

  std::uint64_t next() noexcept;

  // std::uniform_random_bit_generator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Advances the state by 2^128 steps; use to partition one seed into up
  /// to 2^128 non-overlapping streams.
  void jump() noexcept;

  /// Advances the state by 2^192 steps (streams of streams).
  void long_jump() noexcept;

  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace wan::rng
