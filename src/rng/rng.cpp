#include "src/rng/rng.hpp"

namespace wan::rng {

double Rng::uniform01() noexcept {
  // 53 high bits -> [0,1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform01_open_below() noexcept {
  // (0,1]: map k in [0, 2^53) to (k+1) * 2^-53.
  return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire 2019: unbiased bounded integers without division in the
  // common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::split() noexcept {
  Rng parent_copy(gen_);
  gen_.jump();
  return parent_copy;
}

Rng Rng::child(std::string_view label) noexcept {
  return Rng(next_u64() ^ hash_label(label));
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wan::rng
