// Section IV's queueing consequence: "It would not be hard to construct
// simulations ... where making the mistake of using exponential
// interarrivals instead of Tcplib significantly underestimates the
// average queueing delay for TELNET packets." Here is that simulation:
// 100 multiplexed TELNET connections feed a FIFO bottleneck; we sweep
// the utilization and compare mean/p99 delay under Tcplib vs exponential
// interpacket times at identical offered load.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/plot/ascii_plot.hpp"
#include "src/rng/rng.hpp"
#include "src/sim/fifo.hpp"
#include "src/stats/descriptive.hpp"
#include "src/synth/telnet_source.hpp"

using namespace wan;

namespace {

std::vector<double> multiplexed(const synth::TelnetSource& src,
                                synth::InterarrivalScheme scheme,
                                std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<double> times;
  for (int c = 0; c < 100; ++c) {
    const auto t = src.generate_packet_times(rng, 0.0, 1200, scheme);
    for (double v : t)
      if (v < 600.0) times.push_back(v);
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

int main() {
  std::printf("=== Section IV: FIFO queueing delay, Tcplib vs exponential "
              "interarrivals ===\n\n");
  synth::TelnetConfig tc;
  tc.profile = synth::DiurnalProfile::flat();
  const synth::TelnetSource src(tc);

  const auto tcplib_times =
      multiplexed(src, synth::InterarrivalScheme::kTcplib, 210);
  const auto exp_times =
      multiplexed(src, synth::InterarrivalScheme::kExponential, 211);
  const double rate_t =
      static_cast<double>(tcplib_times.size()) / 600.0;
  const double rate_e = static_cast<double>(exp_times.size()) / 600.0;
  std::printf("offered load: tcplib %.1f pkt/s, exponential %.1f pkt/s\n\n",
              rate_t, rate_e);

  std::vector<std::vector<std::string>> rows;
  for (double rho : {0.5, 0.7, 0.85, 0.95}) {
    // Service time chosen per-scheme so both run at utilization rho.
    const auto run = [&](const std::vector<double>& times, double rate) {
      return sim::simulate_fifo_const(times, rho / rate);
    };
    const auto st = run(tcplib_times, rate_t);
    const auto se = run(exp_times, rate_e);
    rows.push_back({plot::fmt(rho, 2),
                    plot::fmt(1000.0 * st.mean_delay, 4) + " ms",
                    plot::fmt(1000.0 * se.mean_delay, 4) + " ms",
                    plot::fmt(st.mean_delay / se.mean_delay, 3) + "x",
                    plot::fmt(1000.0 * st.p99_delay, 4) + " ms",
                    plot::fmt(1000.0 * se.p99_delay, 4) + " ms"});
  }
  std::printf("%s\n",
              plot::render_table({"utilization", "tcplib mean", "exp mean",
                                  "ratio", "tcplib p99", "exp p99"},
                                 rows)
                  .c_str());
  std::printf(
      "shape check: the exponential model underestimates mean delay at "
      "every load,\nand the gap widens with utilization — exactly the "
      "paper's warning.\n\n");

  // Finite-buffer view: loss rates at a fixed buffer.
  std::printf("--- drop rates with a 50-packet buffer at rho = 0.9 ---\n");
  const auto st = sim::simulate_fifo_const(tcplib_times, 0.9 / rate_t, 50);
  const auto se = sim::simulate_fifo_const(exp_times, 0.9 / rate_e, 50);
  std::printf("  tcplib: dropped %zu of %zu (%.3f%%)\n", st.dropped,
              st.arrived,
              100.0 * static_cast<double>(st.dropped) /
                  static_cast<double>(st.arrived));
  std::printf("  exp:    dropped %zu of %zu (%.3f%%)\n", se.dropped,
              se.arrived,
              100.0 * static_cast<double>(se.dropped) /
                  static_cast<double>(se.arrived));
  std::printf("(cf. [18]: under real traffic, linear buffer growth buys "
              "less than Poisson analysis promises.)\n");
  return 0;
}
