// Section VIII reproduction (implication #1): priority scheduling with
// an unpoliced high-priority class. "If the higher priority class has
// long-range dependence and a high degree of variability over long time
// scales, then the bursts from the higher priority traffic could starve
// the lower priority traffic for long periods of time."
//
// We give interactive traffic strict priority over bulk traffic and
// compare two worlds with the SAME average high-priority load: a Poisson
// model of it, and an LRD (heavy-tailed ON/OFF) version.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/dist/exponential.hpp"
#include "src/dist/pareto.hpp"
#include "src/plot/ascii_plot.hpp"
#include "src/rng/rng.hpp"
#include "src/selfsim/onoff.hpp"
#include "src/sim/priority.hpp"

using namespace wan;

namespace {

std::vector<double> poisson_times(rng::Rng& rng, double rate, double t1) {
  std::vector<double> t;
  double now = 0.0;
  while (true) {
    now += -std::log(rng.uniform01_open_below()) / rate;
    if (now >= t1) break;
    t.push_back(now);
  }
  return t;
}

std::vector<double> onoff_times(rng::Rng& rng, double target_rate,
                                double t1) {
  const dist::Pareto on(1.0, 1.2), off(1.0, 1.2);
  selfsim::OnOffConfig cfg;
  cfg.n_sources = 4;
  cfg.bin_width = 0.1;
  cfg.rate_on = target_rate;  // calibrated below by thinning
  const auto n_bins = static_cast<std::size_t>(t1 / cfg.bin_width);
  auto counts = selfsim::onoff_aggregate_counts(rng, on, off, n_bins, cfg);
  // Convert fluid counts to packet times; then thin to the target rate.
  std::vector<double> t;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto n = static_cast<std::size_t>(counts[i]);
    for (std::size_t k = 0; k < n; ++k)
      t.push_back((static_cast<double>(i) + rng.uniform01()) * 0.1);
  }
  std::sort(t.begin(), t.end());
  const double actual_rate = static_cast<double>(t.size()) / t1;
  const double keep = target_rate / actual_rate;
  std::vector<double> thinned;
  for (double v : t)
    if (rng.uniform01() < keep) thinned.push_back(v);
  return thinned;
}

}  // namespace

int main() {
  std::printf("=== Section VIII: priority scheduling, Poisson vs LRD "
              "high-priority class ===\n\n");
  const double horizon = 600.0;
  const double high_rate = 55.0;  // ~55%% of the link at 0.01 s/pkt

  rng::Rng rng(8001);
  rng::Rng r1 = rng.child("poisson");
  rng::Rng r2 = rng.child("onoff");
  rng::Rng r3 = rng.child("low");

  const auto smooth = poisson_times(r1, high_rate, horizon);
  const auto bursty = onoff_times(r2, high_rate, horizon);
  const auto low = poisson_times(r3, 8.0, horizon);

  sim::PriorityConfig cfg;
  cfg.service_time_high = 0.01;
  cfg.service_time_low = 0.02;
  cfg.starvation_threshold = 0.5;

  const auto s_smooth = sim::simulate_priority(smooth, low, cfg);
  const auto s_bursty = sim::simulate_priority(bursty, low, cfg);

  std::printf("high-priority packets: Poisson %zu, LRD %zu (equal mean "
              "load)\n\n",
              smooth.size(), bursty.size());
  std::vector<std::vector<std::string>> rows;
  const auto add = [&rows](const char* name, const sim::PriorityStats& s) {
    rows.push_back({name, plot::fmt(1000.0 * s.high.mean_delay, 3) + " ms",
                    plot::fmt(1000.0 * s.low.mean_delay, 4) + " ms",
                    plot::fmt(s.low.p99_delay, 3) + " s",
                    plot::fmt(s.low.max_delay, 3) + " s",
                    plot::fmt(s.max_low_starvation, 3) + " s"});
  };
  add("Poisson high", s_smooth);
  add("LRD high", s_bursty);
  std::printf("%s\n",
              plot::render_table({"high class", "high mean", "low mean",
                                  "low p99", "low max", "max starvation"},
                                 rows)
                  .c_str());
  if (s_smooth.max_low_starvation > 0.0) {
    std::printf("shape check: same average high-priority load, but the LRD "
                "version starves the\nbulk class for %.1fx longer "
                "stretches.\n",
                s_bursty.max_low_starvation / s_smooth.max_low_starvation);
  } else {
    std::printf("shape check: the Poisson high class never starves the "
                "bulk class at all;\nthe LRD version starves it for up to "
                "%.1f s at a stretch (paper: 'bursts ...\ncould starve the "
                "lower priority traffic for long periods of time').\n",
                s_bursty.max_low_starvation);
  }
  return 0;
}
