// Perf bench for traffic generation and the spectral engine: whole-trace
// synthesis serial vs parallel (per-source tasks), serial sampling
// micro-ops, planned fft/rfft/fGn/Whittle rows at 2^16-2^20, and the
// rfft-vs-complex periodogram comparison (the acceptance criterion for
// the real-input path). Appends results to BENCH_perf.json (see
// bench_harness.hpp).
//
// `--smoke` shrinks every workload to CI-sized inputs so the whole run
// takes seconds; the JSON rows still land, catching perf-pipeline
// regressions (a bench that stops building/running) if not absolute
// regressions.
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_harness.hpp"
#include "src/dist/pareto.hpp"
#include "src/dist/tcplib.hpp"
#include "src/fft/fft.hpp"
#include "src/fft/periodogram.hpp"
#include "src/par/parallel.hpp"
#include "src/rng/rng.hpp"
#include "src/selfsim/fgn.hpp"
#include "src/stats/whittle.hpp"
#include "src/synth/synthesizer.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

using namespace wan;

namespace {

bool same_conn_trace(const trace::ConnTrace& a, const trace::ConnTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.records()[i];
    const auto& y = b.records()[i];
    if (x.start != y.start || x.duration != y.duration ||
        x.protocol != y.protocol || x.src_host != y.src_host ||
        x.dst_host != y.dst_host || x.bytes_orig != y.bytes_orig ||
        x.bytes_resp != y.bytes_resp || x.session_id != y.session_id)
      return false;
  }
  return true;
}

bool same_packet_trace(const trace::PacketTrace& a,
                       const trace::PacketTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.records()[i];
    const auto& y = b.records()[i];
    if (x.time != y.time || x.protocol != y.protocol ||
        x.conn_id != y.conn_id || x.from_originator != y.from_originator ||
        x.payload_bytes != y.payload_bytes)
      return false;
  }
  return true;
}

bool same_complex(const std::vector<fft::cd>& a,
                  const std::vector<fft::cd>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
      return false;
  return true;
}

bool same_reals(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

/// The pre-plan periodogram path, kept as the bench baseline: two-pass
/// mean, widen every real to a complex point, full-size complex FFT.
fft::Periodogram legacy_complex_periodogram(const std::vector<double>& x) {
  const std::size_t n = x.size();
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  std::vector<fft::cd> centered(n);
  for (std::size_t t = 0; t < n; ++t)
    centered[t] = fft::cd(x[t] - mean, 0.0);
  const auto spectrum = fft::fft(centered);
  fft::Periodogram pg;
  const std::size_t m = (n - 1) / 2;
  pg.frequency.resize(m);
  pg.ordinate.resize(m);
  const double scale = 1.0 / (2.0 * M_PI * static_cast<double>(n));
  for (std::size_t j = 1; j <= m; ++j) {
    pg.frequency[j - 1] =
        2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n);
    pg.ordinate[j - 1] = std::norm(spectrum[j]) * scale;
  }
  return pg;
}

/// Relative comparison for the cross-algorithm periodogram row (the two
/// paths regroup the same arithmetic, so they agree to ~1e-10; the
/// documented pin lives in tests/test_fft_plan.cpp).
bool periodograms_close(const fft::Periodogram& a, const fft::Periodogram& b,
                        double rel = 1e-6) {
  if (a.ordinate.size() != b.ordinate.size()) return false;
  for (std::size_t j = 0; j < a.ordinate.size(); ++j) {
    const double tol = rel * (std::abs(a.ordinate[j]) + 1e-300);
    if (std::abs(a.ordinate[j] - b.ordinate[j]) > tol) return false;
  }
  return true;
}

std::vector<fft::cd> random_complex(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<fft::cd> x(n);
  for (auto& v : x)
    v = fft::cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return x;
}

std::vector<double> random_reals(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

bool same_whittle(const stats::WhittleResult& a,
                  const stats::WhittleResult& b) {
  return a.hurst == b.hurst && a.scale == b.scale &&
         a.objective == b.objective && a.stderr_hurst == b.stderr_hurst;
}

std::string pow2_name(const char* op, std::size_t lg) {
  return std::string(op) + "/2^" + std::to_string(lg);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bench::Harness harness(argc, argv);

  // Whole-day SYN/FIN connection trace, all eight per-protocol sources.
  {
    const auto cfg =
        synth::lbl_conn_preset("bench", smoke ? 0.05 : 1.0, 42);
    trace::ConnTrace serial, parallel;
    harness.compare(
        smoke ? "synthesize_conn_trace/smoke" : "synthesize_conn_trace/day",
        1.0, "traces", [&] { serial = synth::synthesize_conn_trace(cfg); },
        [&] { parallel = synth::synthesize_conn_trace(cfg); },
        [&] { return same_conn_trace(serial, parallel); });
    std::printf("  (conn records: %zu)\n", serial.size());
  }

  // Packet-level trace, quarter hour (FULL-TEL + bulk fill).
  {
    auto cfg = synth::lbl_pkt_preset("bench", /*tcp_only=*/true, 42);
    cfg.hours = smoke ? 0.02 : 0.25;
    trace::PacketTrace serial, parallel;
    harness.compare(
        smoke ? "synthesize_packet_trace/smoke"
              : "synthesize_packet_trace/15min",
        1.0, "traces", [&] { serial = synth::synthesize_packet_trace(cfg); },
        [&] { parallel = synth::synthesize_packet_trace(cfg); },
        [&] { return same_packet_trace(serial, parallel); });
    std::printf("  (packet records: %zu)\n", serial.size());
  }

  // Serial sampling micro-ops, for the per-draw cost trajectory.
  {
    const std::size_t kDraws = smoke ? 20000 : 1000000;
    rng::Rng rng(1);
    const dist::TcplibTelnetInterarrival tcplib;
    harness.serial_only("sample/tcplib_interarrival",
                        static_cast<double>(kDraws), "draws", [&] {
                          double acc = 0.0;
                          for (std::size_t i = 0; i < kDraws; ++i)
                            acc += tcplib.sample(rng);
                          if (acc < 0.0) std::printf("%f", acc);
                        });
    const dist::Pareto pareto(1.0, 1.06);
    harness.serial_only("sample/pareto", static_cast<double>(kDraws),
                        "draws", [&] {
                          double acc = 0.0;
                          for (std::size_t i = 0; i < kDraws; ++i)
                            acc += pareto.sample(rng);
                          if (acc < 0.0) std::printf("%f", acc);
                        });
  }

  // --- Spectral engine rows ----------------------------------------------
  // Serial vs parallel planned transforms; every row's `identical` flag
  // asserts the parallel output is bit-for-bit the serial one (the
  // determinism contract DESIGN.md section 9 documents).
  const std::vector<std::size_t> fft_sizes =
      smoke ? std::vector<std::size_t>{10, 12}
            : std::vector<std::size_t>{16, 18, 20};
  for (std::size_t lg : fft_sizes) {
    const std::size_t n = std::size_t{1} << lg;
    const int reps = lg >= 20 ? 1 : 3;

    {
      const auto x = random_complex(n, 900 + lg);
      std::vector<fft::cd> serial, parallel;
      harness.compare(
          pow2_name("fft", lg), static_cast<double>(n), "points",
          [&] { serial = fft::fft(x); }, [&] { parallel = fft::fft(x); },
          [&] { return same_complex(serial, parallel); }, reps);
    }
    {
      const auto x = random_reals(n, 910 + lg);
      std::vector<fft::cd> serial, parallel;
      harness.compare(
          pow2_name("rfft", lg), static_cast<double>(n), "points",
          [&] { serial = fft::rfft(x); }, [&] { parallel = fft::rfft(x); },
          [&] { return same_complex(serial, parallel); }, reps);
    }
    {
      // Warm the circulant-eigenvalue cache so the row times synthesis,
      // not the one-shot per-(size, H) embedding build the first run
      // would otherwise absorb.
      (void)selfsim::fgn_circulant_eigenvalues(n, 0.8);
      std::vector<double> serial, parallel;
      harness.compare(
          pow2_name("generate_fgn", lg), static_cast<double>(n), "points",
          [&] {
            rng::Rng rng(920 + lg);
            serial = selfsim::generate_fgn(rng, n, 0.8);
          },
          [&] {
            rng::Rng rng(920 + lg);
            parallel = selfsim::generate_fgn(rng, n, 0.8);
          },
          [&] { return same_reals(serial, parallel); }, reps);
    }
    {
      // Whittle cost is dominated by spectral-density evaluations over
      // n/2 ordinates, so one rep per size is plenty of signal.
      rng::Rng rng(930 + lg);
      const auto x = selfsim::generate_fgn(rng, n, 0.8);
      stats::WhittleResult serial, parallel;
      harness.compare(
          pow2_name("whittle_fgn", lg), static_cast<double>(n), "points",
          [&] { serial = stats::whittle_fgn(x); },
          [&] { parallel = stats::whittle_fgn(x); },
          [&] { return same_whittle(serial, parallel); }, /*reps=*/1);
    }
  }

  // --- Acceptance row: rfft periodogram vs the legacy complex path -------
  // Both runs single-threaded; serial_ms = legacy complex path,
  // parallel_ms = planned rfft path, so the speedup column reads as
  // "rfft gain over the complex baseline" (target >= 1.5x at 2^20).
  {
    const std::size_t lg = smoke ? 12 : 20;
    const std::size_t n = std::size_t{1} << lg;
    const auto x = random_reals(n, 940);

    bench::BenchResult r;
    r.op = pow2_name("periodogram_rfft_vs_complex", lg);
    r.threads = 1;
    r.items = static_cast<double>(n);
    r.unit = "points";
    par::set_thread_count(1);
    fft::Periodogram legacy, planned;
    r.serial_ms = bench::min_time_ms(
        [&] { legacy = legacy_complex_periodogram(x); }, smoke ? 3 : 5);
    r.parallel_ms = bench::min_time_ms(
        [&] { planned = fft::periodogram(x); }, smoke ? 3 : 5);
    r.speedup = r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 1.0;
    r.throughput =
        r.parallel_ms > 0.0 ? r.items / (r.parallel_ms / 1000.0) : 0.0;
    r.identical = periodograms_close(legacy, planned);
    r.extra = {{"single_thread", "true"},
               {"speedup_target", "1.5"},
               {"meets_target", r.speedup >= 1.5 ? "true" : "false"}};
    harness.add(r);
    if (!smoke && (r.speedup < 1.5 || !r.identical)) {
      std::printf("FAIL: rfft periodogram speedup %.2fx < 1.5x target "
                  "(or outputs diverged)\n",
                  r.speedup);
      return 1;
    }
  }

  return 0;
}
