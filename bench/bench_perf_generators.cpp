// Perf bench for traffic generation: whole-trace synthesis serial vs
// parallel (per-source tasks), plus serial sampling micro-ops. Appends
// results to BENCH_perf.json (see bench_harness.hpp).
#include <cstdio>

#include "bench/bench_harness.hpp"
#include "src/dist/pareto.hpp"
#include "src/dist/tcplib.hpp"
#include "src/par/parallel.hpp"
#include "src/rng/rng.hpp"
#include "src/synth/synthesizer.hpp"
#include "src/trace/conn_trace.hpp"
#include "src/trace/packet_trace.hpp"

using namespace wan;

namespace {

bool same_conn_trace(const trace::ConnTrace& a, const trace::ConnTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.records()[i];
    const auto& y = b.records()[i];
    if (x.start != y.start || x.duration != y.duration ||
        x.protocol != y.protocol || x.src_host != y.src_host ||
        x.dst_host != y.dst_host || x.bytes_orig != y.bytes_orig ||
        x.bytes_resp != y.bytes_resp || x.session_id != y.session_id)
      return false;
  }
  return true;
}

bool same_packet_trace(const trace::PacketTrace& a,
                       const trace::PacketTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.records()[i];
    const auto& y = b.records()[i];
    if (x.time != y.time || x.protocol != y.protocol ||
        x.conn_id != y.conn_id || x.from_originator != y.from_originator ||
        x.payload_bytes != y.payload_bytes)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv);

  // Whole-day SYN/FIN connection trace, all eight per-protocol sources.
  {
    const auto cfg = synth::lbl_conn_preset("bench", 1.0, 42);
    trace::ConnTrace serial, parallel;
    harness.compare(
        "synthesize_conn_trace/day", 1.0, "traces",
        [&] { serial = synth::synthesize_conn_trace(cfg); },
        [&] { parallel = synth::synthesize_conn_trace(cfg); },
        [&] { return same_conn_trace(serial, parallel); });
    std::printf("  (conn records: %zu)\n", serial.size());
  }

  // Packet-level trace, quarter hour (FULL-TEL + bulk fill).
  {
    auto cfg = synth::lbl_pkt_preset("bench", /*tcp_only=*/true, 42);
    cfg.hours = 0.25;
    trace::PacketTrace serial, parallel;
    harness.compare(
        "synthesize_packet_trace/15min", 1.0, "traces",
        [&] { serial = synth::synthesize_packet_trace(cfg); },
        [&] { parallel = synth::synthesize_packet_trace(cfg); },
        [&] { return same_packet_trace(serial, parallel); });
    std::printf("  (packet records: %zu)\n", serial.size());
  }

  // Serial sampling micro-ops, for the per-draw cost trajectory.
  {
    constexpr std::size_t kDraws = 1000000;
    rng::Rng rng(1);
    const dist::TcplibTelnetInterarrival tcplib;
    harness.serial_only("sample/tcplib_interarrival",
                        static_cast<double>(kDraws), "draws", [&] {
                          double acc = 0.0;
                          for (std::size_t i = 0; i < kDraws; ++i)
                            acc += tcplib.sample(rng);
                          if (acc < 0.0) std::printf("%f", acc);
                        });
    const dist::Pareto pareto(1.0, 1.06);
    harness.serial_only("sample/pareto", static_cast<double>(kDraws),
                        "draws", [&] {
                          double acc = 0.0;
                          for (std::size_t i = 0; i < kDraws; ++i)
                            acc += pareto.sample(rng);
                          if (acc < 0.0) std::printf("%f", acc);
                        });
  }

  return 0;
}
