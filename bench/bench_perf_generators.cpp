// Performance microbenchmarks (google-benchmark) for traffic generation:
// distribution sampling, FULL-TEL synthesis, FTP session synthesis, and
// whole-trace assembly throughput.
#include <benchmark/benchmark.h>

#include "src/dist/pareto.hpp"
#include "src/dist/tcplib.hpp"
#include "src/rng/rng.hpp"
#include "src/synth/ftp_source.hpp"
#include "src/synth/synthesizer.hpp"
#include "src/synth/telnet_source.hpp"

using namespace wan;

namespace {

void BM_SampleTcplib(benchmark::State& state) {
  rng::Rng rng(1);
  const dist::TcplibTelnetInterarrival d;
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SampleTcplib);

void BM_SamplePareto(benchmark::State& state) {
  rng::Rng rng(2);
  const dist::Pareto d(1.0, 1.06);
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SamplePareto);

void BM_FullTelHour(benchmark::State& state) {
  synth::TelnetConfig cfg;
  cfg.profile = synth::DiurnalProfile::flat();
  cfg.conns_per_day = 24.0 * static_cast<double>(state.range(0));
  const synth::TelnetSource src(cfg);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    rng::Rng rng(seed++);
    auto conns = src.generate_connections(
        rng, 0.0, 3600.0, synth::InterarrivalScheme::kTcplib);
    benchmark::DoNotOptimize(conns);
  }
  state.counters["conns/h"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullTelHour)->Arg(50)->Arg(150)->Arg(500);

void BM_FtpHour(benchmark::State& state) {
  synth::FtpConfig cfg;
  cfg.profile = synth::DiurnalProfile::flat();
  cfg.sessions_per_day = 24.0 * 200.0;
  const synth::FtpSource src(cfg);
  const synth::HostModel hosts(100, 1000);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    rng::Rng rng(seed++);
    trace::ConnTrace out("bench", 0.0, 3600.0);
    std::uint64_t sid = 1;
    src.generate(rng, 0.0, 3600.0, hosts, &sid, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FtpHour);

void BM_SynthesizeConnDay(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = synth::lbl_conn_preset("bench", 1.0, seed++);
    auto tr = synth::synthesize_conn_trace(cfg);
    benchmark::DoNotOptimize(tr);
    state.counters["conns"] = static_cast<double>(tr.size());
  }
}
BENCHMARK(BM_SynthesizeConnDay)->Unit(benchmark::kMillisecond);

void BM_SynthesizePacketQuarterHour(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = synth::lbl_pkt_preset("bench", true, seed++);
    cfg.hours = 0.25;
    auto tr = synth::synthesize_packet_trace(cfg);
    benchmark::DoNotOptimize(tr);
    state.counters["pkts"] = static_cast<double>(tr.size());
  }
}
BENCHMARK(BM_SynthesizePacketQuarterHour)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
