// bench_perf_stream — batch vs streaming pipeline: throughput and peak
// memory on a 2-hour and a 24-hour synthesized trace.
//
// The point of the streaming layer is the memory bound, so besides wall
// time this bench measures each phase's peak RSS growth (VmHWM from
// /proc/self/status, reset per phase via /proc/self/clear_refs) and
// asserts the acceptance criterion: the 24-hour streaming run's peak is
// set by the chunk size and per-source state, not the trace length —
// checked as staying far below the batch peak and close to the 2-hour
// streaming peak. The verdict lands in the printed output and in the
// rss_bounded field of BENCH_perf.json.
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_harness.hpp"
#include "src/stream/pipeline.hpp"
#include "src/synth/stream_synth.hpp"
#include "src/synth/synthesizer.hpp"

using namespace wan;

namespace {

/// Reads an integer field like "VmHWM:   12345 kB" from
/// /proc/self/status; 0 if unavailable (non-Linux).
long read_status_kb(const std::string& field) {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::atol(line.c_str() + field.size() + 1);
    }
  }
  return 0;
}

/// Resets VmHWM to the current VmRSS so per-phase peaks are observable.
/// Returns false if the kernel interface is unavailable.
bool reset_peak_rss() {
  std::ofstream os("/proc/self/clear_refs");
  if (!os) return false;
  os << "5";
  return os.good();
}

struct PhaseResult {
  double ms = 0.0;
  std::uint64_t packets = 0;
  long peak_growth_kb = 0;  ///< VmHWM after − VmRSS before
  std::string vt_csv;
};

synth::PacketDatasetConfig bench_config(double hours) {
  synth::PacketDatasetConfig cfg =
      synth::lbl_pkt_preset("BENCH", /*tcp_only=*/true, /*seed=*/11);
  cfg.hours = hours;
  return cfg;
}

PhaseResult run_stream(const synth::PacketDatasetConfig& cfg,
                       const stream::PipelineOptions& opt) {
  const long before = read_status_kb("VmRSS:");
  reset_peak_rss();
  PhaseResult r;
  r.ms = bench::min_time_ms(
      [&] {
        synth::StreamingPacketSynthesizer src(cfg, opt.chunk_size);
        const stream::PipelineResult res = stream::analyze_stream(src, opt);
        r.packets = res.packets;
        r.vt_csv = stream::vt_csv(res);
      },
      /*reps=*/1);
  r.peak_growth_kb = read_status_kb("VmHWM:") - before;
  return r;
}

PhaseResult run_batch(const synth::PacketDatasetConfig& cfg,
                      const stream::PipelineOptions& opt) {
  const long before = read_status_kb("VmRSS:");
  reset_peak_rss();
  PhaseResult r;
  r.ms = bench::min_time_ms(
      [&] {
        const trace::PacketTrace tr = synth::synthesize_packet_trace(cfg);
        const stream::PipelineResult res = stream::analyze_batch(tr, opt);
        r.packets = res.packets;
        r.vt_csv = stream::vt_csv(res);
      },
      /*reps=*/1);
  r.peak_growth_kb = read_status_kb("VmHWM:") - before;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv);

  stream::PipelineOptions opt;
  opt.bin = 0.1;

  // Streaming phases run first so their RSS growth is measured against
  // a clean heap (batch allocations, once freed, may stay resident in
  // the allocator and mask later growth).
  const synth::PacketDatasetConfig cfg2 = bench_config(2.0);
  const synth::PacketDatasetConfig cfg24 = bench_config(24.0);
  const PhaseResult s2 = run_stream(cfg2, opt);
  const PhaseResult s24 = run_stream(cfg24, opt);
  const PhaseResult b2 = run_batch(cfg2, opt);
  const PhaseResult b24 = run_batch(cfg24, opt);

  const bool identical_2h = s2.vt_csv == b2.vt_csv;
  const bool identical_24h = s24.vt_csv == b24.vt_csv;

  // The acceptance assertion. Thresholds are deliberately loose — the
  // observed ratio is ~20x — so allocator noise cannot flip the verdict:
  // a 12x-longer trace may grow streaming peak RSS by at most 2x (the
  // per-connection skeletons grow with trace length; the packet buffers
  // must not), while batch RSS grows with the packet count.
  const bool rss_measured = s24.peak_growth_kb > 0 && b24.peak_growth_kb > 0;
  const bool rss_bounded =
      rss_measured && s24.peak_growth_kb * 2 < b24.peak_growth_kb &&
      s24.peak_growth_kb < 2 * s2.peak_growth_kb + 16 * 1024;

  std::printf(
      "\npeak RSS growth: stream 2h %ld kB, stream 24h %ld kB, "
      "batch 2h %ld kB, batch 24h %ld kB\n"
      "rss_bounded (24h stream peak set by chunk size, not trace "
      "length): %s\n\n",
      s2.peak_growth_kb, s24.peak_growth_kb, b2.peak_growth_kb,
      b24.peak_growth_kb, rss_bounded ? "PASS" : "FAIL");

  auto record = [&](const std::string& op, const PhaseResult& stream_r,
                    const PhaseResult& batch_r, bool identical) {
    bench::BenchResult r;
    r.op = op;
    r.threads = 1;
    r.items = static_cast<double>(stream_r.packets);
    r.unit = "packets";
    // serial_ms = batch, parallel_ms = streaming: the speedup column
    // then reads as "streaming cost relative to batch".
    r.serial_ms = batch_r.ms;
    r.parallel_ms = stream_r.ms;
    r.speedup = stream_r.ms > 0.0 ? batch_r.ms / stream_r.ms : 1.0;
    const double best = stream_r.ms < batch_r.ms ? stream_r.ms : batch_r.ms;
    r.throughput = best > 0.0 ? r.items / (best / 1000.0) : 0.0;
    r.identical = identical;
    r.extra = {
        {"stream_peak_rss_kb", std::to_string(stream_r.peak_growth_kb)},
        {"batch_peak_rss_kb", std::to_string(batch_r.peak_growth_kb)},
        {"rss_bounded", rss_bounded ? "true" : "false"},
    };
    harness.add(r);
  };
  record("stream_pipeline_2h_vs_batch", s2, b2, identical_2h);
  record("stream_pipeline_24h_vs_batch", s24, b24, identical_24h);

  return (identical_2h && identical_24h && rss_bounded) ? 0 : 1;
}
