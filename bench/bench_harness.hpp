// Minimal serial-vs-parallel perf harness for the bench_perf_* targets.
//
// Each op is timed twice — once with the par layer forced serial
// (1 thread) and once at the configured thread count — and the caller
// supplies an equality check so the JSON records that the parallel run
// reproduced the serial output exactly. Results append into one shared
// BENCH_perf.json (array of objects), so running both perf benches
// produces a single machine-readable perf trajectory file.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/par/parallel.hpp"

// The build injects WAN_BENCH_DEFAULT_JSON (the repo-root
// BENCH_perf.json) so every bench appends into the one committed perf
// trajectory file regardless of the working directory it runs from. The
// cwd fallback keeps the header usable outside the repo's build.
#ifndef WAN_BENCH_DEFAULT_JSON
#define WAN_BENCH_DEFAULT_JSON "BENCH_perf.json"
#endif

namespace wan::bench {

struct BenchResult {
  std::string op;
  std::size_t threads = 1;    ///< thread count of the parallel run
  double items = 0.0;         ///< work units per run, for throughput
  std::string unit = "items";
  double serial_ms = 0.0;
  double parallel_ms = 0.0;   ///< == serial_ms for serial-only ops
  double speedup = 1.0;       ///< serial_ms / parallel_ms
  double throughput = 0.0;    ///< items per second at the best time
  bool identical = true;      ///< parallel output matched serial output
  int repeats = 1;            ///< timed runs behind the recorded times
  /// Extra key → raw-JSON-value pairs appended verbatim to the record
  /// (e.g. {"peak_rss_kb", "12345"} or {"rss_bounded", "true"}), for
  /// benches that measure more than wall time.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Physical cores the host reports (>= 1). Every JSON row records this
/// next to its thread count, and speedup gates must require cores() > 1:
/// on a 1-core container a parallel run cannot beat serial, so a ~1x
/// "speedup" there is a scheduling fact, not a regression.
inline std::size_t cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<std::size_t>(n) : 1;
}

/// Best-of-`reps` wall time of fn, in milliseconds.
inline double min_time_ms(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

/// Best-of-`reps` process CPU time of fn, in milliseconds. For
/// single-threaded A/B legs on shared hosts: wall time charges whatever
/// the hypervisor steals mid-rep to whichever leg happened to be
/// running, which can swing an A/B ratio by double digits; CPU time
/// counts only the cycles the process actually executed. Never use it
/// for multi-threaded work — the clock sums across threads, so a
/// perfect 4-way parallel run "takes" the same CPU time as its serial
/// leg.
inline double min_cpu_time_ms(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    timespec t0{}, t1{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t0);
    fn();
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t1);
    const double ms = static_cast<double>(t1.tv_sec - t0.tv_sec) * 1e3 +
                      static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-6;
    if (ms < best) best = ms;
  }
  return best;
}

/// Median-of-`reps` wall time of fn after one untimed warmup run, in
/// milliseconds — the --repeat timing mode. Median resists the
/// one-sided noise (page faults, frequency ramps, a neighbor stealing
/// the core) that makes min optimistic and mean pessimistic; the warmup
/// pays the cold-cache/allocator cost outside the measurement.
inline double median_time_ms(const std::function<void()>& fn, int reps = 3) {
  fn();  // warmup, untimed
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps > 0 ? reps : 1));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

class Harness {
 public:
  /// argv[1], when it is not a flag, overrides the JSON output path
  /// (default: the repo-root BENCH_perf.json baked in at build time).
  /// "--repeat N" anywhere in argv switches every compare/serial_only
  /// timing from best-of-reps to median-of-N-with-warmup; other flags
  /// (--smoke, bench-specific knobs) pass through untouched for the
  /// bench's own argv scan. Only position 1 can be the path — a later
  /// bare token may be some flag's value (e.g. "--days 30").
  Harness(int argc, char** argv)
      : path_(WAN_BENCH_DEFAULT_JSON),
        threads_(par::thread_count() > 4 ? par::thread_count() : 4) {
    if (argc > 1 && argv[1][0] != '-') path_ = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--repeat") == 0) {
        repeat_ = std::atoi(argv[i + 1]);
        if (repeat_ < 1) repeat_ = 1;
      }
    }
    std::printf("%-34s %10s %10s %8s %8s %s\n", "op", "serial_ms",
                "par_ms", "speedup", "ident", "throughput");
  }

  ~Harness() { write(); }

  std::size_t threads() const { return threads_; }

  /// Timed runs per measurement: the --repeat override, or the bench's
  /// own default when --repeat was not given.
  int repeats(int fallback) const { return repeat_ > 0 ? repeat_ : fallback; }

  /// One measurement under the active timing mode: median-of-N with
  /// warmup under --repeat, best-of-reps otherwise.
  double time_ms(const std::function<void()>& fn, int reps) const {
    const int n = repeats(reps);
    return repeat_ > 0 ? median_time_ms(fn, n) : min_time_ms(fn, n);
  }

  /// Appends rows/sec and bytes/sec extras derived from the row's best
  /// time: rows_per_s is the throughput in items (records) per second,
  /// bytes_per_s scales it by the per-item byte width. Benches that know
  /// their record size call this (or pass bytes_per_item to compare /
  /// serial_only) so BENCH_perf.json rows carry both rate columns.
  static void add_rates(BenchResult& r, double bytes_per_item) {
    std::ostringstream rows, bytes;
    rows << r.throughput;
    bytes << r.throughput * bytes_per_item;
    r.extra.emplace_back("rows_per_s", rows.str());
    r.extra.emplace_back("bytes_per_s", bytes.str());
  }

  /// Times `run_serial` at 1 thread and `run_parallel` at threads(); the
  /// two closures should write their outputs into distinct caller-held
  /// slots which `identical` then compares. Runs repeat `reps` times, so
  /// they must be idempotent for a fixed seed. bytes_per_item > 0 adds
  /// the rows/sec + bytes/sec extras.
  void compare(const std::string& op, double items, const std::string& unit,
               const std::function<void()>& run_serial,
               const std::function<void()>& run_parallel,
               const std::function<bool()>& identical, int reps = 3,
               double bytes_per_item = 0.0) {
    BenchResult r;
    r.op = op;
    r.threads = threads_;
    r.items = items;
    r.unit = unit;
    r.repeats = repeats(reps);

    par::set_thread_count(1);
    r.serial_ms = time_ms(run_serial, reps);

    par::set_thread_count(threads_);
    r.parallel_ms = time_ms(run_parallel, reps);

    r.speedup = r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 1.0;
    const double best =
        r.parallel_ms < r.serial_ms ? r.parallel_ms : r.serial_ms;
    r.throughput = best > 0.0 ? items / (best / 1000.0) : 0.0;
    r.identical = identical();
    if (bytes_per_item > 0.0) add_rates(r, bytes_per_item);
    add(r);
  }

  /// Times a serial-only op (no parallel path); speedup is reported as 1.
  void serial_only(const std::string& op, double items,
                   const std::string& unit, const std::function<void()>& run,
                   int reps = 3, double bytes_per_item = 0.0) {
    BenchResult r;
    r.op = op;
    r.threads = 1;
    r.items = items;
    r.unit = unit;
    r.repeats = repeats(reps);
    par::set_thread_count(1);
    r.serial_ms = time_ms(run, reps);
    r.parallel_ms = r.serial_ms;
    r.throughput =
        r.serial_ms > 0.0 ? items / (r.serial_ms / 1000.0) : 0.0;
    if (bytes_per_item > 0.0) add_rates(r, bytes_per_item);
    add(r);
  }

  void add(BenchResult r) {
    std::printf("%-34s %10.3f %10.3f %7.2fx %8s %10.0f %s/s\n",
                r.op.c_str(), r.serial_ms, r.parallel_ms, r.speedup,
                r.identical ? "yes" : "NO", r.throughput, r.unit.c_str());
    std::fflush(stdout);
    results_.push_back(std::move(r));
  }

  /// Appends results into the JSON array at path_, creating it if absent.
  void write() const {
    if (results_.empty()) return;
    std::string existing;
    {
      std::ifstream in(path_);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        existing = ss.str();
      }
    }
    std::ostringstream out;
    const std::size_t close = existing.rfind(']');
    bool appending = false;
    if (close != std::string::npos &&
        existing.find('[') != std::string::npos) {
      // Splice new entries before the final ']' of the existing array.
      std::string head = existing.substr(0, close);
      while (!head.empty() &&
             (head.back() == '\n' || head.back() == ' ' ||
              head.back() == '\t'))
        head.pop_back();
      if (head.empty()) head = "[";
      appending = head.back() != '[';
      out << head;
    } else {
      out << "[";
    }
    for (const BenchResult& r : results_) {
      out << (appending ? "," : "") << "\n  " << to_json(r);
      appending = true;
    }
    out << "\n]\n";
    std::ofstream of(path_, std::ios::trunc);
    of << out.str();
    std::printf("wrote %zu result(s) to %s\n", results_.size(),
                path_.c_str());
  }

 private:
  static std::string to_json(const BenchResult& r) {
    std::ostringstream j;
    j << "{\"op\": \"" << r.op << "\", \"threads\": " << r.threads
      << ", \"cores\": " << cores() << ", \"items\": " << r.items
      << ", \"unit\": \"" << r.unit
      << "\", \"serial_ms\": " << r.serial_ms
      << ", \"parallel_ms\": " << r.parallel_ms
      << ", \"speedup\": " << r.speedup
      << ", \"throughput_per_s\": " << r.throughput
      << ", \"identical\": " << (r.identical ? "true" : "false")
      << ", \"repeats\": " << r.repeats;
    for (const auto& [key, value] : r.extra)
      j << ", \"" << key << "\": " << value;
    j << "}";
    return j.str();
  }

  std::string path_;
  std::size_t threads_;
  int repeat_ = 0;  ///< 0: best-of-reps; >0: --repeat median-of-N
  std::vector<BenchResult> results_;
};

}  // namespace wan::bench
