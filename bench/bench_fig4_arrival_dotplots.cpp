// Fig. 4 reproduction: packet arrivals of two simulated 2000-second
// TELNET connections — one with i.i.d. Tcplib interpacket times, one
// with i.i.d. exponential (mean 1.1 s) — viewed over the first 200 s and
// over the full 2000 s. The paper generated 1,926 Tcplib and 2,204
// exponential arrivals; the Tcplib row is dramatically more clustered at
// both time scales.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/dist/exponential.hpp"
#include "src/dist/tcplib.hpp"
#include "src/plot/series_io.hpp"
#include "src/rng/rng.hpp"
#include "src/stats/counting.hpp"
#include "src/stats/descriptive.hpp"
#include "src/synth/arrivals.hpp"

using namespace wan;

namespace {

// One text row of arrival dots: 100 columns spanning [0, horizon).
std::string dot_row(const std::vector<double>& times, double horizon) {
  std::string row(100, ' ');
  for (double t : times) {
    if (t < 0.0 || t >= horizon) continue;
    const auto col = static_cast<std::size_t>(t / horizon * 100.0);
    row[std::min<std::size_t>(col, 99)] = '.';
  }
  return row;
}

}  // namespace

int main() {
  rng::Rng rng(4242);
  const dist::TcplibTelnetInterarrival tcplib;
  const dist::Exponential expo(1.1);

  rng::Rng r1 = rng.child("tcplib");
  rng::Rng r2 = rng.child("exp");
  const auto t_tcplib = synth::renewal_arrivals(r1, tcplib, 0.0, 2000.0);
  const auto t_exp = synth::renewal_arrivals(r2, expo, 0.0, 2000.0);

  std::printf("=== Fig. 4: arrivals of two simulated TELNET connections "
              "===\n\n");
  std::printf("arrivals: Tcplib %zu, exponential %zu "
              "(paper: 1,926 vs 2,204)\n\n",
              t_tcplib.size(), t_exp.size());

  for (double horizon : {200.0, 2000.0}) {
    std::printf("first %.0f seconds (each column = %.0f s):\n",
                horizon, horizon / 100.0);
    std::printf("  tcplib |%s|\n", dot_row(t_tcplib, horizon).c_str());
    std::printf("  exp    |%s|\n\n", dot_row(t_exp, horizon).c_str());
  }

  // Quantify the visual contrast: occupancy and variance of fixed bins.
  const auto empty_frac = [](const std::vector<double>& c) {
    std::size_t empty = 0;
    for (double v : c) empty += v == 0.0 ? 1 : 0;
    return static_cast<double>(empty) / static_cast<double>(c.size());
  };
  for (double bin : {2.0, 20.0}) {
    const auto ct = stats::bin_counts(t_tcplib, 0.0, 2000.0, bin);
    const auto ce = stats::bin_counts(t_exp, 0.0, 2000.0, bin);
    std::printf("bin %4.0fs: empty-bin fraction tcplib %.2f vs exp %.2f; "
                "count variance %.1f vs %.1f\n",
                bin, empty_frac(ct), empty_frac(ce), stats::variance(ct),
                stats::variance(ce));
  }

  plot::write_columns_csv("fig4_arrivals.csv", {"tcplib", "exp"},
                          {t_tcplib, t_exp});
  std::printf("\narrival times written to fig4_arrivals.csv\n");
  std::printf("paper: Tcplib arrivals are dramatically more clustered over "
              "both time scales.\n");
  return 0;
}
